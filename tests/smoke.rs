//! Smoke test for the README/quickstart path: the exact grid, coefficients
//! and call sequence shown in the crate-level docs must build, run, and
//! agree with the scalar oracle bit-for-bit.

use tempora::prelude::*;

#[test]
fn quickstart_plan_lifecycle_from_prelude_alone() {
    // The crate-level quickstart: Problem → PlanBuilder → Plan → Report,
    // using only prelude exports.
    let problem = Problem::heat1d(1000, 64, Heat1dCoeffs::classic(0.25));
    let mut plan = PlanBuilder::new().stride(7).build(&problem).unwrap();
    let mut state = problem.state();
    state
        .grid1_mut()
        .unwrap()
        .fill_interior(|i| if i == 500 { 1.0 } else { 0.0 });
    let report = plan.run(&mut state).unwrap();
    assert_eq!(report.steps, 64);
    assert!(report.engine.is_some());

    let mut init = Grid1::new(1000, 1, Boundary::Dirichlet(0.0));
    init.fill_interior(|i| if i == 500 { 1.0 } else { 0.0 });
    let gold = reference::heat1d(&init, Heat1dCoeffs::classic(0.25), 64);
    assert!(state.grid1().unwrap().interior_eq(&gold));
    state.grid1().unwrap().check_canaries().unwrap();
}

#[test]
fn quickstart_temporal_matches_reference() {
    let coeffs = Heat1dCoeffs::classic(0.25);
    let mut grid = Grid1::new(1000, 1, Boundary::Dirichlet(0.0));
    grid.fill_interior(|i| if i == 500 { 1.0 } else { 0.0 });

    let ours = temporal1d_jacobi(&grid, coeffs, 64, 7);
    let gold = reference::heat1d(&grid, coeffs, 64);
    assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    ours.check_canaries().unwrap();
}

#[test]
fn quickstart_gs_variant_matches_reference() {
    // The Gauss-Seidel prelude export, exercised the same way.
    let coeffs = Gs1dCoeffs::classic(0.3);
    let mut grid = Grid1::new(777, 1, Boundary::Dirichlet(0.1));
    grid.fill_interior(|i| (i as f64 * 0.37).sin());

    let ours = temporal1d_gs(&grid, coeffs, 24, 4);
    let gold = reference::gs1d(&grid, coeffs, 24);
    assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
}
