//! Property-based cross-crate tests: for *arbitrary* shapes, strides,
//! seeds and step counts, the temporal engines and tiled parallel
//! schedules must reproduce the scalar references exactly.

use proptest::prelude::*;

use tempora::core::kernels::*;
use tempora::core::{lcs, t1d, t2d};
use tempora::grid::*;
use tempora::prelude::{Method, PlanBuilder, Problem, State, Tiling};
use tempora::stencil::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn temporal_1d_jacobi_equals_reference(
        n in 4usize..300,
        steps in 0usize..20,
        s in 2usize..8,
        seed in any::<u64>(),
        alpha in 0.05f64..0.45,
        bval in -2.0f64..2.0,
    ) {
        let c = Heat1dCoeffs::classic(alpha);
        let kern = JacobiKern1d(c);
        let mut g = Grid1::new(n, 1, Boundary::Dirichlet(bval));
        fill_random_1d(&mut g, seed, -1.0, 1.0);
        let ours = t1d::run::<4, _>(&g, &kern, steps, s);
        let gold = reference::heat1d(&g, c, steps);
        prop_assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
        ours.check_canaries().unwrap();
    }

    #[test]
    fn temporal_1d_gs_equals_reference(
        n in 4usize..300,
        steps in 0usize..16,
        s in 2usize..8,
        seed in any::<u64>(),
    ) {
        let c = Gs1dCoeffs::classic(0.3);
        let kern = GsKern1d(c);
        let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.25));
        fill_random_1d(&mut g, seed, -1.0, 1.0);
        let ours = t1d::run::<4, _>(&g, &kern, steps, s);
        let gold = reference::gs1d(&g, c, steps);
        prop_assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }

    #[test]
    fn temporal_2d_equals_reference(
        nx in 3usize..60,
        ny in 3usize..40,
        steps in 0usize..10,
        seed in any::<u64>(),
    ) {
        let c = Heat2dCoeffs::classic(0.12);
        let kern = JacobiKern2d(c);
        let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(-0.5));
        fill_random_2d(&mut g, seed, -1.0, 1.0);
        let ours = t2d::run::<f64, 4, _>(&g, &kern, steps, 2);
        let gold = reference::heat2d(&g, c, steps);
        prop_assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }

    #[test]
    fn life_vl8_equals_reference(
        nx in 3usize..50,
        ny in 3usize..40,
        steps in 0usize..12,
        p in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let rule = LifeRule::b2s23();
        let kern = LifeKern2d(rule);
        let mut g = Grid2::<i32>::new(nx, ny, 1, Boundary::Dirichlet(0));
        fill_random_life(&mut g, seed, p);
        let ours = t2d::run::<i32, 8, _>(&g, &kern, steps, 2);
        let gold = reference::life(&g, rule, steps);
        prop_assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }

    #[test]
    fn ghost_tiling_equals_reference(
        n in 16usize..400,
        block in 8usize..128,
        steps in 1usize..16,
        seed in any::<u64>(),
    ) {
        let c = Heat1dCoeffs::classic(0.25);
        let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.3));
        fill_random_1d(&mut g, seed, -1.0, 1.0);
        let gold = reference::heat1d(&g, c, steps);
        let problem = Problem::Heat1d { n, steps, coeffs: c, boundary: g.boundary() };
        for method in [Method::Scalar, Method::Temporal] {
            let mut plan = PlanBuilder::new()
                .method(method)
                .stride(3)
                .tiling(Tiling::Ghost { block, height: 4 })
                .threads(2)
                .build(&problem)
                .unwrap();
            let mut state = State::Grid1(g.clone());
            plan.run(&mut state).unwrap();
            prop_assert!(state.grid1().unwrap().interior_eq(&gold), "method={method:?}");
        }
    }

    #[test]
    fn skewed_gs_tiling_equals_reference(
        n in 64usize..600,
        blockq in 1usize..6,
        steps in 1usize..14,
        seed in any::<u64>(),
    ) {
        let s = 2;
        let block = 2 * 4 * s * blockq; // respect the disjointness bound
        let c = Gs1dCoeffs::classic(0.26);
        let mut g = Grid1::new(n, 1, Boundary::Dirichlet(-0.7));
        fill_random_1d(&mut g, seed, -1.0, 1.0);
        let gold = reference::gs1d(&g, c, steps);
        let problem = Problem::Gs1d { n, steps, coeffs: c, boundary: g.boundary() };
        for method in [Method::Scalar, Method::Temporal] {
            let mut plan = PlanBuilder::new()
                .method(method)
                .stride(s)
                .tiling(Tiling::Skew { block, height: 4 })
                .threads(2)
                .build(&problem)
                .unwrap();
            let mut state = State::Grid1(g.clone());
            plan.run(&mut state).unwrap();
            prop_assert!(state.grid1().unwrap().interior_eq(&gold), "method={method:?}");
        }
    }

    #[test]
    fn tiled_lcs_equals_reference(
        la in 1usize..120,
        lb in 1usize..200,
        xb in 4usize..48,
        yb in 8usize..64,
        alpha in 2u8..6,
        seed in any::<u64>(),
    ) {
        let a = random_sequence(la, alpha, seed);
        let b = random_sequence(lb, alpha, seed ^ 0xabcd);
        let gold = reference::lcs_len(&a, &b);
        prop_assert_eq!(lcs::length(&a, &b, 1), gold);
        let problem = Problem::lcs(la, lb);
        let mut plan = PlanBuilder::new()
            .stride(1)
            .tiling(Tiling::LcsRect { xblock: xb, yblock: yb })
            .threads(2)
            .build(&problem)
            .unwrap();
        let mut state = problem.state();
        state.lcs_mut().unwrap().a = a.clone();
        state.lcs_mut().unwrap().b = b.clone();
        let report = plan.run(&mut state).unwrap();
        prop_assert_eq!(report.lcs_length.unwrap(), gold);
    }

    #[test]
    fn stride_legality_is_enforced_and_sufficient(
        s in 1usize..10,
        n in 32usize..128,
    ) {
        // The dependence analysis must accept exactly the strides that
        // the schedule validator proves safe.
        for deps in [Heat1dCoeffs::deps(), Gs1dCoeffs::deps()] {
            let legal = deps.stride_legal(s);
            let validated = validate_schedule(&deps, 4, s, n).is_ok();
            prop_assert_eq!(legal, validated, "deps={} s={}", deps.name, s);
        }
        let lcs_d = lcs_deps();
        prop_assert_eq!(lcs_d.stride_legal(s), validate_schedule(&lcs_d, 8, s, n).is_ok());
    }
}
