//! Failpoint-driven fault-injection tests (run with `--features failpoints`).
//!
//! Each test arms a deterministic failpoint (see `tempora_failpoint`),
//! drives a real workload into it, and then proves the *containment
//! contract* of the layer under test:
//!
//! * the worker pool survives an injected task panic — the wavefront
//!   drains without deadlock and the next job on the same pool is
//!   bitwise-identical to the sequential reference;
//! * a `Plan` whose run panics is poisoned — every later `run` returns
//!   [`PlanError::Poisoned`] without touching the state — and after
//!   `Plan::reset` it produces bitwise the same results as a fresh plan;
//! * construction-time injections (worker spawn, `fault_in`, arena
//!   allocation) fail the constructor cleanly and leave the process
//!   healthy.
//!
//! The failpoint registry is process-global, so every test serializes on
//! [`fp_guard`] and starts from a cleared registry.

#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock, PoisonError};

use tempora::grid::{fill_random_1d, fill_random_2d, fill_random_3d, fill_random_life};
use tempora::parallel::{Pool, PoolConfig, SyncSlice, WaveSchedule};
use tempora::prelude::*;
use tempora_failpoint as fp;

/// Serialize tests on the process-global failpoint registry, and leave it
/// disarmed on entry and exit (even when the test body panics).
// Justification: the lock is never read — it is held only so Drop
// releases it (and clears the registry) at end of scope.
struct FpGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

fn fp_guard() -> FpGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let lock = LOCK.get_or_init(|| Mutex::new(()));
    let g = lock.lock().unwrap_or_else(PoisonError::into_inner);
    fp::clear();
    FpGuard(g)
}

impl Drop for FpGuard {
    fn drop(&mut self) {
        fp::clear();
    }
}

/// Render a caught panic payload for assertions.
fn payload_str(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// A fresh state for `problem` with a deterministic fill.
fn fresh_state(problem: &Problem, seed: u64) -> State {
    let mut state = problem.state();
    match &mut state {
        State::Grid1(g) => fill_random_1d(g, seed, -1.0, 1.0),
        State::Grid2(g) => fill_random_2d(g, seed, -1.0, 1.0),
        State::Grid2i(g) => fill_random_life(g, seed, 0.4),
        State::Grid3(g) => fill_random_3d(g, seed, -1.0, 1.0),
        State::Lcs(l) => {
            let (la, lb) = (l.a.len(), l.b.len());
            l.a = vec![1; la];
            l.b = vec![1; lb];
        }
    }
    state
}

fn states_equal(a: &State, b: &State) -> bool {
    match (a, b) {
        (State::Grid1(x), State::Grid1(y)) => x.interior_eq(y),
        (State::Grid2(x), State::Grid2(y)) => x.interior_eq(y),
        (State::Grid2i(x), State::Grid2i(y)) => x.interior_eq(y),
        (State::Grid3(x), State::Grid3(y)) => x.interior_eq(y),
        (State::Lcs(x), State::Lcs(y)) => x.length == y.length,
        _ => false,
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// An injected panic in one `(band, block)` wavefront task neither
/// deadlocks nor aborts the pool, at every thread count and under both
/// schedules; the next job on the same pool is bitwise-identical to the
/// sequential dataflow reference.
#[test]
fn wave_task_injection_is_contained_and_pool_is_reusable() {
    let _g = fp_guard();
    let (nb, nc) = (4usize, 5usize);
    let mix =
        |a: u64, b: u64, c: u64, t: u64| splitmix(a ^ b.rotate_left(17) ^ c.rotate_left(34) ^ t);
    // Sequential gold for the post-recovery dataflow check.
    let mut gold = vec![0u64; nb * nc];
    for b in 0..nb {
        for i in 0..nc {
            let left = if i > 0 { gold[b * nc + i - 1] } else { 7 };
            let below = if b > 0 { gold[(b - 1) * nc + i] } else { 11 };
            let right = if b > 0 && i + 1 < nc {
                gold[(b - 1) * nc + i + 1]
            } else {
                13
            };
            gold[b * nc + i] = mix(left, below, right, (b * nc + i) as u64);
        }
    }
    for threads in [1usize, 2, 4, 8] {
        for schedule in [WaveSchedule::Pipelined, WaveSchedule::Barrier] {
            for pin in [false, true] {
                let pool = Pool::with_config(PoolConfig::new(threads).schedule(schedule).pin(pin));
                // Target one exact task by its instance key: deterministic
                // at any thread count because the key names the task.
                fp::arm("wave_task:2:3=panic@1");
                let err = catch_unwind(AssertUnwindSafe(|| {
                    pool.waves(nb, nc, |_, _| {});
                }))
                .expect_err("injected panic must propagate out of waves");
                assert_eq!(
                    payload_str(&*err),
                    "failpoint `wave_task:2:3` injected panic on hit 1",
                    "threads={threads} schedule={schedule:?} pin={pin}"
                );
                fp::clear();
                // Survival: same pool, full wavefront, bitwise dataflow.
                let mut cells = vec![0u64; nb * nc];
                let shared = SyncSlice::new(&mut cells);
                pool.waves(nb, nc, |b, i| {
                    // SAFETY: task (b, i) writes only cell b*nc+i and reads
                    // only predecessor cells, whose tasks completed before
                    // this one was released (the waves dependence contract).
                    let cells = unsafe { shared.slice_mut() };
                    let left = if i > 0 { cells[b * nc + i - 1] } else { 7 };
                    let below = if b > 0 { cells[(b - 1) * nc + i] } else { 11 };
                    let right = if b > 0 && i + 1 < nc {
                        cells[(b - 1) * nc + i + 1]
                    } else {
                        13
                    };
                    cells[b * nc + i] = mix(left, below, right, (b * nc + i) as u64);
                });
                assert_eq!(
                    cells, gold,
                    "threads={threads} schedule={schedule:?} pin={pin}"
                );
            }
        }
    }
}

/// An injected panic in one indexed task surfaces from `for_each_index` /
/// `for_each_owned` and the pool then covers a full region exactly once.
#[test]
fn for_each_injection_surfaces_and_pool_survives() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let _g = fp_guard();
    for threads in [1usize, 2, 4, 8] {
        for owned in [false, true] {
            let pool = Pool::new(threads);
            fp::arm("pool_task:17=panic@1");
            let run = |n: usize, f: &(dyn Fn(usize) + Sync)| {
                if owned {
                    pool.for_each_owned(n, f);
                } else {
                    pool.for_each_index(n, f);
                }
            };
            let err = catch_unwind(AssertUnwindSafe(|| run(64, &|_| {})))
                .expect_err("injected panic must propagate out of for_each");
            assert_eq!(
                payload_str(&*err),
                "failpoint `pool_task:17` injected panic on hit 1",
                "threads={threads} owned={owned}"
            );
            fp::clear();
            let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
            run(64, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads} owned={owned}: region not covered exactly once"
            );
        }
    }
}

/// A panic during worker start-up propagates out of pool construction
/// instead of leaving a half-built pool (or a detached worker) behind.
#[test]
fn worker_spawn_injection_fails_pool_construction_cleanly() {
    let _g = fp_guard();
    fp::arm("pool_worker_spawn=panic@1");
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _pool = Pool::new(4);
    }))
    .expect_err("spawn-time panic must propagate out of Pool construction");
    assert!(
        payload_str(&*err).contains("failpoint `pool_worker_spawn`"),
        "unexpected payload: {}",
        payload_str(&*err)
    );
    fp::clear();
    // The process is healthy: a new pool builds and runs.
    use std::sync::atomic::{AtomicUsize, Ordering};
    let pool = Pool::new(4);
    let count = AtomicUsize::new(0);
    pool.for_each_index(32, |_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 32);
}

/// A panic inside `fault_in` (first-touch page faulting of the tile
/// arenas) escapes `PlanBuilder::build` cleanly; the same builder then
/// succeeds once disarmed, and the resulting plan matches a one-shot run.
#[test]
fn fault_in_injection_fails_build_and_next_build_succeeds() {
    let _g = fp_guard();
    let problem = Problem::heat1d(300, 13, Heat1dCoeffs::classic(0.24));
    let builder = PlanBuilder::new()
        .stride(3)
        .tiling(Tiling::Ghost {
            block: 48,
            height: 4,
        })
        .threads(2);
    fp::arm("fault_in=panic@1");
    let err = catch_unwind(AssertUnwindSafe(|| builder.build(&problem)))
        .expect_err("fault_in panic must propagate out of build");
    assert!(
        payload_str(&*err).contains("failpoint `fault_in`"),
        "unexpected payload: {}",
        payload_str(&*err)
    );
    fp::clear();
    let mut plan = builder.build(&problem).expect("disarmed build succeeds");
    let mut a = fresh_state(&problem, 99);
    let mut b = fresh_state(&problem, 99);
    plan.run(&mut a).expect("disarmed run succeeds");
    builder
        .build(&problem)
        .expect("one-shot build succeeds")
        .run(&mut b)
        .expect("one-shot run succeeds");
    assert!(states_equal(&a, &b));
}

/// A panic at the single arena-allocation funnel escapes state
/// construction cleanly and the process stays healthy.
#[test]
fn arena_alloc_injection_is_contained() {
    let _g = fp_guard();
    let problem = Problem::heat1d(200, 9, Heat1dCoeffs::classic(0.2));
    fp::arm("arena_alloc=panic@1");
    let err = catch_unwind(AssertUnwindSafe(|| problem.state()))
        .expect_err("allocation panic must propagate out of state construction");
    assert!(
        payload_str(&*err).contains("failpoint `arena_alloc`"),
        "unexpected payload: {}",
        payload_str(&*err)
    );
    fp::clear();
    let mut plan = PlanBuilder::new().stride(3).build(&problem).expect("build");
    let mut state = fresh_state(&problem, 5);
    plan.run(&mut state).expect("run after recovery");
}

/// A plan whose run panics is poisoned: every later `run` returns
/// [`PlanError::Poisoned`] without executing, `Plan::reset` clears the
/// poison, and the reset plan is bitwise-identical to a fresh one — for
/// both wavefront schedules and pinned/unpinned pools.
#[test]
fn poisoned_plan_returns_poisoned_until_reset_and_reset_matches_fresh() {
    let _g = fp_guard();
    let h1 = Problem::heat1d(300, 13, Heat1dCoeffs::classic(0.24));
    let g1 = Problem::gs1d(400, 11, Gs1dCoeffs::classic(0.22));
    let ghost = |schedule: WaveSchedule, pin: bool| {
        PlanBuilder::new()
            .stride(3)
            .tiling(Tiling::Ghost {
                block: 48,
                height: 4,
            })
            .threads(2)
            .wave_schedule(schedule)
            .pin(pin)
    };
    let skew = |schedule: WaveSchedule, pin: bool| {
        PlanBuilder::new()
            .stride(2)
            .tiling(Tiling::Skew {
                block: 64,
                height: 4,
            })
            .threads(2)
            .wave_schedule(schedule)
            .pin(pin)
    };
    let configs: Vec<(&str, &Problem, PlanBuilder)> = vec![
        (
            "heat1d/ghost/pipelined",
            &h1,
            ghost(WaveSchedule::Pipelined, false),
        ),
        (
            "heat1d/ghost/barrier",
            &h1,
            ghost(WaveSchedule::Barrier, true),
        ),
        (
            "gs1d/skew/pipelined",
            &g1,
            skew(WaveSchedule::Pipelined, true),
        ),
        ("gs1d/skew/barrier", &g1, skew(WaveSchedule::Barrier, false)),
    ];
    for (name, problem, builder) in configs {
        // Gold: a fresh plan over a fresh state.
        let mut gold = fresh_state(problem, 1234);
        builder
            .build(problem)
            .expect("gold build")
            .run(&mut gold)
            .expect("gold run");

        // Victim: build first (fault_in runs the pool), then arm both task
        // sites so whichever surface this executor drives gets hit.
        let mut plan = builder.build(problem).expect("victim build");
        fp::arm("wave_task=panic@1;pool_task=panic@1");
        let mut state = fresh_state(problem, 1234);
        let err = plan
            .run(&mut state)
            .expect_err("injected panic must poison the plan");
        match &err {
            PlanError::Poisoned { panic } => {
                assert!(panic.contains("injected panic"), "{name}: {panic}")
            }
            other => panic!("{name}: expected Poisoned, got {other:?}"),
        }
        assert!(plan.is_poisoned(), "{name}");
        assert!(fp::hits("wave_task") + fp::hits("pool_task") >= 1, "{name}");

        // Still poisoned on the next run, with no execution behind it.
        let mut again = fresh_state(problem, 1234);
        assert!(
            matches!(plan.run(&mut again), Err(PlanError::Poisoned { .. })),
            "{name}: second run must short-circuit"
        );

        // Recovery: disarm, re-initialize the state, reset, run — bitwise
        // identical to the fresh-plan gold.
        fp::clear();
        let mut recovered = fresh_state(problem, 1234);
        plan.reset(&mut recovered).expect("reset accepts the state");
        assert!(!plan.is_poisoned(), "{name}");
        plan.run(&mut recovered).expect("run after reset");
        assert!(states_equal(&recovered, &gold), "{name}: reset != fresh");
    }
}

/// The `TEMPORA_FAILPOINT` environment syntax arms the same registry the
/// programmatic API uses.
#[test]
fn env_variable_syntax_arms_failpoints() {
    let _g = fp_guard();
    std::env::set_var("TEMPORA_FAILPOINT", "pool_task:2=panic@1");
    fp::reload_from_env();
    std::env::remove_var("TEMPORA_FAILPOINT");
    let pool = Pool::new(1);
    let err = catch_unwind(AssertUnwindSafe(|| pool.for_each_index(4, |_| {})))
        .expect_err("env-armed failpoint must fire");
    assert_eq!(
        payload_str(&*err),
        "failpoint `pool_task:2` injected panic on hit 1"
    );
    assert_eq!(fp::hits("pool_task:2"), 1);
    fp::clear();
    pool.for_each_index(4, |_| {});
}

/// The plan-cache × poisoning interaction (PR 9): an injected panic
/// inside a *cached* plan's run must poison only that entry. The next
/// request for the same key gets a reset plan — zero rebuilds, bitwise
/// identical to a fresh in-process plan — and unrelated entries never
/// notice.
#[test]
fn cached_plan_poisoning_is_per_entry_and_recovers() {
    use tempora::proto::{state_digest, JobSpec, Tiling as ProtoTiling};
    use tempora::server::{CacheConfig, PlanCache, ServeError};

    let _g = fp_guard();
    // Spec A: threaded ghost-tiled heat — its run drives the pool/wave
    // task sites the failpoints arm. Spec B: a different key entirely.
    let mut spec_a = JobSpec::new(Problem::heat1d(300, 13, Heat1dCoeffs::classic(0.24)));
    spec_a.config.stride = Some(3);
    spec_a.config.tiling = ProtoTiling::Ghost {
        block: 48,
        height: 4,
    };
    spec_a.config.threads = 2;
    let mut spec_b = JobSpec::new(Problem::gs1d(400, 11, Gs1dCoeffs::classic(0.22)));
    spec_b.config.stride = Some(2);
    spec_b.config.tiling = ProtoTiling::Skew {
        block: 64,
        height: 4,
    };
    spec_b.config.threads = 2;
    let seed = 1234u64;

    // Gold digests: fresh plans run in-process over the same
    // deterministic fill the server uses.
    let gold = |spec: &JobSpec| {
        let mut state = tempora::server::fresh_state(&spec.problem, seed);
        spec.config
            .plan_builder()
            .build(&spec.problem)
            .expect("gold build")
            .run(&mut state)
            .expect("gold run");
        state_digest(&state)
    };
    let gold_a = gold(&spec_a);
    let gold_b = gold(&spec_b);

    let cache = PlanCache::new(CacheConfig::default());
    assert_eq!(cache.run(&spec_a, seed).expect("warm A").digest, gold_a);
    assert_eq!(cache.run(&spec_b, seed).expect("warm B").digest, gold_b);
    assert_eq!(cache.stats().builds, 2);

    // Inject: A's next run panics inside the pool and poisons A's entry.
    fp::arm("wave_task=panic@1;pool_task=panic@1");
    match cache.run(&spec_a, seed) {
        Err(ServeError::Poisoned(panic)) => {
            assert!(panic.contains("injected panic"), "{panic}")
        }
        other => panic!("expected Poisoned, got {other:?}"),
    }
    fp::clear();

    // B's entry never noticed: still a hit, still one build, same bits.
    let b = cache.run(&spec_b, seed).expect("B after A poisoned");
    assert!(b.cache_hit, "B must be unaffected by A's poisoning");
    assert_eq!(b.plan_builds, 1);
    assert_eq!(b.resets, 0);
    assert_eq!(b.digest, gold_b);

    // A recovers by reset, not rebuild, and matches the fresh plan
    // bitwise.
    let a = cache.run(&spec_a, seed).expect("A recovers");
    assert!(a.cache_hit);
    assert_eq!(a.plan_builds, 1, "recovery must not rebuild");
    assert_eq!(a.resets, 1, "recovery goes through Plan::reset");
    assert_eq!(a.digest, gold_a, "reset plan != fresh plan");

    let stats = cache.stats();
    assert_eq!(stats.poison_resets, 1);
    assert_eq!(stats.builds, 2, "whole scenario: exactly two builds");
}
