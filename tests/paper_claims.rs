//! Mechanical checks of the paper's *analytical* claims — the statements
//! the evaluation section argues from, verified on the instrumented
//! kernels rather than trusted.

use tempora::core::kernels::{GsKern1d, JacobiKern1d};
use tempora::core::t1d;
use tempora::grid::{fill_random_1d, Boundary, Grid1};
use tempora::simd::count;
use tempora::stencil::*;

fn grid(n: usize) -> Grid1<f64> {
    let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.0));
    fill_random_1d(&mut g, 1, -1.0, 1.0);
    g
}

/// §3.2/§6: "The temporal vectorization leads to a small fixed number of
/// vector reorganizations that is irrelevant to the vector length, stencil
/// order, and dimension" — the steady state costs exactly one rotate
/// (lane-crossing) and one blend (in-lane) per output vector, for every
/// stride and problem size.
#[test]
fn reorg_cost_is_constant_per_output_vector() {
    let c = Heat1dCoeffs::classic(0.25);
    let kern = JacobiKern1d(c);
    for n in [512usize, 4096, 65536] {
        for s in [2usize, 4, 7] {
            let g = grid(n);
            let sess = count::Session::start();
            let _ = t1d::run_counted::<4, _>(&g, &kern, 8, s);
            let k = sess.finish();
            assert!(k.output_vectors > 0);
            assert_eq!(k.cross_lane, k.output_vectors, "n={n} s={s}");
            assert_eq!(k.in_lane, k.output_vectors, "n={n} s={s}");
            // Gathers happen only at tile starts: s+1 per tile, 2 tiles.
            assert_eq!(k.gather, 2 * (s as u64 + 1), "n={n} s={s}");
        }
    }
}

/// The same constant holds for Gauss-Seidel — the scheme the paper says
/// no prior vectorization covers at all.
#[test]
fn gs_reorg_cost_matches_jacobi() {
    let c = Gs1dCoeffs::classic(0.25);
    let kern = GsKern1d(c);
    let g = grid(8192);
    let sess = count::Session::start();
    let _ = t1d::run_counted::<4, _>(&g, &kern, 4, 7);
    let k = sess.finish();
    assert_eq!(k.cross_lane, k.output_vectors);
    assert_eq!(k.in_lane, k.output_vectors);
}

/// §2.2: the data-reorganization baseline needs at least 2 shuffles per
/// output vector already for the smallest stencil — i.e. strictly more
/// shuffle *work growth potential* than the temporal scheme's constant.
#[test]
fn baseline_shuffle_budget() {
    use tempora::baseline::reorg;
    let c = Heat1dCoeffs::classic(0.25);
    let g = grid(8192);
    let sess = count::Session::start();
    let _ = reorg::heat1d_counted(&g, c, 4);
    let k = sess.finish();
    assert!(k.reorg_total() >= 2 * k.output_vectors);
}

/// §3.2 legality: the minimum strides derived by the dependence analysis
/// match the paper (`s > 1` for 1D3P Jacobi, `s ≥ 1` for LCS), and the
/// engines reject illegal strides.
#[test]
fn minimum_strides_match_paper() {
    assert_eq!(Heat1dCoeffs::deps().min_stride(), 2);
    assert_eq!(Heat2dCoeffs::deps().min_stride(), 2);
    assert_eq!(Heat3dCoeffs::deps().min_stride(), 2);
    assert_eq!(Box2dCoeffs::deps().min_stride(), 2);
    assert_eq!(LifeRule::deps().min_stride(), 2);
    assert_eq!(Gs1dCoeffs::deps().min_stride(), 2);
    assert_eq!(lcs_deps().min_stride(), 1);

    let result = std::panic::catch_unwind(|| {
        let kern = JacobiKern1d(Heat1dCoeffs::classic(0.25));
        let _ = t1d::run::<4, _>(&grid(64), &kern, 4, 1);
    });
    assert!(result.is_err(), "illegal stride must be rejected");
}

/// §3.5: for the two-array Jacobi stencils the temporal scheme runs on a
/// *single* array — the in-place engine touches `n` elements of state
/// where the double-buffered reference touches `2n`.
/// Verified structurally: `t1d::run` advances a clone of the input grid
/// and never allocates a second grid-sized buffer (its scratch is `O(s)`
/// per sweep; checked by observing identical results from a sweep whose
/// scratch is tiny relative to the grid).
#[test]
fn jacobi_single_array_execution() {
    // The scratch for s = 7, vl = 4 holds under 200 elements; the grid
    // has 2^16. If the engine secretly depended on a second full array,
    // the in-place tile applied to one buffer could not be bit-identical
    // to the double-buffered reference across 16 sweeps.
    let c = Heat1dCoeffs::classic(0.25);
    let kern = JacobiKern1d(c);
    let g = grid(1 << 16);
    let ours = t1d::run::<4, _>(&g, &kern, 64, 7);
    let gold = reference::heat1d(&g, c, 64);
    assert!(ours.interior_eq(&gold));
}

/// The paper's vector-length independence claim: the identical engine at
/// `VL = 8` (an AVX-512-shaped register) still costs one rotate + one
/// blend per output vector.
#[test]
fn reorg_cost_independent_of_vector_length() {
    let c = Heat1dCoeffs::classic(0.25);
    let kern = JacobiKern1d(c);
    let g = grid(4096);
    let sess = count::Session::start();
    let _ = t1d::run_counted::<8, _>(&g, &kern, 8, 2);
    let k = sess.finish();
    assert_eq!(k.cross_lane, k.output_vectors);
    assert_eq!(k.in_lane, k.output_vectors);
}
