//! Cross-crate equivalence: every optimized execution path — spatial
//! baselines, temporal engines, tiled + parallel schedules — must
//! reproduce the scalar references exactly (bit-for-bit for floats, since
//! all kernels share the same fused operation trees; exact for integers).

use tempora::baseline::{dlt, multiload, reorg};
use tempora::core::kernels::*;
use tempora::core::{lcs, t1d, t2d, t3d};
use tempora::grid::*;
use tempora::parallel::Pool;
use tempora::stencil::*;
use tempora::tiling::{ghost, lcs_rect, skew, Mode};

fn g1(n: usize, seed: u64, b: f64) -> Grid1<f64> {
    let mut g = Grid1::new(n, 1, Boundary::Dirichlet(b));
    fill_random_1d(&mut g, seed, -1.0, 1.0);
    g
}

fn g2(nx: usize, ny: usize, seed: u64, b: f64) -> Grid2<f64> {
    let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(b));
    fill_random_2d(&mut g, seed, -1.0, 1.0);
    g
}

fn g3(n: usize, seed: u64) -> Grid3<f64> {
    let mut g = Grid3::new(n, n, n, 1, Boundary::Dirichlet(0.1));
    fill_random_3d(&mut g, seed, -1.0, 1.0);
    g
}

#[test]
fn heat1d_all_schemes_agree() {
    let c = Heat1dCoeffs::classic(0.24);
    let kern = JacobiKern1d(c);
    let g = g1(1000, 1, 0.5);
    let steps = 24;
    let gold = reference::heat1d(&g, c, steps);
    assert!(
        t1d::run::<4, _>(&g, &kern, steps, 7).interior_eq(&gold),
        "temporal"
    );
    assert!(
        t1d::run::<8, _>(&g, &kern, steps, 2).interior_eq(&gold),
        "temporal vl=8"
    );
    assert!(
        multiload::heat1d(&g, c, steps).interior_eq(&gold),
        "multiload"
    );
    assert!(reorg::heat1d(&g, c, steps).interior_eq(&gold), "reorg");
    assert!(dlt::heat1d(&g, c, steps).interior_eq(&gold), "dlt");
    let pool = Pool::new(2);
    for mode in [Mode::Scalar, Mode::Auto, Mode::Temporal(7)] {
        assert!(
            ghost::run_jacobi_1d(&g, &kern, steps, 128, 8, mode, &pool).interior_eq(&gold),
            "ghost {mode:?}"
        );
    }
}

#[test]
fn heat2d_and_box2d_all_schemes_agree() {
    let pool = Pool::new(2);
    let steps = 12;
    let g = g2(96, 33, 2, -0.25);

    let c = Heat2dCoeffs::classic(0.11);
    let kern = JacobiKern2d(c);
    let gold = reference::heat2d(&g, c, steps);
    assert!(t2d::run::<f64, 4, _>(&g, &kern, steps, 2).interior_eq(&gold));
    assert!(multiload::heat2d(&g, c, steps).interior_eq(&gold));
    for mode in [Mode::Scalar, Mode::Auto, Mode::Temporal(2)] {
        assert!(
            ghost::run_jacobi_2d::<f64, 4, _>(&g, &kern, steps, 24, 8, mode, &pool)
                .interior_eq(&gold)
        );
    }

    let cb = Box2dCoeffs::smooth(0.07);
    let kb = BoxKern2d(cb);
    let goldb = reference::box2d(&g, cb, steps);
    assert!(t2d::run::<f64, 4, _>(&g, &kb, steps, 2).interior_eq(&goldb));
    assert!(multiload::box2d(&g, cb, steps).interior_eq(&goldb));
}

#[test]
fn life_all_schemes_agree() {
    let pool = Pool::new(2);
    let rule = LifeRule::b2s23();
    let kern = LifeKern2d(rule);
    let mut g = Grid2::<i32>::new(80, 40, 1, Boundary::Dirichlet(0));
    fill_random_life(&mut g, 5, 0.37);
    let steps = 16;
    let gold = reference::life(&g, rule, steps);
    assert!(t2d::run::<i32, 8, _>(&g, &kern, steps, 2).interior_eq(&gold));
    assert!(multiload::life(&g, rule, steps).interior_eq(&gold));
    for mode in [Mode::Scalar, Mode::Temporal(2)] {
        assert!(
            ghost::run_jacobi_2d::<i32, 8, _>(&g, &kern, steps, 24, 8, mode, &pool)
                .interior_eq(&gold)
        );
    }
}

#[test]
fn heat3d_all_schemes_agree() {
    let pool = Pool::new(2);
    let c = Heat3dCoeffs::classic(0.09);
    let kern = JacobiKern3d(c);
    let g = g3(24, 7);
    let steps = 8;
    let gold = reference::heat3d(&g, c, steps);
    assert!(t3d::run::<f64, 4, _>(&g, &kern, steps, 2).interior_eq(&gold));
    assert!(multiload::heat3d(&g, c, steps).interior_eq(&gold));
    for mode in [Mode::Scalar, Mode::Auto, Mode::Temporal(2)] {
        assert!(ghost::run_jacobi_3d(&g, &kern, steps, 10, 4, mode, &pool).interior_eq(&gold));
    }
}

#[test]
fn gauss_seidel_all_schemes_agree() {
    let pool = Pool::new(2);
    let steps = 12;

    let c1 = Gs1dCoeffs::classic(0.23);
    let k1 = GsKern1d(c1);
    let g = g1(2000, 3, 0.4);
    let gold1 = reference::gs1d(&g, c1, steps);
    assert!(t1d::run::<4, _>(&g, &k1, steps, 7).interior_eq(&gold1));
    for temporal in [false, true] {
        assert!(skew::run_gs_1d(&g, &k1, steps, 256, 8, 7, temporal, &pool).interior_eq(&gold1));
    }

    let c2 = Gs2dCoeffs::classic(0.17);
    let k2 = GsKern2d(c2);
    let h = g2(100, 21, 4, -0.1);
    let gold2 = reference::gs2d(&h, c2, steps);
    assert!(t2d::run::<f64, 4, _>(&h, &k2, steps, 2).interior_eq(&gold2));
    for temporal in [false, true] {
        assert!(skew::run_gs_2d(&h, &k2, steps, 32, 8, 2, temporal, &pool).interior_eq(&gold2));
    }

    let c3 = Gs3dCoeffs::classic(0.12);
    let k3 = GsKern3d(c3);
    let v = g3(32, 9);
    let gold3 = reference::gs3d(&v, c3, 8);
    assert!(t3d::run::<f64, 4, _>(&v, &k3, 8, 2).interior_eq(&gold3));
    for temporal in [false, true] {
        assert!(skew::run_gs_3d(&v, &k3, 8, 20, 4, 2, temporal, &pool).interior_eq(&gold3));
    }
}

#[test]
fn lcs_all_schemes_agree() {
    let a = random_sequence(300, 4, 11);
    let b = random_sequence(777, 4, 12);
    let gold = reference::lcs_len(&a, &b);
    assert_eq!(lcs::length(&a, &b, 1), gold);
    assert_eq!(lcs::length(&a, &b, 2), gold);
    for threads in [1, 2, 4] {
        let pool = Pool::new(threads);
        for temporal in [false, true] {
            assert_eq!(lcs_rect::run_lcs(&a, &b, 64, 128, 1, temporal, &pool), gold);
        }
    }
}

#[test]
fn parallel_results_are_deterministic_across_thread_counts() {
    let c = Heat1dCoeffs::classic(0.25);
    let kern = JacobiKern1d(c);
    let g = g1(4096, 21, 0.0);
    let r1 = ghost::run_jacobi_1d(&g, &kern, 32, 512, 16, Mode::Temporal(7), &Pool::new(1));
    let r2 = ghost::run_jacobi_1d(&g, &kern, 32, 512, 16, Mode::Temporal(7), &Pool::new(2));
    let r4 = ghost::run_jacobi_1d(&g, &kern, 32, 512, 16, Mode::Temporal(7), &Pool::new(4));
    assert!(r1.interior_eq(&r2) && r2.interior_eq(&r4));

    let cg = Gs1dCoeffs::classic(0.2);
    let kg = GsKern1d(cg);
    let s1 = skew::run_gs_1d(&g, &kg, 32, 512, 16, 7, true, &Pool::new(1));
    let s4 = skew::run_gs_1d(&g, &kg, 32, 512, 16, 7, true, &Pool::new(4));
    assert!(s1.interior_eq(&s4));
}

#[test]
fn canaries_survive_every_engine() {
    // No engine may write into the alignment padding.
    let c = Heat2dCoeffs::classic(0.125);
    let kern = JacobiKern2d(c);
    let g = g2(40, 37, 8, 0.0); // ny chosen so padding exists (37+2=39 -> pitch 40)
    let r = t2d::run::<f64, 4, _>(&g, &kern, 8, 2);
    r.check_canaries().unwrap();
    let rm = multiload::heat2d(&g, c, 8);
    rm.check_canaries().unwrap();
    let rp =
        ghost::run_jacobi_2d::<f64, 4, _>(&g, &kern, 8, 16, 8, Mode::Temporal(2), &Pool::new(2));
    rp.check_canaries().unwrap();
}
