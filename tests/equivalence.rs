//! Cross-crate equivalence: every optimized execution path — spatial
//! baselines, temporal engines, tiled + parallel schedules — must
//! reproduce the scalar references exactly (bit-for-bit for floats, since
//! all kernels share the same fused operation trees; exact for integers).
//!
//! Every dispatched path is exercised through the unified solver API
//! (`tempora::plan`): a [`Problem`] is compiled into a [`Plan`] and run
//! against a state, so these tests cover validation, engine resolution
//! and plan execution end to end.

use tempora::baseline::{dlt, multiload, reorg};
use tempora::core::engine;
use tempora::core::kernels::*;
use tempora::core::{lcs, t1d, t2d, t3d};
use tempora::grid::*;
use tempora::prelude::{Engine, Method, Plan, PlanBuilder, Problem, Select, State, Tiling};
use tempora::stencil::*;

fn g1(n: usize, seed: u64, b: f64) -> Grid1<f64> {
    let mut g = Grid1::new(n, 1, Boundary::Dirichlet(b));
    fill_random_1d(&mut g, seed, -1.0, 1.0);
    g
}

fn g2(nx: usize, ny: usize, seed: u64, b: f64) -> Grid2<f64> {
    let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(b));
    fill_random_2d(&mut g, seed, -1.0, 1.0);
    g
}

fn g3(n: usize, seed: u64) -> Grid3<f64> {
    let mut g = Grid3::new(n, n, n, 1, Boundary::Dirichlet(0.1));
    fill_random_3d(&mut g, seed, -1.0, 1.0);
    g
}

// ---------------------------------------------------------------------
// Plan-driven execution helpers (compile + run + unwrap the state)
// ---------------------------------------------------------------------

fn compile(problem: &Problem, b: PlanBuilder) -> Plan {
    b.build(problem).expect("test configuration must be valid")
}

fn run1(problem: &Problem, b: PlanBuilder, g: &Grid1<f64>) -> (Grid1<f64>, Option<Engine>) {
    let mut plan = compile(problem, b);
    let mut state = State::Grid1(g.clone());
    let report = plan.run(&mut state).expect("state matches plan");
    let State::Grid1(out) = state else {
        unreachable!()
    };
    (out, report.engine)
}

fn run2(problem: &Problem, b: PlanBuilder, g: &Grid2<f64>) -> (Grid2<f64>, Option<Engine>) {
    let mut plan = compile(problem, b);
    let mut state = State::Grid2(g.clone());
    let report = plan.run(&mut state).expect("state matches plan");
    let State::Grid2(out) = state else {
        unreachable!()
    };
    (out, report.engine)
}

fn run2i(problem: &Problem, b: PlanBuilder, g: &Grid2<i32>) -> (Grid2<i32>, Option<Engine>) {
    let mut plan = compile(problem, b);
    let mut state = State::Grid2i(g.clone());
    let report = plan.run(&mut state).expect("state matches plan");
    let State::Grid2i(out) = state else {
        unreachable!()
    };
    (out, report.engine)
}

fn run3(problem: &Problem, b: PlanBuilder, g: &Grid3<f64>) -> (Grid3<f64>, Option<Engine>) {
    let mut plan = compile(problem, b);
    let mut state = State::Grid3(g.clone());
    let report = plan.run(&mut state).expect("state matches plan");
    let State::Grid3(out) = state else {
        unreachable!()
    };
    (out, report.engine)
}

fn run_lcs_plan(b: PlanBuilder, a: &[u8], bs: &[u8]) -> (i32, Option<Engine>) {
    let problem = Problem::lcs(a.len(), bs.len());
    let mut plan = compile(&problem, b);
    let mut state = problem.state();
    {
        let l = state.lcs_mut().unwrap();
        l.a = a.to_vec();
        l.b = bs.to_vec();
    }
    let report = plan.run(&mut state).expect("state matches plan");
    (report.lcs_length.unwrap(), report.engine)
}

/// The three tiled in-tile schemes as `(label, method, stride)` rows.
fn tiled_methods(s: usize, with_auto: bool) -> Vec<(Method, usize)> {
    let mut v = vec![(Method::Scalar, s)];
    if with_auto {
        v.push((Method::Multiload, s));
    }
    v.push((Method::Temporal, s));
    v
}

#[test]
fn heat1d_all_schemes_agree() {
    let c = Heat1dCoeffs::classic(0.24);
    let kern = JacobiKern1d(c);
    let g = g1(1000, 1, 0.5);
    let steps = 24;
    let gold = reference::heat1d(&g, c, steps);
    assert!(
        t1d::run::<4, _>(&g, &kern, steps, 7).interior_eq(&gold),
        "temporal"
    );
    assert!(
        t1d::run::<8, _>(&g, &kern, steps, 2).interior_eq(&gold),
        "temporal vl=8"
    );
    assert!(
        multiload::heat1d(&g, c, steps).interior_eq(&gold),
        "multiload"
    );
    assert!(reorg::heat1d(&g, c, steps).interior_eq(&gold), "reorg");
    assert!(dlt::heat1d(&g, c, steps).interior_eq(&gold), "dlt");
    // All five methods again through the plan API (including the
    // one-shot baselines) plus the ghost tiling on 2 workers.
    let problem = Problem::Heat1d {
        n: g.n(),
        steps,
        coeffs: c,
        boundary: g.boundary(),
    };
    for method in [
        Method::Temporal,
        Method::Multiload,
        Method::Reorg,
        Method::Dlt,
        Method::Scalar,
    ] {
        let (r, _) = run1(&problem, PlanBuilder::new().method(method).stride(7), &g);
        assert!(r.interior_eq(&gold), "plan {method:?}");
    }
    for (method, s) in tiled_methods(7, true) {
        let (r, _) = run1(
            &problem,
            PlanBuilder::new()
                .method(method)
                .stride(s)
                .tiling(Tiling::Ghost {
                    block: 128,
                    height: 8,
                })
                .threads(2),
            &g,
        );
        assert!(r.interior_eq(&gold), "ghost {method:?}");
    }
}

#[test]
fn heat2d_and_box2d_all_schemes_agree() {
    let steps = 12;
    let g = g2(96, 33, 2, -0.25);

    let c = Heat2dCoeffs::classic(0.11);
    let kern = JacobiKern2d(c);
    let gold = reference::heat2d(&g, c, steps);
    assert!(t2d::run::<f64, 4, _>(&g, &kern, steps, 2).interior_eq(&gold));
    assert!(multiload::heat2d(&g, c, steps).interior_eq(&gold));
    let problem = Problem::Heat2d {
        nx: g.nx(),
        ny: g.ny(),
        steps,
        coeffs: c,
        boundary: g.boundary(),
    };
    for (method, s) in tiled_methods(2, true) {
        let (r, _) = run2(
            &problem,
            PlanBuilder::new()
                .method(method)
                .stride(s)
                .tiling(Tiling::Ghost {
                    block: 24,
                    height: 8,
                })
                .threads(2),
            &g,
        );
        assert!(r.interior_eq(&gold), "ghost {method:?}");
    }

    let cb = Box2dCoeffs::smooth(0.07);
    let kb = BoxKern2d(cb);
    let goldb = reference::box2d(&g, cb, steps);
    assert!(t2d::run::<f64, 4, _>(&g, &kb, steps, 2).interior_eq(&goldb));
    assert!(multiload::box2d(&g, cb, steps).interior_eq(&goldb));
    let problem = Problem::Box2d {
        nx: g.nx(),
        ny: g.ny(),
        steps,
        coeffs: cb,
        boundary: g.boundary(),
    };
    let (r, _) = run2(&problem, PlanBuilder::new().stride(2), &g);
    assert!(r.interior_eq(&goldb), "plan box2d");
}

#[test]
fn life_all_schemes_agree() {
    let rule = LifeRule::b2s23();
    let kern = LifeKern2d(rule);
    let mut g = Grid2::<i32>::new(80, 40, 1, Boundary::Dirichlet(0));
    fill_random_life(&mut g, 5, 0.37);
    let steps = 16;
    let gold = reference::life(&g, rule, steps);
    assert!(t2d::run::<i32, 8, _>(&g, &kern, steps, 2).interior_eq(&gold));
    assert!(multiload::life(&g, rule, steps).interior_eq(&gold));
    let problem = Problem::Life {
        nx: g.nx(),
        ny: g.ny(),
        steps,
        rule,
        boundary: g.boundary(),
    };
    for (method, s) in [(Method::Scalar, 2), (Method::Temporal, 2)] {
        let (r, e) = run2i(
            &problem,
            PlanBuilder::new()
                .method(method)
                .stride(s)
                .tiling(Tiling::Ghost {
                    block: 24,
                    height: 8,
                })
                .threads(2),
            &g,
        );
        assert!(r.interior_eq(&gold), "ghost {method:?}");
        // Life carries the AVX2 integer steady state: on AVX2 hosts this
        // healthy ghost geometry resolves avx2 under Auto.
        if method == Method::Temporal {
            let expect = if tempora::simd::arch::avx2_available() {
                Engine::Avx2
            } else {
                Engine::Portable
            };
            assert_eq!(e, Some(expect));
        }
    }
}

#[test]
fn heat3d_all_schemes_agree() {
    let c = Heat3dCoeffs::classic(0.09);
    let kern = JacobiKern3d(c);
    let g = g3(24, 7);
    let steps = 8;
    let gold = reference::heat3d(&g, c, steps);
    assert!(t3d::run::<f64, 4, _>(&g, &kern, steps, 2).interior_eq(&gold));
    assert!(multiload::heat3d(&g, c, steps).interior_eq(&gold));
    let problem = Problem::Heat3d {
        nx: g.nx(),
        ny: g.ny(),
        nz: g.nz(),
        steps,
        coeffs: c,
        boundary: g.boundary(),
    };
    for (method, s) in tiled_methods(2, true) {
        let (r, _) = run3(
            &problem,
            PlanBuilder::new()
                .method(method)
                .stride(s)
                .tiling(Tiling::Ghost {
                    block: 10,
                    height: 4,
                })
                .threads(2),
            &g,
        );
        assert!(r.interior_eq(&gold), "ghost {method:?}");
    }
}

#[test]
fn gauss_seidel_all_schemes_agree() {
    let steps = 12;

    let c1 = Gs1dCoeffs::classic(0.23);
    let k1 = GsKern1d(c1);
    let g = g1(2000, 3, 0.4);
    let gold1 = reference::gs1d(&g, c1, steps);
    assert!(t1d::run::<4, _>(&g, &k1, steps, 7).interior_eq(&gold1));
    let problem = Problem::Gs1d {
        n: g.n(),
        steps,
        coeffs: c1,
        boundary: g.boundary(),
    };
    for (method, s) in tiled_methods(7, false) {
        let (r, _) = run1(
            &problem,
            PlanBuilder::new()
                .method(method)
                .stride(s)
                .tiling(Tiling::Skew {
                    block: 256,
                    height: 8,
                })
                .threads(2),
            &g,
        );
        assert!(r.interior_eq(&gold1), "skew1d {method:?}");
    }

    let c2 = Gs2dCoeffs::classic(0.17);
    let k2 = GsKern2d(c2);
    let h = g2(100, 21, 4, -0.1);
    let gold2 = reference::gs2d(&h, c2, steps);
    assert!(t2d::run::<f64, 4, _>(&h, &k2, steps, 2).interior_eq(&gold2));
    let problem = Problem::Gs2d {
        nx: h.nx(),
        ny: h.ny(),
        steps,
        coeffs: c2,
        boundary: h.boundary(),
    };
    for (method, s) in tiled_methods(2, false) {
        let (r, _) = run2(
            &problem,
            PlanBuilder::new()
                .method(method)
                .stride(s)
                .tiling(Tiling::Skew {
                    block: 32,
                    height: 8,
                })
                .threads(2),
            &h,
        );
        assert!(r.interior_eq(&gold2), "skew2d {method:?}");
    }

    let c3 = Gs3dCoeffs::classic(0.12);
    let k3 = GsKern3d(c3);
    let v = g3(32, 9);
    let gold3 = reference::gs3d(&v, c3, 8);
    assert!(t3d::run::<f64, 4, _>(&v, &k3, 8, 2).interior_eq(&gold3));
    let problem = Problem::Gs3d {
        nx: v.nx(),
        ny: v.ny(),
        nz: v.nz(),
        steps: 8,
        coeffs: c3,
        boundary: v.boundary(),
    };
    for (method, s) in tiled_methods(2, false) {
        let (r, _) = run3(
            &problem,
            PlanBuilder::new()
                .method(method)
                .stride(s)
                .tiling(Tiling::Skew {
                    block: 20,
                    height: 4,
                })
                .threads(2),
            &v,
        );
        assert!(r.interior_eq(&gold3), "skew3d {method:?}");
    }
}

#[test]
fn lcs_all_schemes_agree() {
    let a = random_sequence(300, 4, 11);
    let b = random_sequence(777, 4, 12);
    let gold = reference::lcs_len(&a, &b);
    assert_eq!(lcs::length(&a, &b, 1), gold);
    assert_eq!(lcs::length(&a, &b, 2), gold);
    for threads in [1, 2, 4] {
        for method in [Method::Scalar, Method::Temporal] {
            let (len, _) = run_lcs_plan(
                PlanBuilder::new()
                    .method(method)
                    .stride(1)
                    .tiling(Tiling::LcsRect {
                        xblock: 64,
                        yblock: 128,
                    })
                    .threads(threads),
                &a,
                &b,
            );
            assert_eq!(len, gold, "threads={threads} {method:?}");
        }
    }
}

#[test]
fn parallel_results_are_deterministic_across_thread_counts() {
    let c = Heat1dCoeffs::classic(0.25);
    let g = g1(4096, 21, 0.0);
    let problem = Problem::Heat1d {
        n: g.n(),
        steps: 32,
        coeffs: c,
        boundary: g.boundary(),
    };
    let ghost = PlanBuilder::new().stride(7).tiling(Tiling::Ghost {
        block: 512,
        height: 16,
    });
    let (r1, _) = run1(&problem, ghost.threads(1), &g);
    let (r2, _) = run1(&problem, ghost.threads(2), &g);
    let (r4, _) = run1(&problem, ghost.threads(4), &g);
    assert!(r1.interior_eq(&r2) && r2.interior_eq(&r4));

    let cg = Gs1dCoeffs::classic(0.2);
    let problem = Problem::Gs1d {
        n: g.n(),
        steps: 32,
        coeffs: cg,
        boundary: g.boundary(),
    };
    let skew = PlanBuilder::new().stride(7).tiling(Tiling::Skew {
        block: 512,
        height: 16,
    });
    let (s1, _) = run1(&problem, skew.threads(1), &g);
    let (s4, _) = run1(&problem, skew.threads(4), &g);
    assert!(s1.interior_eq(&s4));
}

#[cfg(target_arch = "x86_64")]
fn has_avx2() -> bool {
    tempora::simd::arch::avx2_available()
}

/// The hand-scheduled AVX2 steady states must reproduce the scalar
/// oracles bit-for-bit over a grid of (n, s, steps) configurations,
/// including degenerate `n < VL·s` shapes that fall back to the portable
/// (scalar-schedule) tile.
#[test]
#[cfg(target_arch = "x86_64")]
fn avx2_engines_match_scalar_oracles_bitwise() {
    use tempora::core::{t1d_avx2, t2d_avx2, t3d_avx2};
    if !has_avx2() {
        return;
    }

    // 1-D: Jacobi and Gauss-Seidel over strides up to the paper's s = 7.
    let c1 = Heat1dCoeffs::classic(0.24);
    let cg1 = Gs1dCoeffs::classic(0.23);
    for &n in &[5usize, 16, 63, 200, 1000] {
        for s in [2usize, 4, 7] {
            for steps in [4usize, 8, 13] {
                let g = g1(n, (n + s + steps) as u64, 0.5);
                let ours = t1d_avx2::run_heat1d_avx2(&g, &JacobiKern1d(c1), steps, s);
                let gold = reference::heat1d(&g, c1, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "heat1d n={n} s={s} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
                let ours = t1d_avx2::run_gs1d_avx2(&g, &GsKern1d(cg1), steps, s);
                let gold = reference::gs1d(&g, cg1, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "gs1d n={n} s={s} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    // 2-D: star Jacobi, box Jacobi and Gauss-Seidel. nx = 5 with s >= 2
    // exercises the degenerate fallback.
    let c2 = Heat2dCoeffs::classic(0.11);
    let cb = Box2dCoeffs::smooth(0.07);
    let cg2 = Gs2dCoeffs::classic(0.17);
    for &(nx, ny) in &[(5usize, 9usize), (8, 5), (17, 12), (40, 23), (96, 33)] {
        for s in [2usize, 3] {
            for steps in [4usize, 7, 12] {
                let g = g2(nx, ny, (nx * ny + s + steps) as u64, -0.25);
                let ours = t2d_avx2::run_heat2d_avx2(&g, &JacobiKern2d(c2), steps, s);
                let gold = reference::heat2d(&g, c2, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "heat2d nx={nx} ny={ny} s={s} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
                ours.check_canaries().unwrap();
                let ours = t2d_avx2::run_box2d_avx2(&g, &BoxKern2d(cb), steps, s);
                let gold = reference::box2d(&g, cb, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "box2d nx={nx} ny={ny} s={s} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
                let ours = t2d_avx2::run_gs2d_avx2(&g, &GsKern2d(cg2), steps, s);
                let gold = reference::gs2d(&g, cg2, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "gs2d nx={nx} ny={ny} s={s} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    // 3-D: star Jacobi and Gauss-Seidel. nx = 5 exercises the fallback.
    let c3 = Heat3dCoeffs::classic(0.09);
    let cg3 = Gs3dCoeffs::classic(0.12);
    for &(nx, ny, nz) in &[(5usize, 6usize, 6usize), (9, 5, 6), (16, 8, 7), (24, 9, 8)] {
        for s in [2usize, 3] {
            for steps in [4usize, 8, 9] {
                let mut g = Grid3::new(nx, ny, nz, 1, Boundary::Dirichlet(0.1));
                fill_random_3d(&mut g, (nx + ny + nz + s + steps) as u64, -1.0, 1.0);
                let ours = t3d_avx2::run_heat3d_avx2(&g, &JacobiKern3d(c3), steps, s);
                let gold = reference::heat3d(&g, c3, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "heat3d nx={nx} ny={ny} nz={nz} s={s} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
                let ours = t3d_avx2::run_gs3d_avx2(&g, &GsKern3d(cg3), steps, s);
                let gold = reference::gs3d(&g, cg3, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "gs3d nx={nx} ny={ny} nz={nz} s={s} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }
}

/// Property: a forced-portable plan and a forced-AVX2 plan of the same
/// workload agree bit-for-bit, and the plan reports the engine that
/// actually executed.
#[test]
fn forced_portable_and_avx2_selections_agree_bitwise() {
    let can_force_avx2 = cfg!(target_arch = "x86_64") && tempora::simd::arch::avx2_available();
    let sels: &[Select] = if can_force_avx2 {
        &[Select::Portable, Select::Avx2, Select::Auto]
    } else {
        &[Select::Portable, Select::Auto]
    };
    let expect = |sel: Select, has_impl: bool| match sel {
        Select::Portable => Engine::Portable,
        _ if can_force_avx2 && has_impl => Engine::Avx2,
        _ => Engine::Portable,
    };

    for &(n, s, steps) in &[(200usize, 2usize, 8usize), (1000, 7, 12), (4096, 3, 5)] {
        let g = g1(n, (n + s) as u64, 0.4);
        let c = Heat1dCoeffs::classic(0.24);
        let cg = Gs1dCoeffs::classic(0.21);
        let heat = Problem::Heat1d {
            n,
            steps,
            coeffs: c,
            boundary: g.boundary(),
        };
        let gs = Problem::Gs1d {
            n,
            steps,
            coeffs: cg,
            boundary: g.boundary(),
        };
        // The dispatch shape predicate: steps >= 4 vector tiles and
        // n >= VL·s (all sampled shapes here are healthy for s <= 7).
        let has_impl = steps >= 4 && n >= 4 * s;
        let mut results = vec![];
        for &sel in sels {
            let b = PlanBuilder::new().stride(s).select(sel);
            let (r, e) = run1(&heat, b, &g);
            assert_eq!(e, Some(expect(sel, has_impl)), "heat1d {sel:?}");
            let (rg, eg) = run1(&gs, b, &g);
            assert_eq!(eg, Some(expect(sel, has_impl)), "gs1d {sel:?}");
            results.push((r, rg));
        }
        for (r, rg) in &results[1..] {
            assert!(r.interior_eq(&results[0].0), "heat1d n={n} s={s}");
            assert!(rg.interior_eq(&results[0].1), "gs1d n={n} s={s}");
        }
    }

    let g = g2(41, 23, 7, -0.5);
    let c2 = Heat2dCoeffs::classic(0.11);
    let cb = Box2dCoeffs::smooth(0.07);
    let cg2 = Gs2dCoeffs::classic(0.17);
    let g3v = g3(20, 3);
    let c3 = Heat3dCoeffs::classic(0.09);
    let cg3 = Gs3dCoeffs::classic(0.12);
    let heat2 = Problem::Heat2d {
        nx: 41,
        ny: 23,
        steps: 8,
        coeffs: c2,
        boundary: g.boundary(),
    };
    let box2 = Problem::Box2d {
        nx: 41,
        ny: 23,
        steps: 8,
        coeffs: cb,
        boundary: g.boundary(),
    };
    let gs2 = Problem::Gs2d {
        nx: 41,
        ny: 23,
        steps: 8,
        coeffs: cg2,
        boundary: g.boundary(),
    };
    let heat3 = Problem::Heat3d {
        nx: 20,
        ny: 20,
        nz: 20,
        steps: 8,
        coeffs: c3,
        boundary: g3v.boundary(),
    };
    let gs3 = Problem::Gs3d {
        nx: 20,
        ny: 20,
        nz: 20,
        steps: 8,
        coeffs: cg3,
        boundary: g3v.boundary(),
    };
    let mut results = vec![];
    for &sel in sels {
        let b = PlanBuilder::new().stride(2).select(sel);
        let (h2, e) = run2(&heat2, b, &g);
        assert_eq!(e, Some(expect(sel, true)), "heat2d {sel:?}");
        let (b2, e) = run2(&box2, b, &g);
        assert_eq!(e, Some(expect(sel, true)), "box2d {sel:?}");
        let (s2, e) = run2(&gs2, b, &g);
        assert_eq!(e, Some(expect(sel, true)), "gs2d {sel:?}");
        let (h3, e) = run3(&heat3, b, &g3v);
        assert_eq!(e, Some(expect(sel, true)), "heat3d {sel:?}");
        let (s3, e) = run3(&gs3, b, &g3v);
        assert_eq!(e, Some(expect(sel, true)), "gs3d {sel:?}");
        results.push((h2, b2, s2, h3, s3));
    }
    for r in &results[1..] {
        assert!(r.0.interior_eq(&results[0].0), "heat2d");
        assert!(r.1.interior_eq(&results[0].1), "box2d");
        assert!(r.2.interior_eq(&results[0].2), "gs2d");
        assert!(r.3.interior_eq(&results[0].3), "heat3d");
        assert!(r.4.interior_eq(&results[0].4), "gs3d");
    }

    // The two integer workloads dispatch like the f64 ones now: every
    // selection agrees bitwise and the report names what executed.
    let rule = LifeRule::b2s23();
    let mut gl = Grid2::<i32>::new(40, 30, 1, Boundary::Dirichlet(0));
    fill_random_life(&mut gl, 3, 0.35);
    let gold = reference::life(&gl, rule, 8);
    let life = Problem::Life {
        nx: 40,
        ny: 30,
        steps: 8,
        rule,
        boundary: gl.boundary(),
    };
    for &sel in sels {
        let (r, e) = run2i(&life, PlanBuilder::new().stride(2).select(sel), &gl);
        assert_eq!(e, Some(expect(sel, true)), "life {sel:?}");
        assert!(r.interior_eq(&gold));
    }
    let a = random_sequence(300, 4, 11);
    let b = random_sequence(500, 4, 12);
    for &sel in sels {
        let (len, e) = run_lcs_plan(PlanBuilder::new().stride(1).select(sel), &a, &b);
        assert_eq!(e, Some(expect(sel, true)), "lcs {sel:?}");
        assert_eq!(len, reference::lcs_len(&a, &b));
    }
}

/// Property: the tiled parallel plans agree bitwise between a forced
/// portable run and a forced AVX2 run at every tested worker count, and
/// both match the scalar reference — including degenerate tiles
/// (`block < VL·s`, where every tile falls back to the scalar schedule
/// and the resolved engine honestly reports portable) and
/// `steps % height != 0` tails.
#[test]
fn tiled_forced_engines_agree_bitwise() {
    // 1 worker exercises the dispatcher-only path, 2 and 4 exercise real
    // pipelining, 8 oversubscribes the pool on most CI hosts.
    for threads in [1usize, 2, 4, 8] {
        tiled_forced_engines_agree_at(threads);
    }
}

fn tiled_forced_engines_agree_at(threads: usize) {
    let can_force_avx2 = cfg!(target_arch = "x86_64") && tempora::simd::arch::avx2_available();
    let sels: &[Select] = if can_force_avx2 {
        &[Select::Portable, Select::Avx2, Select::Auto]
    } else {
        &[Select::Portable, Select::Auto]
    };

    // Ghost-zone Jacobi, 1-D: (block, height, steps, s, healthy-geometry?).
    // steps = 19 with height 8 leaves a 3-step scalar tail; block = 2
    // with s = 7 makes every tile degenerate.
    let c1 = Heat1dCoeffs::classic(0.24);
    let g = g1(448, 5, 0.3);
    for &(block, height, steps, s, healthy) in &[
        (64usize, 8usize, 19usize, 7usize, true),
        (2, 4, 13, 7, false),
    ] {
        let problem = Problem::Heat1d {
            n: g.n(),
            steps,
            coeffs: c1,
            boundary: g.boundary(),
        };
        let gold = reference::heat1d(&g, c1, steps);
        for &sel in sels {
            let (r, e) = run1(
                &problem,
                PlanBuilder::new()
                    .stride(s)
                    .select(sel)
                    .tiling(Tiling::Ghost { block, height })
                    .threads(threads),
                &g,
            );
            assert!(
                r.interior_eq(&gold),
                "ghost1d sel={sel:?} block={block} {:?}",
                r.first_diff(&gold)
            );
            let expect = if sel != Select::Portable && can_force_avx2 && healthy {
                Engine::Avx2
            } else {
                Engine::Portable
            };
            assert_eq!(e, Some(expect), "ghost1d sel={sel:?} block={block}");
        }
    }

    // Ghost-zone Jacobi, 2-D star + box and 3-D star, with a tail.
    let c2 = Heat2dCoeffs::classic(0.11);
    let cb = Box2dCoeffs::smooth(0.07);
    let h = g2(96, 17, 2, -0.25);
    let gold2 = reference::heat2d(&h, c2, 13);
    let goldb = reference::box2d(&h, cb, 13);
    let c3 = Heat3dCoeffs::classic(0.09);
    let v = g3(24, 7);
    let gold3 = reference::heat3d(&v, c3, 9);
    let heat2 = Problem::Heat2d {
        nx: h.nx(),
        ny: h.ny(),
        steps: 13,
        coeffs: c2,
        boundary: h.boundary(),
    };
    let box2 = Problem::Box2d {
        nx: h.nx(),
        ny: h.ny(),
        steps: 13,
        coeffs: cb,
        boundary: h.boundary(),
    };
    let heat3 = Problem::Heat3d {
        nx: v.nx(),
        ny: v.ny(),
        nz: v.nz(),
        steps: 9,
        coeffs: c3,
        boundary: v.boundary(),
    };
    for &sel in sels {
        let b2t = PlanBuilder::new()
            .stride(2)
            .select(sel)
            .tiling(Tiling::Ghost {
                block: 24,
                height: 8,
            })
            .threads(threads);
        let (r, e) = run2(&heat2, b2t, &h);
        assert!(r.interior_eq(&gold2), "ghost2d sel={sel:?}");
        assert!(e.is_some(), "ghost2d must report an engine");
        let (r, _) = run2(&box2, b2t, &h);
        assert!(r.interior_eq(&goldb), "ghost2d box sel={sel:?}");
        let (r, _) = run3(
            &heat3,
            PlanBuilder::new()
                .stride(2)
                .select(sel)
                .tiling(Tiling::Ghost {
                    block: 8,
                    height: 4,
                })
                .threads(threads),
            &v,
        );
        assert!(r.interior_eq(&gold3), "ghost3d sel={sel:?}");
    }

    // Skewed Gauss-Seidel, 1/2/3-D, with tails; the (n=60, block=36,
    // s=7) geometry has no interior vector block, so the engine honestly
    // resolves portable whatever the selection.
    let cg1 = Gs1dCoeffs::classic(0.21);
    let gg = g1(1000, 11, 0.4);
    let gold = reference::gs1d(&gg, cg1, 21);
    let gs1 = Problem::Gs1d {
        n: gg.n(),
        steps: 21,
        coeffs: cg1,
        boundary: gg.boundary(),
    };
    for &sel in sels {
        let (r, e) = run1(
            &gs1,
            PlanBuilder::new()
                .stride(7)
                .select(sel)
                .tiling(Tiling::Skew {
                    block: 128,
                    height: 8,
                })
                .threads(threads),
            &gg,
        );
        assert!(r.interior_eq(&gold), "skew1d sel={sel:?}");
        let expect = if sel != Select::Portable && can_force_avx2 {
            Engine::Avx2
        } else {
            Engine::Portable
        };
        assert_eq!(e, Some(expect), "skew1d sel={sel:?}");
    }
    let small = g1(60, 13, 0.0);
    let gold_small = reference::gs1d(&small, cg1, 10);
    let gs_small = Problem::Gs1d {
        n: small.n(),
        steps: 10,
        coeffs: cg1,
        boundary: small.boundary(),
    };
    for &sel in sels {
        let (r, e) = run1(
            &gs_small,
            PlanBuilder::new()
                .stride(7)
                .select(sel)
                .tiling(Tiling::Skew {
                    block: 36,
                    height: 4,
                })
                .threads(threads),
            &small,
        );
        assert!(r.interior_eq(&gold_small), "skew1d degenerate sel={sel:?}");
        assert_eq!(e, Some(Engine::Portable), "skew1d degenerate sel={sel:?}");
    }

    let cg2 = Gs2dCoeffs::classic(0.17);
    let hh = g2(100, 21, 4, -0.1);
    let gold2 = reference::gs2d(&hh, cg2, 14);
    let cg3 = Gs3dCoeffs::classic(0.12);
    let vv = g3(32, 9);
    let gold3 = reference::gs3d(&vv, cg3, 10);
    let gs2 = Problem::Gs2d {
        nx: hh.nx(),
        ny: hh.ny(),
        steps: 14,
        coeffs: cg2,
        boundary: hh.boundary(),
    };
    let gs3 = Problem::Gs3d {
        nx: vv.nx(),
        ny: vv.ny(),
        nz: vv.nz(),
        steps: 10,
        coeffs: cg3,
        boundary: vv.boundary(),
    };
    for &sel in sels {
        let (r, _) = run2(
            &gs2,
            PlanBuilder::new()
                .stride(2)
                .select(sel)
                .tiling(Tiling::Skew {
                    block: 32,
                    height: 8,
                })
                .threads(threads),
            &hh,
        );
        assert!(r.interior_eq(&gold2), "skew2d sel={sel:?}");
        let (r, _) = run3(
            &gs3,
            PlanBuilder::new()
                .stride(2)
                .select(sel)
                .tiling(Tiling::Skew {
                    block: 20,
                    height: 4,
                })
                .threads(threads),
            &vv,
        );
        assert!(r.interior_eq(&gold3), "skew3d sel={sel:?}");
    }
}

/// Property: the integer Life workload agrees bitwise between a forced
/// portable plan and a forced AVX2 plan — sequential and under a
/// 4-thread ghost tiling — across random B/S rules, degenerate outer
/// extents (`nx < VL·s`) and `steps % height != 0` tails, and the
/// resolved engine honestly names what executed.
#[test]
fn life_forced_engines_agree_bitwise() {
    let can_force_avx2 = cfg!(target_arch = "x86_64") && tempora::simd::arch::avx2_available();
    let sels: &[Select] = if can_force_avx2 {
        &[Select::Portable, Select::Avx2, Select::Auto]
    } else {
        &[Select::Portable, Select::Auto]
    };
    // Random-ish rules beyond the two named ones: arbitrary B/S masks.
    let rules = [
        LifeRule::b2s23(),
        LifeRule::conway(),
        LifeRule {
            birth: 0b0011_0100,
            survive: 0b0101_0110,
        },
        LifeRule {
            birth: 0b1_0000_0010,
            survive: 0b0_1000_1101,
        },
    ];
    for (ri, &rule) in rules.iter().enumerate() {
        // Sequential: healthy (48×26) and degenerate (nx = 10 < 8·2)
        // shapes, with a steps % 8 remainder.
        for &(nx, ny, steps, healthy) in &[(48usize, 26usize, 19usize, true), (10, 26, 16, false)] {
            let mut g = Grid2::<i32>::new(nx, ny, 1, Boundary::Dirichlet(0));
            fill_random_life(&mut g, (ri * 100 + nx) as u64, 0.4);
            let gold = reference::life(&g, rule, steps);
            let problem = Problem::Life {
                nx,
                ny,
                steps,
                rule,
                boundary: g.boundary(),
            };
            for &sel in sels {
                let (r, e) = run2i(&problem, PlanBuilder::new().stride(2).select(sel), &g);
                assert!(
                    r.interior_eq(&gold),
                    "seq life rule#{ri} nx={nx} sel={sel:?} {:?}",
                    r.first_diff(&gold)
                );
                let expect = if sel != Select::Portable && can_force_avx2 && healthy {
                    Engine::Avx2
                } else {
                    Engine::Portable
                };
                assert_eq!(e, Some(expect), "seq life rule#{ri} nx={nx} sel={sel:?}");
            }
        }
        // Ghost-tiled on 4 workers: healthy blocks, a steps % height
        // tail, and a degenerate geometry (at stride 3 a block-2 tile's
        // ghost buffer is 20 cells, below VL·s = 24, so every tile runs
        // the scalar fallback schedule).
        let mut g = Grid2::<i32>::new(96, 20, 1, Boundary::Dirichlet(0));
        fill_random_life(&mut g, ri as u64 + 7, 0.37);
        for &(block, steps, s, healthy) in &[(24usize, 19usize, 2usize, true), (2, 16, 3, false)] {
            let gold = reference::life(&g, rule, steps);
            let problem = Problem::Life {
                nx: 96,
                ny: 20,
                steps,
                rule,
                boundary: g.boundary(),
            };
            for &sel in sels {
                let (r, e) = run2i(
                    &problem,
                    PlanBuilder::new()
                        .stride(s)
                        .select(sel)
                        .tiling(Tiling::Ghost { block, height: 8 })
                        .threads(4),
                    &g,
                );
                assert!(
                    r.interior_eq(&gold),
                    "ghost life rule#{ri} block={block} sel={sel:?} {:?}",
                    r.first_diff(&gold)
                );
                let expect = if sel != Select::Portable && can_force_avx2 && healthy {
                    Engine::Avx2
                } else {
                    Engine::Portable
                };
                assert_eq!(
                    e,
                    Some(expect),
                    "ghost life rule#{ri} block={block} sel={sel:?}"
                );
            }
        }
    }
}

/// Property: the LCS workload agrees exactly between a forced portable
/// plan and a forced AVX2 plan — sequential and under a 4-thread
/// rectangle tiling — across random alphabet sizes, strides and
/// degenerate segments (`lb < VL·s + 1`), with honest engine reports.
#[test]
fn lcs_forced_engines_agree() {
    let can_force_avx2 = cfg!(target_arch = "x86_64") && tempora::simd::arch::avx2_available();
    let sels: &[Select] = if can_force_avx2 {
        &[Select::Portable, Select::Avx2, Select::Auto]
    } else {
        &[Select::Portable, Select::Auto]
    };
    // (la, lb, alphabet, s, healthy-sequential?): the 300×12 shape at
    // s = 2 has lb < 8·2 + 1 and must honestly resolve portable; the
    // 5×200 shape has no full 8-level A tile.
    for &(la, lb, alpha, s, healthy) in &[
        (120usize, 250usize, 4u8, 1usize, true),
        (77, 133, 2, 2, true),
        (64, 97, 26, 3, true),
        (300, 12, 4, 2, false),
        (5, 200, 4, 1, false),
    ] {
        let a = random_sequence(la, alpha, (la + lb) as u64);
        let b = random_sequence(lb, alpha, (la * 31 + lb) as u64);
        let gold = reference::lcs_len(&a, &b);
        for &sel in sels {
            let (len, e) = run_lcs_plan(PlanBuilder::new().stride(s).select(sel), &a, &b);
            assert_eq!(len, gold, "seq lcs la={la} lb={lb} s={s} sel={sel:?}");
            let expect = if sel != Select::Portable && can_force_avx2 && healthy {
                Engine::Avx2
            } else {
                Engine::Portable
            };
            assert_eq!(e, Some(expect), "seq lcs la={la} lb={lb} s={s} sel={sel:?}");
        }
    }
    // Rectangle-tiled on 4 workers: a healthy blocking, a healthy
    // ragged-last column block (260 % 70 = 50 ≥ VL·s + 1), a blocking
    // whose ragged last column block is too short for the steady state
    // (260 % 64 = 4), and a degenerate narrow column block.
    let a = random_sequence(150, 3, 41);
    let b = random_sequence(260, 3, 42);
    let gold = reference::lcs_len(&a, &b);
    for &(xb, yb, healthy) in &[
        (32usize, 65usize, true),
        (24, 70, true),
        (32, 64, false),
        (32, 6, false),
    ] {
        let problem = Problem::lcs(150, 260);
        for &sel in sels {
            let mut plan = compile(
                &problem,
                PlanBuilder::new()
                    .stride(1)
                    .select(sel)
                    .tiling(Tiling::LcsRect {
                        xblock: xb,
                        yblock: yb,
                    })
                    .threads(4),
            );
            let mut state = problem.state();
            {
                let l = state.lcs_mut().unwrap();
                l.a = a.clone();
                l.b = b.clone();
            }
            let report = plan.run(&mut state).expect("state matches plan");
            assert_eq!(
                report.lcs_length,
                Some(gold),
                "rect lcs xb={xb} yb={yb} sel={sel:?}"
            );
            let expect = if sel != Select::Portable && can_force_avx2 && healthy {
                Engine::Avx2
            } else {
                Engine::Portable
            };
            assert_eq!(
                report.engine,
                Some(expect),
                "rect lcs xb={xb} yb={yb} sel={sel:?}"
            );
        }
    }
}

/// The `TEMPORA_ENGINE` environment variable drives `Select::from_env`,
/// and a plan built with that selection reports the forced engine.
#[test]
fn tempora_engine_env_is_honoured() {
    // Parsing (pure).
    assert_eq!(Select::parse("auto"), Some(Select::Auto));
    assert_eq!(Select::parse("PORTABLE"), Some(Select::Portable));
    assert_eq!(Select::parse(" avx2 "), Some(Select::Avx2));
    assert_eq!(Select::parse("neon"), None);
    // End-to-end through the process environment. No other test in this
    // binary reads TEMPORA_ENGINE, so the temporary mutation is safe.
    std::env::set_var(engine::ENV_VAR, "portable");
    assert_eq!(Select::from_env(), Select::Portable);
    let g = g1(300, 1, 0.0);
    let c = Heat1dCoeffs::classic(0.25);
    let problem = Problem::Heat1d {
        n: g.n(),
        steps: 8,
        coeffs: c,
        boundary: g.boundary(),
    };
    let (_, e) = run1(
        &problem,
        PlanBuilder::new().stride(7).select(Select::from_env()),
        &g,
    );
    assert_eq!(e, Some(Engine::Portable));
    std::env::remove_var(engine::ENV_VAR);
    assert_eq!(Select::from_env(), Select::Auto);
}

#[test]
fn canaries_survive_every_engine() {
    // No engine may write into the alignment padding.
    let c = Heat2dCoeffs::classic(0.125);
    let kern = JacobiKern2d(c);
    let g = g2(40, 37, 8, 0.0); // ny chosen so padding exists (37+2=39 -> pitch 40)
    let r = t2d::run::<f64, 4, _>(&g, &kern, 8, 2);
    r.check_canaries().unwrap();
    let rm = multiload::heat2d(&g, c, 8);
    rm.check_canaries().unwrap();
    let problem = Problem::Heat2d {
        nx: g.nx(),
        ny: g.ny(),
        steps: 8,
        coeffs: c,
        boundary: g.boundary(),
    };
    let (rp, _) = run2(
        &problem,
        PlanBuilder::new()
            .stride(2)
            .tiling(Tiling::Ghost {
                block: 16,
                height: 8,
            })
            .threads(2),
        &g,
    );
    rp.check_canaries().unwrap();
}
