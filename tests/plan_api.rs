//! Contract tests for the unified `Problem → Plan → Report` solver API:
//!
//! * **Reuse**: running one compiled plan N times on fresh states is
//!   bitwise-identical to N one-shot runs with freshly compiled plans,
//!   across every method/tiling family.
//! * **Allocation-freedom**: after the first `run`, repeated `plan.run`
//!   calls perform zero aligned-buffer allocations (verified through the
//!   `tempora::grid::alloc_count` counter; the one-shot reorg/DLT
//!   baselines are the documented exceptions).
//! * **Validation**: every invalid configuration returns a descriptive
//!   [`PlanError`] — no panics — and the documented honest fallbacks
//!   (degenerate geometries, workloads without an AVX2 steady state)
//!   build fine and report the portable engine.

use proptest::prelude::*;
use tempora::grid::{
    alloc_count, fill_random_1d, fill_random_2d, fill_random_3d, fill_random_life, random_sequence,
};
use tempora::prelude::*;

/// A catalogue of representative (problem, builder) configurations — one
/// per method/tiling family the plan API supports.
fn catalogue(seed: u64) -> Vec<(&'static str, Problem, PlanBuilder)> {
    let h1 = Problem::heat1d(300 + (seed % 64) as usize, 13, Heat1dCoeffs::classic(0.24));
    let g1 = Problem::gs1d(400, 11, Gs1dCoeffs::classic(0.22));
    let h2 = Problem::heat2d(48, 17, 9, Heat2dCoeffs::classic(0.11));
    let b2 = Problem::box2d(40, 15, 8, Box2dCoeffs::smooth(0.07));
    let g2 = Problem::gs2d(64, 13, 10, Gs2dCoeffs::classic(0.17));
    let life = Problem::life(40, 22, 17, LifeRule::b2s23());
    let h3 = Problem::heat3d(20, 7, 6, 9, Heat3dCoeffs::classic(0.09));
    let g3 = Problem::gs3d(24, 6, 5, 10, Gs3dCoeffs::classic(0.12));
    let lcs = Problem::lcs(90, 140);
    vec![
        ("heat1d/temporal", h1, PlanBuilder::new().stride(7)),
        (
            "heat1d/temporal/portable",
            h1,
            PlanBuilder::new().stride(7).select(Select::Portable),
        ),
        (
            "heat1d/multiload",
            h1,
            PlanBuilder::new().method(Method::Multiload),
        ),
        (
            "heat1d/scalar",
            h1,
            PlanBuilder::new().method(Method::Scalar),
        ),
        (
            "heat1d/ghost",
            h1,
            PlanBuilder::new()
                .stride(3)
                .tiling(Tiling::Ghost {
                    block: 48,
                    height: 4,
                })
                .threads(2),
        ),
        (
            "gs1d/skew",
            g1,
            PlanBuilder::new()
                .stride(2)
                .tiling(Tiling::Skew {
                    block: 64,
                    height: 4,
                })
                .threads(2),
        ),
        ("heat2d/temporal", h2, PlanBuilder::new().stride(2)),
        (
            "heat2d/ghost",
            h2,
            PlanBuilder::new()
                .stride(2)
                .tiling(Tiling::Ghost {
                    block: 12,
                    height: 4,
                })
                .threads(2),
        ),
        ("box2d/temporal", b2, PlanBuilder::new().stride(2)),
        ("gs2d/temporal", g2, PlanBuilder::new().stride(2)),
        (
            "gs2d/skew",
            g2,
            PlanBuilder::new()
                .stride(2)
                .tiling(Tiling::Skew {
                    block: 20,
                    height: 4,
                })
                .threads(2),
        ),
        ("life/temporal", life, PlanBuilder::new().stride(2)),
        (
            "life/ghost",
            life,
            PlanBuilder::new()
                .stride(2)
                .tiling(Tiling::Ghost {
                    block: 16,
                    height: 8,
                })
                .threads(2),
        ),
        ("heat3d/temporal", h3, PlanBuilder::new().stride(2)),
        (
            "heat3d/ghost",
            h3,
            PlanBuilder::new()
                .stride(2)
                .tiling(Tiling::Ghost {
                    block: 8,
                    height: 4,
                })
                .threads(2),
        ),
        ("gs3d/temporal", g3, PlanBuilder::new().stride(2)),
        (
            "gs3d/skew",
            g3,
            PlanBuilder::new()
                .stride(2)
                .tiling(Tiling::Skew {
                    block: 22,
                    height: 4,
                })
                .threads(2),
        ),
        ("lcs/temporal", lcs, PlanBuilder::new().stride(1)),
        (
            "lcs/rect",
            lcs,
            PlanBuilder::new()
                .stride(1)
                .tiling(Tiling::LcsRect {
                    xblock: 24,
                    yblock: 40,
                })
                .threads(2),
        ),
    ]
}

fn fresh_state(problem: &Problem, seed: u64) -> State {
    let mut state = problem.state();
    match &mut state {
        State::Grid1(g) => fill_random_1d(g, seed, -1.0, 1.0),
        State::Grid2(g) => fill_random_2d(g, seed, -1.0, 1.0),
        State::Grid2i(g) => fill_random_life(g, seed, 0.4),
        State::Grid3(g) => fill_random_3d(g, seed, -1.0, 1.0),
        State::Lcs(l) => {
            let (la, lb) = (l.a.len(), l.b.len());
            l.a = random_sequence(la, 4, seed);
            l.b = random_sequence(lb, 4, seed.wrapping_add(1));
        }
    }
    state
}

fn states_equal(a: &State, b: &State) -> bool {
    match (a, b) {
        (State::Grid1(x), State::Grid1(y)) => x.interior_eq(y),
        (State::Grid2(x), State::Grid2(y)) => x.interior_eq(y),
        (State::Grid2i(x), State::Grid2i(y)) => x.interior_eq(y),
        (State::Grid3(x), State::Grid3(y)) => x.interior_eq(y),
        (State::Lcs(x), State::Lcs(y)) => x.length == y.length,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Reuse property: one plan run N times on fresh states ==
    /// N freshly compiled one-shot plans, bitwise, for every family.
    #[test]
    fn plan_reuse_is_bitwise_identical_to_one_shot_runs(
        seed in any::<u64>(),
        reps in 2usize..4,
    ) {
        for (name, problem, builder) in catalogue(seed) {
            let mut reused = builder.build(&problem).unwrap();
            for r in 0..reps {
                let state_seed = seed ^ (r as u64).wrapping_mul(0x9e37);
                let mut a = fresh_state(&problem, state_seed);
                let mut b = fresh_state(&problem, state_seed);
                reused.run(&mut a).unwrap();
                // One-shot: a fresh plan compiled for this run alone.
                builder.build(&problem).unwrap().run(&mut b).unwrap();
                prop_assert!(states_equal(&a, &b), "{name} rep={r}");
            }
        }
    }
}

/// Allocation regression: after the warm-up run, `plan.run` performs
/// **zero** aligned-buffer (grid/scratch) allocations — every arena was
/// allocated at build time or during the first run.
#[test]
fn second_run_is_allocation_free() {
    for (name, problem, builder) in catalogue(7) {
        let mut plan = builder.build(&problem).unwrap();
        let mut state = fresh_state(&problem, 42);
        plan.run(&mut state).unwrap(); // warm-up (first run)
        let mut state2 = fresh_state(&problem, 43);
        // The counter is process-global and sibling tests allocate
        // concurrently, so retry until a clean window: if `run` itself
        // allocated, every window would show a delta.
        let mut clean = false;
        for _ in 0..32 {
            let before = alloc_count();
            plan.run(&mut state2).unwrap();
            if alloc_count() == before {
                clean = true;
                break;
            }
        }
        assert!(
            clean,
            "{name}: repeated plan.run allocated aligned buffers in every observed window"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Integer-kernel plans (Life and LCS — the workloads whose AVX2
    /// steady states dispatch at `vl = 8`) stay allocation-free across
    /// reuse, whatever engine the geometry resolves: after the warm-up
    /// run, repeated `plan.run` calls perform zero aligned-buffer
    /// allocations under both forced-portable and Auto selection.
    #[test]
    fn integer_plan_reuse_is_allocation_free(
        seed in any::<u64>(),
        nx in 20usize..80,
        la in 30usize..120,
    ) {
        let life = Problem::life(nx, 24, 16, LifeRule::b2s23());
        let lcs = Problem::lcs(la, 2 * la);
        let configs: Vec<(Problem, PlanBuilder)> = vec![
            (life, PlanBuilder::new().stride(2)),
            (life, PlanBuilder::new().stride(2).select(Select::Portable)),
            (
                life,
                PlanBuilder::new()
                    .stride(2)
                    .tiling(Tiling::Ghost { block: 24, height: 8 })
                    .threads(2),
            ),
            (lcs, PlanBuilder::new().stride(1)),
            (lcs, PlanBuilder::new().stride(1).select(Select::Portable)),
            (
                lcs,
                PlanBuilder::new()
                    .stride(1)
                    .tiling(Tiling::LcsRect { xblock: 16, yblock: 32 })
                    .threads(2),
            ),
        ];
        for (i, (problem, builder)) in configs.into_iter().enumerate() {
            let mut plan = builder.build(&problem).unwrap();
            let mut state = fresh_state(&problem, seed);
            plan.run(&mut state).unwrap(); // warm-up (first run)
            let mut state2 = fresh_state(&problem, seed ^ 0x5bd1e995);
            // Process-global counter + concurrent sibling tests: retry
            // until a clean window (a real allocation in `run` would
            // taint every window).
            let mut clean = false;
            for _ in 0..32 {
                let before = alloc_count();
                plan.run(&mut state2).unwrap();
                if alloc_count() == before {
                    clean = true;
                    break;
                }
            }
            prop_assert!(
                clean,
                "config #{i} ({:?}): reused integer plan allocated in every observed window",
                plan.engine()
            );
        }
    }
}

/// The documented one-shot exceptions: reorg/DLT rebuild their transposed
/// layouts per run (and say so in their docs) — but they still run
/// correctly and repeatedly through the same plan.
#[test]
fn reorg_and_dlt_baselines_run_repeatedly() {
    let c = Heat1dCoeffs::classic(0.25);
    let problem = Problem::heat1d(256, 12, c);
    for method in [Method::Reorg, Method::Dlt] {
        let mut plan = PlanBuilder::new().method(method).build(&problem).unwrap();
        for seed in [1u64, 2] {
            let mut state = fresh_state(&problem, seed);
            let init = state.grid1().unwrap().clone();
            plan.run(&mut state).unwrap();
            let gold = reference::heat1d(&init, c, 12);
            assert!(state.grid1().unwrap().interior_eq(&gold), "{method:?}");
        }
    }
}

/// Every invalid configuration is a descriptive `PlanError`, never a
/// panic; the documented honest fallbacks build and report portable.
#[test]
fn invalid_configurations_error_and_fallbacks_are_honest() {
    let heat1 = Problem::heat1d(200, 8, Heat1dCoeffs::classic(0.25));
    let gs1 = Problem::gs1d(200, 8, Gs1dCoeffs::classic(0.25));
    let gs2 = Problem::gs2d(64, 64, 8, Gs2dCoeffs::classic(0.2));
    let life = Problem::life(64, 64, 8, LifeRule::b2s23());
    let lcs = Problem::lcs(64, 64);

    // Stride 0 / below the dependence bound / beyond the ring capacity.
    assert_eq!(
        PlanBuilder::new().stride(0).build(&heat1).unwrap_err(),
        PlanError::ZeroStride
    );
    assert_eq!(
        PlanBuilder::new().stride(1).build(&heat1).unwrap_err(),
        PlanError::StrideTooSmall { stride: 1, min: 2 }
    );
    assert!(matches!(
        PlanBuilder::new().stride(40).build(&heat1).unwrap_err(),
        PlanError::StrideTooLarge { .. }
    ));

    // Threads 0, and threads without tiling.
    assert_eq!(
        PlanBuilder::new().threads(0).build(&heat1).unwrap_err(),
        PlanError::ZeroThreads
    );
    assert_eq!(
        PlanBuilder::new().threads(4).build(&heat1).unwrap_err(),
        PlanError::ThreadsRequireTiling { threads: 4 }
    );

    // Empty domain.
    assert_eq!(
        PlanBuilder::new()
            .build(&Problem::heat1d(0, 8, Heat1dCoeffs::classic(0.25)))
            .unwrap_err(),
        PlanError::EmptyDomain
    );

    // Illegal method × stencil combinations.
    for p in [&gs1, &gs2, &lcs] {
        assert!(matches!(
            PlanBuilder::new()
                .method(Method::Multiload)
                .build(p)
                .unwrap_err(),
            PlanError::MethodUnsupported { .. }
        ));
    }
    for p in [&gs1, &life, &lcs] {
        for method in [Method::Reorg, Method::Dlt] {
            assert!(matches!(
                PlanBuilder::new().method(method).build(p).unwrap_err(),
                PlanError::MethodUnsupported { .. }
            ));
        }
    }

    // Tiling × stencil mismatches.
    let ghost = Tiling::Ghost {
        block: 32,
        height: 4,
    };
    let skew = Tiling::Skew {
        block: 64,
        height: 4,
    };
    let rect = Tiling::LcsRect {
        xblock: 8,
        yblock: 8,
    };
    assert!(matches!(
        PlanBuilder::new().tiling(ghost).build(&gs1).unwrap_err(),
        PlanError::TilingUnsupported { .. }
    ));
    assert!(matches!(
        PlanBuilder::new().tiling(skew).build(&heat1).unwrap_err(),
        PlanError::TilingUnsupported { .. }
    ));
    assert!(matches!(
        PlanBuilder::new().tiling(rect).build(&heat1).unwrap_err(),
        PlanError::TilingUnsupported { .. }
    ));
    assert!(matches!(
        PlanBuilder::new().tiling(ghost).build(&lcs).unwrap_err(),
        PlanError::TilingUnsupported { .. }
    ));

    // Bad tile geometry: zero extents, misaligned heights, skewed blocks
    // below the wave-disjointness bound. Life's vector length is 8, so a
    // height of 4 is rejected for it specifically.
    assert_eq!(
        PlanBuilder::new()
            .tiling(Tiling::Ghost {
                block: 0,
                height: 4
            })
            .build(&heat1)
            .unwrap_err(),
        PlanError::ZeroTileExtent
    );
    assert_eq!(
        PlanBuilder::new()
            .tiling(Tiling::Ghost {
                block: 32,
                height: 6
            })
            .build(&heat1)
            .unwrap_err(),
        PlanError::BadTileHeight { height: 6, vl: 4 }
    );
    assert_eq!(
        PlanBuilder::new()
            .tiling(Tiling::Ghost {
                block: 32,
                height: 4
            })
            .build(&life)
            .unwrap_err(),
        PlanError::BadTileHeight { height: 4, vl: 8 }
    );
    assert_eq!(
        PlanBuilder::new()
            .stride(7)
            .tiling(Tiling::Skew {
                block: 16,
                height: 4
            })
            .build(&gs1)
            .unwrap_err(),
        PlanError::BlockTooNarrow {
            block: 16,
            min: 4 + 4 * 7 + 4
        }
    );
    assert_eq!(
        PlanBuilder::new()
            .tiling(Tiling::LcsRect {
                xblock: 0,
                yblock: 8
            })
            .build(&lcs)
            .unwrap_err(),
        PlanError::ZeroTileExtent
    );

    // Reorg-op counting is only available on instrumented paths.
    assert!(matches!(
        PlanBuilder::new()
            .count_reorg(true)
            .build(&gs2)
            .unwrap_err(),
        PlanError::CountUnsupported { .. }
    ));
    assert!(matches!(
        PlanBuilder::new()
            .count_reorg(true)
            .select(Select::Auto)
            .build(&heat1)
            .unwrap_err(),
        PlanError::CountUnsupported { .. }
    ));

    // Select::Avx2 on a non-AVX2 host is an error, not a panic; on an
    // AVX2 host, degenerate geometries below the engine's `VL·s` bound
    // build fine and honestly fall back to the portable engine — even
    // for the integer workloads, which now carry AVX2 steady states of
    // their own (checked at `vl = 8`: a 12-wide Life outer extent cannot
    // host an 8-lane tile at stride 2).
    if tempora::simd::arch::avx2_available() {
        let plan = PlanBuilder::new()
            .select(Select::Avx2)
            .stride(2)
            .build(&life)
            .unwrap();
        assert_eq!(plan.engine(), Some(Engine::Avx2));
        let tiny_life = Problem::life(12, 64, 8, LifeRule::b2s23());
        let plan = PlanBuilder::new()
            .select(Select::Avx2)
            .stride(2)
            .build(&tiny_life)
            .unwrap();
        assert_eq!(plan.engine(), Some(Engine::Portable));
        // Degenerate geometry below VL·s: documented fallback, honest
        // portable report even when AVX2 was requested.
        let tiny = Problem::heat1d(8, 8, Heat1dCoeffs::classic(0.25));
        let plan = PlanBuilder::new()
            .select(Select::Avx2)
            .stride(7)
            .build(&tiny)
            .unwrap();
        assert_eq!(plan.engine(), Some(Engine::Portable));
    } else {
        assert_eq!(
            PlanBuilder::new()
                .select(Select::Avx2)
                .build(&heat1)
                .unwrap_err(),
            PlanError::Avx2Unavailable
        );
    }

    // State mismatches are errors, not panics or silent corruption.
    let mut plan = PlanBuilder::new().stride(7).build(&heat1).unwrap();
    let mut wrong_kind = gs2.state();
    assert!(matches!(
        plan.run(&mut wrong_kind).unwrap_err(),
        PlanError::StateMismatch { .. }
    ));
    let mut wrong_shape = State::Grid1(Grid1::new(77, 1, Boundary::Dirichlet(0.0)));
    assert!(matches!(
        plan.run(&mut wrong_shape).unwrap_err(),
        PlanError::StateShapeMismatch { .. }
    ));
    // Wide-halo grids use a different memory layout than the engines
    // assume; rejected, not silently misread.
    let mut wide_halo = State::Grid1(Grid1::new(200, 2, Boundary::Dirichlet(0.0)));
    assert_eq!(
        plan.run(&mut wide_halo).unwrap_err(),
        PlanError::UnsupportedHalo { halo: 2 }
    );
}

/// A plan can be moved to another thread and run there — the serving
/// pattern (cache plans, dispatch per request) depends on `Plan: Send`.
#[test]
fn plan_is_send_and_runs_on_another_thread() {
    let problem = Problem::heat1d(300, 8, Heat1dCoeffs::classic(0.25));
    let mut plan = PlanBuilder::new().stride(7).build(&problem).unwrap();
    let mut state = fresh_state(&problem, 3);
    let init = state.grid1().unwrap().clone();
    let state = std::thread::spawn(move || {
        plan.run(&mut state).unwrap();
        state
    })
    .join()
    .unwrap();
    let gold = reference::heat1d(&init, Heat1dCoeffs::classic(0.25), 8);
    assert!(state.grid1().unwrap().interior_eq(&gold));
}

/// The `Report` carries the plan's resolved facts: engine, steps, tile
/// geometry, reorg-op counts, LCS length.
#[test]
fn report_carries_geometry_and_counts() {
    let problem = Problem::heat1d(4096, 16, Heat1dCoeffs::classic(0.25));
    let mut plan = PlanBuilder::new()
        .stride(7)
        .tiling(Tiling::Ghost {
            block: 512,
            height: 8,
        })
        .threads(2)
        .build(&problem)
        .unwrap();
    let mut state = fresh_state(&problem, 5);
    let report = plan.run(&mut state).unwrap();
    assert_eq!(report.steps, 16);
    assert_eq!(report.threads, 2);
    let tiles = report.tiles.expect("tiled plans report geometry");
    assert_eq!(tiles.tiles, 8);
    assert_eq!((tiles.block, tiles.height), (512, 8));
    assert!(report.engine.is_some());

    // Counted portable temporal run: the paper's 1 rotate + 1 blend per
    // output vector shows up in the report.
    let mut counted = PlanBuilder::new()
        .stride(7)
        .select(Select::Portable)
        .count_reorg(true)
        .build(&problem)
        .unwrap();
    let mut state = fresh_state(&problem, 6);
    let report = counted.run(&mut state).unwrap();
    let k = report.reorg.expect("count_reorg plans report counts");
    assert!(k.output_vectors > 0);
    assert_eq!(k.cross_lane, k.output_vectors);
    assert_eq!(k.in_lane, k.output_vectors);

    // LCS length lands in the report (and the state).
    let lcs = Problem::lcs(120, 200);
    let mut plan = PlanBuilder::new().stride(1).build(&lcs).unwrap();
    let mut state = fresh_state(&lcs, 9);
    let report = plan.run(&mut state).unwrap();
    let a = state.lcs().unwrap();
    assert_eq!(report.lcs_length, a.length);
    assert_eq!(report.lcs_length.unwrap(), reference::lcs_len(&a.a, &a.b));
}
