//! Fixture: satisfies every `cargo xtask audit` rule.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Event counter.
pub static N: AtomicUsize = AtomicUsize::new(0);

/// Bump the event counter.
pub fn bump() {
    // Ordering: Relaxed — a monotonic statistics counter; no other
    // memory rides on this edge.
    N.fetch_add(1, Ordering::Relaxed);
}

/// Increment through a raw pointer.
///
/// # Safety
///
/// `p` must be valid for reads and writes of a `u32`.
pub unsafe fn incr(p: *mut u32) {
    // SAFETY: caller contract — `p` is valid for reads and writes.
    unsafe { *p += 1 };
}

/// Demo kernel dispatched behind the capability probe.
///
/// # Safety
///
/// Caller must have verified `avx2_available()` before dispatching here
/// (engine::Select does).
#[target_feature(enable = "avx2")]
pub unsafe fn fast() {}

// Justification: demo helper reached only from doctests.
#[allow(dead_code)]
fn helper() {}

/// Panicking calls with their reasons on record.
pub fn justified(v: Option<u32>) -> u32 {
    // Panic-justification: `v` is produced by a constructor that never
    // returns None for the inputs this demo accepts.
    let a = v.unwrap();
    let b = v.expect("present"); // Panic-justification: same invariant.
    a + b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exempt_in_tests() {
        N.store(0, Ordering::Relaxed);
        let x = 1u32;
        let p = &x as *const u32;
        unsafe { assert_eq!(*p, 1) };
        assert_eq!(justified(Some(1)), Some(1).unwrap() * 2);
    }
}
