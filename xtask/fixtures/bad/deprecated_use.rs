//! Fixture: deprecated shim usage.

// Justification: silencing the shim deprecation.
#[allow(deprecated)]
fn old() {
    let g = make();
    engine::run_heat1d(&g);
}
