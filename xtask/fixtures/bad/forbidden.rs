//! Fixture: banned constructs outside the sanctuaries.

/// Type import straight from the arch module.
use core::arch::x86_64::__m256d;

/// Bit-cast a float.
pub fn bits(x: f64) -> u64 {
    // SAFETY: same size and both types are plain old data.
    unsafe { core::mem::transmute(x) }
}

/// Raw intrinsic call.
pub fn fma(a: __m256d) -> __m256d {
    unsafe { _mm256_add_pd(a, a) }
}
