//! Fixture: bare allow attribute.

/// A doc comment is not a justification.
#[allow(dead_code)]
fn helper() {}

// Justification: demo — reached only from doctests.
#[allow(unused)]
fn ok() {}
