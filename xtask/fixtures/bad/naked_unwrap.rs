//! Fixture: panicking calls without a justification comment.

/// Loses the reason this cannot be None.
pub fn f(v: Option<u32>) -> u32 {
    v.unwrap()
}

/// An expect message is not a justification comment.
pub fn g(v: Option<u32>) -> u32 {
    v.expect("present")
}
