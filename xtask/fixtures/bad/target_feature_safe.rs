//! Fixture: safe `target_feature` fn with no probe documentation.

/// Fast path.
///
#[target_feature(enable = "avx2")]
pub fn fast() {}
