//! Fixture: atomic op with no ordering rationale.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Counter.
pub static N: AtomicUsize = AtomicUsize::new(0);

pub fn bump() { N.fetch_add(1, Ordering::Relaxed); }
