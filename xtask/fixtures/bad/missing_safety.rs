//! Fixture: unsafe without contracts.

struct Foo;

/// Incr (docs, but no safety section).
pub unsafe fn incr(_p: *mut u32) {}

/// Read a value.
///
/// Docs but no contract.
pub fn read(p: *const u32) -> u32 {
    unsafe { *p }
}

// A marker impl with no justification.
unsafe impl Send for Foo {}
