//! Repo-local automation for the tempora workspace.
//!
//! The only subcommand today is `audit` — the safety audit wall. It is
//! wired up as a cargo alias (`.cargo/config.toml`), so the entry point
//! everyone uses is:
//!
//! ```text
//! cargo xtask audit
//! ```
//!
//! The audit walks every workspace `.rs` file (skipping `target/`,
//! `.git/` and the lint fixtures under `xtask/fixtures/`) and enforces
//! the repo's safety policy; see [`audit`] for the rule catalogue. Any
//! violation prints one `file:line: [rule] message` diagnostic and the
//! process exits non-zero, so CI can gate on it directly.

mod audit;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit") => run_audit(),
        _ => {
            eprintln!("usage: cargo xtask audit");
            eprintln!();
            eprintln!("subcommands:");
            eprintln!("  audit   run the repo safety lints over every workspace .rs file");
            ExitCode::from(2)
        }
    }
}

fn run_audit() -> ExitCode {
    // xtask always lives one directory below the workspace root.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        // Panic-justification: CARGO_MANIFEST_DIR is compile-time known
        // ("<root>/xtask"), so a missing parent means a broken checkout.
        .expect("xtask sits inside the workspace")
        .to_path_buf();
    let files = audit::collect_rs_files(&root);
    let mut diags = Vec::new();
    for rel in &files {
        let src = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask audit: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        diags.extend(audit::audit_source(rel, &src));
    }
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("xtask audit: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask audit: {} violation(s) in {} files scanned",
            diags.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}
