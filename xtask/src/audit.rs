//! The safety audit wall: repo-specific lints over workspace sources.
//!
//! Seven rules, each scoped to where it is meaningful (unit-test regions
//! are recognized by `#[cfg(test)]` / `#[test]` tracking, and files
//! under `tests/`, `benches/` or `examples/` count as test code):
//!
//! | rule | requirement | scope |
//! |---|---|---|
//! | `safety-comment` | every `unsafe` block/fn/impl carries a `// SAFETY:` contract (or `# Safety` doc section for `unsafe fn`) | non-test code |
//! | `allow-justification` | every `#[allow(...)]` carries a justification comment, same line or directly above | everywhere |
//! | `ordering-rationale` | every atomic `Ordering::` use carries an ordering-rationale comment, same line or directly above | non-test code |
//! | `panic-justification` | every `.unwrap()` / `.expect(` call carries a justification comment, same line or directly above | non-test code |
//! | `forbidden-construct` | `transmute`, raw `core::arch`/`std::arch` intrinsics and inline `asm!` only in `tempora_simd::arch` and the pinning module | everywhere |
//! | `target-feature` | every `#[target_feature]` fn is `unsafe` and documents the `avx2_available()` capability probe it is dispatched behind | everywhere |
//! | `deprecation-gate` | no `allow(deprecated)` or direct deprecated-shim calls outside the deprecating modules (ports the old CI shell grep) | path-scoped |
//!
//! The engine is deliberately line-based and dependency-free: it
//! complements (never replaces) the denied rustc/clippy lints in
//! `[workspace.lints]`, and its exact accept/reject behavior is pinned
//! by the fixture tests at the bottom of this file.

use std::fmt;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// Needles. Built with `concat!` so this file does not trip its own
// lints when the audit walks `xtask/src` itself.
// ---------------------------------------------------------------------

const UNSAFE: &str = concat!("un", "safe");
const SAFETY_MARK: &str = concat!("SAF", "ETY");
const SAFETY_DOC: &str = concat!("# Saf", "ety");
const ALLOW_ATTR: &str = concat!("#[al", "low(");
const ALLOW_INNER_ATTR: &str = concat!("#![al", "low(");
const ORDERING: &str = concat!("Order", "ing::");
const UNWRAP_CALL: &str = concat!(".unw", "rap()");
const EXPECT_CALL: &str = concat!(".exp", "ect(");
const TRANSMUTE: &str = concat!("trans", "mute");
const ASM_BANG: &str = concat!("asm", "!");
const CORE_ARCH: &str = concat!("core::", "arch");
const STD_ARCH: &str = concat!("std::", "arch");
const MM_INTRINSIC: &str = concat!("_m", "m");
const TARGET_FEATURE: &str = concat!("#[tar", "get_feature");
const AVAILABLE_PROBE: &str = concat!("avx2_av", "ailable");
const ALLOW_DEPRECATED: &str = concat!("allow(dep", "recated)");
const DEPRECATED_SHIMS: [&str; 4] = [
    concat!("engine::", "run_"),
    concat!("ghost::", "run_"),
    concat!("skew::", "run_"),
    concat!("lcs_rect::", "run_lcs"),
];

/// Files allowed to use `transmute` / raw intrinsics / inline `asm!`:
/// the SIMD vocabulary and the affinity (pinning) syscall leaf.
const CONSTRUCT_SANCTUARIES: [&str; 2] =
    ["crates/simd/src/arch.rs", "crates/parallel/src/affinity.rs"];

/// Directory prefixes where `allow(deprecated)` remains legal: the
/// modules that declare the deprecations (and vendored/infra code).
const DEPRECATION_HOMES: [&str; 4] = ["crates/core/", "crates/tiling/", "shims/", "xtask/"];

/// Directory prefixes that must not call the deprecated one-shot shims
/// at all (same set the old CI shell gate scanned).
const DEPRECATION_CALLER_BAN: [&str; 5] = [
    "src/",
    "examples/",
    "tests/",
    "crates/plan/",
    "crates/bench/",
];

/// One audit violation, rendered as `file:line: [rule] message`.
pub(crate) struct Diagnostic {
    pub(crate) file: String,
    pub(crate) line: usize,
    pub(crate) rule: &'static str,
    pub(crate) msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

// ---------------------------------------------------------------------
// File walking
// ---------------------------------------------------------------------

/// Collect every workspace `.rs` file under `root`, as sorted
/// `/`-separated paths relative to `root`. Skips `target/`, `.git/` and
/// the deliberately-violating lint fixtures under `xtask/fixtures/`.
pub(crate) fn collect_rs_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel) = stack.pop() {
        let dir = root.join(&rel);
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy().into_owned();
            let sub = if rel.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel.join(&name)
            };
            let ty = entry.file_type();
            if ty.as_ref().map(|t| t.is_dir()).unwrap_or(false) {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(sub);
            } else if name.ends_with(".rs") {
                out.push(sub.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    out.sort();
    out
}

// ---------------------------------------------------------------------
// Line model
// ---------------------------------------------------------------------

/// Comment-stripped view of one line: the code part (line comments and
/// block-comment spans removed, string literal contents kept) plus
/// whether the raw line carried a `//` line comment.
fn strip_comments(line: &str, in_block: &mut bool) -> (String, bool) {
    let b = line.as_bytes();
    let mut out = String::new();
    let mut has_line_comment = false;
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        if *in_block {
            if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                *in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_str {
            if b[i] == b'\\' {
                i += 2;
                continue;
            }
            if b[i] == b'"' {
                in_str = false;
            }
            out.push(b[i] as char);
            i += 1;
            continue;
        }
        match b[i] {
            b'"' => {
                in_str = true;
                out.push('"');
                i += 1;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                has_line_comment = true;
                break;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                *in_block = true;
                i += 2;
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    (out, has_line_comment)
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// `tok` occurs in `code` with a non-identifier character (or the line
/// boundary) on each side.
fn contains_token(code: &str, tok: &str) -> bool {
    let b = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(tok) {
        let p = start + pos;
        let end = p + tok.len();
        let before_ok = p == 0 || !is_ident(b[p - 1]);
        let after_ok = end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            return true;
        }
        start = p + 1;
    }
    false
}

/// `tok` occurs with a non-identifier character before it (suffix may
/// continue as an identifier — used for the `_mm…` intrinsic family).
fn contains_prefix_token(code: &str, tok: &str) -> bool {
    let b = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(tok) {
        let p = start + pos;
        if p == 0 || !is_ident(b[p - 1]) {
            return true;
        }
        start = p + 1;
    }
    false
}

/// After an occurrence of `needle` in `code`, the identifier run must be
/// followed by `(` for the line to count as a call site.
fn is_call_site(code: &str, needle: &str) -> bool {
    let b = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(needle) {
        let mut i = start + pos + needle.len();
        while i < b.len() && is_ident(b[i]) {
            i += 1;
        }
        while i < b.len() && (b[i] == b' ' || b[i] == b'\t') {
            i += 1;
        }
        if i < b.len() && b[i] == b'(' {
            return true;
        }
        start = pos + start + 1;
    }
    false
}

struct FileView {
    /// Raw source lines.
    raw: Vec<String>,
    /// Comment-stripped code parts, index-aligned with `raw`.
    code: Vec<String>,
    /// Raw line carries a `//` line comment (trailing or whole-line).
    commented: Vec<bool>,
    /// Line sits inside a `#[cfg(test)]` / `#[test]` region.
    in_test: Vec<bool>,
}

fn build_view(src: &str) -> FileView {
    let raw: Vec<String> = src.lines().map(str::to_owned).collect();
    let mut code = Vec::with_capacity(raw.len());
    let mut commented = Vec::with_capacity(raw.len());
    let mut in_block = false;
    for line in &raw {
        let (c, lc) = strip_comments(line, &mut in_block);
        code.push(c);
        commented.push(lc);
    }

    // Brace-depth tracking for test regions: a `#[cfg(… test …)]` or
    // `#[test]` attribute arms the tracker; the next `{` opens a region
    // that closes when depth returns to its entry value. A `;` before
    // any `{` (attribute on a use/statement) disarms it.
    let mut in_test = vec![false; raw.len()];
    let mut depth: i64 = 0;
    let mut region_depth: Option<i64> = None;
    let mut armed = false;
    for (i, c) in code.iter().enumerate() {
        let t = c.trim();
        if region_depth.is_none()
            && t.starts_with("#[")
            && (t.contains("test") && !t.contains("not("))
        {
            armed = true;
        }
        if region_depth.is_none() && armed && c.contains('{') {
            region_depth = Some(depth);
            armed = false;
        } else if armed && c.contains(';') && !c.contains('{') {
            armed = false;
        }
        if region_depth.is_some() {
            in_test[i] = true;
        }
        for ch in c.bytes() {
            match ch {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(d) = region_depth {
            if depth <= d {
                region_depth = None;
            }
        }
    }
    FileView {
        raw,
        code,
        commented,
        in_test,
    }
}

/// Any raw line in `lines[lo..=hi]` mentions the SAFETY marker.
fn safety_nearby(v: &FileView, lo: usize, hi: usize) -> bool {
    v.raw[lo..=hi].iter().any(|l| l.contains(SAFETY_MARK))
}

/// An `unsafe` block/impl at line `i` has a SAFETY contract: on the line
/// itself, anywhere in the contiguous comment block directly above it
/// (contracts often run long), or — grace window — within the six
/// preceding lines, so a short binding between the contract and the
/// block it governs does not break the association.
fn block_has_safety(v: &FileView, i: usize) -> bool {
    if v.raw[i].contains(SAFETY_MARK) {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = v.raw[j].trim_start();
        if !t.starts_with("//") {
            break;
        }
        if v.raw[j].contains(SAFETY_MARK) {
            return true;
        }
    }
    safety_nearby(v, i.saturating_sub(6), i)
}

/// Scan the contiguous doc/attribute/comment block directly above line
/// `i`; true if any of it contains `needle`.
fn header_block_contains(v: &FileView, i: usize, needle: &str) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = v.raw[j].trim_start();
        if t.starts_with("///")
            || t.starts_with("//!")
            || t.starts_with("//")
            || t.starts_with("#[")
        {
            if v.raw[j].contains(needle) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// The line directly above `i` is a plain `//` comment (not a doc
/// comment), or line `i` itself carries a trailing comment.
fn has_adjacent_comment(v: &FileView, i: usize) -> bool {
    if v.commented[i] {
        return true;
    }
    if i == 0 {
        return false;
    }
    let t = v.raw[i - 1].trim_start();
    t.starts_with("//") && !t.starts_with("///")
}

fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

// ---------------------------------------------------------------------
// The audit proper
// ---------------------------------------------------------------------

/// Run every audit rule over one file; `path` must be `/`-separated and
/// relative to the workspace root (it scopes the path-based rules).
pub(crate) fn audit_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let v = build_view(src);
    let test_path = is_test_path(path);
    let sanctuary = CONSTRUCT_SANCTUARIES.contains(&path);
    let dep_allow_banned = !DEPRECATION_HOMES.iter().any(|p| path.starts_with(p));
    let dep_call_banned = DEPRECATION_CALLER_BAN.iter().any(|p| path.starts_with(p));
    let mut out = Vec::new();
    let mut push = |line: usize, rule: &'static str, msg: String| {
        out.push(Diagnostic {
            file: path.to_owned(),
            line: line + 1,
            rule,
            msg,
        });
    };

    for i in 0..v.raw.len() {
        let code = &v.code[i];
        let in_test = test_path || v.in_test[i];

        // --- safety-comment -------------------------------------------
        if !in_test && contains_token(code, UNSAFE) {
            let is_fn = code.contains(&format!("{UNSAFE} fn"));
            let is_impl = code.contains(&format!("{UNSAFE} impl"));
            if is_fn {
                if !header_block_contains(&v, i, SAFETY_DOC)
                    && !header_block_contains(&v, i, SAFETY_MARK)
                {
                    push(
                        i,
                        "safety-comment",
                        format!(
                            "`{UNSAFE} fn` without a `{SAFETY_DOC}` doc section \
                             (or `// {SAFETY_MARK}:` contract) above"
                        ),
                    );
                }
            } else if is_impl {
                if !block_has_safety(&v, i) {
                    push(
                        i,
                        "safety-comment",
                        format!(
                            "`{UNSAFE} impl` without a `// {SAFETY_MARK}:` justification above"
                        ),
                    );
                }
            } else if !block_has_safety(&v, i) {
                push(
                    i,
                    "safety-comment",
                    format!(
                        "`{UNSAFE}` block without a `// {SAFETY_MARK}:` contract \
                         in the preceding lines"
                    ),
                );
            }
        }

        // --- allow-justification --------------------------------------
        if (code.contains(ALLOW_ATTR) || code.contains(ALLOW_INNER_ATTR))
            && !has_adjacent_comment(&v, i)
            && !header_block_contains(&v, i, "Justification")
        {
            push(
                i,
                "allow-justification",
                format!("`{ALLOW_ATTR}...)]` without a justification comment (same line or above)"),
            );
        }

        // --- ordering-rationale ---------------------------------------
        if !in_test && code.contains(ORDERING) && !has_adjacent_comment(&v, i) {
            push(
                i,
                "ordering-rationale",
                format!(
                    "atomic `{ORDERING}` use without an ordering-rationale comment \
                     (same line or directly above)"
                ),
            );
        }

        // --- panic-justification --------------------------------------
        if !in_test && !has_adjacent_comment(&v, i) {
            for tok in [UNWRAP_CALL, EXPECT_CALL] {
                if code.contains(tok) {
                    push(
                        i,
                        "panic-justification",
                        format!(
                            "`{tok}…` without a panic-justification comment \
                             (same line or directly above)"
                        ),
                    );
                    break;
                }
            }
        }

        // --- forbidden-construct --------------------------------------
        if !sanctuary {
            let mut banned: Option<&str> = None;
            if contains_token(code, TRANSMUTE) {
                banned = Some(TRANSMUTE);
            } else if contains_token(code, ASM_BANG) {
                banned = Some(ASM_BANG);
            } else if code.contains(CORE_ARCH) {
                banned = Some(CORE_ARCH);
            } else if code.contains(STD_ARCH) {
                banned = Some(STD_ARCH);
            } else if contains_prefix_token(code, MM_INTRINSIC) {
                banned = Some(MM_INTRINSIC);
            }
            if let Some(tok) = banned {
                push(
                    i,
                    "forbidden-construct",
                    format!(
                        "`{tok}` is banned outside tempora_simd::arch and the pinning module \
                         (crates/parallel/src/affinity.rs)"
                    ),
                );
            }
        }

        // --- target-feature -------------------------------------------
        if code.contains(TARGET_FEATURE) {
            let mut decl_unsafe = false;
            for j in i + 1..(i + 8).min(v.raw.len()) {
                let c = &v.code[j];
                if c.contains("fn ") {
                    decl_unsafe = c.contains(&format!("{UNSAFE} fn"));
                    break;
                }
            }
            if !decl_unsafe {
                push(
                    i,
                    "target-feature",
                    format!("`{TARGET_FEATURE}]` fn must be declared `{UNSAFE} fn`"),
                );
            }
            if !header_block_contains(&v, i, AVAILABLE_PROBE) {
                push(
                    i,
                    "target-feature",
                    format!(
                        "`{TARGET_FEATURE}]` fn must document its capability probe: a \
                         `{SAFETY_DOC}` section referencing `{AVAILABLE_PROBE}()` \
                         (dispatch goes through engine::Select)"
                    ),
                );
            }
        }

        // --- deprecation-gate -----------------------------------------
        if dep_allow_banned && code.contains(ALLOW_DEPRECATED) {
            push(
                i,
                "deprecation-gate",
                format!(
                    "`{ALLOW_DEPRECATED}` outside the deprecating modules \
                     (one-shot shims are superseded by tempora_plan)"
                ),
            );
        }
        if dep_call_banned {
            for needle in DEPRECATED_SHIMS {
                if code.contains(needle) && is_call_site(code, needle) {
                    push(
                        i,
                        "deprecation-gate",
                        format!("direct call to deprecated shim `{needle}…` (use tempora_plan)"),
                    );
                    break;
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Fixture tests: every lint, known-good and known-bad, with the exact
// diagnostic text and line numbers pinned.
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<String> {
        audit_source(path, src)
            .iter()
            .map(|d| d.to_string())
            .collect()
    }

    #[test]
    fn good_fixture_is_clean() {
        let src = include_str!("../fixtures/good/clean.rs");
        assert_eq!(diags("crates/demo/src/lib.rs", src), Vec::<String>::new());
    }

    #[test]
    fn missing_safety_comment_is_flagged_with_location() {
        let src = include_str!("../fixtures/bad/missing_safety.rs");
        let d = diags("crates/demo/src/lib.rs", src);
        assert_eq!(
            d,
            vec![
                format!(
                    "crates/demo/src/lib.rs:6: [safety-comment] `{UNSAFE} fn` without a \
                     `{SAFETY_DOC}` doc section (or `// {SAFETY_MARK}:` contract) above"
                ),
                format!(
                    "crates/demo/src/lib.rs:12: [safety-comment] `{UNSAFE}` block without a \
                     `// {SAFETY_MARK}:` contract in the preceding lines"
                ),
                format!(
                    "crates/demo/src/lib.rs:16: [safety-comment] `{UNSAFE} impl` without a \
                     `// {SAFETY_MARK}:` justification above"
                ),
            ]
        );
    }

    #[test]
    fn unjustified_allow_is_flagged() {
        let src = include_str!("../fixtures/bad/unjustified_allow.rs");
        let d = diags("crates/demo/src/lib.rs", src);
        assert_eq!(
            d,
            vec![format!(
                "crates/demo/src/lib.rs:4: [allow-justification] `{ALLOW_ATTR}...)]` without \
                 a justification comment (same line or above)"
            )]
        );
    }

    #[test]
    fn bare_ordering_is_flagged_outside_tests_only() {
        let src = include_str!("../fixtures/bad/bare_ordering.rs");
        let d = diags("crates/demo/src/lib.rs", src);
        assert_eq!(
            d,
            vec![format!(
                "crates/demo/src/lib.rs:8: [ordering-rationale] atomic `{ORDERING}` use \
                 without an ordering-rationale comment (same line or directly above)"
            )]
        );
    }

    #[test]
    fn naked_unwrap_and_expect_are_flagged() {
        let src = include_str!("../fixtures/bad/naked_unwrap.rs");
        let d = diags("crates/demo/src/lib.rs", src);
        assert_eq!(
            d,
            vec![
                format!(
                    "crates/demo/src/lib.rs:5: [panic-justification] `{UNWRAP_CALL}…` without \
                     a panic-justification comment (same line or directly above)"
                ),
                format!(
                    "crates/demo/src/lib.rs:10: [panic-justification] `{EXPECT_CALL}…` without \
                     a panic-justification comment (same line or directly above)"
                ),
            ]
        );
        // Test paths are exempt, like the other non-test-scoped rules.
        assert_eq!(diags("crates/demo/tests/it.rs", src), Vec::<String>::new());
    }

    #[test]
    fn forbidden_constructs_flagged_outside_sanctuaries() {
        let src = include_str!("../fixtures/bad/forbidden.rs");
        let d = diags("crates/demo/src/lib.rs", src);
        assert_eq!(
            d,
            vec![
                format!(
                    "crates/demo/src/lib.rs:4: [forbidden-construct] `{CORE_ARCH}` is banned \
                     outside tempora_simd::arch and the pinning module \
                     (crates/parallel/src/affinity.rs)"
                ),
                format!(
                    "crates/demo/src/lib.rs:9: [forbidden-construct] `{TRANSMUTE}` is banned \
                     outside tempora_simd::arch and the pinning module \
                     (crates/parallel/src/affinity.rs)"
                ),
                format!(
                    "crates/demo/src/lib.rs:14: [forbidden-construct] `{MM_INTRINSIC}` is \
                     banned outside tempora_simd::arch and the pinning module \
                     (crates/parallel/src/affinity.rs)"
                ),
            ]
        );
        // The same source inside a sanctuary is legal.
        assert_eq!(diags("crates/simd/src/arch.rs", src), Vec::<String>::new());
    }

    #[test]
    fn safe_target_feature_fn_is_flagged_twice() {
        let src = include_str!("../fixtures/bad/target_feature_safe.rs");
        let d = diags("crates/demo/src/lib.rs", src);
        assert_eq!(
            d,
            vec![
                format!(
                    "crates/demo/src/lib.rs:5: [target-feature] `{TARGET_FEATURE}]` fn must \
                     be declared `{UNSAFE} fn`"
                ),
                format!(
                    "crates/demo/src/lib.rs:5: [target-feature] `{TARGET_FEATURE}]` fn must \
                     document its capability probe: a `{SAFETY_DOC}` section referencing \
                     `{AVAILABLE_PROBE}()` (dispatch goes through engine::Select)"
                ),
            ]
        );
    }

    #[test]
    fn deprecation_gate_ports_the_ci_shell_rules() {
        let src = include_str!("../fixtures/bad/deprecated_use.rs");
        // Banned where the old CI grep scanned…
        let d = diags("tests/smoke.rs", src);
        assert_eq!(
            d,
            vec![
                format!(
                    "tests/smoke.rs:4: [deprecation-gate] `{ALLOW_DEPRECATED}` outside the \
                     deprecating modules (one-shot shims are superseded by tempora_plan)"
                ),
                format!(
                    "tests/smoke.rs:7: [deprecation-gate] direct call to deprecated shim \
                     `{}…` (use tempora_plan)",
                    DEPRECATED_SHIMS[0]
                ),
            ]
        );
        // …and legal inside the modules that own the deprecations.
        assert_eq!(
            diags("crates/core/src/engine.rs", src),
            Vec::<String>::new()
        );
    }

    #[test]
    fn test_regions_are_exempt_from_test_scoped_rules() {
        // The good fixture keeps an undocumented Ordering:: use and an
        // uncommented unsafe block inside `mod tests` — both exempt.
        let src = include_str!("../fixtures/good/clean.rs");
        assert!(src.contains("mod tests"));
        assert_eq!(diags("crates/demo/src/lib.rs", src), Vec::<String>::new());
        // A tests/ path exempts the whole file.
        let bad_ordering = include_str!("../fixtures/bad/bare_ordering.rs");
        assert_eq!(
            diags("crates/demo/tests/it.rs", bad_ordering),
            Vec::<String>::new()
        );
    }

    #[test]
    fn walker_skips_fixtures_and_target() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .to_path_buf();
        let files = collect_rs_files(&root);
        assert!(files.iter().any(|f| f == "xtask/src/audit.rs"));
        assert!(!files.iter().any(|f| f.contains("fixtures")));
        assert!(!files.iter().any(|f| f.starts_with("target/")));
    }
}
