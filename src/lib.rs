//! # tempora — Temporal Vectorization for Stencils
//!
//! A from-scratch Rust reproduction of **"Temporal Vectorization for
//! Stencils"** (Liang Yuan, Hang Cao, Yunquan Zhang, Kun Li, Pengqi Lu,
//! Yue Yue — SC'21, arXiv:2010.04868).
//!
//! Classic stencil vectorization packs *spatially* adjacent points of one
//! time level into a SIMD register and pays for it with the *data alignment
//! conflict*: overlapping loads or shuffle trees. The paper's temporal
//! scheme instead packs points of **different time levels** into one
//! register — lane `i` holds `a[t+i][x + (vl-1-i)·s]` — so a single stencil
//! application advances `vl` time levels at once and the per-vector
//! reorganization cost collapses to a small constant (one rotate + one
//! blend), independent of vector length, stencil order and dimensionality.
//! Uniquely, the scheme also vectorizes **Gauss-Seidel** stencils and
//! dynamic-programming wavefronts (LCS).
//!
//! This façade crate re-exports the workspace layers:
//!
//! | crate | contents |
//! |---|---|
//! | [`simd`] | portable packs, `std::arch` AVX2 paths, reorg-op counting |
//! | [`grid`] | aligned 1/2/3-D grids, ghost cells, double buffering |
//! | [`stencil`] | problem definitions, dependence analysis, scalar oracles |
//! | [`baseline`] | spatial schemes: multi-load, data-reorganization, DLT |
//! | [`core`] | **the paper's contribution**: temporal engines, AVX2 steady states, [`engine`] dispatch |
//! | [`tiling`] | diamond / parallelogram / hybrid / rectangle tiling |
//! | [`parallel`] | crossbeam worker pool + wavefront executor |
//!
//! Engine selection (portable pack model vs hand-scheduled `std::arch`
//! AVX2) is unified in [`engine`]; the `TEMPORA_ENGINE` environment
//! variable (`auto` | `portable` | `avx2`) overrides it process-wide.
//! Every engine is bit-identical to the scalar oracles, so dispatch
//! never changes results.
//!
//! ## Quickstart
//!
//! ```
//! use tempora::prelude::*;
//!
//! // A 1-D heat equation on 1000 points, 64 time steps.
//! let coeffs = Heat1dCoeffs::classic(0.25);
//! let mut grid = Grid1::new(1000, 1, Boundary::Dirichlet(0.0));
//! grid.fill_interior(|i| if i == 500 { 1.0 } else { 0.0 });
//!
//! // Temporal vectorization (the paper's scheme, space stride s = 7).
//! let ours = temporal1d_jacobi(&grid, coeffs, 64, 7);
//!
//! // Scalar reference.
//! let gold = reference::heat1d(&grid, coeffs, 64);
//! assert!(ours.interior_eq(&gold));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use tempora_baseline as baseline;
pub use tempora_core as core;
pub use tempora_core::engine;
pub use tempora_grid as grid;
pub use tempora_parallel as parallel;
pub use tempora_simd as simd;
pub use tempora_stencil as stencil;
pub use tempora_tiling as tiling;

/// Convenience re-exports covering the common workflow: build a grid,
/// pick a stencil, run a scheme, compare against the oracle.
pub mod prelude {
    pub use tempora_core::{temporal1d_gs, temporal1d_jacobi};
    pub use tempora_grid::{Boundary, DoubleBuffer, Grid1, Grid2, Grid3};
    pub use tempora_simd::{F64x4, I32x8, Pack, Scalar};
    pub use tempora_stencil::reference;
    pub use tempora_stencil::{
        Box2dCoeffs, Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs,
        LifeRule,
    };
}
