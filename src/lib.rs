//! # tempora — Temporal Vectorization for Stencils
//!
//! A from-scratch Rust reproduction of **"Temporal Vectorization for
//! Stencils"** (Liang Yuan, Hang Cao, Yunquan Zhang, Kun Li, Pengqi Lu,
//! Yue Yue — SC'21, arXiv:2010.04868).
//!
//! Classic stencil vectorization packs *spatially* adjacent points of one
//! time level into a SIMD register and pays for it with the *data alignment
//! conflict*: overlapping loads or shuffle trees. The paper's temporal
//! scheme instead packs points of **different time levels** into one
//! register — lane `i` holds `a[t+i][x + (vl-1-i)·s]` — so a single stencil
//! application advances `vl` time levels at once and the per-vector
//! reorganization cost collapses to a small constant (one rotate + one
//! blend), independent of vector length, stencil order and dimensionality.
//! Uniquely, the scheme also vectorizes **Gauss-Seidel** stencils and
//! dynamic-programming wavefronts (LCS).
//!
//! This façade crate re-exports the workspace layers:
//!
//! | crate | contents |
//! |---|---|
//! | [`simd`] | portable packs, `std::arch` AVX2 paths, reorg-op counting |
//! | [`grid`] | aligned 1/2/3-D grids, ghost cells, double buffering |
//! | [`stencil`] | problem definitions, dependence analysis, scalar oracles |
//! | [`baseline`] | spatial schemes: multi-load, data-reorganization, DLT |
//! | [`core`] | **the paper's contribution**: temporal engines, AVX2 steady states, [`engine`] dispatch |
//! | [`tiling`] | ghost / skewed / rectangle tiling workspaces |
//! | [`parallel`] | crossbeam worker pool + wavefront executor |
//! | [`plan`] | **the solver API**: `Problem → PlanBuilder → Plan → Report` |
//! | [`proto`] | service wire protocol + canonical `Problem` serialization / cache keys |
//! | [`server`] | `tempora-serve`: sharded concurrent plan cache, request batching |
//! | [`client`] | blocking service client + `tempora-agent` load scenarios |
//!
//! The unified entry point is the [`plan`] layer: describe a
//! [`prelude::Problem`], compile a [`prelude::Plan`] (geometry validated,
//! engine resolved, scratch and thread pool allocated once), then execute
//! it against any number of states with amortized setup. Engine selection
//! (portable pack model vs hand-scheduled `std::arch` AVX2) is unified in
//! [`engine`]; the `TEMPORA_ENGINE` environment variable (`auto` |
//! `portable` | `avx2`) overrides it process-wide via
//! [`engine::Select::from_env`]. Every engine is bit-identical to the
//! scalar oracles, so dispatch never changes results.
//!
//! ## Quickstart
//!
//! ```
//! use tempora::prelude::*;
//!
//! // A 1-D heat equation on 1000 points, 64 time steps.
//! let problem = Problem::heat1d(1000, 64, Heat1dCoeffs::classic(0.25));
//!
//! // Compile a plan once: temporal vectorization (the paper's scheme,
//! // space stride s = 7), engine resolved, scratch allocated.
//! let mut plan = PlanBuilder::new().stride(7).build(&problem).unwrap();
//!
//! // Run it against a state (reusable across many states).
//! let mut state = problem.state();
//! state
//!     .grid1_mut()
//!     .unwrap()
//!     .fill_interior(|i| if i == 500 { 1.0 } else { 0.0 });
//! let report = plan.run(&mut state).unwrap();
//! assert_eq!(report.steps, 64);
//!
//! // Scalar reference: bit-identical.
//! let mut init = Grid1::new(1000, 1, Boundary::Dirichlet(0.0));
//! init.fill_interior(|i| if i == 500 { 1.0 } else { 0.0 });
//! let gold = reference::heat1d(&init, Heat1dCoeffs::classic(0.25), 64);
//! assert!(state.grid1().unwrap().interior_eq(&gold));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub use tempora_baseline as baseline;
pub use tempora_client as client;
pub use tempora_core as core;
pub use tempora_core::engine;
pub use tempora_grid as grid;
pub use tempora_parallel as parallel;
pub use tempora_plan as plan;
pub use tempora_proto as proto;
pub use tempora_server as server;
pub use tempora_simd as simd;
pub use tempora_stencil as stencil;
pub use tempora_tiling as tiling;

/// Convenience re-exports covering the common workflow: describe a
/// [`Problem`](plan::Problem), compile a [`Plan`](plan::Plan), run it,
/// compare against the oracle. The quickstart in the crate docs compiles
/// from this prelude alone.
pub mod prelude {
    pub use tempora_core::{temporal1d_gs, temporal1d_jacobi};
    pub use tempora_grid::{Boundary, DoubleBuffer, Grid1, Grid2, Grid3};
    pub use tempora_plan::{
        Engine, LcsState, Method, Plan, PlanBuilder, PlanError, Problem, Report, Select, State,
        TileGeometry, Tiling,
    };
    pub use tempora_simd::{F64x4, I32x8, Pack, Scalar};
    pub use tempora_stencil::reference;
    pub use tempora_stencil::{
        Box2dCoeffs, Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs,
        LifeRule,
    };
}
