//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8-era API), covering exactly the surface the *tempora*
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over
//! half-open numeric ranges, and `Rng::gen_bool`.
//!
//! The build environment has no crates.io access, so this shim is patched
//! in via the workspace manifest. It makes no attempt to match the real
//! `StdRng` stream — only the *contract* the callers rely on: a
//! deterministic, seedable, reasonably well-mixed uniform generator.
//! The core generator is `splitmix64` seeding `xoshiro256**`, both public
//! domain algorithms (Blackman & Vigna).

#![deny(missing_docs)]

use core::ops::Range;

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open [`Range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Draw a value in `[lo, hi)`.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                // 53 (or 24) high bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = lo as f64 + (hi as f64 - lo as f64) * unit;
                // Guard the open upper bound against rounding.
                if v as $t >= hi { lo } else { v as $t }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range `lo..hi`. Panics if empty.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_uniform(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256** seeded via splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&v));
            let i = r.gen_range(0u8..5);
            assert!(i < 5);
            let n = r.gen_range(10usize..11);
            assert_eq!(n, 10);
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut r = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads={heads}");
    }
}
