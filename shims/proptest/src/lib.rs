//! Minimal offline stand-in for [`proptest`](https://crates.io/crates/proptest),
//! covering the surface the *tempora* test suites use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `name in strategy` argument bindings;
//! * strategies: half-open/inclusive numeric ranges, [`any`],
//!   [`array::uniform4`] / [`array::uniform8`], and [`collection::vec`];
//! * the [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`]
//!   assertion forms.
//!
//! There is **no shrinking**: a failing case reports its case number,
//! the deterministic per-test seed, and the assertion message. Cases are
//! generated from a seed derived from the test's name, so every run (and
//! every machine) replays the identical sequence — a failure is always
//! reproducible by rerunning the same test binary.

#![deny(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving strategy sampling (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed a generator; the `proptest!` macro derives the seed from the
    /// test name and case index.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next uniform 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a, used to derive a per-test base seed from the test name.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A source of random values of one type (this shim's whole strategy
/// model — sampling only, no shrink tree).
pub trait Strategy {
    /// The type of value produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64
                    + (self.end as f64 - self.start as f64) * rng.unit_f64();
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

/// Types with a full-domain default strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value. Implementations mix in boundary
    /// values (zero, min, max) at a small fixed rate so properties still
    /// meet the classic edge cases without shrinking support.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> $t {
                match rng.next_u64() % 16 {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.next_u64() % 16 {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            3 => -1.0,
            // Finite, wide-but-tame magnitudes; the workspace compares
            // results bit-for-bit and never feeds NaN/inf through kernels.
            _ => (rng.unit_f64() - 0.5) * 2e12,
        }
    }
}

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Fixed-size array strategies, mirroring `proptest::array`.
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; N]`, each element drawn from `S`.
    #[derive(Clone, Copy, Debug)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.sample(rng))
        }
    }

    /// 4-element array of values drawn from `strat`.
    pub fn uniform4<S: Strategy>(strat: S) -> UniformArray<S, 4> {
        UniformArray(strat)
    }

    /// 8-element array of values drawn from `strat`.
    pub fn uniform8<S: Strategy>(strat: S) -> UniformArray<S, 8> {
        UniformArray(strat)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Lengths accepted by [`vec()`]: an exact length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length in the given size range.
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy: elements from `element`, length from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert a boolean condition inside a [`proptest!`] body; on failure the
/// current case aborts with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert two expressions are equal (requires `Debug`), aborting the case
/// with both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), l, r
            ));
        }
    }};
}

/// Assert two expressions are unequal, aborting the case on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments and runs the body for
/// the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9e3779b97f4a7c15));
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                let outcome = (|| -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} failed (base seed {:#x}):\n{}",
                        case + 1, config.cases, base, msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(
            n in 3usize..17,
            x in -2.5f64..7.5,
            b in 1u8..4,
            k in 0usize..=8,
        ) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((1..4).contains(&b));
            prop_assert!(k <= 8);
        }

        #[test]
        fn arrays_and_vecs_have_requested_shape(
            a in crate::array::uniform4(any::<i64>()),
            b in crate::array::uniform8(-1.0f64..1.0),
            v in crate::collection::vec(any::<i32>(), 13),
        ) {
            prop_assert_eq!(a.len(), 4);
            prop_assert!(b.iter().all(|x| (-1.0..1.0).contains(x)));
            prop_assert_eq!(v.len(), 13);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut r1 = crate::TestRng::new(crate::fnv1a("some::test"));
        let mut r2 = crate::TestRng::new(crate::fnv1a("some::test"));
        assert_eq!(
            (0..4).map(|_| r1.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| r2.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            // Justification: the grammar test only checks macro expansion; the fn body is reached via the failure path.
            #[allow(unused)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
