//! Minimal offline stand-in for [`criterion`](https://crates.io/crates/criterion),
//! covering the surface the *tempora* benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, and chained
//! `sample_size` / `measurement_time` / `bench_function` / `finish`.
//!
//! Measurement is deliberately simple — per sample, the iteration count
//! is scaled so one sample spans at least ~1 ms of wall time, and the
//! **median** per-iteration time over the configured sample count is
//! reported. No statistical analysis, no HTML reports, no comparison with
//! saved baselines; the `tempora_bench` crate's `repro` binary is the
//! workspace's real measurement harness, and these benches exist to keep
//! hot paths runnable under `cargo bench`.

#![deny(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _crit: core::marker::PhantomData,
        }
    }

    /// Run a single free-standing benchmark (group of one).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _crit: core::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (median-of) per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for one benchmark's measurement phase.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Measure `f` and print the median per-iteration time.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        let label = if id.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, id)
        };

        // Calibrate: how many iterations fit in ~1 ms?
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let per_sample_budget =
            (self.measurement_time / self.sample_size as u32).max(Duration::from_millis(1));
        let iters = (per_sample_budget.as_nanos() / once.as_nanos()).clamp(1, 1 << 24) as u64;

        let mut samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_secs_f64() / iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        println!(
            "bench: {label:<48} {:>14}/iter (median of {} samples × {iters} iters)",
            format_time(median),
            samples.len()
        );
        self
    }

    /// End the group (output is already flushed per benchmark).
    pub fn finish(self) {}
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Per-benchmark timing handle passed to the closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Prevent the optimizer from const-folding a value away
/// (re-export shape of `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Benchmark group `", stringify!($name), "` (generated by `criterion_group!`).")]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main`, running each group in order (ignores criterion CLI args).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(6));
        let mut calls = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn calibration_clamps_iteration_count() {
        // A ~1 ms body must not be scheduled for millions of iterations.
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("slow");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(4));
        let mut calls = 0u64;
        group.bench_function("sleep", |b| {
            b.iter(|| {
                calls += 1;
                std::thread::sleep(Duration::from_millis(1));
            })
        });
        group.finish();
        assert!(calls < 100, "calls={calls}");
    }
}
