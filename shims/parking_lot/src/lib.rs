//! Minimal offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot),
//! implemented over `std::sync`, covering the surface the *tempora*
//! worker pool uses: a poison-free `Mutex` whose `lock()` returns the
//! guard directly, and a `Condvar` whose `wait` reborrows the guard
//! (`&mut MutexGuard`) instead of consuming it.
//!
//! Poisoning is deliberately swallowed (`PoisonError::into_inner`): the
//! real `parking_lot` has no poisoning, and the pool's own shutdown
//! protocol is what guarantees state consistency across panics.

#![deny(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock without poisoning, mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can take the
/// guard out by value (std's wait consumes it) and put it back, while
/// callers keep holding a `&mut` borrow.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Panic-justification: the Option is None only inside
        // `Condvar::wait`, which holds the only `&mut` borrow — no other
        // deref can run concurrently.
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Panic-justification: see `Deref` — None is unobservable outside
        // `Condvar::wait`.
        self.0.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable mirroring `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guarded lock and block until notified; the
    /// lock is re-acquired (into the same guard) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Panic-justification: wait() is the only code that takes the
        // inner guard, and it puts it back before returning; a None here
        // means a reentrant wait on the same guard, which `&mut` forbids.
        let inner = guard.0.take().expect("guard already taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Wake a single waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_handoff() {
        let shared = Arc::new((Mutex::new(0usize), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let mut g = s2.0.lock();
            while *g == 0 {
                s2.1.wait(&mut g);
            }
            *g += 1;
        });
        {
            let mut g = shared.0.lock();
            *g = 1;
            shared.1.notify_all();
        }
        t.join().unwrap();
        assert_eq!(*shared.0.lock(), 2);
    }

    #[test]
    fn guard_survives_spurious_wakeups() {
        // wait() must leave the guard usable afterwards.
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            *p2.0.lock() = true;
            p2.1.notify_one();
        });
        let mut g = pair.0.lock();
        while !*g {
            pair.1.wait(&mut g);
        }
        assert!(*g);
        drop(g);
        t.join().unwrap();
    }
}
