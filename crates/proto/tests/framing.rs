//! Wire-framing coverage: property-tested roundtrips of every frame
//! type over randomized problems/configs, plus adversarial decoding —
//! truncations at every byte, oversized length prefixes, unknown
//! versions and tags, bit-flipped payloads. The invariant throughout:
//! hostile bytes produce a `DecodeError` (mapped by the server to an
//! `ErrorReply`), never a panic.

use proptest::prelude::*;
use tempora_proto::{
    read_frame, write_frame, DecodeError, ErrorCode, Frame, JobSpec, Method, Problem, RunReply,
    Select, SolveConfig, Tiling, WireError, MAX_FRAME_LEN, PROTO_VERSION,
};
use tempora_stencil::{
    Box2dCoeffs, Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs,
    LifeRule,
};

/// Deterministically derive an interesting `f64` from raw bits: mixes
/// ordinary values with signed zeros, infinities and NaNs so the
/// canonical encoding's edge cases ride through the roundtrip tests.
fn coeff(bits: u64) -> f64 {
    match bits % 7 {
        0 => 0.0,
        1 => -0.0,
        2 => f64::INFINITY,
        3 => f64::NEG_INFINITY,
        4 => f64::from_bits(0x7ff8_0000_0000_0000 | (bits >> 3)), // a NaN
        _ => (bits as f64 / u64::MAX as f64) * 4.0 - 2.0,
    }
}

/// After one encode→decode trip every NaN is the canonical quiet NaN,
/// so compare by canonical bits, not `==`.
fn canon_eq(a: f64, b: f64) -> bool {
    tempora_proto::canon_f64(a) == tempora_proto::canon_f64(b)
}

/// A problem of any of the nine kinds, derived from three integers.
fn problem(kind: u8, size: u64, cb: u64) -> Problem {
    let n = 16 + (size % 240) as usize;
    let steps = 1 + (size % 31) as usize;
    match kind % 9 {
        0 => Problem::heat1d(
            n,
            steps,
            Heat1dCoeffs::new(coeff(cb), coeff(cb ^ 1), coeff(cb ^ 2)),
        ),
        1 => Problem::gs1d(
            n,
            steps,
            Gs1dCoeffs::new(coeff(cb), coeff(cb ^ 1), coeff(cb ^ 2)),
        ),
        2 => Problem::heat2d(
            n,
            n / 2 + 4,
            steps,
            Heat2dCoeffs::new(
                coeff(cb),
                coeff(cb ^ 1),
                coeff(cb ^ 2),
                coeff(cb ^ 3),
                coeff(cb ^ 4),
            ),
        ),
        3 => {
            let mut c = [[0.0; 3]; 3];
            for (i, row) in c.iter_mut().enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = coeff(cb ^ ((i * 3 + j) as u64));
                }
            }
            Problem::box2d(n, n / 2 + 4, steps, Box2dCoeffs::new(c))
        }
        4 => Problem::gs2d(
            n,
            n / 2 + 4,
            steps,
            Gs2dCoeffs::new(
                coeff(cb),
                coeff(cb ^ 1),
                coeff(cb ^ 2),
                coeff(cb ^ 3),
                coeff(cb ^ 4),
            ),
        ),
        5 => Problem::life(
            n,
            n / 2 + 4,
            steps,
            LifeRule {
                birth: (cb & 0x1ff) as u16,
                survive: ((cb >> 9) & 0x1ff) as u16,
            },
        ),
        6 => Problem::heat3d(
            n / 4 + 4,
            n / 4 + 4,
            n / 4 + 4,
            steps,
            Heat3dCoeffs::new(
                coeff(cb),
                coeff(cb ^ 1),
                coeff(cb ^ 2),
                coeff(cb ^ 3),
                coeff(cb ^ 4),
                coeff(cb ^ 5),
                coeff(cb ^ 6),
            ),
        ),
        7 => Problem::gs3d(
            n / 4 + 4,
            n / 4 + 4,
            n / 4 + 4,
            steps,
            Gs3dCoeffs::new(
                coeff(cb),
                coeff(cb ^ 1),
                coeff(cb ^ 2),
                coeff(cb ^ 3),
                coeff(cb ^ 4),
                coeff(cb ^ 5),
                coeff(cb ^ 6),
            ),
        ),
        _ => Problem::lcs(n, n / 2 + 4),
    }
}

/// A solver configuration derived from one integer.
fn config(sel: u64) -> SolveConfig {
    SolveConfig {
        method: [
            Method::Temporal,
            Method::Multiload,
            Method::Reorg,
            Method::Dlt,
            Method::Scalar,
        ][(sel % 5) as usize],
        tiling: match (sel >> 3) % 4 {
            0 => Tiling::None,
            1 => Tiling::Ghost {
                block: 32 + (sel % 64) as usize,
                height: 1 + (sel % 7) as usize,
            },
            2 => Tiling::Skew {
                block: 32 + (sel % 64) as usize,
                height: 1 + (sel % 7) as usize,
            },
            _ => Tiling::LcsRect {
                xblock: 8 + (sel % 32) as usize,
                yblock: 8 + ((sel >> 5) % 32) as usize,
            },
        },
        select: [Select::Auto, Select::Portable, Select::Avx2][((sel >> 7) % 3) as usize],
        threads: 1 + (sel % 4) as usize,
        stride: if sel & 0x100 != 0 {
            Some(2 + (sel % 6) as usize)
        } else {
            None
        },
        pin: sel & 0x200 != 0,
        ..SolveConfig::default()
    }
}

fn spec(kind: u8, size: u64, cb: u64, sel: u64) -> JobSpec {
    JobSpec {
        problem: problem(kind, size, cb),
        config: config(sel),
    }
}

/// Problems compare equal after a roundtrip up to NaN canonicalization;
/// the cache key is exactly invariant.
fn assert_spec_roundtrip(s: &JobSpec) {
    let f = Frame::SubmitProblem {
        request_id: 7,
        spec: *s,
    };
    let body = f.encode_body();
    let decoded = Frame::decode_body(&body).expect("roundtrip must decode");
    let Frame::SubmitProblem { spec: d, .. } = &decoded else {
        panic!("tag changed in roundtrip");
    };
    assert_eq!(d.config, s.config);
    assert_eq!(d.key(), s.key(), "cache key must survive the wire");
    // Spot-check a coefficient field by canonical bits.
    if let (Problem::Heat1d { coeffs: a, .. }, Problem::Heat1d { coeffs: b, .. }) =
        (&s.problem, &d.problem)
    {
        assert!(canon_eq(a.w, b.w) && canon_eq(a.c, b.c) && canon_eq(a.e, b.e));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_frame_type_roundtrips(kind in any::<u8>(), size in any::<u64>(),
                                   cb in any::<u64>(), sel in any::<u64>(),
                                   rid in any::<u64>(), seed in any::<u64>()) {
        let s = spec(kind, size, cb, sel);
        assert_spec_roundtrip(&s);

        let run = Frame::RunSteps { request_id: rid, spec: s, seed };
        prop_assert_eq!(
            Frame::decode_body(&run.encode_body()).unwrap().request_id(), rid);

        let reply = Frame::ReportReply {
            request_id: rid,
            reply: RunReply {
                cache_hit: seed & 1 != 0,
                plan_builds: seed % 5,
                resets: seed % 3,
                batched: 1 + (seed % 7) as u32,
                engine: [None, Some(tempora_proto::Engine::Portable),
                         Some(tempora_proto::Engine::Avx2)][(seed % 3) as usize],
                steps: size % 1000,
                threads: 1 + (sel % 8) as u32,
                pinned: sel & 4 != 0,
                tiles: if seed & 2 != 0 { Some((seed % 9, seed % 11, seed % 13)) } else { None },
                lcs_length: if kind % 9 == 8 { Some((size % 1000) as i32) } else { None },
                digest: cb,
                server_ns: size,
            },
        };
        prop_assert_eq!(Frame::decode_body(&reply.encode_body()).unwrap(), reply);

        let err = Frame::ErrorReply {
            request_id: rid,
            code: [ErrorCode::BadFrame, ErrorCode::UnsupportedVersion, ErrorCode::BuildFailed,
                   ErrorCode::RunFailed, ErrorCode::Poisoned, ErrorCode::Internal]
                  [(seed % 6) as usize],
            message: format!("failure {seed}"),
        };
        prop_assert_eq!(Frame::decode_body(&err.encode_body()).unwrap(), err);
    }

    #[test]
    fn truncation_anywhere_errors_never_panics(kind in any::<u8>(), size in any::<u64>(),
                                               cb in any::<u64>(), sel in any::<u64>(),
                                               cut in any::<u64>()) {
        let body = Frame::RunSteps {
            request_id: 11,
            spec: spec(kind, size, cb, sel),
            seed: 5,
        }.encode_body();
        let cut = (cut % body.len() as u64) as usize;
        // Every strict prefix must decode to an error, not a panic and
        // not a (shorter) success.
        prop_assert!(Frame::decode_body(&body[..cut]).is_err());
    }

    #[test]
    fn bit_flips_never_panic(kind in any::<u8>(), size in any::<u64>(),
                             cb in any::<u64>(), sel in any::<u64>(),
                             at in any::<u64>(), bit in 0u8..8) {
        let mut body = Frame::SubmitProblem {
            request_id: 3,
            spec: spec(kind, size, cb, sel),
        }.encode_body();
        let at = (at % body.len() as u64) as usize;
        body[at] ^= 1 << bit;
        // Either it still decodes (the flip hit a don't-care bit like a
        // coefficient) or it errors; it must never panic.
        let _ = Frame::decode_body(&body);
    }
}

#[test]
fn unknown_version_maps_to_error_reply_material_not_panic() {
    let mut body = Frame::SubmitProblem {
        request_id: 1,
        spec: JobSpec::new(Problem::heat1d(64, 4, Heat1dCoeffs::classic(0.25))),
    }
    .encode_body();
    for v in [0u8, 2, 7, 255] {
        body[0] = v;
        assert_eq!(
            Frame::decode_body(&body),
            Err(DecodeError::UnknownVersion { got: v })
        );
        // A version mismatch is recoverable: the body was fully framed,
        // so a server answers ErrorReply and keeps the connection.
        assert!(WireError::from(DecodeError::UnknownVersion { got: v }).recoverable());
    }
    body[0] = PROTO_VERSION;
    assert!(Frame::decode_body(&body).is_ok());
}

#[test]
fn unknown_tag_and_trailing_bytes_are_rejected() {
    let spec = JobSpec::new(Problem::heat1d(64, 4, Heat1dCoeffs::classic(0.25)));
    let mut body = Frame::SubmitProblem {
        request_id: 1,
        spec,
    }
    .encode_body();
    body[1] = 99;
    assert_eq!(
        Frame::decode_body(&body),
        Err(DecodeError::UnknownTag { got: 99 })
    );
    body[1] = 1;
    body.push(0xab);
    assert!(matches!(
        Frame::decode_body(&body),
        Err(DecodeError::BadValue { .. })
    ));
}

#[test]
fn oversized_length_prefix_is_bounded() {
    // One byte above the bound: rejected before allocation, stream
    // declared unrecoverable.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&((MAX_FRAME_LEN + 1) as u32).to_le_bytes());
    bytes.extend_from_slice(&[0u8; 16]);
    let err = read_frame(&mut std::io::Cursor::new(bytes)).unwrap_err();
    assert!(matches!(
        err,
        WireError::Decode(DecodeError::FrameTooLarge { len, max })
            if len == MAX_FRAME_LEN + 1 && max == MAX_FRAME_LEN
    ));
    assert!(!err.recoverable());
}

#[test]
fn torn_length_prefix_is_a_truncation_error() {
    // EOF inside the 4-byte prefix (peer died mid-write).
    let err = read_frame(&mut std::io::Cursor::new(vec![1u8, 2])).unwrap_err();
    assert!(matches!(
        err,
        WireError::Decode(DecodeError::Truncated { .. })
    ));
}

#[test]
fn multi_frame_stream_stays_in_sync_after_bad_version() {
    // good | bad-version | good on one stream: the reader surfaces the
    // middle error and still decodes the third frame.
    let good = Frame::RunSteps {
        request_id: 1,
        spec: JobSpec::new(Problem::heat1d(64, 4, Heat1dCoeffs::classic(0.25))),
        seed: 9,
    };
    let mut stream = Vec::new();
    write_frame(&mut stream, &good).unwrap();
    let mut bad = good.encode_body();
    bad[0] = PROTO_VERSION + 1;
    stream.extend_from_slice(&(bad.len() as u32).to_le_bytes());
    stream.extend_from_slice(&bad);
    write_frame(&mut stream, &good).unwrap();

    let mut cursor = std::io::Cursor::new(stream);
    assert!(read_frame(&mut cursor).unwrap().is_some());
    let mid = read_frame(&mut cursor).unwrap_err();
    assert!(mid.recoverable());
    assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), good);
    assert!(read_frame(&mut cursor).unwrap().is_none());
}
