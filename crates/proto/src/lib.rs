//! # tempora-proto — the solver service wire protocol
//!
//! A dependency-free, length-prefixed binary protocol between
//! `tempora-serve` (the long-running solver server) and its clients,
//! plus the **canonical serialization of [`Problem`]** that doubles as
//! the plan-cache key. No serde, no external codecs: every frame is
//! hand-encoded little-endian bytes behind a 4-byte length prefix.
//!
//! ## Frames
//!
//! | frame | direction | meaning |
//! |---|---|---|
//! | [`Frame::SubmitProblem`] | client → server | intern (prepare) a plan for a [`JobSpec`]; replies [`Frame::ReportReply`] with `steps == 0` |
//! | [`Frame::RunSteps`] | client → server | run the spec's plan against a fresh deterministic state (`seed`), one full time extent |
//! | [`Frame::ReportReply`] | server → client | what executed: cache provenance, resolved engine, state digest, service time |
//! | [`Frame::ErrorReply`] | server → client | typed failure ([`ErrorCode`]) with a message; never a panic |
//!
//! Request ids are client-chosen and **id 0 is reserved** for
//! uncorrelated server messages (decode-failure replies, unsolicited
//! [`ErrorCode::GoingAway`] farewells) — see [`Frame`]. The resilience
//! codes [`ErrorCode::GoingAway`], [`ErrorCode::Busy`] and
//! [`ErrorCode::DeadlineExceeded`] are retry hints
//! ([`ErrorCode::retryable`]); servers reading with short socket
//! timeouts keep half-received frames alive across wakeups with
//! [`FrameAccum`].
//!
//! On the wire each frame is `len: u32le` followed by `len` body bytes;
//! the body starts with `version: u8` ([`PROTO_VERSION`]) and `tag: u8`.
//! Decoding is total: truncated bodies, oversized length prefixes
//! (bounded by [`MAX_FRAME_LEN`]), unknown versions and unknown tags all
//! map to a [`DecodeError`] the server answers with an [`ErrorCode`] —
//! see the adversarial tests in `tests/framing.rs`.
//!
//! ## Canonical problems and cache keys
//!
//! [`canon`] defines one byte encoding used both on the wire and as the
//! interning key: [`ProblemKey`] / [`SpecKey`] hash and compare those
//! canonical bytes, so two differently-constructed but equal problems
//! collide onto one cached plan. `f64` coefficients are encoded by **bit
//! pattern** (`+0.0 ≠ -0.0`), with every NaN normalized to the canonical
//! quiet NaN — see [`canon::canon_f64`] for the full policy.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod canon;
pub mod codec;
pub mod frame;

pub use canon::{canon_f64, state_digest, JobSpec, ProblemKey, SolveConfig, SpecKey};
pub use codec::{ByteReader, ByteWriter, DecodeError};
pub use frame::{
    read_frame, write_frame, ErrorCode, Frame, FrameAccum, FramePoll, RunReply, WireError,
    MAX_FRAME_LEN, PROTO_VERSION,
};

// The protocol speaks the solver vocabulary directly.
pub use tempora_plan::{Engine, Method, Problem, Select, Tiling, WaveSchedule};
