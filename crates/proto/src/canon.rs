//! Canonical serialization of [`Problem`] and the solver configuration —
//! one byte encoding used both **on the wire** and as the **plan-cache
//! key**, so "same bytes" is exactly "same compiled plan".
//!
//! # `f64` policy
//!
//! Coefficients and boundary values are encoded by **bit pattern**
//! ([`canon_f64`]), not by `==`:
//!
//! * `+0.0` and `-0.0` are *different* keys (they are different stencils:
//!   the sign survives multiplication);
//! * every NaN is normalized to the canonical quiet NaN
//!   (`f64::NAN.to_bits()`), so two NaNs with different payload bits
//!   intern to one plan — NaN payloads carry no solver semantics and
//!   letting each payload mint a fresh cache entry would be a trivial
//!   cache-exhaustion vector. The normalization also applies on the
//!   wire: NaN payloads are **not preserved** end to end.
//!
//! This makes key equality slightly *finer* than `Problem`'s derived
//! `PartialEq` on zeros (where `0.0 == -0.0`) and *coarser* on NaNs
//! (where `NaN != NaN`); both directions are deliberate and pinned by
//! unit tests.

use crate::codec::{ByteReader, ByteWriter, DecodeError};
use tempora_grid::Boundary;
use tempora_plan::{Method, PlanBuilder, Problem, Select, State, Tiling, WaveSchedule};
use tempora_stencil::{
    Box2dCoeffs, Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs,
    LifeRule,
};

/// The canonical bit pattern of an `f64`: the value's own bits, except
/// that every NaN maps to the canonical quiet NaN. See the module docs
/// for the rationale.
#[must_use]
pub fn canon_f64(x: f64) -> u64 {
    if x.is_nan() {
        f64::NAN.to_bits()
    } else {
        x.to_bits()
    }
}

fn put_f64(w: &mut ByteWriter, x: f64) {
    w.put_u64(canon_f64(x));
}

fn get_f64(r: &mut ByteReader<'_>) -> Result<f64, DecodeError> {
    Ok(f64::from_bits(r.u64()?))
}

// Problem kind tags (wire + key encoding). Append-only: reusing a tag
// for a different kind would silently alias cache keys across releases.
const TAG_HEAT1D: u8 = 1;
const TAG_GS1D: u8 = 2;
const TAG_HEAT2D: u8 = 3;
const TAG_BOX2D: u8 = 4;
const TAG_GS2D: u8 = 5;
const TAG_LIFE: u8 = 6;
const TAG_HEAT3D: u8 = 7;
const TAG_GS3D: u8 = 8;
const TAG_LCS: u8 = 9;

/// Append the canonical encoding of `problem` to `w`.
pub fn encode_problem(w: &mut ByteWriter, problem: &Problem) {
    match *problem {
        Problem::Heat1d {
            n,
            steps,
            coeffs,
            boundary,
        } => {
            w.put_u8(TAG_HEAT1D);
            w.put_usize(n);
            w.put_usize(steps);
            for c in [coeffs.w, coeffs.c, coeffs.e] {
                put_f64(w, c);
            }
            let Boundary::Dirichlet(b) = boundary;
            put_f64(w, b);
        }
        Problem::Gs1d {
            n,
            steps,
            coeffs,
            boundary,
        } => {
            w.put_u8(TAG_GS1D);
            w.put_usize(n);
            w.put_usize(steps);
            for c in [coeffs.w, coeffs.c, coeffs.e] {
                put_f64(w, c);
            }
            let Boundary::Dirichlet(b) = boundary;
            put_f64(w, b);
        }
        Problem::Heat2d {
            nx,
            ny,
            steps,
            coeffs,
            boundary,
        } => {
            w.put_u8(TAG_HEAT2D);
            w.put_usize(nx);
            w.put_usize(ny);
            w.put_usize(steps);
            for c in [coeffs.cn, coeffs.cw, coeffs.cc, coeffs.ce, coeffs.cs] {
                put_f64(w, c);
            }
            let Boundary::Dirichlet(b) = boundary;
            put_f64(w, b);
        }
        Problem::Box2d {
            nx,
            ny,
            steps,
            coeffs,
            boundary,
        } => {
            w.put_u8(TAG_BOX2D);
            w.put_usize(nx);
            w.put_usize(ny);
            w.put_usize(steps);
            for row in coeffs.c {
                for c in row {
                    put_f64(w, c);
                }
            }
            let Boundary::Dirichlet(b) = boundary;
            put_f64(w, b);
        }
        Problem::Gs2d {
            nx,
            ny,
            steps,
            coeffs,
            boundary,
        } => {
            w.put_u8(TAG_GS2D);
            w.put_usize(nx);
            w.put_usize(ny);
            w.put_usize(steps);
            for c in [coeffs.cn, coeffs.cw, coeffs.cc, coeffs.ce, coeffs.cs] {
                put_f64(w, c);
            }
            let Boundary::Dirichlet(b) = boundary;
            put_f64(w, b);
        }
        Problem::Life {
            nx,
            ny,
            steps,
            rule,
            boundary,
        } => {
            w.put_u8(TAG_LIFE);
            w.put_usize(nx);
            w.put_usize(ny);
            w.put_usize(steps);
            w.put_u16(rule.birth);
            w.put_u16(rule.survive);
            let Boundary::Dirichlet(b) = boundary;
            w.put_i32(b);
        }
        Problem::Heat3d {
            nx,
            ny,
            nz,
            steps,
            coeffs,
            boundary,
        } => {
            w.put_u8(TAG_HEAT3D);
            w.put_usize(nx);
            w.put_usize(ny);
            w.put_usize(nz);
            w.put_usize(steps);
            for c in [
                coeffs.cxm, coeffs.cym, coeffs.czm, coeffs.cc, coeffs.czp, coeffs.cyp, coeffs.cxp,
            ] {
                put_f64(w, c);
            }
            let Boundary::Dirichlet(b) = boundary;
            put_f64(w, b);
        }
        Problem::Gs3d {
            nx,
            ny,
            nz,
            steps,
            coeffs,
            boundary,
        } => {
            w.put_u8(TAG_GS3D);
            w.put_usize(nx);
            w.put_usize(ny);
            w.put_usize(nz);
            w.put_usize(steps);
            for c in [
                coeffs.cxm, coeffs.cym, coeffs.czm, coeffs.cc, coeffs.czp, coeffs.cyp, coeffs.cxp,
            ] {
                put_f64(w, c);
            }
            let Boundary::Dirichlet(b) = boundary;
            put_f64(w, b);
        }
        Problem::Lcs { la, lb } => {
            w.put_u8(TAG_LCS);
            w.put_usize(la);
            w.put_usize(lb);
        }
        // `Problem` is `#[non_exhaustive]`; the workspace ships proto and
        // plan in lockstep, so a variant with no canonical encoding is a
        // build-time omission, not a runtime condition.
        _ => unreachable!("Problem variant without a canonical encoding"),
    }
}

/// Decode one canonical [`Problem`].
pub fn decode_problem(r: &mut ByteReader<'_>) -> Result<Problem, DecodeError> {
    let tag = r.u8()?;
    Ok(match tag {
        TAG_HEAT1D => {
            let (n, steps) = (r.usize()?, r.usize()?);
            let (cw, cc, ce) = (get_f64(r)?, get_f64(r)?, get_f64(r)?);
            Problem::Heat1d {
                n,
                steps,
                coeffs: Heat1dCoeffs::new(cw, cc, ce),
                boundary: Boundary::Dirichlet(get_f64(r)?),
            }
        }
        TAG_GS1D => {
            let (n, steps) = (r.usize()?, r.usize()?);
            let (cw, cc, ce) = (get_f64(r)?, get_f64(r)?, get_f64(r)?);
            Problem::Gs1d {
                n,
                steps,
                coeffs: Gs1dCoeffs::new(cw, cc, ce),
                boundary: Boundary::Dirichlet(get_f64(r)?),
            }
        }
        TAG_HEAT2D => {
            let (nx, ny, steps) = (r.usize()?, r.usize()?, r.usize()?);
            let mut c = [0.0; 5];
            for v in &mut c {
                *v = get_f64(r)?;
            }
            Problem::Heat2d {
                nx,
                ny,
                steps,
                coeffs: Heat2dCoeffs::new(c[0], c[1], c[2], c[3], c[4]),
                boundary: Boundary::Dirichlet(get_f64(r)?),
            }
        }
        TAG_BOX2D => {
            let (nx, ny, steps) = (r.usize()?, r.usize()?, r.usize()?);
            let mut c = [[0.0; 3]; 3];
            for row in &mut c {
                for v in row {
                    *v = get_f64(r)?;
                }
            }
            Problem::Box2d {
                nx,
                ny,
                steps,
                coeffs: Box2dCoeffs::new(c),
                boundary: Boundary::Dirichlet(get_f64(r)?),
            }
        }
        TAG_GS2D => {
            let (nx, ny, steps) = (r.usize()?, r.usize()?, r.usize()?);
            let mut c = [0.0; 5];
            for v in &mut c {
                *v = get_f64(r)?;
            }
            Problem::Gs2d {
                nx,
                ny,
                steps,
                coeffs: Gs2dCoeffs::new(c[0], c[1], c[2], c[3], c[4]),
                boundary: Boundary::Dirichlet(get_f64(r)?),
            }
        }
        TAG_LIFE => {
            let (nx, ny, steps) = (r.usize()?, r.usize()?, r.usize()?);
            let (birth, survive) = (r.u16()?, r.u16()?);
            Problem::Life {
                nx,
                ny,
                steps,
                rule: LifeRule { birth, survive },
                boundary: Boundary::Dirichlet(r.i32()?),
            }
        }
        TAG_HEAT3D => {
            let (nx, ny, nz, steps) = (r.usize()?, r.usize()?, r.usize()?, r.usize()?);
            let mut c = [0.0; 7];
            for v in &mut c {
                *v = get_f64(r)?;
            }
            Problem::Heat3d {
                nx,
                ny,
                nz,
                steps,
                coeffs: Heat3dCoeffs::new(c[0], c[1], c[2], c[3], c[4], c[5], c[6]),
                boundary: Boundary::Dirichlet(get_f64(r)?),
            }
        }
        TAG_GS3D => {
            let (nx, ny, nz, steps) = (r.usize()?, r.usize()?, r.usize()?, r.usize()?);
            let mut c = [0.0; 7];
            for v in &mut c {
                *v = get_f64(r)?;
            }
            Problem::Gs3d {
                nx,
                ny,
                nz,
                steps,
                coeffs: Gs3dCoeffs::new(c[0], c[1], c[2], c[3], c[4], c[5], c[6]),
                boundary: Boundary::Dirichlet(get_f64(r)?),
            }
        }
        TAG_LCS => Problem::Lcs {
            la: r.usize()?,
            lb: r.usize()?,
        },
        _ => {
            return Err(DecodeError::BadValue {
                what: "unknown problem kind tag",
            })
        }
    })
}

/// How the server should compile the problem: the [`PlanBuilder`] knobs
/// a client is allowed to choose. `count_reorg` is deliberately not on
/// the wire (instrumented runs are a bench-local concern).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolveConfig {
    /// Vectorization method.
    pub method: Method,
    /// Time-space tiling.
    pub tiling: Tiling,
    /// Engine selection policy.
    pub select: Select,
    /// Worker threads for the plan's pool.
    pub threads: usize,
    /// Temporal space stride (`None` = the per-kind paper default).
    pub stride: Option<usize>,
    /// Request per-core pinning of the plan's workers.
    pub pin: bool,
    /// Wavefront schedule for skew/LCS tilings.
    pub wave_schedule: WaveSchedule,
}

impl Default for SolveConfig {
    fn default() -> SolveConfig {
        SolveConfig {
            method: Method::Temporal,
            tiling: Tiling::None,
            select: Select::Auto,
            threads: 1,
            stride: None,
            pin: false,
            wave_schedule: WaveSchedule::Pipelined,
        }
    }
}

impl SolveConfig {
    /// The [`PlanBuilder`] this configuration describes.
    #[must_use]
    pub fn plan_builder(&self) -> PlanBuilder {
        let mut b = PlanBuilder::new()
            .method(self.method)
            .tiling(self.tiling)
            .select(self.select)
            .threads(self.threads)
            .pin(self.pin)
            .wave_schedule(self.wave_schedule);
        if let Some(s) = self.stride {
            b = b.stride(s);
        }
        b
    }
}

fn encode_config(w: &mut ByteWriter, cfg: &SolveConfig) {
    w.put_u8(match cfg.method {
        Method::Temporal => 0,
        Method::Multiload => 1,
        Method::Reorg => 2,
        Method::Dlt => 3,
        Method::Scalar => 4,
    });
    match cfg.tiling {
        Tiling::None => w.put_u8(0),
        Tiling::Ghost { block, height } => {
            w.put_u8(1);
            w.put_usize(block);
            w.put_usize(height);
        }
        Tiling::Skew { block, height } => {
            w.put_u8(2);
            w.put_usize(block);
            w.put_usize(height);
        }
        Tiling::LcsRect { xblock, yblock } => {
            w.put_u8(3);
            w.put_usize(xblock);
            w.put_usize(yblock);
        }
    }
    w.put_u8(match cfg.select {
        Select::Auto => 0,
        Select::Portable => 1,
        Select::Avx2 => 2,
    });
    w.put_usize(cfg.threads);
    match cfg.stride {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            w.put_usize(s);
        }
    }
    w.put_u8(cfg.pin as u8);
    w.put_u8(match cfg.wave_schedule {
        WaveSchedule::Pipelined => 0,
        WaveSchedule::Barrier => 1,
    });
}

fn decode_config(r: &mut ByteReader<'_>) -> Result<SolveConfig, DecodeError> {
    let method = match r.u8()? {
        0 => Method::Temporal,
        1 => Method::Multiload,
        2 => Method::Reorg,
        3 => Method::Dlt,
        4 => Method::Scalar,
        _ => return Err(DecodeError::BadValue { what: "method tag" }),
    };
    let tiling = match r.u8()? {
        0 => Tiling::None,
        1 => Tiling::Ghost {
            block: r.usize()?,
            height: r.usize()?,
        },
        2 => Tiling::Skew {
            block: r.usize()?,
            height: r.usize()?,
        },
        3 => Tiling::LcsRect {
            xblock: r.usize()?,
            yblock: r.usize()?,
        },
        _ => return Err(DecodeError::BadValue { what: "tiling tag" }),
    };
    let select = match r.u8()? {
        0 => Select::Auto,
        1 => Select::Portable,
        2 => Select::Avx2,
        _ => return Err(DecodeError::BadValue { what: "select tag" }),
    };
    let threads = r.usize()?;
    let stride = match r.u8()? {
        0 => None,
        1 => Some(r.usize()?),
        _ => {
            return Err(DecodeError::BadValue {
                what: "stride option tag",
            })
        }
    };
    let pin = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(DecodeError::BadValue { what: "pin flag" }),
    };
    let wave_schedule = match r.u8()? {
        0 => WaveSchedule::Pipelined,
        1 => WaveSchedule::Barrier,
        _ => {
            return Err(DecodeError::BadValue {
                what: "wave schedule tag",
            })
        }
    };
    Ok(SolveConfig {
        method,
        tiling,
        select,
        threads,
        stride,
        pin,
        wave_schedule,
    })
}

/// A complete unit of server work: the problem plus how to compile it.
/// This is what `SubmitProblem` / `RunSteps` carry and what the plan
/// cache interns ([`SpecKey`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobSpec {
    /// The stencil problem.
    pub problem: Problem,
    /// The solver configuration.
    pub config: SolveConfig,
}

impl JobSpec {
    /// A spec with the default solver configuration.
    #[must_use]
    pub fn new(problem: Problem) -> JobSpec {
        JobSpec {
            problem,
            config: SolveConfig::default(),
        }
    }

    /// Append the canonical encoding to `w`.
    pub fn encode(&self, w: &mut ByteWriter) {
        encode_problem(w, &self.problem);
        encode_config(w, &self.config);
    }

    /// Decode one canonical spec.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<JobSpec, DecodeError> {
        Ok(JobSpec {
            problem: decode_problem(r)?,
            config: decode_config(r)?,
        })
    }

    /// This spec's cache key.
    #[must_use]
    pub fn key(&self) -> SpecKey {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        SpecKey(CanonKey::of_bytes(w.into_bytes()))
    }
}

/// FNV-1a 64-bit over a byte slice — the key/digest hash of the
/// protocol (stable across platforms and releases, unlike `DefaultHasher`).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Canonical-bytes key: hashes by a precomputed FNV-1a of the bytes,
/// compares by the bytes themselves (hash collisions cannot alias).
#[derive(Clone, Debug, Eq)]
struct CanonKey {
    hash: u64,
    bytes: Vec<u8>,
}

impl CanonKey {
    fn of_bytes(bytes: Vec<u8>) -> CanonKey {
        CanonKey {
            hash: fnv1a(&bytes),
            bytes,
        }
    }
}

impl PartialEq for CanonKey {
    fn eq(&self, other: &CanonKey) -> bool {
        self.hash == other.hash && self.bytes == other.bytes
    }
}

impl std::hash::Hash for CanonKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// The canonicalized identity of a [`Problem`]: hashes and compares the
/// canonical byte encoding (see the module docs for the `f64` policy).
/// Two differently-constructed but equal problems produce equal keys.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ProblemKey(CanonKey);

impl ProblemKey {
    /// The key of `problem`.
    #[must_use]
    pub fn of(problem: &Problem) -> ProblemKey {
        let mut w = ByteWriter::new();
        encode_problem(&mut w, problem);
        ProblemKey(CanonKey::of_bytes(w.into_bytes()))
    }

    /// The precomputed FNV-1a hash (used for shard selection).
    #[must_use]
    pub fn hash64(&self) -> u64 {
        self.0.hash
    }
}

/// The canonicalized identity of a [`JobSpec`] — the plan-cache key:
/// problem *and* solver configuration, since different configurations
/// compile different plans.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SpecKey(CanonKey);

impl SpecKey {
    /// The precomputed FNV-1a hash (used for shard selection).
    #[must_use]
    pub fn hash64(&self) -> u64 {
        self.0.hash
    }
}

/// A deterministic 64-bit digest of a [`State`]'s full payload (grid
/// data including halo, or LCS sequences and result), over canonical
/// `f64` bit patterns. Two bitwise-identical states — e.g. a cached
/// plan's output versus a fresh plan's — digest equal; any interior
/// difference digests different (up to hash collision).
#[must_use]
pub fn state_digest(state: &State) -> u64 {
    let mut bytes = Vec::new();
    match state {
        State::Grid1(g) => {
            for &v in g.data() {
                bytes.extend_from_slice(&canon_f64(v).to_le_bytes());
            }
        }
        State::Grid2(g) => {
            for &v in g.data() {
                bytes.extend_from_slice(&canon_f64(v).to_le_bytes());
            }
        }
        State::Grid2i(g) => {
            for &v in g.data() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        State::Grid3(g) => {
            for &v in g.data() {
                bytes.extend_from_slice(&canon_f64(v).to_le_bytes());
            }
        }
        State::Lcs(l) => {
            bytes.extend_from_slice(&l.a);
            bytes.extend_from_slice(&l.b);
            bytes.extend_from_slice(&l.length.unwrap_or(-1).to_le_bytes());
        }
    }
    fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_problems_built_differently_share_a_key() {
        // `classic(0.25)` is exactly `new(0.25, 0.5, 0.25)`.
        let a = Problem::heat1d(1024, 32, Heat1dCoeffs::classic(0.25));
        let b = Problem::heat1d(1024, 32, Heat1dCoeffs::new(0.25, 1.0 - 2.0 * 0.25, 0.25));
        assert_eq!(ProblemKey::of(&a), ProblemKey::of(&b));
        assert_eq!(ProblemKey::of(&a).hash64(), ProblemKey::of(&b).hash64());
        assert_eq!(JobSpec::new(a).key(), JobSpec::new(b).key());
    }

    #[test]
    fn perturbed_problems_do_not_collide() {
        let a = Problem::heat1d(1024, 32, Heat1dCoeffs::classic(0.25));
        // One-ULP coefficient perturbation, a different extent, a
        // different step count: all distinct keys.
        let c = Heat1dCoeffs::new(f64::from_bits(0.25f64.to_bits() + 1), 0.5, 0.25);
        assert_ne!(
            ProblemKey::of(&a),
            ProblemKey::of(&Problem::heat1d(1024, 32, c))
        );
        assert_ne!(
            ProblemKey::of(&a),
            ProblemKey::of(&Problem::heat1d(1025, 32, Heat1dCoeffs::classic(0.25)))
        );
        assert_ne!(
            ProblemKey::of(&a),
            ProblemKey::of(&Problem::heat1d(1024, 33, Heat1dCoeffs::classic(0.25)))
        );
    }

    #[test]
    fn nan_payloads_collide_but_signed_zeros_do_not() {
        let nan1 = f64::from_bits(0x7ff8_0000_0000_0001);
        let nan2 = f64::from_bits(0x7ff8_0000_dead_beef);
        assert_eq!(canon_f64(nan1), canon_f64(nan2));
        let a = Problem::heat1d(64, 4, Heat1dCoeffs::new(nan1, 0.5, 0.25));
        let b = Problem::heat1d(64, 4, Heat1dCoeffs::new(nan2, 0.5, 0.25));
        assert_eq!(ProblemKey::of(&a), ProblemKey::of(&b));
        // Signed zeros are distinct stencils and distinct keys.
        let z = Problem::heat1d(64, 4, Heat1dCoeffs::new(0.0, 0.5, 0.25));
        let nz = Problem::heat1d(64, 4, Heat1dCoeffs::new(-0.0, 0.5, 0.25));
        assert_ne!(ProblemKey::of(&z), ProblemKey::of(&nz));
    }

    #[test]
    fn config_is_part_of_the_spec_key() {
        let p = Problem::heat1d(1024, 32, Heat1dCoeffs::classic(0.25));
        let base = JobSpec::new(p);
        let mut threaded = base;
        threaded.config.tiling = Tiling::Ghost {
            block: 128,
            height: 4,
        };
        threaded.config.threads = 2;
        assert_ne!(base.key(), threaded.key());
    }

    #[test]
    fn digest_distinguishes_states_and_matches_identical_ones() {
        let p = Problem::heat1d(128, 4, Heat1dCoeffs::classic(0.25));
        let mut a = p.state();
        let mut b = p.state();
        assert_eq!(state_digest(&a), state_digest(&b));
        a.grid1_mut().unwrap().fill_interior(|i| i as f64);
        assert_ne!(state_digest(&a), state_digest(&b));
        b.grid1_mut().unwrap().fill_interior(|i| i as f64);
        assert_eq!(state_digest(&a), state_digest(&b));
    }
}
