//! Primitive byte codec: little-endian writer/reader with total,
//! descriptive decode errors.
//!
//! Everything above this module (frames, canonical problems) is built
//! from these two types, so "never panic on hostile bytes" reduces to
//! the invariant that every [`ByteReader`] accessor is bounds-checked.

/// Why a frame (or a canonical encoding) failed to decode. Every variant
/// is a protocol-level condition a server can answer with an
/// `ErrorReply`; none of them panic.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The body ended before a fixed-width field or counted payload.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes remaining in the buffer.
        have: usize,
    },
    /// A length prefix exceeded [`crate::MAX_FRAME_LEN`] — rejected
    /// before any allocation so a hostile peer cannot balloon memory.
    FrameTooLarge {
        /// The advertised body length.
        len: u64,
        /// The bound it violated.
        max: u64,
    },
    /// The frame's version byte is not [`crate::PROTO_VERSION`]. The
    /// whole body was still consumed, so the stream stays in sync and
    /// the server can reply instead of closing.
    UnknownVersion {
        /// The version byte received.
        got: u8,
    },
    /// The frame tag byte names no known frame type.
    UnknownTag {
        /// The tag byte received.
        got: u8,
    },
    /// A field held a value outside its domain (bad enum tag, oversized
    /// string, non-UTF-8 text, trailing bytes after a complete frame).
    BadValue {
        /// Which field was malformed.
        what: &'static str,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            DecodeError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte bound")
            }
            DecodeError::UnknownVersion { got } => write!(f, "unknown protocol version {got}"),
            DecodeError::UnknownTag { got } => write!(f, "unknown frame tag {got}"),
            DecodeError::BadValue { what } => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum bytes of text accepted in one string field (error messages);
/// long messages are truncated by the encoder, never rejected.
pub const MAX_TEXT_LEN: usize = 4096;

/// Little-endian byte writer over a growable buffer.
#[derive(Default, Debug)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the wire is 64-bit regardless of
    /// host width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append UTF-8 text as `u32` length + bytes, truncated to
    /// [`MAX_TEXT_LEN`] on a character boundary.
    pub fn put_str(&mut self, s: &str) {
        let mut end = s.len().min(MAX_TEXT_LEN);
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        let bytes = &s.as_bytes()[..end];
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked little-endian reader over a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, DecodeError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64` and narrow it to the host's `usize`.
    pub fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::BadValue {
            what: "usize field exceeds host width",
        })
    }

    /// Read a counted UTF-8 string (bounded by [`MAX_TEXT_LEN`]).
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        if len > MAX_TEXT_LEN {
            return Err(DecodeError::BadValue {
                what: "string field exceeds the text bound",
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadValue {
            what: "string field is not UTF-8",
        })
    }

    /// Assert the buffer was fully consumed (a complete frame has no
    /// trailing bytes).
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() != 0 {
            return Err(DecodeError::BadValue {
                what: "trailing bytes after frame body",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 3);
        w.put_i32(-12);
        w.put_usize(99);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i32().unwrap(), -12);
        assert_eq!(r.usize().unwrap(), 99);
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert_eq!(r.u32(), Err(DecodeError::Truncated { needed: 4, have: 2 }));
    }

    #[test]
    fn long_text_is_truncated_on_encode_and_bounded_on_decode() {
        let mut w = ByteWriter::new();
        w.put_str(&"é".repeat(MAX_TEXT_LEN)); // 2 bytes per char
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let s = r.str().unwrap();
        assert!(s.len() <= MAX_TEXT_LEN);
        // A hostile over-long length prefix is rejected up front.
        let mut w = ByteWriter::new();
        w.put_u32((MAX_TEXT_LEN + 1) as u32);
        let bytes = w.into_bytes();
        assert!(matches!(
            ByteReader::new(&bytes).str(),
            Err(DecodeError::BadValue { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = ByteReader::new(&[0]);
        assert!(matches!(r.finish(), Err(DecodeError::BadValue { .. })));
    }
}
