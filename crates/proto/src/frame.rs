//! Versioned, length-prefixed frames and their stream I/O.
//!
//! Wire layout of one frame:
//!
//! ```text
//! len: u32le            — body length, bounded by MAX_FRAME_LEN
//! body[0]: u8           — PROTO_VERSION
//! body[1]: u8           — frame tag
//! body[2..]: payload    — tag-specific fields (little-endian)
//! ```
//!
//! [`read_frame`] always consumes the *entire* advertised body before
//! validating version or tag, so a recoverable decode error (unknown
//! version, unknown tag, malformed payload) leaves the stream in sync
//! and the server can answer with [`Frame::ErrorReply`] instead of
//! closing the connection. Only a length prefix above [`MAX_FRAME_LEN`]
//! or an I/O error is unrecoverable.

use crate::canon::JobSpec;
use crate::codec::{ByteReader, ByteWriter, DecodeError};
use std::io::{Read, Write};
use tempora_core::engine::Engine;

/// The protocol version this build speaks. Frames carrying any other
/// version decode to [`DecodeError::UnknownVersion`].
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on one frame's body length (16 MiB). Length prefixes
/// above this are rejected **before** any allocation.
pub const MAX_FRAME_LEN: u64 = 1 << 24;

const TAG_SUBMIT: u8 = 1;
const TAG_RUN: u8 = 2;
const TAG_REPORT: u8 = 3;
const TAG_ERROR: u8 = 4;

/// Typed failure category carried by [`Frame::ErrorReply`].
///
/// The resilience codes added for graceful degradation
/// ([`ErrorCode::GoingAway`], [`ErrorCode::Busy`],
/// [`ErrorCode::DeadlineExceeded`]) are *retry hints*: a well-behaved
/// client treats them as transient, backs off (honoring
/// [`ErrorCode::retry_after_ms`] when present) and retries — `RunSteps`
/// is idempotent by construction, every retry is bitwise-identical to
/// the first attempt. The wire encoding is append-only: new codes take
/// new tag values, old tags never change meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request frame failed to decode (the stream stayed in sync).
    BadFrame,
    /// The request's version byte is not [`PROTO_VERSION`].
    UnsupportedVersion,
    /// `PlanBuilder::build` rejected the spec.
    BuildFailed,
    /// `Plan::run` returned a non-poisoning error.
    RunFailed,
    /// The cached plan for this spec was poisoned by this request's own
    /// panic; the entry recovers (via `Plan::reset`) on the next
    /// request, so retrying is safe.
    Poisoned,
    /// Any other server-side failure.
    Internal,
    /// The server is draining for shutdown: this connection will be
    /// closed after this reply and no new work is accepted. Sent both as
    /// the answer to a request that arrives during the drain window and
    /// as an unsolicited farewell (`request_id == 0`) on idle
    /// connections. Reconnect (to a restarted instance) and retry.
    GoingAway,
    /// The server refused to take the work on — the connection limit or
    /// a cache entry's queue-depth bound was hit. Retry after
    /// `retry_after_ms` (with jitter on top).
    Busy {
        /// Server-suggested minimum backoff before retrying.
        retry_after_ms: u32,
    },
    /// The peer was too slow: a frame stayed half-read past the server's
    /// stall timeout (slow-loris defense) or a reply could not be
    /// written within the write timeout. The connection is closed after
    /// this reply; reconnect and retry.
    DeadlineExceeded,
}

impl ErrorCode {
    /// True when the failure is transient and the request (idempotent by
    /// construction) should be retried, possibly on a new connection.
    #[must_use]
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            ErrorCode::Poisoned
                | ErrorCode::GoingAway
                | ErrorCode::Busy { .. }
                | ErrorCode::DeadlineExceeded
        )
    }

    /// The server's minimum-backoff hint in milliseconds, when the code
    /// carries one.
    #[must_use]
    pub fn retry_after_ms(&self) -> Option<u32> {
        match self {
            ErrorCode::Busy { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }

    fn encode(self, w: &mut ByteWriter) {
        match self {
            ErrorCode::BadFrame => w.put_u8(1),
            ErrorCode::UnsupportedVersion => w.put_u8(2),
            ErrorCode::BuildFailed => w.put_u8(3),
            ErrorCode::RunFailed => w.put_u8(4),
            ErrorCode::Poisoned => w.put_u8(5),
            ErrorCode::Internal => w.put_u8(6),
            ErrorCode::GoingAway => w.put_u8(7),
            ErrorCode::Busy { retry_after_ms } => {
                w.put_u8(8);
                w.put_u32(retry_after_ms);
            }
            ErrorCode::DeadlineExceeded => w.put_u8(9),
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<ErrorCode, DecodeError> {
        Ok(match r.u8()? {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::BuildFailed,
            4 => ErrorCode::RunFailed,
            5 => ErrorCode::Poisoned,
            6 => ErrorCode::Internal,
            7 => ErrorCode::GoingAway,
            8 => ErrorCode::Busy {
                retry_after_ms: r.u32()?,
            },
            9 => ErrorCode::DeadlineExceeded,
            _ => return Err(DecodeError::BadValue { what: "error code" }),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorCode::BadFrame => f.write_str("bad-frame"),
            ErrorCode::UnsupportedVersion => f.write_str("unsupported-version"),
            ErrorCode::BuildFailed => f.write_str("build-failed"),
            ErrorCode::RunFailed => f.write_str("run-failed"),
            ErrorCode::Poisoned => f.write_str("poisoned"),
            ErrorCode::Internal => f.write_str("internal"),
            ErrorCode::GoingAway => f.write_str("going-away"),
            ErrorCode::Busy { retry_after_ms } => {
                write!(f, "busy (retry after {retry_after_ms}ms)")
            }
            ErrorCode::DeadlineExceeded => f.write_str("deadline-exceeded"),
        }
    }
}

/// What the server did for one `RunSteps` (or `SubmitProblem`, with
/// `steps == 0`): cache provenance, the solver's `Report` fields, a
/// digest of the resulting state, and service time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReply {
    /// True when the plan was served from cache (no build this request).
    pub cache_hit: bool,
    /// Lifetime builds of this cache entry (1 = built once, never
    /// rebuilt — the clone-free steady state).
    pub plan_builds: u64,
    /// Lifetime poison-recovery resets of this cache entry.
    pub resets: u64,
    /// Requests serviced in the same combining batch as this one
    /// (≥ 1; this request counts itself).
    pub batched: u32,
    /// Resolved engine (`Report::engine`), if the method dispatches.
    pub engine: Option<Engine>,
    /// Time steps advanced (`Report::steps`).
    pub steps: u64,
    /// Worker threads of the plan's pool (`Report::threads`).
    pub threads: u32,
    /// Whether every pool worker was pinned (`Report::pinned`).
    pub pinned: bool,
    /// Tile geometry `(tiles, block, height)` for tiled plans
    /// (`Report::tiles`).
    pub tiles: Option<(u64, u64, u64)>,
    /// The LCS length for LCS problems (`Report::lcs_length`).
    pub lcs_length: Option<i32>,
    /// FNV-1a digest of the full output state
    /// ([`crate::canon::state_digest`]); lets clients assert bitwise
    /// identity against a local reference run.
    pub digest: u64,
    /// Server-side service time for this request, in nanoseconds
    /// (queueing + run, excluding socket I/O).
    pub server_ns: u64,
}

impl RunReply {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.cache_hit as u8);
        w.put_u64(self.plan_builds);
        w.put_u64(self.resets);
        w.put_u32(self.batched);
        w.put_u8(match self.engine {
            None => 0,
            Some(Engine::Portable) => 1,
            Some(Engine::Avx2) => 2,
        });
        w.put_u64(self.steps);
        w.put_u32(self.threads);
        w.put_u8(self.pinned as u8);
        match self.tiles {
            None => w.put_u8(0),
            Some((t, b, h)) => {
                w.put_u8(1);
                w.put_u64(t);
                w.put_u64(b);
                w.put_u64(h);
            }
        }
        match self.lcs_length {
            None => w.put_u8(0),
            Some(l) => {
                w.put_u8(1);
                w.put_i32(l);
            }
        }
        w.put_u64(self.digest);
        w.put_u64(self.server_ns);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<RunReply, DecodeError> {
        let cache_hit = flag(r, "cache-hit flag")?;
        let plan_builds = r.u64()?;
        let resets = r.u64()?;
        let batched = r.u32()?;
        let engine = match r.u8()? {
            0 => None,
            1 => Some(Engine::Portable),
            2 => Some(Engine::Avx2),
            _ => return Err(DecodeError::BadValue { what: "engine tag" }),
        };
        let steps = r.u64()?;
        let threads = r.u32()?;
        let pinned = flag(r, "pinned flag")?;
        let tiles = match r.u8()? {
            0 => None,
            1 => Some((r.u64()?, r.u64()?, r.u64()?)),
            _ => {
                return Err(DecodeError::BadValue {
                    what: "tiles option tag",
                })
            }
        };
        let lcs_length = match r.u8()? {
            0 => None,
            1 => Some(r.i32()?),
            _ => {
                return Err(DecodeError::BadValue {
                    what: "lcs-length option tag",
                })
            }
        };
        Ok(RunReply {
            cache_hit,
            plan_builds,
            resets,
            batched,
            engine,
            steps,
            threads,
            pinned,
            tiles,
            lcs_length,
            digest: r.u64()?,
            server_ns: r.u64()?,
        })
    }
}

fn flag(r: &mut ByteReader<'_>, what: &'static str) -> Result<bool, DecodeError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(DecodeError::BadValue { what }),
    }
}

/// One protocol message. See the crate docs for the frame table.
///
/// # Request-id 0 is reserved
///
/// Correlation ids are client-chosen, but **id 0 is reserved for
/// uncorrelated server messages**: an [`Frame::ErrorReply`] answering a
/// request too malformed to carry an id, or an unsolicited
/// [`ErrorCode::GoingAway`] farewell during shutdown drain. Clients MUST
/// start their id counter at 1 and never wrap back onto 0, so an
/// uncorrelated reply can never be mistaken for the answer to a real
/// request (`tempora_client` enforces this).
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: intern (prepare) a plan for `spec` without
    /// running it. Replied with [`Frame::ReportReply`] (`steps == 0`).
    SubmitProblem {
        /// Client-chosen correlation id (≥ 1; 0 is reserved), echoed in
        /// the reply.
        request_id: u64,
        /// The problem and solver configuration to compile.
        spec: JobSpec,
    },
    /// Client → server: run `spec`'s plan over its full time extent
    /// against a fresh state deterministically filled from `seed`.
    RunSteps {
        /// Client-chosen correlation id (≥ 1; 0 is reserved), echoed in
        /// the reply.
        request_id: u64,
        /// The problem and solver configuration to run.
        spec: JobSpec,
        /// Seed for the server-side deterministic initial state.
        seed: u64,
    },
    /// Server → client: success.
    ReportReply {
        /// The request this answers.
        request_id: u64,
        /// What executed.
        reply: RunReply,
    },
    /// Server → client: typed failure. `request_id` is 0 when the
    /// request was too malformed to carry one.
    ErrorReply {
        /// The request this answers (0 if unknown).
        request_id: u64,
        /// Failure category.
        code: ErrorCode,
        /// Human-readable detail (bounded; see
        /// [`crate::codec::MAX_TEXT_LEN`]).
        message: String,
    },
}

impl Frame {
    /// Encode this frame's *body* (version + tag + payload), without the
    /// length prefix.
    #[must_use]
    pub fn encode_body(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(PROTO_VERSION);
        match self {
            Frame::SubmitProblem { request_id, spec } => {
                w.put_u8(TAG_SUBMIT);
                w.put_u64(*request_id);
                spec.encode(&mut w);
            }
            Frame::RunSteps {
                request_id,
                spec,
                seed,
            } => {
                w.put_u8(TAG_RUN);
                w.put_u64(*request_id);
                spec.encode(&mut w);
                w.put_u64(*seed);
            }
            Frame::ReportReply { request_id, reply } => {
                w.put_u8(TAG_REPORT);
                w.put_u64(*request_id);
                reply.encode(&mut w);
            }
            Frame::ErrorReply {
                request_id,
                code,
                message,
            } => {
                w.put_u8(TAG_ERROR);
                w.put_u64(*request_id);
                code.encode(&mut w);
                w.put_str(message);
            }
        }
        w.into_bytes()
    }

    /// Decode one frame *body* (as framed by the length prefix).
    ///
    /// The caller has already consumed the whole body from the stream,
    /// so any error here is recoverable: reply and keep reading.
    pub fn decode_body(body: &[u8]) -> Result<Frame, DecodeError> {
        let mut r = ByteReader::new(body);
        let version = r.u8()?;
        if version != PROTO_VERSION {
            return Err(DecodeError::UnknownVersion { got: version });
        }
        let tag = r.u8()?;
        let frame = match tag {
            TAG_SUBMIT => Frame::SubmitProblem {
                request_id: r.u64()?,
                spec: JobSpec::decode(&mut r)?,
            },
            TAG_RUN => Frame::RunSteps {
                request_id: r.u64()?,
                spec: JobSpec::decode(&mut r)?,
                seed: r.u64()?,
            },
            TAG_REPORT => Frame::ReportReply {
                request_id: r.u64()?,
                reply: RunReply::decode(&mut r)?,
            },
            TAG_ERROR => Frame::ErrorReply {
                request_id: r.u64()?,
                code: ErrorCode::decode(&mut r)?,
                message: r.str()?,
            },
            got => return Err(DecodeError::UnknownTag { got }),
        };
        r.finish()?;
        Ok(frame)
    }

    /// The correlation id carried by this frame (0 for none).
    #[must_use]
    pub fn request_id(&self) -> u64 {
        match self {
            Frame::SubmitProblem { request_id, .. }
            | Frame::RunSteps { request_id, .. }
            | Frame::ReportReply { request_id, .. }
            | Frame::ErrorReply { request_id, .. } => *request_id,
        }
    }
}

/// A stream-level protocol failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer's bytes failed to decode. `recoverable()` tells whether
    /// the stream is still in sync.
    Decode(DecodeError),
}

impl WireError {
    /// True when the whole frame body was consumed before the failure,
    /// so the connection can continue after an `ErrorReply`. False for
    /// I/O errors and for length prefixes above [`MAX_FRAME_LEN`]
    /// (where the remaining stream contents are unknowable).
    #[must_use]
    pub fn recoverable(&self) -> bool {
        match self {
            WireError::Io(_) => false,
            WireError::Decode(DecodeError::FrameTooLarge { .. }) => false,
            WireError::Decode(_) => true,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Decode(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> WireError {
        WireError::Decode(e)
    }
}

/// Write one length-prefixed frame and flush.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let body = frame.encode_body();
    debug_assert!((body.len() as u64) <= MAX_FRAME_LEN);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// What one [`FrameAccum::poll`] produced.
#[derive(Debug)]
pub enum FramePoll {
    /// A whole frame arrived (and decoded).
    Frame(Frame),
    /// Clean EOF at a frame boundary (the peer hung up between frames).
    Eof,
    /// The read would block (the socket's read timeout elapsed).
    /// `mid_frame` says whether part of the next frame has already been
    /// consumed into the accumulator — a `true` here that persists is a
    /// stalled peer (slow-loris); a `false` is mere idleness.
    Pending {
        /// True when the accumulator holds a partial frame.
        mid_frame: bool,
    },
}

/// Incremental frame reader that survives read timeouts.
///
/// [`read_frame`] blocks until a whole frame arrives, which pins the
/// reading thread for as long as the peer dawdles. `FrameAccum` instead
/// accumulates partial bytes across calls: give the socket a short read
/// timeout and call [`FrameAccum::poll`] in a loop — every
/// [`FramePoll::Pending`] wakeup is a chance to check shutdown flags,
/// idle budgets and stall deadlines without losing a half-received
/// frame. This is the server's slow-peer defense primitive.
#[derive(Debug, Default)]
pub struct FrameAccum {
    prefix: [u8; 4],
    got_prefix: usize,
    /// `Some(body)` once the length prefix is complete; `got_body` bytes
    /// of it are filled so far.
    body: Option<Vec<u8>>,
    got_body: usize,
}

impl FrameAccum {
    /// An empty accumulator, at a frame boundary.
    #[must_use]
    pub fn new() -> FrameAccum {
        FrameAccum::default()
    }

    /// True when part of the next frame has been consumed — a timeout in
    /// this state means the peer stalled mid-frame and the stream cannot
    /// be resynchronized by anything but closing it.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.got_prefix > 0 || self.body.is_some()
    }

    /// Drive the accumulator with whatever `r` has available.
    ///
    /// Returns [`FramePoll::Pending`] when the underlying read times out
    /// (`WouldBlock`/`TimedOut`), preserving all bytes consumed so far.
    /// Error semantics match [`read_frame`]: oversized length prefixes
    /// are unrecoverable, any other [`DecodeError`] is returned with the
    /// stream in sync (the accumulator is reset to the next frame
    /// boundary).
    pub fn poll(&mut self, r: &mut impl Read) -> Result<FramePoll, WireError> {
        while self.got_prefix < 4 {
            match r.read(&mut self.prefix[self.got_prefix..]) {
                Ok(0) if self.got_prefix == 0 => return Ok(FramePoll::Eof),
                Ok(0) => {
                    return Err(WireError::Decode(DecodeError::Truncated {
                        needed: 4 - self.got_prefix,
                        have: 0,
                    }))
                }
                Ok(n) => self.got_prefix += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if is_timeout(&e) => {
                    return Ok(FramePoll::Pending {
                        mid_frame: self.mid_frame(),
                    })
                }
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        if self.body.is_none() {
            let len = u32::from_le_bytes(self.prefix) as u64;
            if len > MAX_FRAME_LEN {
                return Err(WireError::Decode(DecodeError::FrameTooLarge {
                    len,
                    max: MAX_FRAME_LEN,
                }));
            }
            self.body = Some(vec![0u8; len as usize]);
            self.got_body = 0;
        }
        loop {
            // Justification (panic-justification): the branch above
            // guarantees `body` is `Some` on every path reaching here.
            let body = self.body.as_mut().expect("length prefix parsed");
            if self.got_body == body.len() {
                break;
            }
            match r.read(&mut body[self.got_body..]) {
                Ok(0) => {
                    let needed = body.len() - self.got_body;
                    *self = FrameAccum::new();
                    return Err(WireError::Decode(DecodeError::Truncated {
                        needed,
                        have: 0,
                    }));
                }
                Ok(n) => self.got_body += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if is_timeout(&e) => return Ok(FramePoll::Pending { mid_frame: true }),
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        // Justification (panic-justification): `body` was `Some` in the
        // loop above and nothing cleared it since.
        let body = self.body.take().expect("body buffer filled");
        *self = FrameAccum::new();
        Ok(FramePoll::Frame(Frame::decode_body(&body)?))
    }
}

/// True for the error kinds a socket read deadline produces.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up between frames). A length prefix above [`MAX_FRAME_LEN`] is
/// rejected before any allocation and is **not** recoverable; any other
/// [`DecodeError`] is returned after the full body was consumed, so the
/// caller may reply and keep serving the connection. A read timeout on
/// the underlying socket surfaces as an unrecoverable `Io` error — use
/// [`FrameAccum`] to keep the stream alive across timeouts.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut accum = FrameAccum::new();
    match accum.poll(r)? {
        FramePoll::Frame(frame) => Ok(Some(frame)),
        FramePoll::Eof => Ok(None),
        FramePoll::Pending { .. } => Err(WireError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "read timed out mid-frame",
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::JobSpec;
    use tempora_plan::Problem;
    use tempora_stencil::Heat1dCoeffs;

    fn spec() -> JobSpec {
        JobSpec::new(Problem::heat1d(256, 8, Heat1dCoeffs::classic(0.25)))
    }

    #[test]
    fn stream_roundtrip_and_clean_eof() {
        let frames = vec![
            Frame::SubmitProblem {
                request_id: 1,
                spec: spec(),
            },
            Frame::RunSteps {
                request_id: 2,
                spec: spec(),
                seed: 42,
            },
            Frame::ErrorReply {
                request_id: 3,
                code: ErrorCode::Poisoned,
                message: "cached plan poisoned".into(),
            },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), *f);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(
            err,
            WireError::Decode(DecodeError::FrameTooLarge { .. })
        ));
        assert!(!err.recoverable());
    }

    #[test]
    fn resilience_error_codes_roundtrip() {
        for code in [
            ErrorCode::GoingAway,
            ErrorCode::Busy {
                retry_after_ms: 1234,
            },
            ErrorCode::DeadlineExceeded,
        ] {
            let frame = Frame::ErrorReply {
                request_id: 0,
                code,
                message: "drain".into(),
            };
            let decoded = Frame::decode_body(&frame.encode_body()).unwrap();
            assert_eq!(decoded, frame);
            assert!(code.retryable());
        }
        assert_eq!(
            ErrorCode::Busy { retry_after_ms: 25 }.retry_after_ms(),
            Some(25)
        );
        assert_eq!(ErrorCode::GoingAway.retry_after_ms(), None);
        assert!(!ErrorCode::BuildFailed.retryable());
        assert!(ErrorCode::Poisoned.retryable());
    }

    /// A reader that dribbles one byte per call, interleaving timeouts,
    /// to model a slow peer against [`FrameAccum`].
    struct Dribble {
        bytes: Vec<u8>,
        at: usize,
        /// Return a WouldBlock before each real byte.
        starve: bool,
    }

    impl std::io::Read for Dribble {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.starve {
                self.starve = false;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "starved",
                ));
            }
            self.starve = true;
            if self.at == self.bytes.len() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.at];
            self.at += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_accum_survives_timeouts_mid_frame() {
        let frame = Frame::RunSteps {
            request_id: 7,
            spec: spec(),
            seed: 3,
        };
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame).unwrap();
        write_frame(&mut bytes, &frame).unwrap();
        let mut r = Dribble {
            bytes,
            at: 0,
            starve: true,
        };
        let mut accum = FrameAccum::new();
        let mut frames = 0;
        let mut pendings = 0;
        loop {
            match accum.poll(&mut r).unwrap() {
                FramePoll::Frame(got) => {
                    assert_eq!(got, frame);
                    frames += 1;
                }
                FramePoll::Eof => break,
                FramePoll::Pending { mid_frame } => {
                    pendings += 1;
                    // After the first byte of a frame and before its
                    // last, the accumulator must report mid-frame.
                    assert_eq!(mid_frame, accum.mid_frame());
                }
            }
        }
        assert_eq!(frames, 2, "both dribbled frames decode");
        assert!(pendings > 8, "every byte was preceded by a timeout");
    }

    #[test]
    fn frame_accum_pending_idle_vs_stalled() {
        let frame = Frame::SubmitProblem {
            request_id: 1,
            spec: spec(),
        };
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &frame).unwrap();
        // Only half the frame arrives, then endless timeouts.
        bytes.truncate(bytes.len() / 2);
        struct HalfThenBlock {
            bytes: Vec<u8>,
            at: usize,
        }
        impl std::io::Read for HalfThenBlock {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.at == self.bytes.len() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        "stalled",
                    ));
                }
                let n = buf.len().min(self.bytes.len() - self.at);
                buf[..n].copy_from_slice(&self.bytes[self.at..self.at + n]);
                self.at += n;
                Ok(n)
            }
        }
        // Idle: nothing has arrived at all.
        let mut idle = HalfThenBlock {
            bytes: Vec::new(),
            at: 0,
        };
        let mut accum = FrameAccum::new();
        assert!(matches!(
            accum.poll(&mut idle).unwrap(),
            FramePoll::Pending { mid_frame: false }
        ));
        assert!(!accum.mid_frame());
        // Stalled: half a frame arrived, then silence.
        let mut stalled = HalfThenBlock { bytes, at: 0 };
        let mut accum = FrameAccum::new();
        assert!(matches!(
            accum.poll(&mut stalled).unwrap(),
            FramePoll::Pending { mid_frame: true }
        ));
        assert!(accum.mid_frame());
    }

    #[test]
    fn unknown_version_is_recoverable() {
        let mut body = Frame::SubmitProblem {
            request_id: 9,
            spec: spec(),
        }
        .encode_body();
        body[0] = PROTO_VERSION + 1;
        let err = Frame::decode_body(&body).unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnknownVersion {
                got: PROTO_VERSION + 1
            }
        );
        assert!(WireError::from(err).recoverable());
    }
}
