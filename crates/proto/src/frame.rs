//! Versioned, length-prefixed frames and their stream I/O.
//!
//! Wire layout of one frame:
//!
//! ```text
//! len: u32le            — body length, bounded by MAX_FRAME_LEN
//! body[0]: u8           — PROTO_VERSION
//! body[1]: u8           — frame tag
//! body[2..]: payload    — tag-specific fields (little-endian)
//! ```
//!
//! [`read_frame`] always consumes the *entire* advertised body before
//! validating version or tag, so a recoverable decode error (unknown
//! version, unknown tag, malformed payload) leaves the stream in sync
//! and the server can answer with [`Frame::ErrorReply`] instead of
//! closing the connection. Only a length prefix above [`MAX_FRAME_LEN`]
//! or an I/O error is unrecoverable.

use crate::canon::JobSpec;
use crate::codec::{ByteReader, ByteWriter, DecodeError};
use std::io::{Read, Write};
use tempora_core::engine::Engine;

/// The protocol version this build speaks. Frames carrying any other
/// version decode to [`DecodeError::UnknownVersion`].
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on one frame's body length (16 MiB). Length prefixes
/// above this are rejected **before** any allocation.
pub const MAX_FRAME_LEN: u64 = 1 << 24;

const TAG_SUBMIT: u8 = 1;
const TAG_RUN: u8 = 2;
const TAG_REPORT: u8 = 3;
const TAG_ERROR: u8 = 4;

/// Typed failure category carried by [`Frame::ErrorReply`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// The request frame failed to decode (the stream stayed in sync).
    BadFrame,
    /// The request's version byte is not [`PROTO_VERSION`].
    UnsupportedVersion,
    /// `PlanBuilder::build` rejected the spec.
    BuildFailed,
    /// `Plan::run` returned a non-poisoning error.
    RunFailed,
    /// The cached plan for this spec is poisoned and recovery also
    /// failed; the entry was evicted — retrying will rebuild.
    Poisoned,
    /// Any other server-side failure.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::BuildFailed => 3,
            ErrorCode::RunFailed => 4,
            ErrorCode::Poisoned => 5,
            ErrorCode::Internal => 6,
        }
    }

    fn from_u8(v: u8) -> Result<ErrorCode, DecodeError> {
        Ok(match v {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::BuildFailed,
            4 => ErrorCode::RunFailed,
            5 => ErrorCode::Poisoned,
            6 => ErrorCode::Internal,
            _ => return Err(DecodeError::BadValue { what: "error code" }),
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::BuildFailed => "build-failed",
            ErrorCode::RunFailed => "run-failed",
            ErrorCode::Poisoned => "poisoned",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// What the server did for one `RunSteps` (or `SubmitProblem`, with
/// `steps == 0`): cache provenance, the solver's `Report` fields, a
/// digest of the resulting state, and service time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunReply {
    /// True when the plan was served from cache (no build this request).
    pub cache_hit: bool,
    /// Lifetime builds of this cache entry (1 = built once, never
    /// rebuilt — the clone-free steady state).
    pub plan_builds: u64,
    /// Lifetime poison-recovery resets of this cache entry.
    pub resets: u64,
    /// Requests serviced in the same combining batch as this one
    /// (≥ 1; this request counts itself).
    pub batched: u32,
    /// Resolved engine (`Report::engine`), if the method dispatches.
    pub engine: Option<Engine>,
    /// Time steps advanced (`Report::steps`).
    pub steps: u64,
    /// Worker threads of the plan's pool (`Report::threads`).
    pub threads: u32,
    /// Whether every pool worker was pinned (`Report::pinned`).
    pub pinned: bool,
    /// Tile geometry `(tiles, block, height)` for tiled plans
    /// (`Report::tiles`).
    pub tiles: Option<(u64, u64, u64)>,
    /// The LCS length for LCS problems (`Report::lcs_length`).
    pub lcs_length: Option<i32>,
    /// FNV-1a digest of the full output state
    /// ([`crate::canon::state_digest`]); lets clients assert bitwise
    /// identity against a local reference run.
    pub digest: u64,
    /// Server-side service time for this request, in nanoseconds
    /// (queueing + run, excluding socket I/O).
    pub server_ns: u64,
}

impl RunReply {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(self.cache_hit as u8);
        w.put_u64(self.plan_builds);
        w.put_u64(self.resets);
        w.put_u32(self.batched);
        w.put_u8(match self.engine {
            None => 0,
            Some(Engine::Portable) => 1,
            Some(Engine::Avx2) => 2,
        });
        w.put_u64(self.steps);
        w.put_u32(self.threads);
        w.put_u8(self.pinned as u8);
        match self.tiles {
            None => w.put_u8(0),
            Some((t, b, h)) => {
                w.put_u8(1);
                w.put_u64(t);
                w.put_u64(b);
                w.put_u64(h);
            }
        }
        match self.lcs_length {
            None => w.put_u8(0),
            Some(l) => {
                w.put_u8(1);
                w.put_i32(l);
            }
        }
        w.put_u64(self.digest);
        w.put_u64(self.server_ns);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<RunReply, DecodeError> {
        let cache_hit = flag(r, "cache-hit flag")?;
        let plan_builds = r.u64()?;
        let resets = r.u64()?;
        let batched = r.u32()?;
        let engine = match r.u8()? {
            0 => None,
            1 => Some(Engine::Portable),
            2 => Some(Engine::Avx2),
            _ => return Err(DecodeError::BadValue { what: "engine tag" }),
        };
        let steps = r.u64()?;
        let threads = r.u32()?;
        let pinned = flag(r, "pinned flag")?;
        let tiles = match r.u8()? {
            0 => None,
            1 => Some((r.u64()?, r.u64()?, r.u64()?)),
            _ => {
                return Err(DecodeError::BadValue {
                    what: "tiles option tag",
                })
            }
        };
        let lcs_length = match r.u8()? {
            0 => None,
            1 => Some(r.i32()?),
            _ => {
                return Err(DecodeError::BadValue {
                    what: "lcs-length option tag",
                })
            }
        };
        Ok(RunReply {
            cache_hit,
            plan_builds,
            resets,
            batched,
            engine,
            steps,
            threads,
            pinned,
            tiles,
            lcs_length,
            digest: r.u64()?,
            server_ns: r.u64()?,
        })
    }
}

fn flag(r: &mut ByteReader<'_>, what: &'static str) -> Result<bool, DecodeError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(DecodeError::BadValue { what }),
    }
}

/// One protocol message. See the crate docs for the frame table.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: intern (prepare) a plan for `spec` without
    /// running it. Replied with [`Frame::ReportReply`] (`steps == 0`).
    SubmitProblem {
        /// Client-chosen correlation id, echoed in the reply.
        request_id: u64,
        /// The problem and solver configuration to compile.
        spec: JobSpec,
    },
    /// Client → server: run `spec`'s plan over its full time extent
    /// against a fresh state deterministically filled from `seed`.
    RunSteps {
        /// Client-chosen correlation id, echoed in the reply.
        request_id: u64,
        /// The problem and solver configuration to run.
        spec: JobSpec,
        /// Seed for the server-side deterministic initial state.
        seed: u64,
    },
    /// Server → client: success.
    ReportReply {
        /// The request this answers.
        request_id: u64,
        /// What executed.
        reply: RunReply,
    },
    /// Server → client: typed failure. `request_id` is 0 when the
    /// request was too malformed to carry one.
    ErrorReply {
        /// The request this answers (0 if unknown).
        request_id: u64,
        /// Failure category.
        code: ErrorCode,
        /// Human-readable detail (bounded; see
        /// [`crate::codec::MAX_TEXT_LEN`]).
        message: String,
    },
}

impl Frame {
    /// Encode this frame's *body* (version + tag + payload), without the
    /// length prefix.
    #[must_use]
    pub fn encode_body(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(PROTO_VERSION);
        match self {
            Frame::SubmitProblem { request_id, spec } => {
                w.put_u8(TAG_SUBMIT);
                w.put_u64(*request_id);
                spec.encode(&mut w);
            }
            Frame::RunSteps {
                request_id,
                spec,
                seed,
            } => {
                w.put_u8(TAG_RUN);
                w.put_u64(*request_id);
                spec.encode(&mut w);
                w.put_u64(*seed);
            }
            Frame::ReportReply { request_id, reply } => {
                w.put_u8(TAG_REPORT);
                w.put_u64(*request_id);
                reply.encode(&mut w);
            }
            Frame::ErrorReply {
                request_id,
                code,
                message,
            } => {
                w.put_u8(TAG_ERROR);
                w.put_u64(*request_id);
                w.put_u8(code.to_u8());
                w.put_str(message);
            }
        }
        w.into_bytes()
    }

    /// Decode one frame *body* (as framed by the length prefix).
    ///
    /// The caller has already consumed the whole body from the stream,
    /// so any error here is recoverable: reply and keep reading.
    pub fn decode_body(body: &[u8]) -> Result<Frame, DecodeError> {
        let mut r = ByteReader::new(body);
        let version = r.u8()?;
        if version != PROTO_VERSION {
            return Err(DecodeError::UnknownVersion { got: version });
        }
        let tag = r.u8()?;
        let frame = match tag {
            TAG_SUBMIT => Frame::SubmitProblem {
                request_id: r.u64()?,
                spec: JobSpec::decode(&mut r)?,
            },
            TAG_RUN => Frame::RunSteps {
                request_id: r.u64()?,
                spec: JobSpec::decode(&mut r)?,
                seed: r.u64()?,
            },
            TAG_REPORT => Frame::ReportReply {
                request_id: r.u64()?,
                reply: RunReply::decode(&mut r)?,
            },
            TAG_ERROR => Frame::ErrorReply {
                request_id: r.u64()?,
                code: ErrorCode::from_u8(r.u8()?)?,
                message: r.str()?,
            },
            got => return Err(DecodeError::UnknownTag { got }),
        };
        r.finish()?;
        Ok(frame)
    }

    /// The correlation id carried by this frame (0 for none).
    #[must_use]
    pub fn request_id(&self) -> u64 {
        match self {
            Frame::SubmitProblem { request_id, .. }
            | Frame::RunSteps { request_id, .. }
            | Frame::ReportReply { request_id, .. }
            | Frame::ErrorReply { request_id, .. } => *request_id,
        }
    }
}

/// A stream-level protocol failure.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(std::io::Error),
    /// The peer's bytes failed to decode. `recoverable()` tells whether
    /// the stream is still in sync.
    Decode(DecodeError),
}

impl WireError {
    /// True when the whole frame body was consumed before the failure,
    /// so the connection can continue after an `ErrorReply`. False for
    /// I/O errors and for length prefixes above [`MAX_FRAME_LEN`]
    /// (where the remaining stream contents are unknowable).
    #[must_use]
    pub fn recoverable(&self) -> bool {
        match self {
            WireError::Io(_) => false,
            WireError::Decode(DecodeError::FrameTooLarge { .. }) => false,
            WireError::Decode(_) => true,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Decode(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> WireError {
        WireError::Decode(e)
    }
}

/// Write one length-prefixed frame and flush.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let body = frame.encode_body();
    debug_assert!((body.len() as u64) <= MAX_FRAME_LEN);
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary (the peer hung
/// up between frames). A length prefix above [`MAX_FRAME_LEN`] is
/// rejected before any allocation and is **not** recoverable; any other
/// [`DecodeError`] is returned after the full body was consumed, so the
/// caller may reply and keep serving the connection.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None), // clean EOF between frames
            Ok(0) => {
                return Err(WireError::Decode(DecodeError::Truncated {
                    needed: prefix.len() - got,
                    have: 0,
                }))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as u64;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Decode(DecodeError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        }));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(Frame::decode_body(&body)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::JobSpec;
    use tempora_plan::Problem;
    use tempora_stencil::Heat1dCoeffs;

    fn spec() -> JobSpec {
        JobSpec::new(Problem::heat1d(256, 8, Heat1dCoeffs::classic(0.25)))
    }

    #[test]
    fn stream_roundtrip_and_clean_eof() {
        let frames = vec![
            Frame::SubmitProblem {
                request_id: 1,
                spec: spec(),
            },
            Frame::RunSteps {
                request_id: 2,
                spec: spec(),
                seed: 42,
            },
            Frame::ErrorReply {
                request_id: 3,
                code: ErrorCode::Poisoned,
                message: "cached plan poisoned".into(),
            },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).unwrap();
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), *f);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(bytes)).unwrap_err();
        assert!(matches!(
            err,
            WireError::Decode(DecodeError::FrameTooLarge { .. })
        ));
        assert!(!err.recoverable());
    }

    #[test]
    fn unknown_version_is_recoverable() {
        let mut body = Frame::SubmitProblem {
            request_id: 9,
            spec: spec(),
        }
        .encode_body();
        body[0] = PROTO_VERSION + 1;
        let err = Frame::decode_body(&body).unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnknownVersion {
                got: PROTO_VERSION + 1
            }
        );
        assert!(WireError::from(err).recoverable());
    }
}
