//! Ghost-zone (overlapped) temporal band tiling for Jacobi stencils.
//!
//! The paper parallelizes its Jacobi benchmarks with diamond tiling on
//! the outermost space loop (§3.4). This reproduction substitutes the
//! closest temporal-blocking scheme that composes *unchanged* with the
//! rectangular temporal engines: **overlapped (ghost-zone) tiling**
//! (Meng & Skadron, the paper's reference \[22\]; Ding & He's ghost-cell
//! expansion, reference \[9\]). Both schemes share the properties the
//! evaluation depends on — every tile advances `VL` time levels per
//! synchronization, all tiles of a band run concurrently, and the
//! in-tile kernel is exactly the sequential engine — so the scalability
//! *shape* of Figure 4(b/d/f/h/j) is preserved; the ghost scheme pays a
//! small redundant-compute overhead (`2·height` columns per tile per band)
//! instead of the diamond's phase alternation. The substitution is
//! recorded in DESIGN.md.
//!
//! # Reusable workspaces
//!
//! Each dimension exposes a **workspace** type — [`GhostJacobi1d`],
//! [`GhostJacobi2d`], [`GhostJacobi3d`] — that resolves the geometry and
//! the in-tile engine once, allocates the tile arena and temporal scratch
//! once, and is then driven by repeated `advance(&mut grid, &pool)` calls
//! that run **allocation-free**. This is the execution layer behind
//! `tempora_plan::Plan`; the old `run_jacobi_*` free functions remain as
//! deprecated one-shot wrappers.
//!
//! # Engine dispatch
//!
//! The temporal in-tile kernel goes through the same dispatch as the
//! sequential engines: every workspace takes a [`Select`], resolves it
//! **once** against the kernel's AVX2 capability ([`Avx2Exec1d`] and
//! friends) and the tile geometry, and reports the resolved [`Engine`]
//! so the bench harness can record which steady state the parallel
//! series actually measured. Degenerate geometries — no full band, or
//! tiles too narrow to host a vector steady state — resolve portable,
//! because every engine would run the identical scalar schedule there.
//!
//! # Correctness (contamination argument)
//!
//! Each tile copies its block plus `height + 1` extra columns per side into a
//! private buffer and advances the buffer `height` levels treating the buffer
//! ends as Dirichlet cells. The values near the buffer edge are wrong
//! (they use the fake boundary), but a radius-1 stencil propagates the
//! error at most one column per level, so after `height` levels the
//! invalid region is exactly the `height` outermost columns per side — strictly
//! inside the ghost. The written-back interior is bit-identical to the
//! sequential result.
//!
//! # Parallel discipline
//!
//! Each band is two barrier-separated phases: **copy-in** (tiles read the
//! shared array, write only their private buffers) and **advance +
//! write-back** (tiles write only their own disjoint blocks, read nothing
//! shared). The pool barrier between the phases is what makes the
//! overlapping ghost reads race-free. Per-tile scratch slots are touched
//! only by their owning tile.
//!
//! Both phases run under [`Pool::for_each_owned`] **static ownership**:
//! tile `t` is advanced by the same worker in every band of every
//! `advance` call, and the workspaces' `fault_in` methods first-touch
//! each tile's arena through the pool with the *same* owner map, so on
//! NUMA machines a tile's pages live on the node of the worker that
//! computes it.

use tempora_core::engine::{Avx2Exec1d, Avx2Exec2d, Avx2Exec3d, Engine, Select};
use tempora_core::kernels::{Kernel2d, Kernel3d, Nbhd, Nbhd3};
use tempora_core::{t1d, t2d, t3d};
use tempora_grid::{Boundary, Grid1, Grid2, Grid3};
use tempora_parallel::{Pool, SyncSlice};
use tempora_simd::{Pack, Scalar};

/// Which in-tile kernel advances a ghost buffer by `VL` levels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Scalar in-place steps (the paper's "scalar" parallel curves).
    Scalar,
    /// Spatial multi-load vectorization (the paper's "auto" curves).
    Auto,
    /// Temporal vectorization with the given space stride (the paper's
    /// "our" curves); the concrete steady state — portable or AVX2 — is
    /// resolved from the runner's [`Select`].
    Temporal(usize),
}

/// Tile extents along the banded dimension: interior block `[a, b]` and
/// ghost-extended source range `[lo, hi]` (global coordinates).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileExtent {
    /// First owned cell.
    pub a: usize,
    /// Last owned cell.
    pub b: usize,
    /// First copied cell (ghost start, may be a halo cell).
    pub lo: usize,
    /// Last copied cell (ghost end, may be a halo cell).
    pub hi: usize,
}

/// Compute the extents of tile `t` for interior size `n`, block width
/// `block` and ghost width `ghost`.
pub fn tile_extent(t: usize, n: usize, block: usize, ghost: usize) -> TileExtent {
    let a = t * block + 1;
    let b = ((t + 1) * block).min(n);
    TileExtent {
        a,
        b,
        lo: a.saturating_sub(ghost),
        hi: (b + ghost).min(n + 1),
    }
}

/// Resolve the in-tile engine for a temporal ghost run: the kernel must
/// have an AVX2 tile at this stride, at least one full band must run, and
/// **every** tile buffer must be wide enough to host the vector steady
/// state (`nb ≥ VL·s`) — otherwise some tile would silently run the
/// scalar fallback schedule and the reported engine would misname the
/// instruction mix.
fn resolve_ghost<const VL: usize>(
    sel: Select,
    has_kernel_avx2: bool,
    n: usize,
    block: usize,
    ghost: usize,
    bands: usize,
    s: usize,
) -> Engine {
    let ntiles = n.div_ceil(block);
    let vectorizable = bands > 0
        && (0..ntiles).all(|t| {
            let e = tile_extent(t, n, block, ghost);
            // Buffer interior nb = hi - lo - 1, tested against the
            // engines' own vector-path minimum so this check can never
            // drift from the in-tile fallback condition.
            e.hi - e.lo > t1d::min_vector_n::<VL>(s)
        });
    sel.resolve(has_kernel_avx2 && vectorizable)
}

/// One multi-load (spatially vectorized) Jacobi step on a 1-D buffer:
/// `dst[1..=n]` from `src`, halos untouched. Bit-identical to the
/// `multiload` baseline; exposed so sequential multi-load execution can
/// ping-pong caller-owned buffers without per-step allocation.
pub fn auto_step_1d<K: Avx2Exec1d>(src: &[f64], dst: &mut [f64], n: usize, kern: &K) {
    const N: usize = 4;
    let mut x = 1;
    while x + N <= n + 1 {
        let l = Pack::<f64, N>::load(src, x - 1);
        let m = Pack::<f64, N>::load(src, x);
        let r = Pack::<f64, N>::load(src, x + 1);
        kern.pack(l, m, r).store(dst, x);
        x += N;
    }
    for x in x..=n {
        dst[x] = kern.scalar(0.0, src[x - 1], src[x], src[x + 1]);
    }
}

// ---------------------------------------------------------------------
// 1-D workspace
// ---------------------------------------------------------------------

/// Reusable ghost-zone workspace for 1-D Jacobi band tiling: geometry and
/// in-tile engine resolved once in [`GhostJacobi1d::new`], tile arena and
/// temporal scratch allocated once, then reused by every
/// [`GhostJacobi1d::advance`] call — the band loop is allocation-free.
pub struct GhostJacobi1d<K: Avx2Exec1d> {
    kern: K,
    steps: usize,
    block: usize,
    height: usize,
    mode: Mode,
    engine: Option<Engine>,
    n: usize,
    ntiles: usize,
    buf_len: usize,
    bands: usize,
    arena: Vec<f64>,
    scratch: Vec<t1d::Scratch1d<4>>,
}

impl<K: Avx2Exec1d> GhostJacobi1d<K> {
    /// Build a workspace for interior size `n`: bands of `height` time
    /// levels, blocks of `block` interior cells. For [`Mode::Temporal`],
    /// `sel` picks the in-tile steady state (resolved here, once).
    ///
    /// # Panics
    /// Panics when `block == 0` or `height` is not a positive multiple of
    /// the vector length 4 (`tempora_plan` validates these ahead of time
    /// and returns a `PlanError` instead).
    pub fn new(
        kern: K,
        n: usize,
        steps: usize,
        block: usize,
        height: usize,
        mode: Mode,
        sel: Select,
    ) -> Self {
        const VL: usize = 4;
        assert!(block >= 1);
        assert!(
            height >= VL && height % VL == 0,
            "height must be a multiple of {VL}"
        );
        let ntiles = n.div_ceil(block);
        let ghost = height + 1;
        let buf_len = block + 2 * ghost + 2;
        let bands = steps / height;
        let engine = match mode {
            Mode::Temporal(s) => Some(resolve_ghost::<VL>(
                sel,
                K::avx2_tile(s),
                n,
                block,
                ghost,
                bands,
                s,
            )),
            _ => None,
        };
        // Per-tile temporal scratch (one arena slot per tile; the steady
        // state runs allocation-free).
        let scratch: Vec<t1d::Scratch1d<VL>> = match mode {
            Mode::Temporal(s) => (0..ntiles).map(|_| t1d::Scratch1d::new(s)).collect(),
            _ => Vec::new(),
        };
        GhostJacobi1d {
            kern,
            steps,
            block,
            height,
            mode,
            engine,
            n,
            ntiles,
            buf_len,
            bands,
            arena: vec![0.0f64; ntiles * buf_len * 2],
            scratch,
        }
    }

    /// The in-tile engine this workspace resolved to (`None` for the
    /// non-dispatched scalar/auto modes).
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    /// Number of tiles per band.
    pub fn tiles(&self) -> usize {
        self.ntiles
    }

    /// First-touch the workspace arenas through `pool`: tile `t`'s
    /// buffer pages are faulted in (and its temporal scratch
    /// re-allocated) by the worker that [`GhostJacobi1d::advance`] will
    /// later run tile `t` on — the owned schedule's `tiles()`-sized
    /// owner map is identical in both calls. Purely a placement
    /// optimization; results are unchanged whether or not it runs.
    pub fn fault_in(&mut self, pool: &Pool) {
        tempora_failpoint::failpoint!("fault_in");
        let buf_len = self.buf_len;
        let mode = self.mode;
        let arena_shared = SyncSlice::new(&mut self.arena);
        let scratch_shared = SyncSlice::new(&mut self.scratch);
        pool.for_each_owned(self.ntiles, |t| {
            // SAFETY: tile t touches only its own arena chunk and
            // scratch slot (the same ownership advance relies on).
            let chunk =
                unsafe { &mut arena_shared.slice_mut()[t * buf_len * 2..(t + 1) * buf_len * 2] };
            crate::touch_pages(chunk);
            if let Mode::Temporal(s) = mode {
                // SAFETY: tile t writes only its own scratch slot `[t]`;
                // slots are disjoint across tiles.
                let sc = unsafe { &mut scratch_shared.slice_mut()[t] };
                *sc = t1d::Scratch1d::new(s);
            }
        });
    }

    /// Advance `g` by the workspace's `steps` time levels in place, tiles
    /// of one band executed in parallel on `pool`. Results are
    /// bit-identical to the sequential engines and the scalar reference
    /// under every mode, selection and thread count.
    ///
    /// # Panics
    /// Panics if `g` does not match the workspace geometry.
    pub fn advance(&mut self, g: &mut Grid1<f64>, pool: &Pool) {
        const VL: usize = 4;
        assert_eq!(g.halo(), 1);
        assert_eq!(g.n(), self.n, "grid does not match workspace geometry");
        let Self {
            kern,
            steps,
            block,
            height,
            mode,
            engine,
            n,
            ntiles,
            buf_len,
            bands,
            arena,
            scratch,
        } = self;
        let (n, block, height, buf_len) = (*n, *block, *height, *buf_len);
        let ghost = height + 1;
        let mode = *mode;
        let engine = *engine;

        for _ in 0..*bands {
            let data = g.data_mut();
            let shared = SyncSlice::new(data);
            let arena_shared = SyncSlice::new(arena);
            let scratch_shared = SyncSlice::new(scratch);
            // Phase A: copy-in (shared array is read-only here). Owned
            // scheduling: tile t always runs on the worker that
            // fault_in placed its pages on.
            pool.for_each_owned(*ntiles, |t| {
                // SAFETY: the global array is only read during this phase,
                // so overlapping views across tiles never alias a write.
                let global = unsafe { shared.slice_mut() };
                // SAFETY: tile t writes only its own arena chunk; chunks
                // are disjoint across tiles.
                let chunk = unsafe {
                    &mut arena_shared.slice_mut()[t * buf_len * 2..t * buf_len * 2 + buf_len]
                };
                let e = tile_extent(t, n, block, ghost);
                chunk[..e.hi - e.lo + 1].copy_from_slice(&global[e.lo..=e.hi]);
            });
            // Phase B: advance private buffers, write back disjoint blocks.
            pool.for_each_owned(*ntiles, |t| {
                // SAFETY: tile t writes global[a..=b] only — disjoint across
                // tiles — and reads nothing else from the shared array.
                let global = unsafe { shared.slice_mut() };
                // SAFETY: tile t touches only its own arena chunk; chunks
                // are disjoint across tiles.
                let chunk = unsafe {
                    &mut arena_shared.slice_mut()[t * buf_len * 2..(t + 1) * buf_len * 2]
                };
                let (buf, tmp) = chunk.split_at_mut(buf_len);
                let e = tile_extent(t, n, block, ghost);
                let nb = e.hi - e.lo - 1;
                match mode {
                    Mode::Scalar => {
                        for _ in 0..height {
                            t1d::scalar_step_inplace(buf, nb, kern);
                        }
                    }
                    Mode::Auto => {
                        tmp[..nb + 2].copy_from_slice(&buf[..nb + 2]);
                        for step in 0..height {
                            if step % 2 == 0 {
                                auto_step_1d(buf, tmp, nb, kern);
                            } else {
                                auto_step_1d(tmp, buf, nb, kern);
                            }
                        }
                        if height % 2 == 1 {
                            buf[..nb + 2].copy_from_slice(&tmp[..nb + 2]);
                        }
                    }
                    Mode::Temporal(s) => {
                        // SAFETY: tile t writes only its own scratch slot
                        // `[t]`; slots are disjoint across tiles.
                        let sc = unsafe { &mut scratch_shared.slice_mut()[t] };
                        match engine {
                            Some(Engine::Avx2) => {
                                for _ in 0..height / VL {
                                    kern.tile_avx2(buf, nb, s, sc);
                                }
                            }
                            _ => {
                                for _ in 0..height / VL {
                                    t1d::tile::<VL, false, K>(buf, nb, kern, s, sc);
                                }
                            }
                        }
                    }
                }
                let off = e.a - e.lo;
                global[e.a..=e.b].copy_from_slice(&buf[off..off + (e.b - e.a + 1)]);
            });
        }
        let a = g.data_mut();
        for _ in 0..*steps % height {
            t1d::scalar_step_inplace(a, n, kern);
        }
    }
}

/// Run `steps` Jacobi time steps over the grid with ghost-zone band
/// tiling (one-shot wrapper over [`GhostJacobi1d`]).
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` (or reuse a `ghost::GhostJacobi1d` workspace) instead"
)]
// Justification: the parameter list is the ghost-tile run contract (grid, kernel, steps, tiling, pool); a params struct would obscure it.
#[allow(clippy::too_many_arguments)]
pub fn run_jacobi_1d<K: Avx2Exec1d + Copy>(
    grid: &Grid1<f64>,
    kern: &K,
    steps: usize,
    block: usize,
    height: usize,
    mode: Mode,
    sel: Select,
    pool: &Pool,
) -> (Grid1<f64>, Option<Engine>) {
    let mut w = GhostJacobi1d::new(*kern, grid.n(), steps, block, height, mode, sel);
    let mut g = grid.clone();
    w.advance(&mut g, pool);
    (g, w.engine())
}

/// One multi-load Jacobi step on a 2-D buffer grid (vectorized along `y`).
/// Bit-identical to the `multiload` baseline; exposed for caller-owned
/// ping-pong execution.
pub fn auto_step_2d<T: Scalar, K: Kernel2d<T>>(src: &Grid2<T>, dst: &mut Grid2<T>, kern: &K) {
    const N: usize = 4;
    let (nx, ny, p) = (src.nx(), src.ny(), src.pitch());
    let a = src.data();
    let b = dst.data_mut();
    let zero = Pack::<T, N>::splat(T::ZERO);
    for x in 1..=nx {
        let r = x * p;
        let rows = [r - p, r, r + p];
        let mut y = 1;
        while y + N <= ny + 1 {
            let at = |row: usize, d: usize| Pack::<T, N>::load(a, rows[row] + y + d - 1);
            let v = if K::IS_BOX {
                [
                    [at(0, 0), at(0, 1), at(0, 2)],
                    [at(1, 0), at(1, 1), at(1, 2)],
                    [at(2, 0), at(2, 1), at(2, 2)],
                ]
            } else {
                [
                    [zero, at(0, 1), zero],
                    [at(1, 0), at(1, 1), at(1, 2)],
                    [zero, at(2, 1), zero],
                ]
            };
            kern.pack(Nbhd {
                v,
                new_n: zero,
                new_w: zero,
            })
            .store(b, r + y);
            y += N;
        }
        for y in y..=ny {
            let v = [
                [a[rows[0] + y - 1], a[rows[0] + y], a[rows[0] + y + 1]],
                [a[rows[1] + y - 1], a[rows[1] + y], a[rows[1] + y + 1]],
                [a[rows[2] + y - 1], a[rows[2] + y], a[rows[2] + y + 1]],
            ];
            b[r + y] = kern.scalar(Nbhd {
                v,
                new_n: T::ZERO,
                new_w: T::ZERO,
            });
        }
    }
}

/// Per-tile worker state for [`GhostJacobi2d`], allocated once per
/// workspace so the band loop runs allocation-free. The portable and
/// AVX2 steady states share one temporal scratch: every hand-scheduled
/// 2-D tile runs at the workspace's own lane count (4 f64 lanes, 8 i32
/// lanes for Life), which `Avx2Exec2d::avx2_tile` guarantees before the
/// engine can resolve to AVX2.
enum TileState2<T: Scalar, const VL: usize> {
    /// Scalar in-place row buffers.
    Rows(Vec<T>, Vec<T>),
    /// Multi-load ping-pong buffer.
    Tmp(Grid2<T>),
    /// Temporal scratch (portable or AVX2 steady state, per the resolved
    /// engine).
    Temporal(t2d::Scratch2d<T, VL>),
}

/// Reusable ghost-zone workspace for 2-D Jacobi band tiling along the
/// outer dimension (`VL` = 4 for `f64` kernels, 8 for the integer Life
/// kernel). See [`GhostJacobi1d`] for the lifecycle and engine contract.
pub struct GhostJacobi2d<T: Scalar, const VL: usize, K: Avx2Exec2d<T>> {
    kern: K,
    steps: usize,
    block: usize,
    height: usize,
    mode: Mode,
    engine: Option<Engine>,
    nx: usize,
    ny: usize,
    ntiles: usize,
    bands: usize,
    bufs: Vec<Grid2<T>>,
    states: Vec<TileState2<T, VL>>,
    rem_rows: (Vec<T>, Vec<T>),
}

impl<T: Scalar, const VL: usize, K: Avx2Exec2d<T>> GhostJacobi2d<T, VL, K> {
    /// Build a workspace for an `nx × ny` interior with boundary `bc`.
    /// See [`GhostJacobi1d::new`] for the panics contract.
    // Justification: constructor takes the full tile geometry; see the run_* wrapper rationale.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kern: K,
        nx: usize,
        ny: usize,
        bc: Boundary<T>,
        steps: usize,
        block: usize,
        height: usize,
        mode: Mode,
        sel: Select,
    ) -> Self {
        assert!(block >= 1);
        assert!(
            height >= VL && height % VL == 0,
            "height must be a multiple of VL"
        );
        let ntiles = nx.div_ceil(block);
        let ghost = height + 1;
        let bands = steps / height;
        let engine = match mode {
            Mode::Temporal(s) => Some(resolve_ghost::<VL>(
                sel,
                K::avx2_tile(VL, s),
                nx,
                block,
                ghost,
                bands,
                s,
            )),
            _ => None,
        };
        // Persistent per-tile buffer grids (sized per tile).
        let bufs: Vec<Grid2<T>> = (0..ntiles)
            .map(|t| {
                let e = tile_extent(t, nx, block, ghost);
                Grid2::new(e.hi - e.lo - 1, ny, 1, bc)
            })
            .collect();
        let states: Vec<TileState2<T, VL>> = (0..ntiles)
            .map(|t| match mode {
                Mode::Scalar => TileState2::Rows(vec![T::ZERO; ny + 2], vec![T::ZERO; ny + 2]),
                Mode::Auto => TileState2::Tmp(bufs[t].clone()),
                Mode::Temporal(s) => TileState2::Temporal(t2d::Scratch2d::new(s, ny)),
            })
            .collect();
        GhostJacobi2d {
            kern,
            steps,
            block,
            height,
            mode,
            engine,
            nx,
            ny,
            ntiles,
            bands,
            bufs,
            states,
            rem_rows: (vec![T::ZERO; ny + 2], vec![T::ZERO; ny + 2]),
        }
    }

    /// The in-tile engine this workspace resolved to.
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    /// Number of tiles per band.
    pub fn tiles(&self) -> usize {
        self.ntiles
    }

    /// First-touch the per-tile buffer grids (and re-allocate the
    /// per-tile state) through `pool`, on the same owner map
    /// [`GhostJacobi2d::advance`] uses. See [`GhostJacobi1d::fault_in`].
    pub fn fault_in(&mut self, pool: &Pool) {
        tempora_failpoint::failpoint!("fault_in");
        let mode = self.mode;
        let ny = self.ny;
        let bufs_shared = SyncSlice::new(&mut self.bufs);
        let states_shared = SyncSlice::new(&mut self.states);
        pool.for_each_owned(self.ntiles, |t| {
            // SAFETY: tile t touches only its own buffer grid `bufs[t]`
            // (the same ownership advance relies on).
            let buf = unsafe { &mut bufs_shared.slice_mut()[t] };
            crate::touch_pages(buf.data_mut());
            // SAFETY: tile t writes only its own state slot `states[t]`;
            // slots are disjoint across tiles.
            let st = unsafe { &mut states_shared.slice_mut()[t] };
            *st = match mode {
                Mode::Scalar => TileState2::Rows(vec![T::ZERO; ny + 2], vec![T::ZERO; ny + 2]),
                Mode::Auto => TileState2::Tmp(buf.clone()),
                Mode::Temporal(s) => TileState2::Temporal(t2d::Scratch2d::new(s, ny)),
            };
        });
    }

    /// Advance `g` by the workspace's `steps` time levels in place. See
    /// [`GhostJacobi1d::advance`].
    pub fn advance(&mut self, g: &mut Grid2<T>, pool: &Pool) {
        assert_eq!(g.halo(), 1);
        assert_eq!(
            (g.nx(), g.ny()),
            (self.nx, self.ny),
            "grid does not match workspace geometry"
        );
        let Self {
            kern,
            steps,
            block,
            height,
            mode,
            engine,
            ntiles,
            bands,
            bufs,
            states,
            rem_rows,
            nx,
            ..
        } = self;
        let (nx, block, height) = (*nx, *block, *height);
        let ghost = height + 1;
        let p = g.pitch();
        let mode = *mode;
        let engine = *engine;

        for _ in 0..*bands {
            let data = g.data_mut();
            let shared = SyncSlice::new(data);
            let bufs_shared = SyncSlice::new(bufs);
            let states_shared = SyncSlice::new(states);
            pool.for_each_owned(*ntiles, |t| {
                // SAFETY: phase A — the global array is only read, so
                // overlapping views across tiles never alias a write.
                let global = unsafe { shared.slice_mut() };
                // SAFETY: phase A — tile t writes only its own bufs[t].
                let buf = unsafe { &mut bufs_shared.slice_mut()[t] };
                let e = tile_extent(t, nx, block, ghost);
                let rows = e.hi - e.lo + 1;
                buf.data_mut()[..rows * p].copy_from_slice(&global[e.lo * p..(e.hi + 1) * p]);
            });
            pool.for_each_owned(*ntiles, |t| {
                // SAFETY: phase B — tile t's global writes are its own
                // disjoint row block [a, b]; no shared reads.
                let global = unsafe { shared.slice_mut() };
                // SAFETY: phase B — bufs[t] is tile t's own slot.
                let buf = unsafe { &mut bufs_shared.slice_mut()[t] };
                // SAFETY: phase B — states[t] is tile t's own slot.
                let st = unsafe { &mut states_shared.slice_mut()[t] };
                let e = tile_extent(t, nx, block, ghost);
                match st {
                    TileState2::Rows(ra, rb) => {
                        for _ in 0..height {
                            t2d::scalar_step_inplace(buf, kern, ra, rb);
                        }
                    }
                    TileState2::Tmp(tmp) => {
                        // Refresh the ping-pong buffer (including halo rows,
                        // which the copy-in phase rewrote in `buf`).
                        tmp.data_mut().copy_from_slice(buf.data());
                        for step in 0..height {
                            if step % 2 == 0 {
                                auto_step_2d(buf, tmp, kern);
                            } else {
                                auto_step_2d(tmp, buf, kern);
                            }
                        }
                        if height % 2 == 1 {
                            core::mem::swap(buf, tmp);
                        }
                    }
                    TileState2::Temporal(sc) => {
                        let Mode::Temporal(s) = mode else {
                            unreachable!()
                        };
                        match engine {
                            Some(Engine::Avx2) => {
                                for _ in 0..height / VL {
                                    kern.tile_avx2(buf, s, sc);
                                }
                            }
                            _ => {
                                for _ in 0..height / VL {
                                    t2d::tile::<T, VL, K>(buf, kern, s, sc);
                                }
                            }
                        }
                    }
                }
                let off = e.a - e.lo;
                let src = buf.data();
                global[e.a * p..(e.b + 1) * p]
                    .copy_from_slice(&src[off * p..(off + e.b - e.a + 1) * p]);
            });
        }
        let rem = *steps % height;
        if rem > 0 {
            let (ra, rb) = rem_rows;
            for _ in 0..rem {
                t2d::scalar_step_inplace(g, kern, ra, rb);
            }
        }
    }
}

/// Run `steps` Jacobi time steps over a 2-D grid with ghost-zone band
/// tiling (one-shot wrapper over [`GhostJacobi2d`]).
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` (or reuse a `ghost::GhostJacobi2d` workspace) instead"
)]
// Justification: the parameter list is the ghost-tile run contract (grid, kernel, steps, tiling, pool); a params struct would obscure it.
#[allow(clippy::too_many_arguments)]
pub fn run_jacobi_2d<T: Scalar, const VL: usize, K: Avx2Exec2d<T> + Copy>(
    grid: &Grid2<T>,
    kern: &K,
    steps: usize,
    block: usize,
    height: usize,
    mode: Mode,
    sel: Select,
    pool: &Pool,
) -> (Grid2<T>, Option<Engine>) {
    let mut w = GhostJacobi2d::<T, VL, K>::new(
        *kern,
        grid.nx(),
        grid.ny(),
        grid.boundary(),
        steps,
        block,
        height,
        mode,
        sel,
    );
    let mut g = grid.clone();
    w.advance(&mut g, pool);
    (g, w.engine())
}

/// One multi-load Jacobi step on a 3-D buffer grid (vectorized along `z`).
/// Bit-identical to the `multiload` baseline; exposed for caller-owned
/// ping-pong execution.
pub fn auto_step_3d<K: Kernel3d<f64>>(src: &Grid3<f64>, dst: &mut Grid3<f64>, kern: &K) {
    const N: usize = 4;
    let (nx, ny, nz) = (src.nx(), src.ny(), src.nz());
    let (p, pl) = (src.pitch(), src.plane());
    let a = src.data();
    let b = dst.data_mut();
    let zero = Pack::<f64, N>::splat(0.0);
    for x in 1..=nx {
        for y in 1..=ny {
            let r = x * pl + y * p;
            let mut z = 1;
            while z + N <= nz + 1 {
                let nb = Nbhd3 {
                    xm: Pack::<f64, N>::load(a, r - pl + z),
                    ym: Pack::<f64, N>::load(a, r - p + z),
                    zm: Pack::<f64, N>::load(a, r + z - 1),
                    m: Pack::<f64, N>::load(a, r + z),
                    zp: Pack::<f64, N>::load(a, r + z + 1),
                    yp: Pack::<f64, N>::load(a, r + p + z),
                    xp: Pack::<f64, N>::load(a, r + pl + z),
                    new_xm: zero,
                    new_ym: zero,
                    new_zm: zero,
                };
                kern.pack(nb).store(b, r + z);
                z += N;
            }
            for z in z..=nz {
                let nb = Nbhd3 {
                    xm: a[r - pl + z],
                    ym: a[r - p + z],
                    zm: a[r + z - 1],
                    m: a[r + z],
                    zp: a[r + z + 1],
                    yp: a[r + p + z],
                    xp: a[r + pl + z],
                    new_xm: 0.0,
                    new_ym: 0.0,
                    new_zm: 0.0,
                };
                b[r + z] = kern.scalar(nb);
            }
        }
    }
}

/// Per-tile worker state for [`GhostJacobi3d`], allocated once per
/// workspace.
enum TileState3 {
    /// Scalar in-place plane buffers.
    Planes(Vec<f64>, Vec<f64>),
    /// Multi-load ping-pong buffer.
    Tmp(Grid3<f64>),
    /// Temporal scratch (shared by the portable and AVX2 steady states —
    /// both run at `VL = 4` in 3-D).
    Temporal(t3d::Scratch3d<f64, 4>),
}

/// Reusable ghost-zone workspace for 3-D Jacobi band tiling along the
/// outer dimension. See [`GhostJacobi1d`] for the lifecycle and engine
/// contract.
pub struct GhostJacobi3d<K: Avx2Exec3d> {
    kern: K,
    steps: usize,
    block: usize,
    height: usize,
    mode: Mode,
    engine: Option<Engine>,
    nx: usize,
    ny: usize,
    nz: usize,
    ntiles: usize,
    bands: usize,
    bufs: Vec<Grid3<f64>>,
    states: Vec<TileState3>,
    rem_planes: (Vec<f64>, Vec<f64>),
}

impl<K: Avx2Exec3d> GhostJacobi3d<K> {
    /// Build a workspace for an `nx × ny × nz` interior with boundary
    /// `bc`. See [`GhostJacobi1d::new`] for the panics contract.
    // Justification: constructor takes the full tile geometry; see the run_* wrapper rationale.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kern: K,
        nx: usize,
        ny: usize,
        nz: usize,
        bc: Boundary<f64>,
        steps: usize,
        block: usize,
        height: usize,
        mode: Mode,
        sel: Select,
    ) -> Self {
        const VL: usize = 4;
        assert!(block >= 1);
        assert!(
            height >= VL && height % VL == 0,
            "height must be a multiple of {VL}"
        );
        let ntiles = nx.div_ceil(block);
        let ghost = height + 1;
        let bands = steps / height;
        let engine = match mode {
            Mode::Temporal(s) => Some(resolve_ghost::<VL>(
                sel,
                K::avx2_tile(s),
                nx,
                block,
                ghost,
                bands,
                s,
            )),
            _ => None,
        };
        let bufs: Vec<Grid3<f64>> = (0..ntiles)
            .map(|t| {
                let e = tile_extent(t, nx, block, ghost);
                Grid3::new(e.hi - e.lo - 1, ny, nz, 1, bc)
            })
            .collect();
        let wp = (ny + 2) * (nz + 2);
        let states: Vec<TileState3> = (0..ntiles)
            .map(|t| match mode {
                Mode::Scalar => TileState3::Planes(vec![0.0; wp], vec![0.0; wp]),
                Mode::Auto => TileState3::Tmp(bufs[t].clone()),
                Mode::Temporal(s) => TileState3::Temporal(t3d::Scratch3d::new(s, ny, nz)),
            })
            .collect();
        GhostJacobi3d {
            kern,
            steps,
            block,
            height,
            mode,
            engine,
            nx,
            ny,
            nz,
            ntiles,
            bands,
            bufs,
            states,
            rem_planes: (vec![0.0; wp], vec![0.0; wp]),
        }
    }

    /// The in-tile engine this workspace resolved to.
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    /// Number of tiles per band.
    pub fn tiles(&self) -> usize {
        self.ntiles
    }

    /// First-touch the per-tile buffer grids (and re-allocate the
    /// per-tile state) through `pool`, on the same owner map
    /// [`GhostJacobi3d::advance`] uses. See [`GhostJacobi1d::fault_in`].
    pub fn fault_in(&mut self, pool: &Pool) {
        tempora_failpoint::failpoint!("fault_in");
        let mode = self.mode;
        let wp = (self.ny + 2) * (self.nz + 2);
        let (ny, nz) = (self.ny, self.nz);
        let bufs_shared = SyncSlice::new(&mut self.bufs);
        let states_shared = SyncSlice::new(&mut self.states);
        pool.for_each_owned(self.ntiles, |t| {
            // SAFETY: tile t touches only its own buffer grid `bufs[t]`
            // (the same ownership advance relies on).
            let buf = unsafe { &mut bufs_shared.slice_mut()[t] };
            crate::touch_pages(buf.data_mut());
            // SAFETY: tile t writes only its own state slot `states[t]`;
            // slots are disjoint across tiles.
            let st = unsafe { &mut states_shared.slice_mut()[t] };
            *st = match mode {
                Mode::Scalar => TileState3::Planes(vec![0.0; wp], vec![0.0; wp]),
                Mode::Auto => TileState3::Tmp(buf.clone()),
                Mode::Temporal(s) => TileState3::Temporal(t3d::Scratch3d::new(s, ny, nz)),
            };
        });
    }

    /// Advance `g` by the workspace's `steps` time levels in place. See
    /// [`GhostJacobi1d::advance`].
    pub fn advance(&mut self, g: &mut Grid3<f64>, pool: &Pool) {
        const VL: usize = 4;
        assert_eq!(g.halo(), 1);
        assert_eq!(
            (g.nx(), g.ny(), g.nz()),
            (self.nx, self.ny, self.nz),
            "grid does not match workspace geometry"
        );
        let Self {
            kern,
            steps,
            block,
            height,
            mode,
            engine,
            ntiles,
            bands,
            bufs,
            states,
            rem_planes,
            nx,
            ..
        } = self;
        let (nx, block, height) = (*nx, *block, *height);
        let ghost = height + 1;
        let pl = g.plane();
        let mode = *mode;
        let engine = *engine;

        for _ in 0..*bands {
            let data = g.data_mut();
            let shared = SyncSlice::new(data);
            let bufs_shared = SyncSlice::new(bufs);
            let states_shared = SyncSlice::new(states);
            pool.for_each_owned(*ntiles, |t| {
                // SAFETY: phase A — the global array is only read, so
                // overlapping views across tiles never alias a write.
                let global = unsafe { shared.slice_mut() };
                // SAFETY: phase A — tile t writes only its own bufs[t].
                let buf = unsafe { &mut bufs_shared.slice_mut()[t] };
                let e = tile_extent(t, nx, block, ghost);
                let slabs = e.hi - e.lo + 1;
                buf.data_mut()[..slabs * pl].copy_from_slice(&global[e.lo * pl..(e.hi + 1) * pl]);
            });
            pool.for_each_owned(*ntiles, |t| {
                // SAFETY: phase B — tile t's global writes are its own
                // disjoint slab block [a, b]; no shared reads.
                let global = unsafe { shared.slice_mut() };
                // SAFETY: phase B — bufs[t] is tile t's own slot.
                let buf = unsafe { &mut bufs_shared.slice_mut()[t] };
                // SAFETY: phase B — states[t] is tile t's own slot.
                let st = unsafe { &mut states_shared.slice_mut()[t] };
                let e = tile_extent(t, nx, block, ghost);
                match st {
                    TileState3::Planes(pa, pb) => {
                        for _ in 0..height {
                            t3d::scalar_step_inplace(buf, kern, pa, pb);
                        }
                    }
                    TileState3::Tmp(tmp) => {
                        tmp.data_mut().copy_from_slice(buf.data());
                        for step in 0..height {
                            if step % 2 == 0 {
                                auto_step_3d(buf, tmp, kern);
                            } else {
                                auto_step_3d(tmp, buf, kern);
                            }
                        }
                        if height % 2 == 1 {
                            core::mem::swap(buf, tmp);
                        }
                    }
                    TileState3::Temporal(sc) => {
                        let Mode::Temporal(s) = mode else {
                            unreachable!()
                        };
                        match engine {
                            Some(Engine::Avx2) => {
                                for _ in 0..height / VL {
                                    kern.tile_avx2(buf, s, sc);
                                }
                            }
                            _ => {
                                for _ in 0..height / VL {
                                    t3d::tile::<f64, VL, K>(buf, kern, s, sc);
                                }
                            }
                        }
                    }
                }
                let off = e.a - e.lo;
                let src = buf.data();
                global[e.a * pl..(e.b + 1) * pl]
                    .copy_from_slice(&src[off * pl..(off + e.b - e.a + 1) * pl]);
            });
        }
        let rem = *steps % height;
        if rem > 0 {
            let (pa, pb) = rem_planes;
            for _ in 0..rem {
                t3d::scalar_step_inplace(g, kern, pa, pb);
            }
        }
    }
}

/// Run `steps` Jacobi time steps over a 3-D grid with ghost-zone band
/// tiling (one-shot wrapper over [`GhostJacobi3d`]).
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` (or reuse a `ghost::GhostJacobi3d` workspace) instead"
)]
// Justification: the parameter list is the ghost-tile run contract (grid, kernel, steps, tiling, pool); a params struct would obscure it.
#[allow(clippy::too_many_arguments)]
pub fn run_jacobi_3d<K: Avx2Exec3d + Copy>(
    grid: &Grid3<f64>,
    kern: &K,
    steps: usize,
    block: usize,
    height: usize,
    mode: Mode,
    sel: Select,
    pool: &Pool,
) -> (Grid3<f64>, Option<Engine>) {
    let mut w = GhostJacobi3d::new(
        *kern,
        grid.nx(),
        grid.ny(),
        grid.nz(),
        grid.boundary(),
        steps,
        block,
        height,
        mode,
        sel,
    );
    let mut g = grid.clone();
    w.advance(&mut g, pool);
    (g, w.engine())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_core::kernels::{BoxKern2d, JacobiKern1d, JacobiKern2d, JacobiKern3d, LifeKern2d};
    use tempora_grid::{
        fill_random_1d, fill_random_2d, fill_random_3d, fill_random_life, Boundary,
    };
    use tempora_stencil::reference;
    use tempora_stencil::{Box2dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs, LifeRule};

    /// Workspace-based equivalents of the deprecated one-shot wrappers,
    /// used below so the test suite exercises the current API.
    // Justification: test helper mirrors the run contract signature.
    #[allow(clippy::too_many_arguments)]
    fn ghost_1d<K: Avx2Exec1d + Copy>(
        grid: &Grid1<f64>,
        kern: &K,
        steps: usize,
        block: usize,
        height: usize,
        mode: Mode,
        sel: Select,
        pool: &Pool,
    ) -> (Grid1<f64>, Option<Engine>) {
        let mut w = GhostJacobi1d::new(*kern, grid.n(), steps, block, height, mode, sel);
        let mut g = grid.clone();
        w.advance(&mut g, pool);
        (g, w.engine())
    }

    // Justification: test helper mirrors the run contract signature.
    #[allow(clippy::too_many_arguments)]
    fn ghost_2d<T: Scalar, const VL: usize, K: Avx2Exec2d<T> + Copy>(
        grid: &Grid2<T>,
        kern: &K,
        steps: usize,
        block: usize,
        height: usize,
        mode: Mode,
        sel: Select,
        pool: &Pool,
    ) -> (Grid2<T>, Option<Engine>) {
        let mut w = GhostJacobi2d::<T, VL, K>::new(
            *kern,
            grid.nx(),
            grid.ny(),
            grid.boundary(),
            steps,
            block,
            height,
            mode,
            sel,
        );
        let mut g = grid.clone();
        w.advance(&mut g, pool);
        (g, w.engine())
    }

    #[test]
    fn extents_partition_domain() {
        for &(n, block) in &[(100usize, 17usize), (64, 64), (10, 3)] {
            let ntiles = n.div_ceil(block);
            let mut covered = 0;
            for t in 0..ntiles {
                let e = tile_extent(t, n, block, 5);
                assert_eq!(e.a, covered + 1);
                covered = e.b;
                assert!(e.lo <= e.a && e.hi >= e.b && e.hi <= n + 1);
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn ghost_1d_all_modes_match_reference() {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            for &(n, block, steps) in &[(200usize, 64usize, 8usize), (333, 50, 13), (64, 100, 4)] {
                let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.5));
                fill_random_1d(&mut g, n as u64, -1.0, 1.0);
                let gold = reference::heat1d(&g, c, steps);
                for mode in [Mode::Scalar, Mode::Auto, Mode::Temporal(7)] {
                    let (ours, _) = ghost_1d(&g, &kern, steps, block, 4, mode, Select::Auto, &pool);
                    assert!(
                        ours.interior_eq(&gold),
                        "threads={threads} n={n} block={block} steps={steps} mode={mode:?} {:?}",
                        ours.first_diff(&gold)
                    );
                }
            }
        }
    }

    #[test]
    fn ghost_1d_workspace_reuse_is_identical_and_allocation_free() {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let pool = Pool::new(2);
        let mut g0 = Grid1::new(300, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g0, 17, -1.0, 1.0);
        let mut w = GhostJacobi1d::new(kern, 300, 8, 64, 4, Mode::Temporal(7), Select::Auto);
        let mut a = g0.clone();
        w.advance(&mut a, &pool);
        // Second use of the same workspace on a fresh state must agree
        // with a fresh workspace bit-for-bit and allocate nothing. The
        // counter is process-global and sibling tests allocate
        // concurrently, so retry until a clean window: if `advance`
        // itself allocated, every window would show a delta.
        let mut b = g0.clone();
        let mut clean = false;
        for _ in 0..32 {
            b = g0.clone();
            let before = tempora_grid::alloc_count();
            w.advance(&mut b, &pool);
            if tempora_grid::alloc_count() == before {
                clean = true;
                break;
            }
        }
        assert!(clean, "advance allocated in every observed window");
        assert!(a.interior_eq(&b));
        assert!(a.interior_eq(&reference::heat1d(&g0, c, 8)));
    }

    #[test]
    fn ghost_1d_engine_report_is_honest() {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let pool = Pool::new(2);
        // n divisible by block: every tile (runt included) hosts the
        // vector steady state at s = 7.
        let mut g = Grid1::new(448, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 3, -1.0, 1.0);
        // Non-temporal modes never dispatch.
        let (_, e) = ghost_1d(&g, &kern, 8, 64, 4, Mode::Scalar, Select::Auto, &pool);
        assert_eq!(e, None);
        // Forced portable reports portable.
        let (_, e) = ghost_1d(
            &g,
            &kern,
            8,
            64,
            4,
            Mode::Temporal(7),
            Select::Portable,
            &pool,
        );
        assert_eq!(e, Some(Engine::Portable));
        // A degenerate geometry (block so narrow that every tile falls
        // back to the scalar schedule) must resolve portable even when
        // AVX2 is available.
        let (_, e) = ghost_1d(&g, &kern, 8, 2, 4, Mode::Temporal(7), Select::Auto, &pool);
        assert_eq!(e, Some(Engine::Portable));
        // On an AVX2 host, a healthy geometry resolves avx2 under Auto.
        if tempora_simd::arch::avx2_available() {
            let (_, e) = ghost_1d(&g, &kern, 8, 64, 4, Mode::Temporal(7), Select::Auto, &pool);
            assert_eq!(e, Some(Engine::Avx2));
        }
    }

    #[test]
    // Justification: pins the deprecated one-shot wrappers' behavior until their removal.
    #[allow(deprecated)]
    fn deprecated_wrappers_still_work() {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let pool = Pool::new(2);
        let mut g = Grid1::new(200, 1, Boundary::Dirichlet(0.5));
        fill_random_1d(&mut g, 7, -1.0, 1.0);
        let gold = reference::heat1d(&g, c, 8);
        let (ours, _) = run_jacobi_1d(&g, &kern, 8, 64, 4, Mode::Temporal(7), Select::Auto, &pool);
        assert!(ours.interior_eq(&gold));
    }

    #[test]
    fn ghost_2d_star_and_box_match_reference() {
        let pool = Pool::new(2);
        let c = Heat2dCoeffs::classic(0.12);
        let kern = JacobiKern2d(c);
        let mut g = Grid2::new(60, 13, 1, Boundary::Dirichlet(0.1));
        fill_random_2d(&mut g, 9, -1.0, 1.0);
        let gold = reference::heat2d(&g, c, 8);
        for mode in [Mode::Scalar, Mode::Auto, Mode::Temporal(2)] {
            let (ours, _) = ghost_2d::<f64, 4, _>(&g, &kern, 8, 16, 8, mode, Select::Auto, &pool);
            assert!(
                ours.interior_eq(&gold),
                "mode={mode:?} {:?}",
                ours.first_diff(&gold)
            );
        }

        let cb = Box2dCoeffs::smooth(0.08);
        let kb = BoxKern2d(cb);
        let goldb = reference::box2d(&g, cb, 8);
        for mode in [Mode::Scalar, Mode::Auto, Mode::Temporal(2)] {
            let (ours, _) = ghost_2d::<f64, 4, _>(&g, &kb, 8, 16, 4, mode, Select::Auto, &pool);
            assert!(ours.interior_eq(&goldb), "box mode={mode:?}");
        }
    }

    #[test]
    fn ghost_2d_life_vl8_matches_reference() {
        let pool = Pool::new(2);
        let rule = LifeRule::b2s23();
        let kern = LifeKern2d(rule);
        let mut g = Grid2::<i32>::new(70, 20, 1, Boundary::Dirichlet(0));
        fill_random_life(&mut g, 4, 0.4);
        let gold = reference::life(&g, rule, 16);
        for mode in [Mode::Scalar, Mode::Temporal(2)] {
            let (ours, e) = ghost_2d::<i32, 8, _>(&g, &kern, 16, 24, 8, mode, Select::Auto, &pool);
            assert!(
                ours.interior_eq(&gold),
                "life mode={mode:?} {:?}",
                ours.first_diff(&gold)
            );
            // Life now carries the AVX2 integer steady state: on AVX2
            // hosts this healthy geometry resolves avx2 under Auto.
            if let Mode::Temporal(_) = mode {
                let expect = if tempora_simd::arch::avx2_available() {
                    Engine::Avx2
                } else {
                    Engine::Portable
                };
                assert_eq!(e, Some(expect));
            }
        }
        // Forced portable stays portable, bit-identically.
        let (ours, e) = ghost_2d::<i32, 8, _>(
            &g,
            &kern,
            16,
            24,
            8,
            Mode::Temporal(2),
            Select::Portable,
            &pool,
        );
        assert!(ours.interior_eq(&gold));
        assert_eq!(e, Some(Engine::Portable));
        // A block too narrow for the 8-lane steady state resolves
        // portable even under Auto.
        let (ours, e) =
            ghost_2d::<i32, 8, _>(&g, &kern, 16, 2, 8, Mode::Temporal(8), Select::Auto, &pool);
        assert!(ours.interior_eq(&gold));
        assert_eq!(e, Some(Engine::Portable));
    }

    #[test]
    fn fault_in_preserves_results_bitwise() {
        let pool = Pool::new(4);
        // 1-D.
        let c1 = Heat1dCoeffs::classic(0.25);
        let k1 = JacobiKern1d(c1);
        let mut g1 = Grid1::new(300, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g1, 17, -1.0, 1.0);
        for mode in [Mode::Scalar, Mode::Auto, Mode::Temporal(7)] {
            let mut plain = GhostJacobi1d::new(k1, 300, 8, 64, 4, mode, Select::Auto);
            let mut faulted = GhostJacobi1d::new(k1, 300, 8, 64, 4, mode, Select::Auto);
            faulted.fault_in(&pool);
            let (mut a, mut b) = (g1.clone(), g1.clone());
            plain.advance(&mut a, &pool);
            faulted.advance(&mut b, &pool);
            assert!(a.interior_eq(&b), "1d mode={mode:?}");
        }
        // 2-D.
        let c2 = Heat2dCoeffs::classic(0.12);
        let k2 = JacobiKern2d(c2);
        let mut g2 = Grid2::new(60, 13, 1, Boundary::Dirichlet(0.1));
        fill_random_2d(&mut g2, 9, -1.0, 1.0);
        for mode in [Mode::Scalar, Mode::Auto, Mode::Temporal(2)] {
            let mk = || {
                GhostJacobi2d::<f64, 4, _>::new(k2, 60, 13, g2.boundary(), 8, 16, 8, mode, {
                    Select::Auto
                })
            };
            let (mut plain, mut faulted) = (mk(), mk());
            faulted.fault_in(&pool);
            let (mut a, mut b) = (g2.clone(), g2.clone());
            plain.advance(&mut a, &pool);
            faulted.advance(&mut b, &pool);
            assert!(a.interior_eq(&b), "2d mode={mode:?}");
        }
        // 3-D.
        let c3 = Heat3dCoeffs::classic(0.1);
        let k3 = JacobiKern3d(c3);
        let mut g3 = Grid3::new(40, 6, 7, 1, Boundary::Dirichlet(-0.2));
        fill_random_3d(&mut g3, 11, -1.0, 1.0);
        for mode in [Mode::Scalar, Mode::Auto, Mode::Temporal(2)] {
            let mk =
                || GhostJacobi3d::new(k3, 40, 6, 7, g3.boundary(), 9, 12, 4, mode, Select::Auto);
            let (mut plain, mut faulted) = (mk(), mk());
            faulted.fault_in(&pool);
            let (mut a, mut b) = (g3.clone(), g3.clone());
            plain.advance(&mut a, &pool);
            faulted.advance(&mut b, &pool);
            assert!(a.interior_eq(&b), "3d mode={mode:?}");
        }
    }

    #[test]
    fn ghost_3d_matches_reference() {
        let pool = Pool::new(2);
        let c = Heat3dCoeffs::classic(0.1);
        let kern = JacobiKern3d(c);
        let mut g = Grid3::new(40, 6, 7, 1, Boundary::Dirichlet(-0.2));
        fill_random_3d(&mut g, 11, -1.0, 1.0);
        let gold = reference::heat3d(&g, c, 9); // 2 bands + 1 remainder
        for mode in [Mode::Scalar, Mode::Auto, Mode::Temporal(2)] {
            let mut w = GhostJacobi3d::new(
                kern,
                g.nx(),
                g.ny(),
                g.nz(),
                g.boundary(),
                9,
                12,
                4,
                mode,
                Select::Auto,
            );
            let mut ours = g.clone();
            w.advance(&mut ours, &pool);
            assert!(
                ours.interior_eq(&gold),
                "mode={mode:?} {:?}",
                ours.first_diff(&gold)
            );
        }
    }
}
