//! Rectangle tiling for the LCS dynamic program (paper §3.4: "LCS allows
//! the rectangle tiling in the iteration space"), with pipelined
//! wavefront parallelism.
//!
//! The DP table is cut into `xblock × yblock` rectangles. Tile `(I, J)`
//! needs tile `(I-1, J)` (the row segment at its top edge, carried by the
//! shared rolling row) and tile `(I, J-1)` (its west column, carried by a
//! per-`J` column buffer — the paper's `lcsA`/`lcsB` wavefront arrays).
//! [`tempora_parallel::Pool::waves`] with waves `w = 2I + J` satisfies
//! both dependences, and same-wave tiles touch disjoint row segments and
//! distinct column buffers.

use tempora_core::lcs::{scalar_row_step_seg, tile_seg, ScratchLcs};
use tempora_parallel::{Pool, SyncSlice};

const VL: usize = 8;

/// Per-tile working state: the temporal scratch reused across the tile's
/// sub-bands.
struct TileRun<'a> {
    a: &'a [u8],
    b: &'a [u8],
    s: usize,
    temporal: bool,
}

impl TileRun<'_> {
    /// Advance the row segment `[y0, y1]` from level `x0` to `x1`
    /// (exclusive upper), reading `left[h] = lcs[x0+h][y0-1]` and filling
    /// `right[h] = lcs[x0+h][y1]` for `h ∈ 0..=x1-x0`.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        row: &mut [i32],
        x0: usize,
        x1: usize,
        y0: usize,
        y1: usize,
        left: &[i32],
        right: &mut [i32],
    ) {
        let height = x1 - x0;
        right[0] = row[y1];
        if self.temporal {
            let mut sc = ScratchLcs::<VL>::new(self.s);
            let bands = height / VL;
            for t in 0..bands {
                let base = t * VL;
                tile_seg::<VL>(
                    row,
                    y0,
                    y1,
                    &self.a[x0 + base..x0 + base + VL],
                    self.b,
                    self.s,
                    &left[base..base + VL + 1],
                    &mut right[base..base + VL + 1],
                    &mut sc,
                );
            }
            for h in bands * VL..height {
                scalar_row_step_seg(row, self.a[x0 + h], self.b, y0, y1, left[h + 1], left[h]);
                right[h + 1] = row[y1];
            }
        } else {
            for h in 0..height {
                scalar_row_step_seg(row, self.a[x0 + h], self.b, y0, y1, left[h + 1], left[h]);
                right[h + 1] = row[y1];
            }
        }
    }
}

/// Compute the LCS length of `a` and `b` with rectangle tiling
/// (`xblock × yblock`) executed as a pipelined wavefront on `pool`.
///
/// `temporal` selects the temporally vectorized in-tile kernel ("our")
/// versus the scalar rows ("scalar"); both are exact.
#[allow(clippy::too_many_arguments)]
pub fn run_lcs(
    a: &[u8],
    b: &[u8],
    xblock: usize,
    yblock: usize,
    s: usize,
    temporal: bool,
    pool: &Pool,
) -> i32 {
    assert!(s >= 1 && xblock >= 1 && yblock >= 1);
    let (la, lb) = (a.len(), b.len());
    if la == 0 || lb == 0 {
        return 0;
    }
    let n_i = la.div_ceil(xblock);
    let n_j = lb.div_ceil(yblock);

    let mut row = vec![0i32; lb + 1];
    // Column buffers: cols[j][h] = lcs[x0+h][y_j1] for the current tile
    // row I; cols[0] is the (all-zero) table west edge, reallocated per I
    // because x0 changes (column 0 of the table is always zero).
    let mut cols: Vec<Vec<i32>> = (0..n_j + 1).map(|_| vec![0i32; xblock + 1]).collect();

    let run = TileRun { a, b, s, temporal };
    {
        let row_shared = SyncSlice::new(&mut row);
        let cols_shared = SyncSlice::new(&mut cols);
        pool.waves(n_i, n_j, |i, j| {
            // SAFETY: tile (i, j) writes row[y0..=y1] (disjoint segments
            // across same-wave tiles, which differ in j by ≥ 2) and
            // cols[j+1]; it reads cols[j], written by (i, j-1) on an
            // earlier wave. The zero column cols[0] is never written.
            let row = unsafe { row_shared.slice_mut() };
            let cols = unsafe { cols_shared.slice_mut() };
            let x0 = i * xblock;
            let x1 = ((i + 1) * xblock).min(la);
            let y0 = j * yblock + 1;
            let y1 = ((j + 1) * yblock).min(lb);
            // Split the aliasing manually: left = cols[j], right = cols[j+1].
            let (head, tail) = cols.split_at_mut(j + 1);
            let left = &head[j];
            let right = &mut tail[0];
            run.run(row, x0, x1, y0, y1, left, right);
        });
    }
    row[lb]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_grid::random_sequence;
    use tempora_stencil::reference;

    #[test]
    fn tiled_lcs_matches_reference() {
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            for &(la, lb) in &[(40usize, 120usize), (64, 64), (100, 333), (31, 57)] {
                let a = random_sequence(la, 4, la as u64);
                let b = random_sequence(lb, 4, lb as u64 + 7);
                let gold = reference::lcs_len(&a, &b);
                for &(xb, yb) in &[(16usize, 32usize), (24, 40), (64, 128)] {
                    for temporal in [false, true] {
                        let got = run_lcs(&a, &b, xb, yb, 1, temporal, &pool);
                        assert_eq!(
                            got, gold,
                            "threads={threads} la={la} lb={lb} xb={xb} yb={yb} temporal={temporal}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stride_two_and_binary_alphabet() {
        let pool = Pool::new(2);
        let a = random_sequence(77, 2, 1);
        let b = random_sequence(201, 2, 2);
        let gold = reference::lcs_len(&a, &b);
        for s in 1..=2 {
            assert_eq!(run_lcs(&a, &b, 32, 64, s, true, &pool), gold, "s={s}");
        }
    }

    #[test]
    fn degenerate_shapes() {
        let pool = Pool::new(2);
        assert_eq!(run_lcs(b"", b"ABC", 8, 8, 1, true, &pool), 0);
        assert_eq!(run_lcs(b"ABC", b"", 8, 8, 1, true, &pool), 0);
        assert_eq!(run_lcs(b"A", b"A", 8, 8, 1, true, &pool), 1);
        assert_eq!(run_lcs(b"GATTACA", b"TACCAGA", 2, 3, 1, false, &pool), 4);
    }
}
