//! Rectangle tiling for the LCS dynamic program (paper §3.4: "LCS allows
//! the rectangle tiling in the iteration space"), with pipelined
//! wavefront parallelism.
//!
//! The DP table is cut into `xblock × yblock` rectangles. Tile `(I, J)`
//! needs tile `(I-1, J)` (the row segment at its top edge, carried by the
//! shared rolling row) and tile `(I, J-1)` (its west column, carried by a
//! per-`J` column buffer — the paper's `lcsA`/`lcsB` wavefront arrays).
//! [`tempora_parallel::Pool::waves`] with waves `w = 2I + J` satisfies
//! both dependences, and same-wave tiles touch disjoint row segments and
//! distinct column buffers.
//!
//! [`LcsRect`] is the reusable workspace form (row, column buffers and
//! per-block temporal scratch allocated once, reused by every
//! [`LcsRect::run`] call — the wavefront runs allocation-free); the old
//! [`run_lcs`] free function remains as a deprecated one-shot wrapper.
//! The temporal in-tile kernel dispatches like the grid tilings: the
//! workspace resolves its [`Select`] once against the AVX2 LCS steady
//! state's shape predicate
//! ([`tempora_core::lcs_avx2::rect_has_vector_tiles`] — every block
//! column must host the `vl = 8` vector schedule) and reports the
//! resolved [`Engine`]; degenerate geometries honestly stay portable.

use tempora_core::engine::{Engine, Select};
use tempora_core::lcs::{scalar_row_step_seg, tile_seg, ScratchLcs};
use tempora_core::lcs_avx2;
use tempora_parallel::{Pool, SyncSlice};

const VL: usize = 8;

/// Per-tile executor parameters.
struct TileRun<'a> {
    a: &'a [u8],
    b: &'a [u8],
    s: usize,
    temporal: bool,
    avx2: bool,
}

impl TileRun<'_> {
    /// Advance the row segment `[y0, y1]` from level `x0` to `x1`
    /// (exclusive upper), reading `left[h] = lcs[x0+h][y0-1]` and filling
    /// `right[h] = lcs[x0+h][y1]` for `h ∈ 0..=x1-x0`.
    // Justification: the parameter list is the rectangle-tile contract (sequences, row, columns, scratch, bounds).
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        row: &mut [i32],
        x0: usize,
        x1: usize,
        y0: usize,
        y1: usize,
        left: &[i32],
        right: &mut [i32],
        sc: &mut ScratchLcs<VL>,
    ) {
        let height = x1 - x0;
        right[0] = row[y1];
        if self.temporal {
            let bands = height / VL;
            for t in 0..bands {
                let base = t * VL;
                let a_tile = &self.a[x0 + base..x0 + base + VL];
                let lcol = &left[base..base + VL + 1];
                let rcol = &mut right[base..base + VL + 1];
                match self.avx2 {
                    #[cfg(target_arch = "x86_64")]
                    true => {
                        lcs_avx2::tile_seg_avx2(row, y0, y1, a_tile, self.b, self.s, lcol, rcol, sc)
                    }
                    #[cfg(not(target_arch = "x86_64"))]
                    true => unreachable!("AVX2 resolved on a non-x86-64 target"),
                    false => tile_seg::<VL>(row, y0, y1, a_tile, self.b, self.s, lcol, rcol, sc),
                }
            }
            for h in bands * VL..height {
                scalar_row_step_seg(row, self.a[x0 + h], self.b, y0, y1, left[h + 1], left[h]);
                right[h + 1] = row[y1];
            }
        } else {
            for h in 0..height {
                scalar_row_step_seg(row, self.a[x0 + h], self.b, y0, y1, left[h + 1], left[h]);
                right[h + 1] = row[y1];
            }
        }
    }
}

/// Reusable rectangle-tiling workspace for the LCS DP: the rolling row,
/// the per-`J` column buffers and the per-block temporal scratch are
/// allocated once in [`LcsRect::new`] and reused (re-zeroed, not
/// reallocated) by every [`LcsRect::run`] call.
pub struct LcsRect {
    xblock: usize,
    yblock: usize,
    s: usize,
    temporal: bool,
    engine: Option<Engine>,
    la: usize,
    lb: usize,
    row: Vec<i32>,
    cols: Vec<Vec<i32>>,
    scratch: Vec<ScratchLcs<VL>>,
}

impl LcsRect {
    /// Build a workspace for sequences of lengths `la × lb` with
    /// `xblock × yblock` rectangles and temporal stride `s`. `temporal`
    /// selects the temporally vectorized in-tile kernel ("our") versus
    /// scalar rows ("scalar"); both are exact. `sel` is resolved once,
    /// against the AVX2 steady state's rectangle shape predicate: every
    /// block column (the ragged last one included) must host the
    /// `vl = 8` vector schedule, otherwise the run honestly resolves
    /// portable.
    ///
    /// # Panics
    /// Panics when `s`, `xblock` or `yblock` is zero (`tempora_plan`
    /// validates these ahead of time and returns a `PlanError` instead).
    pub fn new(
        la: usize,
        lb: usize,
        xblock: usize,
        yblock: usize,
        s: usize,
        temporal: bool,
        sel: Select,
    ) -> Self {
        assert!(s >= 1 && xblock >= 1 && yblock >= 1);
        let n_j = lb.div_ceil(yblock);
        // Column buffers: cols[j][h] = lcs[x0+h][y_j1] for the current
        // tile row I; cols[0] is the (all-zero) table west edge, never
        // written.
        let cols: Vec<Vec<i32>> = (0..n_j + 1).map(|_| vec![0i32; xblock + 1]).collect();
        // Per-block-column scratch: same-wave tiles differ in j by ≥ 2
        // and tiles sharing j are serialized by the (I-1, J) dependence,
        // so slot j is never touched concurrently. (Allocated for the
        // scalar mode too — it is tiny and keeps the executor uniform.)
        let scratch: Vec<ScratchLcs<VL>> = (0..n_j + 1).map(|_| ScratchLcs::new(s)).collect();
        LcsRect {
            xblock,
            yblock,
            s,
            temporal,
            engine: temporal
                .then(|| sel.resolve(lcs_avx2::rect_has_vector_tiles(la, lb, xblock, yblock, s))),
            la,
            lb,
            row: vec![0i32; lb + 1],
            cols,
            scratch,
        }
    }

    /// The engine the temporal wavefront resolved to (`None` for scalar
    /// rows).
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    /// First-touch the per-column buffers and re-allocate the
    /// per-block-column scratch through `pool` (best-effort NUMA spread
    /// — the wavefront schedule has no static tile owner). The rolling
    /// row, shared by all tiles, stays caller-touched. Results are
    /// unchanged whether or not this runs.
    pub fn fault_in(&mut self, pool: &Pool) {
        tempora_failpoint::failpoint!("fault_in");
        let s = self.s;
        let n_slots = self.cols.len();
        let cols_shared = SyncSlice::new(&mut self.cols);
        let scratch_shared = SyncSlice::new(&mut self.scratch);
        pool.for_each_owned(n_slots, |j| {
            // SAFETY: column slot j is written only by its owning worker.
            let col = unsafe { &mut cols_shared.slice_mut()[j] };
            crate::touch_pages(col);
            // SAFETY: scratch slot j is written only by its owning worker.
            let sc = unsafe { &mut scratch_shared.slice_mut()[j] };
            *sc = ScratchLcs::new(s);
        });
        crate::touch_pages(&mut self.row);
    }

    /// Compute the LCS length of `a` and `b` as a pipelined wavefront on
    /// `pool`. Reusable: internal buffers are re-zeroed, not reallocated.
    ///
    /// # Panics
    /// Panics if the sequence lengths do not match the workspace.
    pub fn run(&mut self, a: &[u8], b: &[u8], pool: &Pool) -> i32 {
        assert_eq!(
            (a.len(), b.len()),
            (self.la, self.lb),
            "sequences do not match workspace geometry"
        );
        let (la, lb) = (self.la, self.lb);
        if la == 0 || lb == 0 {
            return 0;
        }
        let n_i = la.div_ceil(self.xblock);
        let n_j = lb.div_ceil(self.yblock);
        self.row.fill(0);
        for col in &mut self.cols {
            col.fill(0);
        }

        let run = TileRun {
            a,
            b,
            s: self.s,
            temporal: self.temporal,
            avx2: self.engine == Some(Engine::Avx2),
        };
        let (xblock, yblock) = (self.xblock, self.yblock);
        {
            let row_shared = SyncSlice::new(&mut self.row);
            let cols_shared = SyncSlice::new(&mut self.cols);
            let scratch_shared = SyncSlice::new(&mut self.scratch);
            pool.waves(n_i, n_j, |i, j| {
                // SAFETY: tile (i, j) writes row[y0..=y1] only — disjoint
                // segments across same-wave tiles, which differ in j by ≥ 2.
                let row = unsafe { row_shared.slice_mut() };
                // SAFETY: tile (i, j) writes cols[j+1] and reads cols[j],
                // written by (i, j-1) on an earlier wave (dependence edge).
                // The zero column cols[0] is never written.
                let cols = unsafe { cols_shared.slice_mut() };
                let x0 = i * xblock;
                let x1 = ((i + 1) * xblock).min(la);
                let y0 = j * yblock + 1;
                let y1 = ((j + 1) * yblock).min(lb);
                // Split the aliasing manually: left = cols[j], right = cols[j+1].
                let (head, tail) = cols.split_at_mut(j + 1);
                let left = &head[j];
                let right = &mut tail[0];
                // SAFETY: scratch slot j is owned by the unique in-flight
                // tile of block column j.
                let sc = unsafe { &mut scratch_shared.slice_mut()[j] };
                run.run(row, x0, x1, y0, y1, left, right, sc);
            });
        }
        self.row[lb]
    }
}

/// Compute the LCS length of `a` and `b` with rectangle tiling (one-shot
/// wrapper over [`LcsRect`]).
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` (or reuse an `lcs_rect::LcsRect` workspace) instead"
)]
// Justification: the parameter list is the LCS run contract; a params struct would obscure it.
#[allow(clippy::too_many_arguments)]
pub fn run_lcs(
    a: &[u8],
    b: &[u8],
    xblock: usize,
    yblock: usize,
    s: usize,
    temporal: bool,
    pool: &Pool,
) -> i32 {
    LcsRect::new(a.len(), b.len(), xblock, yblock, s, temporal, Select::Auto).run(a, b, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_grid::random_sequence;
    use tempora_stencil::reference;

    fn lcs_tiled(a: &[u8], b: &[u8], xb: usize, yb: usize, s: usize, t: bool, pool: &Pool) -> i32 {
        LcsRect::new(a.len(), b.len(), xb, yb, s, t, Select::Auto).run(a, b, pool)
    }

    #[test]
    fn tiled_lcs_matches_reference() {
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            for &(la, lb) in &[(40usize, 120usize), (64, 64), (100, 333), (31, 57)] {
                let a = random_sequence(la, 4, la as u64);
                let b = random_sequence(lb, 4, lb as u64 + 7);
                let gold = reference::lcs_len(&a, &b);
                for &(xb, yb) in &[(16usize, 32usize), (24, 40), (64, 128)] {
                    for temporal in [false, true] {
                        let got = lcs_tiled(&a, &b, xb, yb, 1, temporal, &pool);
                        assert_eq!(
                            got, gold,
                            "threads={threads} la={la} lb={lb} xb={xb} yb={yb} temporal={temporal}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn workspace_reuse_is_identical_and_allocation_free() {
        let pool = Pool::new(2);
        let a = random_sequence(100, 4, 1);
        let b = random_sequence(140, 4, 2);
        let gold = reference::lcs_len(&a, &b);
        let mut w = LcsRect::new(100, 140, 24, 40, 1, true, Select::Auto);
        let expect = if tempora_simd::arch::avx2_available() {
            Engine::Avx2
        } else {
            Engine::Portable
        };
        assert_eq!(w.engine(), Some(expect));
        assert_eq!(w.run(&a, &b, &pool), gold);
        // Process-global counter + concurrent sibling tests: retry until
        // a clean window (a real allocation in `run` would taint every
        // window).
        let mut clean = false;
        for _ in 0..32 {
            let before = tempora_grid::alloc_count();
            assert_eq!(w.run(&a, &b, &pool), gold);
            if tempora_grid::alloc_count() == before {
                clean = true;
                break;
            }
        }
        assert!(clean, "reused run allocated in every observed window");
    }

    #[test]
    fn stride_two_and_binary_alphabet() {
        let pool = Pool::new(2);
        let a = random_sequence(77, 2, 1);
        let b = random_sequence(201, 2, 2);
        let gold = reference::lcs_len(&a, &b);
        for s in 1..=2 {
            assert_eq!(lcs_tiled(&a, &b, 32, 64, s, true, &pool), gold, "s={s}");
        }
    }

    #[test]
    fn engine_report_is_honest_and_forced_engines_agree() {
        let pool = Pool::new(2);
        let a = random_sequence(96, 4, 21);
        let b = random_sequence(130, 4, 22);
        let gold = reference::lcs_len(&a, &b);
        // Scalar mode never dispatches.
        let mut w = LcsRect::new(96, 130, 24, 40, 1, false, Select::Auto);
        assert_eq!(w.engine(), None);
        assert_eq!(w.run(&a, &b, &pool), gold);
        // Forced portable reports portable.
        let mut w = LcsRect::new(96, 130, 24, 40, 1, true, Select::Portable);
        assert_eq!(w.engine(), Some(Engine::Portable));
        assert_eq!(w.run(&a, &b, &pool), gold);
        // Degenerate geometries resolve portable even under Auto: a
        // column block below VL·s + 1, and an xblock below VL.
        let mut w = LcsRect::new(96, 130, 24, 6, 1, true, Select::Auto);
        assert_eq!(w.engine(), Some(Engine::Portable));
        assert_eq!(w.run(&a, &b, &pool), gold);
        let mut w = LcsRect::new(96, 130, 4, 40, 1, true, Select::Auto);
        assert_eq!(w.engine(), Some(Engine::Portable));
        assert_eq!(w.run(&a, &b, &pool), gold);
        // Forced AVX2 on a healthy geometry agrees with forced portable.
        if tempora_simd::arch::avx2_available() {
            let mut w = LcsRect::new(96, 130, 24, 40, 1, true, Select::Avx2);
            assert_eq!(w.engine(), Some(Engine::Avx2));
            assert_eq!(w.run(&a, &b, &pool), gold);
        }
    }

    #[test]
    fn pipelined_and_barrier_schedules_agree_and_fault_in_is_safe() {
        use tempora_parallel::{PoolConfig, WaveSchedule};
        let a = random_sequence(100, 4, 1);
        let b = random_sequence(140, 4, 2);
        let gold = reference::lcs_len(&a, &b);
        for threads in [2usize, 4, 8] {
            let pipe = Pool::with_config(PoolConfig::new(threads));
            let barr = Pool::with_config(PoolConfig::new(threads).schedule(WaveSchedule::Barrier));
            for temporal in [false, true] {
                let mut w = LcsRect::new(100, 140, 24, 40, 1, temporal, Select::Auto);
                w.fault_in(&pipe);
                assert_eq!(w.run(&a, &b, &pipe), gold, "pipelined threads={threads}");
                assert_eq!(w.run(&a, &b, &barr), gold, "barrier threads={threads}");
            }
        }
    }

    #[test]
    // Justification: pins the deprecated one-shot wrapper's behavior until its removal.
    #[allow(deprecated)]
    fn degenerate_shapes_and_deprecated_wrapper() {
        let pool = Pool::new(2);
        assert_eq!(run_lcs(b"", b"ABC", 8, 8, 1, true, &pool), 0);
        assert_eq!(run_lcs(b"ABC", b"", 8, 8, 1, true, &pool), 0);
        assert_eq!(run_lcs(b"A", b"A", 8, 8, 1, true, &pool), 1);
        assert_eq!(run_lcs(b"GATTACA", b"TACCAGA", 2, 3, 1, false, &pool), 4);
    }
}
