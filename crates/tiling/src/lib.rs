//! # tempora-tiling — time-tiled, parallel execution of the engines
//!
//! The blocking layer of the *tempora* workspace (paper §3.4), combining
//! the temporal-vectorization engines of `tempora-core` with time-space
//! tiling and the `tempora-parallel` executor:
//!
//! * [`ghost`] — overlapped (ghost-zone) band tiling for the five Jacobi
//!   benchmarks: embarrassingly parallel tiles per `VL`-level band, with
//!   scalar / multi-load ("auto") / temporal in-tile kernels. This is the
//!   documented substitution for the paper's diamond tiling (see
//!   DESIGN.md §2).
//! * [`skew`] — parallelogram (time-skewed) tiling with pipelined
//!   wavefronts for the three Gauss-Seidel benchmarks, exactly the
//!   paper's scheme; in-place staircase arrays, no halo exchange.
//! * [`lcs_rect`] — rectangle tiling with pipelined wavefronts for LCS,
//!   the paper's `lcsA`/`lcsB` wavefront-array scheme.
//!
//! Every parallel path is bit-identical to the sequential engines and the
//! scalar references, for every thread count — verified by the test
//! suites of each module and the cross-crate integration tests.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ghost;
pub mod lcs_rect;
pub mod skew;

pub use ghost::Mode;
