//! # tempora-tiling — time-tiled, parallel execution of the engines
//!
//! The blocking layer of the *tempora* workspace (paper §3.4), combining
//! the temporal-vectorization engines of `tempora-core` with time-space
//! tiling and the `tempora-parallel` executor:
//!
//! * [`ghost`] — overlapped (ghost-zone) band tiling for the five Jacobi
//!   benchmarks: embarrassingly parallel tiles per `VL`-level band, with
//!   scalar / multi-load ("auto") / temporal in-tile kernels. This is the
//!   documented substitution for the paper's diamond tiling (see
//!   DESIGN.md §2).
//! * [`skew`] — parallelogram (time-skewed) tiling with pipelined
//!   wavefronts for the three Gauss-Seidel benchmarks, exactly the
//!   paper's scheme; in-place staircase arrays, no halo exchange.
//! * [`lcs_rect`] — rectangle tiling with pipelined wavefronts for LCS,
//!   the paper's `lcsA`/`lcsB` wavefront-array scheme.
//!
//! Each scheme is exposed as a **reusable workspace** — [`GhostJacobi1d`]
//! / [`GhostJacobi2d`] / [`GhostJacobi3d`], [`SkewGs1d`] / [`SkewGs2d`] /
//! [`SkewGs3d`], and [`LcsRect`] — that validates the geometry, resolves
//! the in-tile engine, and allocates every arena **once**; repeated
//! `advance` / `run` calls are then allocation-free. These workspaces are
//! the execution layer behind `tempora_plan::Plan`; the old `run_*` free
//! functions remain as deprecated one-shot wrappers for one release.
//!
//! The temporal in-tile kernels go through the same engine dispatch as
//! the sequential engines: workspaces take a
//! `tempora_core::engine::Select`, resolve it once (portable vs
//! hand-scheduled AVX2, degenerate geometries honestly portable) and
//! report the resolved engine for per-series reporting in the bench
//! harness.
//!
//! Every parallel path is bit-identical to the sequential engines and the
//! scalar references, for every thread count, engine selection and mode —
//! verified by the test suites of each module and the cross-crate
//! integration tests.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ghost;
pub mod lcs_rect;
pub mod skew;

/// Force a write fault on every page of `slice` without changing its
/// contents (one volatile read + write-back per 4 KiB page). The
/// workspaces' `fault_in` methods run this through the pool so each
/// tile's arena pages are placed on the NUMA node of the worker that
/// will later advance the tile (first-touch placement).
pub(crate) fn touch_pages<T: Copy>(slice: &mut [T]) {
    let step = (4096 / core::mem::size_of::<T>().max(1)).max(1);
    let mut i = 0;
    while i < slice.len() {
        // SAFETY: `i` is in bounds; volatile keeps the no-op write alive.
        unsafe {
            let p = slice.as_mut_ptr().add(i);
            core::ptr::write_volatile(p, core::ptr::read_volatile(p));
        }
        i += step;
    }
}

pub use ghost::{GhostJacobi1d, GhostJacobi2d, GhostJacobi3d, Mode};
pub use lcs_rect::LcsRect;
pub use skew::{SkewGs1d, SkewGs2d, SkewGs3d};
