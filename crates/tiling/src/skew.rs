//! Parallelogram (time-skewed) tiling for Gauss-Seidel stencils, with
//! pipelined wavefront parallelism (paper §3.4: "we utilize parallelogram
//! tiling for all space dimensions" — here applied along the outermost
//! dimension, the one the temporal scheme vectorizes).
//!
//! The iteration space is cut into bands of `height` time levels × skewed
//! blocks of `block` anchor columns; block `(band, i)` is the
//! parallelogram executed by the banded engines in `tempora-core`
//! (`t1d_band`/`t2d_band`/`t3d_band`), executed as `height/VL` successive
//! `VL`-level sub-bands whose anchors shift left by `VL` each (one
//! parallelogram of the paper's Table-1 time-block depth). Dependences
//! are `(b, i-1)`, `(b-1, i)` and `(b-1, i+1)`, so
//! [`tempora_parallel::Pool::waves`] (waves `w = 2b + i`) is a legal
//! schedule; same-wave tasks are at block distance ≥ 2 and their
//! read/write sets are disjoint whenever `block ≥ height + VL·s + VL`
//! (asserted), because a tile touches at most
//! `[xl - height - VL·s, xr + 1]` and same-wave neighbours sit two
//! blocks away.

use tempora_core::kernels::{Kernel1d, Kernel2d, Kernel3d};
use tempora_core::{t1d, t1d_band, t2d, t2d_band, t3d, t3d_band};
use tempora_grid::{Grid1, Grid2, Grid3};
use tempora_parallel::{Pool, SyncSlice};

const VL: usize = 4;

/// Number of skewed blocks for interior size `n`, anchor width `block`
/// and band height `height` (anchors must reach `n + height - 1` so the
/// deepest level's window still covers `x = n`).
fn block_count(n: usize, block: usize, height: usize) -> usize {
    (n + height - 1).div_ceil(block)
}

/// Anchor bounds (level-1 window) of skewed block `i`.
fn block_bounds(i: usize, n: usize, block: usize, height: usize) -> (usize, usize) {
    let span = n + height - 1;
    (i * block + 1, ((i + 1) * block).min(span))
}

/// Run `steps` Gauss-Seidel time steps over a 1-D grid with pipelined
/// skewed tiling. `temporal` selects the vectorized band executor ("our")
/// versus the scalar one ("scalar"); both are bit-identical to the
/// reference.
// The run_gs_* parameter lists mirror the paper's tiling knobs
// (steps, block, band, stride, executor, pool) one-to-one.
#[allow(clippy::too_many_arguments)]
pub fn run_gs_1d<K: Kernel1d>(
    grid: &Grid1<f64>,
    kern: &K,
    steps: usize,
    block: usize,
    height: usize,
    s: usize,
    temporal: bool,
    pool: &Pool,
) -> Grid1<f64> {
    assert!(K::IS_GS);
    assert!(
        height >= VL && height % VL == 0,
        "height must be a multiple of {VL}"
    );
    assert!(
        block >= height + VL * s + VL,
        "block too narrow for wave disjointness"
    );
    let mut g = grid.clone();
    let n = g.n();
    let bands = steps / height;
    let nblocks = block_count(n, block, height);
    {
        let data = g.data_mut();
        let shared = SyncSlice::new(data);
        pool.waves(bands, nblocks, |_b, i| {
            // SAFETY: wave scheduling keeps concurrent tiles ≥ 2 blocks
            // apart; a tile touches [xl - height - VL·s, xr + 1] ⊂ its
            // block ± one block for block ≥ height + VL·s + VL (asserted).
            let a = unsafe { shared.slice_mut() };
            let (xl, xr) = block_bounds(i, n, block, height);
            for j in 0..height / VL {
                let off = j * VL;
                if xr <= off {
                    break;
                }
                let (xlj, xrj) = (xl.saturating_sub(off).max(1), xr - off);
                if temporal {
                    t1d_band::band_temporal_gs::<VL, K>(a, xlj, xrj, n, s, kern);
                } else {
                    t1d_band::band_scalar_gs(a, xlj, xrj, VL, n, kern);
                }
            }
        });
    }
    let a = g.data_mut();
    for _ in 0..steps % height {
        t1d::scalar_step_inplace(a, n, kern);
    }
    g
}

/// Run `steps` Gauss-Seidel time steps over a 2-D grid with pipelined
/// skewed tiling along the outer dimension.
#[allow(clippy::too_many_arguments)]
pub fn run_gs_2d<K: Kernel2d<f64>>(
    grid: &Grid2<f64>,
    kern: &K,
    steps: usize,
    block: usize,
    height: usize,
    s: usize,
    temporal: bool,
    pool: &Pool,
) -> Grid2<f64> {
    assert!(K::IS_GS);
    assert!(
        height >= VL && height % VL == 0,
        "height must be a multiple of {VL}"
    );
    assert!(
        block >= height + VL * s + VL,
        "block too narrow for wave disjointness"
    );
    let mut g = grid.clone();
    let (nx, ny) = (g.nx(), g.ny());
    let bands = steps / height;
    let nblocks = block_count(nx, block, height);
    {
        let shared_grid = SyncSlice::new(core::slice::from_mut(&mut g));
        pool.waves(bands, nblocks, |_b, i| {
            // SAFETY: same wave-distance argument as run_gs_1d, with rows
            // as the banded unit.
            let g = &mut unsafe { shared_grid.slice_mut() }[0];
            let (xl, xr) = block_bounds(i, nx, block, height);
            let mut sc = t2d_band::BandScratch2d::<VL>::new(s, ny);
            for j in 0..height / VL {
                let off = j * VL;
                if xr <= off {
                    break;
                }
                let (xlj, xrj) = (xl.saturating_sub(off).max(1), xr - off);
                if temporal {
                    t2d_band::band_temporal_gs2d::<VL, K>(g, xlj, xrj, s, kern, &mut sc);
                } else {
                    t2d_band::band_scalar_gs2d(g, xlj, xrj, VL, kern);
                }
            }
        });
    }
    let rem = steps % height;
    if rem > 0 {
        let w = ny + 2;
        let (mut ra, mut rb) = (vec![0.0; w], vec![0.0; w]);
        for _ in 0..rem {
            t2d::scalar_step_inplace(&mut g, kern, &mut ra, &mut rb);
        }
    }
    g
}

/// Run `steps` Gauss-Seidel time steps over a 3-D grid with pipelined
/// skewed tiling along the outer dimension.
#[allow(clippy::too_many_arguments)]
pub fn run_gs_3d<K: Kernel3d<f64>>(
    grid: &Grid3<f64>,
    kern: &K,
    steps: usize,
    block: usize,
    height: usize,
    s: usize,
    temporal: bool,
    pool: &Pool,
) -> Grid3<f64> {
    assert!(K::IS_GS);
    assert!(
        height >= VL && height % VL == 0,
        "height must be a multiple of {VL}"
    );
    assert!(
        block >= height + VL * s + VL,
        "block too narrow for wave disjointness"
    );
    let mut g = grid.clone();
    let (nx, ny, nz) = (g.nx(), g.ny(), g.nz());
    let bands = steps / height;
    let nblocks = block_count(nx, block, height);
    {
        let shared_grid = SyncSlice::new(core::slice::from_mut(&mut g));
        pool.waves(bands, nblocks, |_b, i| {
            // SAFETY: same wave-distance argument, slabs as the unit.
            let g = &mut unsafe { shared_grid.slice_mut() }[0];
            let (xl, xr) = block_bounds(i, nx, block, height);
            let mut sc = t3d_band::BandScratch3d::<VL>::new(s, ny, nz);
            for j in 0..height / VL {
                let off = j * VL;
                if xr <= off {
                    break;
                }
                let (xlj, xrj) = (xl.saturating_sub(off).max(1), xr - off);
                if temporal {
                    t3d_band::band_temporal_gs3d::<VL, K>(g, xlj, xrj, s, kern, &mut sc);
                } else {
                    t3d_band::band_scalar_gs3d(g, xlj, xrj, VL, kern);
                }
            }
        });
    }
    let rem = steps % height;
    if rem > 0 {
        let wp = (ny + 2) * (nz + 2);
        let (mut pa, mut pb) = (vec![0.0; wp], vec![0.0; wp]);
        for _ in 0..rem {
            t3d::scalar_step_inplace(&mut g, kern, &mut pa, &mut pb);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_core::kernels::{GsKern1d, GsKern2d, GsKern3d};
    use tempora_grid::{fill_random_1d, fill_random_2d, fill_random_3d, Boundary};
    use tempora_stencil::reference;
    use tempora_stencil::{Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs};

    #[test]
    fn gs1d_parallel_matches_reference_all_thread_counts() {
        let c = Gs1dCoeffs::classic(0.27);
        let kern = GsKern1d(c);
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            for &(n, block, s, steps) in &[
                (500usize, 64usize, 2usize, 8usize),
                (1000, 128, 7, 12),
                (300, 120, 3, 13),
            ] {
                let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.6));
                fill_random_1d(&mut g, n as u64 + threads as u64, -1.0, 1.0);
                let gold = reference::gs1d(&g, c, steps);
                for temporal in [false, true] {
                    let ours = run_gs_1d(&g, &kern, steps, block, 4, s, temporal, &pool);
                    assert!(
                        ours.interior_eq(&gold),
                        "threads={threads} n={n} block={block} s={s} steps={steps} \
                         temporal={temporal} {:?}",
                        ours.first_diff(&gold)
                    );
                }
            }
        }
    }

    #[test]
    fn gs2d_parallel_matches_reference() {
        let c = Gs2dCoeffs::classic(0.19);
        let kern = GsKern2d(c);
        for threads in [1usize, 2] {
            let pool = Pool::new(threads);
            let mut g = Grid2::new(120, 9, 1, Boundary::Dirichlet(-0.3));
            fill_random_2d(&mut g, 21, -1.0, 1.0);
            let gold = reference::gs2d(&g, c, 8);
            for temporal in [false, true] {
                let ours = run_gs_2d(&g, &kern, 8, 48, 8, 2, temporal, &pool);
                assert!(
                    ours.interior_eq(&gold),
                    "threads={threads} temporal={temporal} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn gs3d_parallel_matches_reference() {
        let c = Gs3dCoeffs::classic(0.11);
        let kern = GsKern3d(c);
        let pool = Pool::new(2);
        let mut g = Grid3::new(80, 5, 6, 1, Boundary::Dirichlet(0.2));
        fill_random_3d(&mut g, 13, -1.0, 1.0);
        let gold = reference::gs3d(&g, c, 9); // 2 bands + remainder
        for temporal in [false, true] {
            let ours = run_gs_3d(&g, &kern, 9, 24, 4, 2, temporal, &pool);
            assert!(
                ours.interior_eq(&gold),
                "temporal={temporal} {:?}",
                ours.first_diff(&gold)
            );
        }
    }
}
