//! Parallelogram (time-skewed) tiling for Gauss-Seidel stencils, with
//! pipelined wavefront parallelism (paper §3.4: "we utilize parallelogram
//! tiling for all space dimensions" — here applied along the outermost
//! dimension, the one the temporal scheme vectorizes).
//!
//! The iteration space is cut into bands of `height` time levels × skewed
//! blocks of `block` anchor columns; block `(band, i)` is the
//! parallelogram executed by the banded engines in `tempora-core`
//! (`t1d_band`/`t2d_band`/`t3d_band`), executed as `height/VL` successive
//! `VL`-level sub-bands whose anchors shift left by `VL` each (one
//! parallelogram of the paper's Table-1 time-block depth). Dependences
//! are `(b, i-1)`, `(b-1, i)` and `(b-1, i+1)`, so
//! [`tempora_parallel::Pool::waves`] (waves `w = 2b + i`) is a legal
//! schedule; same-wave tasks are at block distance ≥ 2 and their
//! read/write sets are disjoint whenever `block ≥ height + VL·s + VL`
//! (asserted), because a tile touches at most
//! `[xl - height - VL·s, xr + 1]` and same-wave neighbours sit two
//! blocks away.
//!
//! # Reusable workspaces
//!
//! Each dimension exposes a workspace — [`SkewGs1d`], [`SkewGs2d`],
//! [`SkewGs3d`] — that validates the geometry and resolves the banded
//! engine once, allocates the per-block band scratch once, and is driven
//! by repeated `advance(&mut grid, &pool)` calls that run
//! allocation-free. This is the execution layer behind
//! `tempora_plan::Plan`; the old `run_gs_*` free functions remain as
//! deprecated one-shot wrappers.
//!
//! # Engine dispatch
//!
//! The temporal band executor goes through the same dispatch as the
//! sequential engines: every workspace takes a [`Mode`] (scalar bands for
//! the paper's "scalar" curves, [`Mode::Temporal`] for "our"; spatial
//! auto-vectorization of Gauss-Seidel is illegal and rejected) plus a
//! [`Select`], resolves the selection **once** against the kernel's AVX2
//! band capability ([`Avx2Exec1d::avx2_band`] and friends) and the block
//! geometry, and reports the resolved [`Engine`]. Geometries where *no*
//! skewed block can host the vector steady state resolve portable, so the
//! reported engine names the instruction mix that actually ran. Per-block
//! band scratch lives in a workspace arena (one slot per block index —
//! tasks with the same block index are ordered by the wave dependences,
//! so slots are never touched concurrently).

use tempora_core::engine::{Avx2Exec1d, Avx2Exec2d, Avx2Exec3d, Engine, Select};
use tempora_core::t1d_band::vector_band_shape;
use tempora_core::{t1d, t1d_band, t2d, t2d_band, t3d, t3d_band};
use tempora_grid::{Grid1, Grid2, Grid3};
use tempora_parallel::{Pool, SyncSlice};

pub use crate::ghost::Mode;

const VL: usize = 4;

/// Number of skewed blocks for interior size `n`, anchor width `block`
/// and band height `height` (anchors must reach `n + height - 1` so the
/// deepest level's window still covers `x = n`).
fn block_count(n: usize, block: usize, height: usize) -> usize {
    (n + height - 1).div_ceil(block)
}

/// Anchor bounds (level-1 window) of skewed block `i`.
fn block_bounds(i: usize, n: usize, block: usize, height: usize) -> (usize, usize) {
    let span = n + height - 1;
    (i * block + 1, ((i + 1) * block).min(span))
}

/// The stride a mode implies for the disjointness bound (scalar bands
/// reach back only `height` columns, i.e. stride 0); `Mode::Auto` is
/// illegal for Gauss-Seidel.
fn gs_stride(mode: Mode) -> usize {
    match mode {
        Mode::Temporal(s) => s,
        Mode::Scalar => 0,
        Mode::Auto => panic!("Gauss-Seidel loops cannot be spatially auto-vectorized"),
    }
}

/// True when at least one `(block, sub-band)` pair of the schedule passes
/// the band executors' own vector-shape test — all-degenerate geometries
/// must resolve portable so the reported engine stays honest.
fn any_vector_band(n_outer: usize, block: usize, height: usize, s: usize) -> bool {
    let nblocks = block_count(n_outer, block, height);
    (0..nblocks).any(|i| {
        let (xl, xr) = block_bounds(i, n_outer, block, height);
        (0..height / VL).any(|j| {
            let off = j * VL;
            if xr <= off {
                return false;
            }
            let (xlj, xrj) = (xl.saturating_sub(off).max(1), xr - off);
            vector_band_shape::<VL>(xlj, xrj, n_outer, s)
        })
    })
}

/// Resolve the banded engine once per workspace.
fn resolve_skew(
    sel: Select,
    mode: Mode,
    has_kernel_avx2: bool,
    n_outer: usize,
    block: usize,
    height: usize,
    bands: usize,
) -> Option<Engine> {
    match mode {
        Mode::Temporal(s) => Some(
            sel.resolve(has_kernel_avx2 && bands > 0 && any_vector_band(n_outer, block, height, s)),
        ),
        _ => None,
    }
}

/// Shared geometry checks of every skew workspace.
fn check_skew_geometry(block: usize, height: usize, s: usize) {
    assert!(
        height >= VL && height % VL == 0,
        "height must be a multiple of {VL}"
    );
    assert!(
        block >= height + VL * s + VL,
        "block too narrow for wave disjointness"
    );
}

// ---------------------------------------------------------------------
// 1-D workspace
// ---------------------------------------------------------------------

/// Reusable skewed-tiling workspace for 1-D Gauss-Seidel: geometry
/// validated and banded engine resolved once in [`SkewGs1d::new`], then
/// reused by every [`SkewGs1d::advance`] call (allocation-free — the 1-D
/// band executors need no scratch).
pub struct SkewGs1d<K: Avx2Exec1d> {
    kern: K,
    steps: usize,
    block: usize,
    height: usize,
    s: usize,
    engine: Option<Engine>,
    n: usize,
    nblocks: usize,
    bands: usize,
}

impl<K: Avx2Exec1d> SkewGs1d<K> {
    /// Build a workspace for interior size `n`. `mode` selects the band
    /// executor — [`Mode::Temporal`] for the paper's "our" curves,
    /// [`Mode::Scalar`] for "scalar" — and `sel` picks the temporal
    /// steady state.
    ///
    /// # Panics
    /// Panics for a non-Gauss-Seidel kernel, [`Mode::Auto`], a height
    /// that is not a positive multiple of 4, or a block narrower than the
    /// wave-disjointness bound (`tempora_plan` validates these ahead of
    /// time and returns a `PlanError` instead).
    pub fn new(
        kern: K,
        n: usize,
        steps: usize,
        block: usize,
        height: usize,
        mode: Mode,
        sel: Select,
    ) -> Self {
        assert!(K::IS_GS);
        let s = gs_stride(mode);
        check_skew_geometry(block, height, s);
        let bands = steps / height;
        let nblocks = block_count(n, block, height);
        let engine = resolve_skew(sel, mode, K::avx2_band(s), n, block, height, bands);
        SkewGs1d {
            kern,
            steps,
            block,
            height,
            s,
            engine,
            n,
            nblocks,
            bands,
        }
    }

    /// The banded engine this workspace resolved to (`None` for scalar
    /// bands).
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    /// Number of skewed blocks per band.
    pub fn blocks(&self) -> usize {
        self.nblocks
    }

    /// Advance `g` by the workspace's `steps` time levels in place. All
    /// paths are bit-identical to the reference.
    pub fn advance(&mut self, g: &mut Grid1<f64>, pool: &Pool) {
        assert_eq!(g.n(), self.n, "grid does not match workspace geometry");
        let Self {
            kern,
            steps,
            block,
            height,
            s,
            engine,
            n,
            nblocks,
            bands,
        } = self;
        let (n, block, height, s) = (*n, *block, *height, *s);
        let engine = *engine;
        {
            let data = g.data_mut();
            let shared = SyncSlice::new(data);
            pool.waves(*bands, *nblocks, |_b, i| {
                // SAFETY: wave scheduling keeps concurrent tiles ≥ 2 blocks
                // apart; a tile touches [xl - height - VL·s, xr + 1] ⊂ its
                // block ± one block for block ≥ height + VL·s + VL (asserted).
                let a = unsafe { shared.slice_mut() };
                let (xl, xr) = block_bounds(i, n, block, height);
                for j in 0..height / VL {
                    let off = j * VL;
                    if xr <= off {
                        break;
                    }
                    let (xlj, xrj) = (xl.saturating_sub(off).max(1), xr - off);
                    match engine {
                        None => t1d_band::band_scalar_gs(a, xlj, xrj, VL, n, kern),
                        Some(Engine::Avx2) => kern.band_avx2(a, xlj, xrj, n, s),
                        Some(Engine::Portable) => {
                            t1d_band::band_temporal_gs::<VL, K>(a, xlj, xrj, n, s, kern)
                        }
                    }
                }
            });
        }
        let a = g.data_mut();
        for _ in 0..*steps % height {
            t1d::scalar_step_inplace(a, n, kern);
        }
    }
}

/// Run `steps` Gauss-Seidel time steps over a 1-D grid with pipelined
/// skewed tiling (one-shot wrapper over [`SkewGs1d`]).
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` (or reuse a `skew::SkewGs1d` workspace) instead"
)]
// Justification: the parameter list is the skew-tile run contract (grid, kernel, steps, tiling, pool); a params struct would obscure it.
#[allow(clippy::too_many_arguments)]
pub fn run_gs_1d<K: Avx2Exec1d + Copy>(
    grid: &Grid1<f64>,
    kern: &K,
    steps: usize,
    block: usize,
    height: usize,
    mode: Mode,
    sel: Select,
    pool: &Pool,
) -> (Grid1<f64>, Option<Engine>) {
    let mut w = SkewGs1d::new(*kern, grid.n(), steps, block, height, mode, sel);
    let mut g = grid.clone();
    w.advance(&mut g, pool);
    (g, w.engine())
}

// ---------------------------------------------------------------------
// 2-D workspace
// ---------------------------------------------------------------------

/// Reusable skewed-tiling workspace for 2-D Gauss-Seidel along the outer
/// dimension. See [`SkewGs1d`] for the lifecycle and engine contract.
pub struct SkewGs2d<K: Avx2Exec2d<f64>> {
    kern: K,
    steps: usize,
    block: usize,
    height: usize,
    s: usize,
    engine: Option<Engine>,
    nx: usize,
    ny: usize,
    nblocks: usize,
    bands: usize,
    scratch: Vec<t2d_band::BandScratch2d<VL>>,
    rem_rows: (Vec<f64>, Vec<f64>),
}

impl<K: Avx2Exec2d<f64>> SkewGs2d<K> {
    /// Build a workspace for an `nx × ny` interior. See
    /// [`SkewGs1d::new`] for the panics contract.
    // Justification: constructor takes the full tile geometry; see the run_* wrapper rationale.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kern: K,
        nx: usize,
        ny: usize,
        steps: usize,
        block: usize,
        height: usize,
        mode: Mode,
        sel: Select,
    ) -> Self {
        assert!(K::IS_GS);
        let s = gs_stride(mode);
        check_skew_geometry(block, height, s);
        let bands = steps / height;
        let nblocks = block_count(nx, block, height);
        let engine = resolve_skew(sel, mode, K::avx2_band(s), nx, block, height, bands);
        // Per-block band scratch (the wave dependences serialize all
        // tasks of one block index).
        let scratch: Vec<t2d_band::BandScratch2d<VL>> = match engine {
            Some(_) => (0..nblocks)
                .map(|_| t2d_band::BandScratch2d::new(s, ny))
                .collect(),
            None => Vec::new(),
        };
        SkewGs2d {
            kern,
            steps,
            block,
            height,
            s,
            engine,
            nx,
            ny,
            nblocks,
            bands,
            scratch,
            rem_rows: (vec![0.0; ny + 2], vec![0.0; ny + 2]),
        }
    }

    /// The banded engine this workspace resolved to.
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    /// Number of skewed blocks per band.
    pub fn blocks(&self) -> usize {
        self.nblocks
    }

    /// Re-allocate the per-block band scratch through `pool` so each
    /// slot's pages are faulted in by a pool worker (best-effort NUMA
    /// spread — the wavefront schedule has no static block owner; the
    /// grid itself is caller-owned and advanced in place). Results are
    /// unchanged whether or not this runs.
    pub fn fault_in(&mut self, pool: &Pool) {
        tempora_failpoint::failpoint!("fault_in");
        if self.scratch.is_empty() {
            return;
        }
        let (s, ny) = (self.s, self.ny);
        let scratch_shared = SyncSlice::new(&mut self.scratch);
        pool.for_each_owned(self.nblocks, |i| {
            // SAFETY: slot i is written only by its owning worker.
            let sc = unsafe { &mut scratch_shared.slice_mut()[i] };
            *sc = t2d_band::BandScratch2d::new(s, ny);
        });
    }

    /// Advance `g` by the workspace's `steps` time levels in place.
    pub fn advance(&mut self, g: &mut Grid2<f64>, pool: &Pool) {
        assert_eq!(
            (g.nx(), g.ny()),
            (self.nx, self.ny),
            "grid does not match workspace geometry"
        );
        let Self {
            kern,
            steps,
            block,
            height,
            s,
            engine,
            nx,
            nblocks,
            bands,
            scratch,
            rem_rows,
            ..
        } = self;
        let (nx, block, height, s) = (*nx, *block, *height, *s);
        let engine = *engine;
        {
            let shared_grid = SyncSlice::new(core::slice::from_mut(g));
            let scratch_shared = SyncSlice::new(scratch);
            pool.waves(*bands, *nblocks, |_b, i| {
                // SAFETY: same wave-distance argument as SkewGs1d, with rows
                // as the banded unit; scratch slot i belongs to block i alone.
                let g = &mut unsafe { shared_grid.slice_mut() }[0];
                let (xl, xr) = block_bounds(i, nx, block, height);
                for j in 0..height / VL {
                    let off = j * VL;
                    if xr <= off {
                        break;
                    }
                    let (xlj, xrj) = (xl.saturating_sub(off).max(1), xr - off);
                    match engine {
                        None => t2d_band::band_scalar_gs2d(g, xlj, xrj, VL, kern),
                        Some(eng) => {
                            // SAFETY: scratch slot i belongs to block i
                            // alone; one tile of block i is in flight at a
                            // time (wavefront dependences).
                            let sc = unsafe { &mut scratch_shared.slice_mut()[i] };
                            match eng {
                                Engine::Avx2 => kern.band_avx2(g, xlj, xrj, s, sc),
                                Engine::Portable => {
                                    t2d_band::band_temporal_gs2d::<VL, K>(g, xlj, xrj, s, kern, sc)
                                }
                            }
                        }
                    }
                }
            });
        }
        let rem = *steps % height;
        if rem > 0 {
            let (ra, rb) = rem_rows;
            for _ in 0..rem {
                t2d::scalar_step_inplace(g, kern, ra, rb);
            }
        }
    }
}

/// Run `steps` Gauss-Seidel time steps over a 2-D grid with pipelined
/// skewed tiling (one-shot wrapper over [`SkewGs2d`]).
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` (or reuse a `skew::SkewGs2d` workspace) instead"
)]
// Justification: the parameter list is the skew-tile run contract (grid, kernel, steps, tiling, pool); a params struct would obscure it.
#[allow(clippy::too_many_arguments)]
pub fn run_gs_2d<K: Avx2Exec2d<f64> + Copy>(
    grid: &Grid2<f64>,
    kern: &K,
    steps: usize,
    block: usize,
    height: usize,
    mode: Mode,
    sel: Select,
    pool: &Pool,
) -> (Grid2<f64>, Option<Engine>) {
    let mut w = SkewGs2d::new(*kern, grid.nx(), grid.ny(), steps, block, height, mode, sel);
    let mut g = grid.clone();
    w.advance(&mut g, pool);
    (g, w.engine())
}

// ---------------------------------------------------------------------
// 3-D workspace
// ---------------------------------------------------------------------

/// Reusable skewed-tiling workspace for 3-D Gauss-Seidel along the outer
/// dimension. See [`SkewGs1d`] for the lifecycle and engine contract.
pub struct SkewGs3d<K: Avx2Exec3d> {
    kern: K,
    steps: usize,
    block: usize,
    height: usize,
    s: usize,
    engine: Option<Engine>,
    nx: usize,
    ny: usize,
    nz: usize,
    nblocks: usize,
    bands: usize,
    scratch: Vec<t3d_band::BandScratch3d<VL>>,
    rem_planes: (Vec<f64>, Vec<f64>),
}

impl<K: Avx2Exec3d> SkewGs3d<K> {
    /// Build a workspace for an `nx × ny × nz` interior. See
    /// [`SkewGs1d::new`] for the panics contract.
    // Justification: constructor takes the full tile geometry; see the run_* wrapper rationale.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kern: K,
        nx: usize,
        ny: usize,
        nz: usize,
        steps: usize,
        block: usize,
        height: usize,
        mode: Mode,
        sel: Select,
    ) -> Self {
        assert!(K::IS_GS);
        let s = gs_stride(mode);
        check_skew_geometry(block, height, s);
        let bands = steps / height;
        let nblocks = block_count(nx, block, height);
        let engine = resolve_skew(sel, mode, K::avx2_band(s), nx, block, height, bands);
        let scratch: Vec<t3d_band::BandScratch3d<VL>> = match engine {
            Some(_) => (0..nblocks)
                .map(|_| t3d_band::BandScratch3d::new(s, ny, nz))
                .collect(),
            None => Vec::new(),
        };
        let wp = (ny + 2) * (nz + 2);
        SkewGs3d {
            kern,
            steps,
            block,
            height,
            s,
            engine,
            nx,
            ny,
            nz,
            nblocks,
            bands,
            scratch,
            rem_planes: (vec![0.0; wp], vec![0.0; wp]),
        }
    }

    /// The banded engine this workspace resolved to.
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    /// Number of skewed blocks per band.
    pub fn blocks(&self) -> usize {
        self.nblocks
    }

    /// Re-allocate the per-block band scratch through `pool` (best-effort
    /// NUMA spread). See [`SkewGs2d::fault_in`].
    pub fn fault_in(&mut self, pool: &Pool) {
        tempora_failpoint::failpoint!("fault_in");
        if self.scratch.is_empty() {
            return;
        }
        let (s, ny, nz) = (self.s, self.ny, self.nz);
        let scratch_shared = SyncSlice::new(&mut self.scratch);
        pool.for_each_owned(self.nblocks, |i| {
            // SAFETY: slot i is written only by its owning worker.
            let sc = unsafe { &mut scratch_shared.slice_mut()[i] };
            *sc = t3d_band::BandScratch3d::new(s, ny, nz);
        });
    }

    /// Advance `g` by the workspace's `steps` time levels in place.
    pub fn advance(&mut self, g: &mut Grid3<f64>, pool: &Pool) {
        assert_eq!(
            (g.nx(), g.ny(), g.nz()),
            (self.nx, self.ny, self.nz),
            "grid does not match workspace geometry"
        );
        let Self {
            kern,
            steps,
            block,
            height,
            s,
            engine,
            nx,
            nblocks,
            bands,
            scratch,
            rem_planes,
            ..
        } = self;
        let (nx, block, height, s) = (*nx, *block, *height, *s);
        let engine = *engine;
        {
            let shared_grid = SyncSlice::new(core::slice::from_mut(g));
            let scratch_shared = SyncSlice::new(scratch);
            pool.waves(*bands, *nblocks, |_b, i| {
                // SAFETY: same wave-distance argument, slabs as the unit;
                // scratch slot i belongs to block i alone.
                let g = &mut unsafe { shared_grid.slice_mut() }[0];
                let (xl, xr) = block_bounds(i, nx, block, height);
                for j in 0..height / VL {
                    let off = j * VL;
                    if xr <= off {
                        break;
                    }
                    let (xlj, xrj) = (xl.saturating_sub(off).max(1), xr - off);
                    match engine {
                        None => t3d_band::band_scalar_gs3d(g, xlj, xrj, VL, kern),
                        Some(eng) => {
                            // SAFETY: scratch slot i belongs to block i
                            // alone; one tile of block i is in flight at a
                            // time (wavefront dependences).
                            let sc = unsafe { &mut scratch_shared.slice_mut()[i] };
                            match eng {
                                Engine::Avx2 => kern.band_avx2(g, xlj, xrj, s, sc),
                                Engine::Portable => {
                                    t3d_band::band_temporal_gs3d::<VL, K>(g, xlj, xrj, s, kern, sc)
                                }
                            }
                        }
                    }
                }
            });
        }
        let rem = *steps % height;
        if rem > 0 {
            let (pa, pb) = rem_planes;
            for _ in 0..rem {
                t3d::scalar_step_inplace(g, kern, pa, pb);
            }
        }
    }
}

/// Run `steps` Gauss-Seidel time steps over a 3-D grid with pipelined
/// skewed tiling (one-shot wrapper over [`SkewGs3d`]).
#[deprecated(
    since = "0.2.0",
    note = "build a `tempora_plan::Plan` (or reuse a `skew::SkewGs3d` workspace) instead"
)]
// Justification: the parameter list is the skew-tile run contract (grid, kernel, steps, tiling, pool); a params struct would obscure it.
#[allow(clippy::too_many_arguments)]
pub fn run_gs_3d<K: Avx2Exec3d + Copy>(
    grid: &Grid3<f64>,
    kern: &K,
    steps: usize,
    block: usize,
    height: usize,
    mode: Mode,
    sel: Select,
    pool: &Pool,
) -> (Grid3<f64>, Option<Engine>) {
    let mut w = SkewGs3d::new(
        *kern,
        grid.nx(),
        grid.ny(),
        grid.nz(),
        steps,
        block,
        height,
        mode,
        sel,
    );
    let mut g = grid.clone();
    w.advance(&mut g, pool);
    (g, w.engine())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_core::kernels::{GsKern1d, GsKern2d, GsKern3d};
    use tempora_grid::{fill_random_1d, fill_random_2d, fill_random_3d, Boundary};
    use tempora_stencil::reference;
    use tempora_stencil::{Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs};

    // Justification: test helper mirrors the run contract signature.
    #[allow(clippy::too_many_arguments)]
    fn skew_1d<K: Avx2Exec1d + Copy>(
        grid: &Grid1<f64>,
        kern: &K,
        steps: usize,
        block: usize,
        height: usize,
        mode: Mode,
        sel: Select,
        pool: &Pool,
    ) -> (Grid1<f64>, Option<Engine>) {
        let mut w = SkewGs1d::new(*kern, grid.n(), steps, block, height, mode, sel);
        let mut g = grid.clone();
        w.advance(&mut g, pool);
        (g, w.engine())
    }

    #[test]
    fn gs1d_parallel_matches_reference_all_thread_counts() {
        let c = Gs1dCoeffs::classic(0.27);
        let kern = GsKern1d(c);
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            for &(n, block, s, steps) in &[
                (500usize, 64usize, 2usize, 8usize),
                (1000, 128, 7, 12),
                (300, 120, 3, 13),
            ] {
                let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.6));
                fill_random_1d(&mut g, n as u64 + threads as u64, -1.0, 1.0);
                let gold = reference::gs1d(&g, c, steps);
                for mode in [Mode::Scalar, Mode::Temporal(s)] {
                    let (ours, _) = skew_1d(&g, &kern, steps, block, 4, mode, Select::Auto, &pool);
                    assert!(
                        ours.interior_eq(&gold),
                        "threads={threads} n={n} block={block} s={s} steps={steps} \
                         mode={mode:?} {:?}",
                        ours.first_diff(&gold)
                    );
                }
            }
        }
    }

    #[test]
    fn gs1d_engine_report_is_honest() {
        let c = Gs1dCoeffs::classic(0.27);
        let kern = GsKern1d(c);
        let pool = Pool::new(2);
        let mut g = Grid1::new(500, 1, Boundary::Dirichlet(0.6));
        fill_random_1d(&mut g, 9, -1.0, 1.0);
        let (_, e) = skew_1d(&g, &kern, 8, 64, 4, Mode::Scalar, Select::Auto, &pool);
        assert_eq!(e, None);
        let (_, e) = skew_1d(
            &g,
            &kern,
            8,
            64,
            4,
            Mode::Temporal(2),
            Select::Portable,
            &pool,
        );
        assert_eq!(e, Some(Engine::Portable));
        if tempora_simd::arch::avx2_available() {
            let (_, e) = skew_1d(&g, &kern, 8, 64, 4, Mode::Temporal(2), Select::Auto, &pool);
            assert_eq!(e, Some(Engine::Avx2));
            // All-degenerate geometry (every block is an edge block or too
            // narrow for the vector band): honest portable even when AVX2
            // is requested.
            let mut small = Grid1::new(60, 1, Boundary::Dirichlet(0.0));
            fill_random_1d(&mut small, 2, -1.0, 1.0);
            let (r, e) = skew_1d(
                &small,
                &kern,
                8,
                36,
                4,
                Mode::Temporal(7),
                Select::Avx2,
                &pool,
            );
            assert_eq!(e, Some(Engine::Portable));
            assert!(r.interior_eq(&reference::gs1d(&small, c, 8)));
        }
    }

    #[test]
    // Justification: pins the deprecated one-shot wrappers' behavior until their removal.
    #[allow(deprecated)]
    fn deprecated_wrappers_still_work() {
        let c = Gs1dCoeffs::classic(0.27);
        let kern = GsKern1d(c);
        let pool = Pool::new(2);
        let mut g = Grid1::new(400, 1, Boundary::Dirichlet(0.1));
        fill_random_1d(&mut g, 5, -1.0, 1.0);
        let gold = reference::gs1d(&g, c, 8);
        let (ours, _) = run_gs_1d(&g, &kern, 8, 64, 4, Mode::Temporal(2), Select::Auto, &pool);
        assert!(ours.interior_eq(&gold));
    }

    #[test]
    fn gs2d_parallel_matches_reference_and_workspace_reuse_is_allocation_free() {
        let c = Gs2dCoeffs::classic(0.19);
        let kern = GsKern2d(c);
        for threads in [1usize, 2] {
            let pool = Pool::new(threads);
            let mut g = Grid2::new(120, 9, 1, Boundary::Dirichlet(-0.3));
            fill_random_2d(&mut g, 21, -1.0, 1.0);
            let gold = reference::gs2d(&g, c, 8);
            for mode in [Mode::Scalar, Mode::Temporal(2)] {
                let mut w = SkewGs2d::new(kern, g.nx(), g.ny(), 8, 48, 8, mode, Select::Auto);
                let mut ours = g.clone();
                w.advance(&mut ours, &pool);
                assert!(
                    ours.interior_eq(&gold),
                    "threads={threads} mode={mode:?} {:?}",
                    ours.first_diff(&gold)
                );
                // Reuse on a fresh state: identical and allocation-free.
                // Process-global counter + concurrent sibling tests:
                // retry until a clean window (a real allocation in
                // `advance` would taint every window).
                let mut clean = false;
                for _ in 0..32 {
                    let mut again = g.clone();
                    let before = tempora_grid::alloc_count();
                    w.advance(&mut again, &pool);
                    let delta = tempora_grid::alloc_count() - before;
                    assert!(again.interior_eq(&gold));
                    if delta == 0 {
                        clean = true;
                        break;
                    }
                }
                assert!(clean, "advance allocated in every observed window");
            }
        }
    }

    #[test]
    fn pipelined_and_barrier_schedules_agree_bitwise() {
        use tempora_parallel::{PoolConfig, WaveSchedule};
        let c = Gs2dCoeffs::classic(0.19);
        let kern = GsKern2d(c);
        let mut g = Grid2::new(120, 9, 1, Boundary::Dirichlet(-0.3));
        fill_random_2d(&mut g, 21, -1.0, 1.0);
        for threads in [2usize, 4, 8] {
            let pipe = Pool::with_config(PoolConfig::new(threads));
            let barr = Pool::with_config(PoolConfig::new(threads).schedule(WaveSchedule::Barrier));
            for mode in [Mode::Scalar, Mode::Temporal(2)] {
                let mut wa = SkewGs2d::new(kern, 120, 9, 8, 48, 8, mode, Select::Auto);
                let mut wb = SkewGs2d::new(kern, 120, 9, 8, 48, 8, mode, Select::Auto);
                // fault_in on one side must not perturb results either.
                wa.fault_in(&pipe);
                let (mut ga, mut gb) = (g.clone(), g.clone());
                wa.advance(&mut ga, &pipe);
                wb.advance(&mut gb, &barr);
                assert!(
                    ga.interior_eq(&gb),
                    "threads={threads} mode={mode:?} {:?}",
                    ga.first_diff(&gb)
                );
            }
        }
    }

    #[test]
    fn gs3d_parallel_matches_reference() {
        let c = Gs3dCoeffs::classic(0.11);
        let kern = GsKern3d(c);
        let pool = Pool::new(2);
        let mut g = Grid3::new(80, 5, 6, 1, Boundary::Dirichlet(0.2));
        fill_random_3d(&mut g, 13, -1.0, 1.0);
        let gold = reference::gs3d(&g, c, 9); // 2 bands + remainder
        for mode in [Mode::Scalar, Mode::Temporal(2)] {
            let mut w = SkewGs3d::new(kern, g.nx(), g.ny(), g.nz(), 9, 24, 4, mode, Select::Auto);
            let mut ours = g.clone();
            w.advance(&mut ours, &pool);
            assert!(
                ours.interior_eq(&gold),
                "mode={mode:?} {:?}",
                ours.first_diff(&gold)
            );
        }
    }
}
