//! # tempora-parallel — worker pool and wavefront executor
//!
//! The multicore substrate for the parallel experiments (paper §4: "The
//! parallel codes were scaled from uni-core to all the 24 cores"),
//! replacing the authors' OpenMP runtime with a small crossbeam-based
//! executor:
//!
//! * [`Pool::for_each_index`] — a bulk-synchronous parallel-for with
//!   atomic work stealing, used by the ghost-zone (overlapped) Jacobi
//!   tiling where every tile of a time band is independent;
//! * [`Pool::waves`] — a pipelined wavefront over a `(band, block)` grid
//!   with the dependence pattern of skewed/rectangular time tiling
//!   (`(b, i)` waits for `(b, i-1)` and `(b-1, i..=i+1)`), scheduled by
//!   waves `w = 2b + i` so that same-wave tasks are provably disjoint;
//! * [`SyncSlice`] — a shared-mutable slice handle for tile executors
//!   whose write sets are disjoint by construction.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// A fat pointer to the current region's task, smuggled to the workers.
///
/// The dispatching call blocks until every worker has finished the
/// region, so the erased lifetime never escapes the borrow.
#[derive(Clone, Copy)]
struct TaskRef(&'static (dyn Fn(usize) + Sync));

// SAFETY: the underlying closure is Sync and only invoked while the
// dispatching `for_each_index` call keeps the original borrow alive.
unsafe impl Send for TaskRef {}

struct PoolState {
    /// Region generation; bumped once per dispatched parallel region.
    generation: u64,
    /// The current region's task and task count.
    task: Option<(TaskRef, usize)>,
    /// Workers still running the current region.
    active: usize,
    /// Pool shutdown flag (set on drop).
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
    next: AtomicUsize,
}

/// A fixed-width worker pool with **persistent, parked workers**.
///
/// Stencil time-tiling dispatches thousands of small parallel regions
/// (one or two per band or wavefront); spawning threads per region costs
/// hundreds of microseconds on some kernels and would dominate the tile
/// work, so the workers are created once and woken through a condvar.
/// The dispatching thread participates in the work.
pub struct Pool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pool(threads={})", self.threads)
    }
}

impl Pool {
    /// Create a pool using `threads` workers (clamped to ≥ 1). One of
    /// them is the caller itself, so `threads - 1` OS threads are
    /// spawned.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                task: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        let handles = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool {
            shared,
            threads,
            handles,
        }
    }

    /// A pool sized to the machine.
    pub fn max() -> Self {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of workers (including the dispatching thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(i)` for every `i ∈ 0..n`, distributing indices over the
    /// workers with an atomic counter. Returns when all tasks finished
    /// (bulk-synchronous).
    pub fn for_each_index<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 || n <= 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        // Erase the closure's lifetime; the wait below keeps it alive
        // until every worker is done with it.
        let wide: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: see TaskRef — the borrow outlives the region because
        // this function blocks until `active == 0`.
        let task = TaskRef(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(wide)
        });

        {
            let mut st = self.shared.state.lock();
            self.shared.next.store(0, Ordering::Relaxed);
            st.task = Some((task, n));
            st.active = self.threads - 1;
            st.generation += 1;
            self.shared.work_cv.notify_all();
        }
        // The dispatcher helps.
        loop {
            let i = self.shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            f(i);
        }
        // Wait for the workers to drain their in-flight tasks.
        let mut st = self.shared.state.lock();
        while st.active != 0 {
            self.shared.done_cv.wait(&mut st);
        }
        st.task = None;
    }

    /// Execute `f(band, block)` for all `(band, block) ∈ n_bands × n_blocks`
    /// in pipelined wavefront order: wave `w` runs every task with
    /// `2·band + block == w`, waves in ascending order with a barrier
    /// between them.
    ///
    /// This order satisfies the dependences of skewed time tiling —
    /// `(b, i)` after `(b, i-1)` (wave `w-1`) and after `(b-1, i)` /
    /// `(b-1, i+1)` (waves `w-2` / `w-1`) — while keeping same-wave tasks
    /// at band distance ≥ 1 and block distance ≥ 2, which the tiling
    /// layer uses to prove write-set disjointness.
    pub fn waves<F>(&self, n_bands: usize, n_blocks: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if n_bands == 0 || n_blocks == 0 {
            return;
        }
        let max_wave = 2 * (n_bands - 1) + (n_blocks - 1);
        for w in 0..=max_wave {
            // Tasks on this wave: band b with block i = w - 2b.
            let b_lo = w.saturating_sub(n_blocks - 1).div_ceil(2);
            let b_hi = (w / 2).min(n_bands - 1);
            if b_lo > b_hi {
                continue;
            }
            let count = b_hi - b_lo + 1;
            self.for_each_index(count, |k| {
                let b = b_lo + k;
                let i = w - 2 * b;
                f(b, i);
            });
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen = 0u64;
    loop {
        let (task, n) = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break;
                }
                shared.work_cv.wait(&mut st);
            }
            st.task.expect("woken without a task")
        };
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            (task.0)(i);
        }
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_one();
        }
    }
}

/// A shared, mutably-aliasable slice for tile executors with provably
/// disjoint write sets.
///
/// The stencil tiling layers hand each task a region of one global array;
/// the scheduling proofs (ghost-zone independence, wavefront distance)
/// guarantee no two concurrent tasks touch overlapping elements, which
/// Rust's type system cannot express directly. `SyncSlice` centralizes
/// the single `unsafe` escape hatch behind that argument.
pub struct SyncSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access discipline is delegated to the caller per the type docs;
// the pointer itself is valid for 'a.
unsafe impl<T: Send> Send for SyncSlice<'_, T> {}
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wrap a mutable slice for concurrent disjoint access.
    pub fn new(slice: &'a mut [T]) -> Self {
        SyncSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrow the whole slice mutably.
    ///
    /// # Safety
    /// The caller must guarantee that no two concurrently-live borrows
    /// (from any thread) access overlapping index ranges, and that reads
    /// of ranges written by other tasks happen only after those tasks
    /// completed (e.g. across a pool barrier).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [T] {
        core::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn for_each_index_covers_all_once() {
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            pool.for_each_index(100, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn for_each_empty_and_single() {
        let pool = Pool::new(4);
        pool.for_each_index(0, |_| panic!("no tasks expected"));
        let count = AtomicUsize::new(0);
        pool.for_each_index(1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn waves_cover_grid_and_respect_order() {
        let (nb, nc) = (5usize, 7usize);
        let pool = Pool::new(2);
        let log = Mutex::new(Vec::new());
        let stamp = AtomicU64::new(0);
        pool.waves(nb, nc, |b, i| {
            let t = stamp.fetch_add(1, Ordering::SeqCst);
            log.lock().unwrap().push((b, i, t));
        });
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), nb * nc);
        // Completion stamps must respect the dependence order.
        let stamp_of = |b: usize, i: usize| log.iter().find(|e| e.0 == b && e.1 == i).unwrap().2;
        for b in 0..nb {
            for i in 0..nc {
                if i > 0 {
                    assert!(stamp_of(b, i - 1) < stamp_of(b, i), "left dep violated");
                }
                if b > 0 {
                    assert!(stamp_of(b - 1, i) < stamp_of(b, i), "below dep violated");
                    if i + 1 < nc {
                        assert!(
                            stamp_of(b - 1, i + 1) < stamp_of(b, i),
                            "below-right dep violated"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sync_slice_disjoint_parallel_writes() {
        let pool = Pool::new(4);
        let mut data = vec![0u64; 64];
        let shared = SyncSlice::new(&mut data);
        pool.for_each_index(8, |i| {
            // SAFETY: each task writes a disjoint 8-element block.
            let s = unsafe { shared.slice_mut() };
            for v in &mut s[i * 8..(i + 1) * 8] {
                *v = i as u64 + 1;
            }
        });
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, (j / 8) as u64 + 1);
        }
    }

    #[test]
    fn pool_sizes() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::max().threads() >= 1);
    }
}
