//! # tempora-parallel — worker pool and wavefront executor
//!
//! The multicore substrate for the parallel experiments (paper §4: "The
//! parallel codes were scaled from uni-core to all the 24 cores"),
//! replacing the authors' OpenMP runtime with a small pinned-worker
//! executor:
//!
//! * [`Pool::for_each_index`] — a parallel-for with chunked atomic work
//!   claiming, used where every task of a region is independent;
//! * [`Pool::for_each_owned`] — a parallel-for with **static contiguous
//!   ownership**: index `i` always runs on the same worker, so a
//!   workspace can first-touch its arenas from the worker that will
//!   later advance them (NUMA-correct page placement);
//! * [`Pool::waves`] — a wavefront over a `(band, block)` grid with the
//!   dependence pattern of skewed/rectangular time tiling (`(b, i)`
//!   waits for `(b, i-1)` and `(b-1, i..=i+1)`). The default
//!   [`WaveSchedule::Pipelined`] schedule tracks per-task predecessor
//!   counts and releases each task the moment its last dependence
//!   completes — no full-pool barrier per anti-diagonal; the legacy
//!   [`WaveSchedule::Barrier`] schedule is kept for A/B ablations;
//! * per-core **pinning** ([`PoolConfig::pin`]) via `sched_setaffinity`
//!   on Linux/x86_64 behind a capability probe, a no-op elsewhere;
//! * [`SyncSlice`] — a shared-mutable slice handle for tile executors
//!   whose write sets are disjoint by construction;
//! * **failure containment** — every worker task boundary runs under
//!   `catch_unwind`: the first panic raises a pool-wide cancel flag that
//!   drains the region (a panicking wavefront task still releases its
//!   successors, so no peer blocks on a dead predecessor), the payload
//!   is re-thrown to the dispatching caller, and the pool itself
//!   survives to run the next job. An opt-in
//!   [`PoolConfig::stall_timeout`] watchdog converts a silently wedged
//!   wavefront into a panic carrying a task-graph snapshot.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use tempora_failpoint::failpoint;

mod affinity;

/// Which schedule [`Pool::waves`] dispatches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WaveSchedule {
    /// Dependence-counter pipeline: every `(band, block)` task carries
    /// an atomic count of its ≤ 3 unfinished predecessors and is
    /// released to a ready queue the moment the last one completes, so
    /// bands overlap and no full-pool barrier runs per anti-diagonal.
    /// The default.
    #[default]
    Pipelined,
    /// The legacy bulk-synchronous schedule: anti-diagonal `w = 2b + i`
    /// runs as one parallel region with a barrier between waves. Kept
    /// behind this flag for A/B comparison in ablation runs.
    Barrier,
}

/// Construction-time options for [`Pool::with_config`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker count, including the dispatching thread (clamped to ≥ 1).
    pub threads: usize,
    /// Pin each worker (and the dispatching thread) to one CPU.
    /// Best-effort: [`Pool::is_pinned`] reports whether every pin took
    /// effect. The dispatcher's original affinity is restored on drop.
    pub pin: bool,
    /// The schedule [`Pool::waves`] uses.
    pub schedule: WaveSchedule,
    /// Opt-in wavefront watchdog: when set, a worker that observes no
    /// publish-cursor progress for this long while waiting on a ready
    /// slot panics with a task-graph snapshot instead of spinning
    /// forever, converting a silent scheduler wedge into a contained,
    /// diagnosable failure. `None` (the default) keeps the hot claim
    /// loop free of clock reads.
    pub stall_timeout: Option<Duration>,
}

impl PoolConfig {
    /// Options for an unpinned pool of `threads` workers with the
    /// default pipelined wavefront schedule.
    pub fn new(threads: usize) -> Self {
        PoolConfig {
            threads,
            pin: false,
            schedule: WaveSchedule::Pipelined,
            stall_timeout: None,
        }
    }

    /// Request per-core pinning.
    pub fn pin(mut self, pin: bool) -> Self {
        self.pin = pin;
        self
    }

    /// Select the wavefront schedule.
    pub fn schedule(mut self, schedule: WaveSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Arm the wavefront stall watchdog (see
    /// [`PoolConfig::stall_timeout`]).
    pub fn stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self
    }
}

/// A type-erased pointer to the current region's task, smuggled to the
/// workers as a raw data pointer plus a monomorphized call shim.
///
/// The dispatching call blocks until every worker has finished the
/// region, so the erased borrow never outlives the closure it points
/// to. Plain raw-pointer erasure (no `transmute`, no fabricated
/// `'static` lifetime) keeps the invariant visible at the single
/// `unsafe` call site in [`run_region`].
#[derive(Clone, Copy)]
struct TaskRef {
    /// Borrow of the dispatching call's closure, erased to `*const ()`.
    data: *const (),
    /// Monomorphized shim that casts `data` back to the concrete
    /// closure type and invokes it.
    ///
    /// # Safety (to call)
    /// `data` must still point to the live closure this shim was
    /// instantiated for.
    call: unsafe fn(*const (), usize),
}

// SAFETY: `data` points to a `Sync` closure (enforced by the
// `F: Fn(usize) + Sync` bound in `Pool::dispatch`), and it is only
// invoked while the dispatching call blocks, keeping the closure alive.
unsafe impl Send for TaskRef {}

/// How a region's index space is handed to the workers.
#[derive(Clone, Copy)]
enum RegionSpec {
    /// Workers claim runs of `chunk` indices per `fetch_add`.
    Dynamic { n: usize, chunk: usize },
    /// Worker `w` of `T` statically owns indices
    /// `[w·n/T, (w+1)·n/T)` — no atomics, and index `i` lands on the
    /// same worker in every region of the same size.
    Owned { n: usize },
}

struct PoolState {
    /// Region generation; bumped once per dispatched parallel region.
    generation: u64,
    /// The current region's task and index-space shape.
    task: Option<(TaskRef, RegionSpec)>,
    /// Workers still running the current region.
    active: usize,
    /// Workers that finished startup (pinning settled).
    started: usize,
    /// Pool shutdown flag (set on drop).
    shutdown: bool,
}

/// Reusable scratch for the pipelined wavefront: predecessor counts and
/// the ready-slot queue. Grow-only, so steady-state `waves` calls are
/// allocation-free.
#[derive(Default)]
struct WaveScratch {
    /// Remaining unfinished predecessors per task.
    counts: Vec<AtomicUsize>,
    /// Ready queue: slot `k` holds `task_id + 1` once the `k`-th task to
    /// become ready is published (0 = not yet).
    slots: Vec<AtomicUsize>,
    /// Next free publish slot.
    cursor: AtomicUsize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
    next: AtomicUsize,
    /// Worker count, including the dispatching thread.
    threads: usize,
    /// False if any requested worker pin failed.
    pin_ok: AtomicBool,
    wave_scratch: Mutex<WaveScratch>,
    /// Raised by the first panicking task of a region; tells every other
    /// worker to drain (skip remaining work) instead of running on.
    cancel: AtomicBool,
    /// The first panic payload of the current region, re-thrown to the
    /// dispatching caller once the region has drained.
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Copy of [`PoolConfig::stall_timeout`] for the wavefront watchdog.
    stall_timeout: Option<Duration>,
}

impl PoolShared {
    /// Record `payload` as the region's first panic (later panics are
    /// dropped — the first one is the root cause) and raise the cancel
    /// flag so the rest of the region drains without running.
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        {
            let mut slot = self.panic_payload.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        // Ordering: Relaxed — the flag is an advisory drain signal; the
        // payload handoff itself is ordered by the payload mutex plus
        // the end-of-region handshake on the state mutex.
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// True once a task of the current region has panicked.
    fn cancelled(&self) -> bool {
        // Ordering: Relaxed — see `record_panic`; a slightly stale read
        // only means one more task runs before the drain is observed.
        self.cancel.load(Ordering::Relaxed)
    }

    /// Take the recorded panic payload, if any, leaving the slot empty.
    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic_payload.lock().take()
    }
}

/// A fixed-width worker pool with **persistent, parked workers**.
///
/// Stencil time-tiling dispatches thousands of small parallel regions
/// (one or two per band, or one per tile grid); spawning threads per
/// region costs hundreds of microseconds on some kernels and would
/// dominate the tile work, so the workers are created once and woken
/// through a condvar. The dispatching thread participates in the work
/// as worker 0.
pub struct Pool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
    pinned: bool,
    schedule: WaveSchedule,
    /// The dispatcher's pre-pinning affinity, restored on drop.
    caller_mask: Option<affinity::Mask>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pool(threads={}, pinned={}, schedule={:?})",
            self.threads, self.pinned, self.schedule
        )
    }
}

impl Pool {
    /// Create an unpinned pool using `threads` workers (clamped to
    /// ≥ 1) and the default pipelined wavefront schedule. One of the
    /// workers is the caller itself, so `threads - 1` OS threads are
    /// spawned.
    pub fn new(threads: usize) -> Self {
        Pool::with_config(PoolConfig::new(threads))
    }

    /// Create a pool from explicit [`PoolConfig`] options.
    pub fn with_config(cfg: PoolConfig) -> Self {
        let threads = cfg.threads.max(1);
        // Enumerate pinnable CPUs up front; worker k goes to
        // cpus[k mod len] so oversubscribed pools still pin sanely.
        let cpus = if cfg.pin {
            affinity::available_cpus()
        } else {
            Vec::new()
        };
        let want_pin = cfg.pin && !cpus.is_empty();
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                task: None,
                active: 0,
                started: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            threads,
            pin_ok: AtomicBool::new(true),
            wave_scratch: Mutex::new(WaveScratch::default()),
            cancel: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            stall_timeout: cfg.stall_timeout,
        });
        let handles: Vec<_> = (1..threads)
            .map(|k| {
                let shared = Arc::clone(&shared);
                let target = want_pin.then(|| cpus[k % cpus.len()]);
                std::thread::spawn(move || {
                    // Startup runs under a panic boundary: a worker that
                    // died before the handshake would leave `with_config`
                    // waiting forever on `started`. The payload is
                    // recorded and re-thrown to the constructing caller.
                    let startup = catch_unwind(AssertUnwindSafe(|| {
                        failpoint!("pool_worker_spawn", k);
                        if let Some(cpu) = target {
                            if !affinity::pin_to(cpu) {
                                // Ordering: Release — pairs with the Acquire
                                // load in `with_config` after the startup
                                // handshake, so a failed pin is visible once
                                // `started` reaches its target.
                                shared.pin_ok.store(false, Ordering::Release);
                            }
                        }
                    }));
                    if let Err(payload) = startup {
                        shared.record_panic(payload);
                    }
                    {
                        let mut st = shared.state.lock();
                        st.started += 1;
                        shared.done_cv.notify_all();
                    }
                    worker_loop(&shared, k);
                })
            })
            .collect();
        // Pin the dispatcher (worker 0), keeping its original mask so
        // Drop can hand the thread back unpinned.
        let mut caller_mask = None;
        let mut pinned = want_pin;
        if want_pin {
            caller_mask = affinity::current();
            if !affinity::pin_to(cpus[0]) {
                pinned = false;
            }
        }
        // Wait for every worker's pin attempt to settle so is_pinned()
        // is accurate from the first query.
        {
            let mut st = shared.state.lock();
            while st.started != threads - 1 {
                shared.done_cv.wait(&mut st);
            }
        }
        // Ordering: Acquire — pairs with each worker's Release store so
        // every pin failure published before the handshake is observed.
        pinned = pinned && shared.pin_ok.load(Ordering::Acquire);
        let pool = Pool {
            shared,
            threads,
            handles,
            pinned,
            schedule: cfg.schedule,
            caller_mask,
        };
        // A panic during worker startup (failpoint-injected) is re-thrown
        // to the constructing caller only now, after the pool is fully
        // assembled: the surviving workers are parked, so dropping `pool`
        // during the unwind shuts them down cleanly.
        if let Some(payload) = pool.shared.take_panic() {
            resume_unwind(payload);
        }
        pool
    }

    /// A pool sized to the machine.
    pub fn max() -> Self {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of workers (including the dispatching thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when pinning was requested and every thread of the pool
    /// (workers and dispatcher) was successfully pinned to a CPU.
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// The wavefront schedule [`Pool::waves`] dispatches.
    pub fn wave_schedule(&self) -> WaveSchedule {
        self.schedule
    }

    /// Whether this platform supports thread-to-core pinning at all
    /// (Linux/x86_64 with a readable affinity mask).
    pub fn pinning_supported() -> bool {
        affinity::supported()
    }

    /// Dispatch one parallel region and block until it completes (every
    /// worker done, including a drain after a panic). Returns the first
    /// panic payload raised by a task of the region, if any; the caller
    /// re-throws it after restoring its own invariants.
    fn dispatch<F: Fn(usize) + Sync>(
        &self,
        spec: RegionSpec,
        f: &F,
    ) -> Option<Box<dyn Any + Send>> {
        /// Cast the erased pointer back to `F` and run one index.
        ///
        /// # Safety
        /// `data` must point to a live `F` (guaranteed here because
        /// `dispatch` blocks until every worker finished the region).
        unsafe fn call_shim<F: Fn(usize)>(data: *const (), i: usize) {
            // SAFETY: `data` was produced from `&F` two frames up and
            // that borrow is still held by the blocked `dispatch` call.
            unsafe { (*(data as *const F))(i) }
        }
        // Erase the closure behind a raw pointer; the wait below keeps
        // the pointee alive until every worker is done with it.
        let task = TaskRef {
            data: f as *const F as *const (),
            call: call_shim::<F>,
        };
        {
            let mut st = self.shared.state.lock();
            // Ordering: Relaxed — the reset is published to workers by
            // the state-mutex release below, not by the atomic itself.
            self.shared.next.store(0, Ordering::Relaxed);
            // Ordering: Relaxed — like `next`, the cleared cancel flag is
            // published by the state-mutex release below. No worker from
            // the previous region is live (its dispatch drained fully).
            self.shared.cancel.store(false, Ordering::Relaxed);
            st.task = Some((task, spec));
            st.active = self.threads - 1;
            st.generation += 1;
            self.shared.work_cv.notify_all();
        }
        // The dispatcher helps as worker 0.
        run_region(&self.shared, 0, task, spec);
        // Wait for the workers to drain their in-flight tasks.
        {
            let mut st = self.shared.state.lock();
            while st.active != 0 {
                self.shared.done_cv.wait(&mut st);
            }
            st.task = None;
        }
        self.shared.take_panic()
    }

    /// Run `f(i)` for every `i ∈ 0..n`, distributing indices over the
    /// workers in chunked runs claimed off one atomic counter. Returns
    /// when all tasks finished (bulk-synchronous).
    ///
    /// # Panics
    /// Re-throws the first panic raised by `f` after the region has
    /// drained (remaining indices are skipped, none run twice). The pool
    /// itself survives and can dispatch further regions.
    pub fn for_each_index<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 || n <= 1 {
            for i in 0..n {
                failpoint!("pool_task", i);
                f(i);
            }
            return;
        }
        // ~4 chunks per worker: coarse enough that tiny tile regions
        // stop hammering the shared counter, fine enough to balance.
        let chunk = (n / (self.threads * 4)).max(1);
        if let Some(payload) = self.dispatch(RegionSpec::Dynamic { n, chunk }, &f) {
            resume_unwind(payload);
        }
    }

    /// Run `f(i)` for every `i ∈ 0..n` with **static ownership**:
    /// worker `w` of `T` always executes the contiguous range
    /// `[w·n/T, (w+1)·n/T)`. Two calls with the same `n` on the same
    /// pool run each index on the same worker, which is what lets a
    /// workspace first-touch tile arenas from the worker that will
    /// advance them. No atomics are touched on the hot path.
    ///
    /// # Panics
    /// Re-throws the first panic raised by `f` after the region has
    /// drained, like [`Pool::for_each_index`].
    pub fn for_each_owned<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            for i in 0..n {
                failpoint!("pool_task", i);
                f(i);
            }
            return;
        }
        if n == 0 {
            return;
        }
        if let Some(payload) = self.dispatch(RegionSpec::Owned { n }, &f) {
            resume_unwind(payload);
        }
    }

    /// Execute `f(band, block)` for all `(band, block) ∈ n_bands ×
    /// n_blocks` respecting the dependences of skewed time tiling —
    /// `(b, i)` after `(b, i-1)`, `(b-1, i)` and `(b-1, i+1)` — using
    /// the pool's configured [`WaveSchedule`].
    ///
    /// Tasks that may run concurrently under either schedule are at
    /// band distance ≥ 1 and block distance ≥ 2, which the tiling
    /// layer uses to prove write-set disjointness. `f` must not
    /// dispatch further regions on this pool.
    ///
    /// # Panics
    /// Re-throws the first panic raised by `f` after the wavefront has
    /// drained: a panicking task still releases its successors, which are
    /// then skipped under the pool-wide cancel flag, so no peer blocks on
    /// a dead predecessor. The pool (and its wave scratch) is left
    /// reusable for the next job.
    pub fn waves<F>(&self, n_bands: usize, n_blocks: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        match self.schedule {
            WaveSchedule::Pipelined => self.waves_pipelined(n_bands, n_blocks, f),
            WaveSchedule::Barrier => self.waves_barrier(n_bands, n_blocks, f),
        }
    }

    /// The dependence-counter pipelined wavefront (see
    /// [`WaveSchedule::Pipelined`]). One parallel region covers the
    /// whole `(band, block)` grid: each task's atomic predecessor count
    /// is decremented as its dependences complete, and the task is
    /// published to a lock-free ready queue when the count hits zero.
    /// Workers claim ready slots in publish order, so bands overlap and
    /// the pool is woken exactly once.
    pub fn waves_pipelined<F>(&self, n_bands: usize, n_blocks: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if n_bands == 0 || n_blocks == 0 {
            return;
        }
        let total = n_bands * n_blocks;
        if self.threads == 1 || total == 1 {
            // Row-major order satisfies every dependence sequentially. A
            // panic unwinds directly to the caller — there are no peers
            // to drain — carrying the same payload a parallel run would.
            for b in 0..n_bands {
                for i in 0..n_blocks {
                    failpoint!("wave_task", b, i);
                    f(b, i);
                }
            }
            return;
        }
        let mut scratch = self.shared.wave_scratch.lock();
        let scratch = &mut *scratch;
        if scratch.counts.len() < total {
            scratch.counts.resize_with(total, || AtomicUsize::new(0));
            scratch.slots.resize_with(total, || AtomicUsize::new(0));
        }
        // Ordering (all four init loops/stores): Relaxed — this thread
        // holds the scratch mutex and has not dispatched yet; the whole
        // initialized state is published to the workers by the region
        // handoff in `dispatch` (state-mutex release → condvar wake),
        // which happens-after every store here.
        for b in 0..n_bands {
            for i in 0..n_blocks {
                let preds = usize::from(i > 0)
                    + usize::from(b > 0)
                    + usize::from(b > 0 && i + 1 < n_blocks);
                // Ordering: Relaxed — see the init-block comment above.
                scratch.counts[b * n_blocks + i].store(preds, Ordering::Relaxed);
            }
        }
        for s in &scratch.slots[..total] {
            // Ordering: Relaxed — see the init-block comment above.
            s.store(0, Ordering::Relaxed);
        }
        // Only (0, 0) starts with zero predecessors; publish it.
        // Ordering: Relaxed — see the init-block comment above.
        scratch.slots[0].store(1, Ordering::Relaxed);
        // Ordering: Relaxed — see the init-block comment above.
        scratch.cursor.store(1, Ordering::Relaxed);
        let scratch = &*scratch;
        let shared = &*self.shared;
        let stall = shared.stall_timeout;
        // Each worker claims sequential tickets; ticket k spins until
        // the k-th ready task is published. Liveness: among the workers
        // the one spinning on the lowest ticket always has every lower
        // ticket's task executing on some other worker, and whenever
        // unexecuted tasks remain the dependence DAG has a minimal
        // element whose final predecessor's completion publishes it.
        // A panicking task breaks the second half of that argument, so
        // the claim loop also watches the pool-wide cancel flag.
        let run_one = move |ticket: usize| {
            let mut spins = 0u32;
            let mut watch = stall.map(|timeout| (timeout, usize::MAX, Instant::now()));
            let task = loop {
                if shared.cancelled() {
                    // A peer panicked; this ticket's task may never be
                    // published, so stop waiting and drain.
                    return;
                }
                // Ordering: Acquire — pairs with the Release publish in
                // `release` below; seeing slot != 0 therefore also makes
                // every predecessor task's stencil writes visible to
                // this claimer (the happens-before edge the schedule's
                // correctness rests on).
                let v = scratch.slots[ticket].load(Ordering::Acquire);
                if v != 0 {
                    break v - 1;
                }
                spins = spins.wrapping_add(1);
                if spins % 64 == 0 {
                    // Keep oversubscribed pools (threads > cores) live.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                // Opt-in watchdog: if the publish cursor makes no progress
                // for the configured window while this claimer starves, a
                // lost wakeup or wedged peer has silenced the wavefront —
                // panic with a task-graph snapshot instead of spinning
                // forever (the panic is then contained like any other).
                if let Some((timeout, last_cursor, since)) = watch.as_mut() {
                    if spins % 1024 == 0 {
                        // Ordering: Relaxed — the cursor is read only as a
                        // progress heartbeat; publication ordering is
                        // carried by the slot loads above.
                        let cur = scratch.cursor.load(Ordering::Relaxed);
                        if cur != *last_cursor {
                            *last_cursor = cur;
                            *since = Instant::now();
                        } else if since.elapsed() >= *timeout {
                            panic!(
                                "{}",
                                stall_report(scratch, n_bands, n_blocks, ticket, *timeout)
                            );
                        }
                    }
                }
            };
            let b = task / n_blocks;
            let i = task % n_blocks;
            // Contain this task's panic locally so the releases below
            // still run: successors must be freed (they are then skipped
            // under the cancel flag) or peers would spin forever on a
            // dead predecessor. Under an already-raised cancel flag the
            // task body is skipped outright — only the drain remains.
            if !shared.cancelled() {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    failpoint!("wave_task", b, i);
                    f(b, i);
                }));
                if let Err(payload) = result {
                    shared.record_panic(payload);
                }
            }
            let release = |tb: usize, ti: usize| {
                let id = tb * n_blocks + ti;
                // Ordering: AcqRel — the Release half publishes this
                // predecessor's stencil writes into the counter; the
                // Acquire half makes the *other* predecessors' writes
                // (published by their own decrements) visible to
                // whichever thread performs the final decrement, so the
                // Release publish below carries all of them.
                if scratch.counts[id].fetch_sub(1, Ordering::AcqRel) == 1 {
                    // Ordering: Relaxed — the cursor only reserves a
                    // unique publish slot; the payload is ordered by the
                    // slot's own Release store below.
                    let p = scratch.cursor.fetch_add(1, Ordering::Relaxed);
                    // Ordering: Release — pairs with the claimer's
                    // Acquire load; publishes the task id together with
                    // every predecessor write chained through the
                    // AcqRel decrement above.
                    scratch.slots[p].store(id + 1, Ordering::Release);
                }
            };
            if i + 1 < n_blocks {
                release(b, i + 1);
            }
            if b + 1 < n_bands {
                release(b + 1, i);
                if i > 0 {
                    release(b + 1, i - 1);
                }
            }
        };
        // chunk = 1: tickets are awaited individually, so claiming runs
        // would serialize the pipeline's release order.
        let panicked = self.dispatch(RegionSpec::Dynamic { n: total, chunk: 1 }, &run_one);
        if let Some(payload) = panicked {
            // A cancelled wavefront leaves counts/slots mid-flight; zero
            // the used prefix so the scratch is back to a clean reusable
            // state (the next `waves` call re-initializes it anyway, but
            // a zeroed prefix keeps the reuse invariant auditable).
            for c in &scratch.counts[..total] {
                // Ordering (all three reset stores): Relaxed — every
                // worker of the region has drained (`dispatch` returned)
                // and the next region's handoff publishes these values.
                c.store(0, Ordering::Relaxed);
            }
            for s in &scratch.slots[..total] {
                // Ordering: Relaxed — see the reset-block comment above.
                s.store(0, Ordering::Relaxed);
            }
            // Ordering: Relaxed — see the reset-block comment above.
            scratch.cursor.store(0, Ordering::Relaxed);
            resume_unwind(payload);
        }
    }

    /// The legacy bulk-synchronous wavefront (see
    /// [`WaveSchedule::Barrier`]): wave `w` runs every task with
    /// `2·band + block == w`, waves in ascending order with a full-pool
    /// barrier between them. Kept for A/B ablation against
    /// [`Pool::waves_pipelined`].
    pub fn waves_barrier<F>(&self, n_bands: usize, n_blocks: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if n_bands == 0 || n_blocks == 0 {
            return;
        }
        let max_wave = 2 * (n_bands - 1) + (n_blocks - 1);
        for w in 0..=max_wave {
            // Tasks on this wave: band b with block i = w - 2b.
            let b_lo = w.saturating_sub(n_blocks - 1).div_ceil(2);
            let b_hi = (w / 2).min(n_bands - 1);
            if b_lo > b_hi {
                continue;
            }
            let count = b_hi - b_lo + 1;
            // A panic inside a wave propagates out of `for_each_index`
            // after that wave drained; the remaining waves never start.
            self.for_each_index(count, |k| {
                let b = b_lo + k;
                let i = w - 2 * b;
                failpoint!("wave_task", b, i);
                f(b, i);
            });
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(mask) = self.caller_mask.take() {
            let _ = affinity::restore(&mask);
        }
    }
}

/// Run one task index under the region's panic boundary: a panic from
/// the closure is recorded in `shared` (first panic wins) and the
/// pool-wide cancel flag raised so the rest of the region drains.
fn run_task_contained(shared: &PoolShared, task: TaskRef, i: usize) {
    // AssertUnwindSafe: a panic may leave the closure's captured state
    // mid-update. That state belongs to the dispatching caller, who
    // receives the re-thrown payload and owns the decision of whether
    // the data is still usable (tempora_plan answers by poisoning the
    // plan until an explicit reset).
    let result = catch_unwind(AssertUnwindSafe(|| {
        failpoint!("pool_task", i);
        // SAFETY: `task` was published for the current region by
        // `Pool::dispatch`, which blocks until every worker reports
        // done, so `task.data` still points to the live closure
        // `task.call` was monomorphized for.
        unsafe { (task.call)(task.data, i) };
    }));
    if let Err(payload) = result {
        shared.record_panic(payload);
    }
}

/// Execute one region's share of work as worker `id`. Every task runs
/// through [`run_task_contained`], so a panic can never unwind out of a
/// worker thread; once the cancel flag is up, remaining work is skipped.
fn run_region(shared: &PoolShared, id: usize, task: TaskRef, spec: RegionSpec) {
    match spec {
        RegionSpec::Dynamic { n, chunk } => loop {
            if shared.cancelled() {
                break;
            }
            // Ordering: Relaxed — the counter only parcels out index
            // ranges; the task closure itself was published through the
            // state mutex, and claimers need no cross-claim ordering.
            let start = shared.next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            for i in start..(start + chunk).min(n) {
                if shared.cancelled() {
                    break;
                }
                run_task_contained(shared, task, i);
            }
        },
        RegionSpec::Owned { n } => {
            let t = shared.threads;
            for i in (id * n / t)..((id + 1) * n / t) {
                if shared.cancelled() {
                    break;
                }
                run_task_contained(shared, task, i);
            }
        }
    }
}

/// Compose the watchdog's diagnostic: which ready slot the claimer was
/// starving on, how far publication got, and a bounded snapshot of the
/// tasks still waiting on predecessors.
fn stall_report(
    scratch: &WaveScratch,
    n_bands: usize,
    n_blocks: usize,
    ticket: usize,
    timeout: Duration,
) -> String {
    use std::fmt::Write as _;
    let total = n_bands * n_blocks;
    // Ordering (both snapshot loads): Relaxed — diagnostic only; the
    // wavefront is already considered wedged.
    let published = scratch.cursor.load(Ordering::Relaxed).min(total);
    let mut blocked = String::new();
    let mut n_blocked = 0usize;
    for b in 0..n_bands {
        for i in 0..n_blocks {
            // Ordering: Relaxed — see the snapshot comment above.
            let c = scratch.counts[b * n_blocks + i].load(Ordering::Relaxed);
            if c > 0 {
                if n_blocked < 8 {
                    let _ = write!(blocked, " ({b},{i})<={c}");
                }
                n_blocked += 1;
            }
        }
    }
    if n_blocked > 8 {
        let _ = write!(blocked, " ...and {} more", n_blocked - 8);
    }
    format!(
        "wavefront stalled: no publish-cursor progress for {timeout:?} while \
         waiting on ready slot {ticket} ({published}/{total} tasks published \
         on a {n_bands}x{n_blocks} grid); tasks still awaiting predecessors \
         (task<=count):{blocked}"
    )
}

fn worker_loop(shared: &PoolShared, id: usize) {
    let mut seen = 0u64;
    loop {
        let (task, spec) = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break;
                }
                shared.work_cv.wait(&mut st);
            }
            // Panic-justification: a fresh generation with no task is a
            // bug in the dispatch protocol itself (dispatch publishes
            // both under one lock), not a recoverable runtime condition.
            st.task.expect("woken without a task")
        };
        run_region(shared, id, task, spec);
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_one();
        }
    }
}

/// A shared, mutably-aliasable slice for tile executors with provably
/// disjoint write sets.
///
/// The stencil tiling layers hand each task a region of one global array;
/// the scheduling proofs (ghost-zone independence, wavefront distance)
/// guarantee no two concurrent tasks touch overlapping elements, which
/// Rust's type system cannot express directly. `SyncSlice` centralizes
/// the single `unsafe` escape hatch behind that argument.
pub struct SyncSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access discipline is delegated to the caller per the type docs;
// the pointer itself is valid for 'a and T is plain Send data.
unsafe impl<T: Send> Send for SyncSlice<'_, T> {}
// SAFETY: sharing the handle only exposes `slice_mut`, whose own
// contract requires disjoint (or happens-before-ordered) access; the
// handle itself holds no thread-affine state.
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wrap a mutable slice for concurrent disjoint access.
    pub fn new(slice: &'a mut [T]) -> Self {
        SyncSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrow the whole slice mutably.
    ///
    /// # Safety
    /// The caller must guarantee that no two concurrently-live borrows
    /// (from any thread) access overlapping index ranges, and that reads
    /// of ranges written by other tasks happen only after those tasks
    /// completed (e.g. across a pool barrier or a wavefront dependence).
    // Returning `&mut` from `&self` is this type's entire purpose: the
    // disjointness proof lives with the caller, per the contract below.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [T] {
        // SAFETY: `ptr`/`len` come from the `&'a mut [T]` captured in
        // `new`, so the region is valid and writable for 'a; aliasing
        // between the returned borrows is excluded by this method's
        // caller contract (disjoint index ranges or happens-before).
        unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn for_each_index_covers_all_once() {
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            pool.for_each_index(100, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn for_each_empty_and_single() {
        let pool = Pool::new(4);
        pool.for_each_index(0, |_| panic!("no tasks expected"));
        let count = AtomicUsize::new(0);
        pool.for_each_index(1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn owned_covers_all_once_and_is_stable() {
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            for n in [0usize, 1, 3, 37, 100] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                pool.for_each_owned(n, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
            // Ownership must be stable: the same index lands on the same
            // worker thread across regions of the same size.
            let n = 37;
            let owner_map = || {
                let owners = Mutex::new(vec![None; n]);
                pool.for_each_owned(n, |i| {
                    owners.lock().unwrap()[i] = Some(std::thread::current().id());
                });
                owners.into_inner().unwrap()
            };
            let first = owner_map();
            assert!(first.iter().all(|o| o.is_some()));
            assert_eq!(first, owner_map(), "threads={threads}");
        }
    }

    /// The stamp oracle shared by every wavefront test: run the
    /// schedule, then check that each task's completion stamp is after
    /// all three of its dependences.
    fn check_wave_order(pool: &Pool, nb: usize, nc: usize, barrier: bool) {
        let log = Mutex::new(Vec::new());
        let stamp = AtomicU64::new(0);
        let record = |b: usize, i: usize| {
            let t = stamp.fetch_add(1, Ordering::SeqCst);
            log.lock().unwrap().push((b, i, t));
        };
        if barrier {
            pool.waves_barrier(nb, nc, record);
        } else {
            pool.waves_pipelined(nb, nc, record);
        }
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), nb * nc);
        let stamp_of = |b: usize, i: usize| log.iter().find(|e| e.0 == b && e.1 == i).unwrap().2;
        for b in 0..nb {
            for i in 0..nc {
                if i > 0 {
                    assert!(stamp_of(b, i - 1) < stamp_of(b, i), "left dep violated");
                }
                if b > 0 {
                    assert!(stamp_of(b - 1, i) < stamp_of(b, i), "below dep violated");
                    if i + 1 < nc {
                        assert!(
                            stamp_of(b - 1, i + 1) < stamp_of(b, i),
                            "below-right dep violated"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn waves_cover_grid_and_respect_order() {
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            for (nb, nc) in [(5usize, 7usize), (1, 9), (6, 1), (3, 3)] {
                check_wave_order(&pool, nb, nc, false);
                check_wave_order(&pool, nb, nc, true);
            }
        }
    }

    #[test]
    fn waves_dispatches_configured_schedule() {
        let pool = Pool::with_config(PoolConfig::new(2).schedule(WaveSchedule::Barrier));
        assert_eq!(pool.wave_schedule(), WaveSchedule::Barrier);
        let count = AtomicUsize::new(0);
        pool.waves(4, 5, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 20);
        assert_eq!(Pool::new(1).wave_schedule(), WaveSchedule::Pipelined);
    }

    #[test]
    fn many_small_regions_generation_churn() {
        // Time tiling dispatches thousands of tiny regions back to
        // back; the generation protocol must not lose or double-run
        // any of them.
        let pool = Pool::new(4);
        let count = AtomicUsize::new(0);
        for _ in 0..1500 {
            pool.for_each_index(3, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 1500 * 3);
        for _ in 0..200 {
            pool.waves(2, 3, |_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 1500 * 3 + 200 * 6);
        for _ in 0..500 {
            pool.for_each_owned(5, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 1500 * 3 + 200 * 6 + 500 * 5);
    }

    #[test]
    fn pinned_pool_runs_and_reports() {
        let pool = Pool::with_config(PoolConfig::new(2).pin(true));
        // On Linux pinning should take effect; elsewhere it must be an
        // honest no-op, never a panic.
        assert_eq!(pool.is_pinned(), Pool::pinning_supported());
        let count = AtomicUsize::new(0);
        pool.for_each_index(100, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        pool.waves(3, 4, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 112);
    }

    #[test]
    fn sync_slice_disjoint_parallel_writes() {
        let pool = Pool::new(4);
        let mut data = vec![0u64; 64];
        let shared = SyncSlice::new(&mut data);
        pool.for_each_index(8, |i| {
            // SAFETY: each task writes a disjoint 8-element block.
            let s = unsafe { shared.slice_mut() };
            for v in &mut s[i * 8..(i + 1) * 8] {
                *v = i as u64 + 1;
            }
        });
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, (j / 8) as u64 + 1);
        }
    }

    #[test]
    fn pool_sizes() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::max().threads() >= 1);
    }

    /// Snapshot the wave scratch (counts prefix, slots prefix, cursor)
    /// for the regression assertions below.
    fn scratch_state(pool: &Pool, total: usize) -> (Vec<usize>, Vec<usize>, usize) {
        let sc = pool.shared.wave_scratch.lock();
        let counts = sc.counts[..total]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let slots = sc.slots[..total]
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        (counts, slots, sc.cursor.load(Ordering::Relaxed))
    }

    /// Regression: the pipelined queue's `counts`/`slots`/`cursor` must
    /// re-initialize on every `waves` call, including a *smaller* grid
    /// reusing scratch that still holds the previous run's state — a
    /// stale non-zero slot inside the new prefix would release a wrong
    /// (or out-of-bounds) task id.
    #[test]
    fn wave_scratch_resets_across_reuse() {
        let pool = Pool::new(4);
        let run = |nb: usize, nc: usize| {
            let hits: Vec<AtomicUsize> = (0..nb * nc).map(|_| AtomicUsize::new(0)).collect();
            pool.waves_pipelined(nb, nc, |b, i| {
                hits[b * nc + i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "coverage hole at {nb}x{nc}"
            );
        };
        for &(nb, nc) in &[(5usize, 7usize), (3, 3), (5, 7), (2, 2)] {
            run(nb, nc);
            let total = nb * nc;
            let (counts, slots, cursor) = scratch_state(&pool, total);
            // Every task was released, so every predecessor count
            // drained to zero.
            assert!(
                counts.iter().all(|&c| c == 0),
                "{nb}x{nc}: counts {counts:?}"
            );
            // Every task id was published exactly once: the slot prefix
            // is a permutation of 1..=total (ids stored off-by-one).
            let mut seen = slots.clone();
            seen.sort_unstable();
            let expect: Vec<usize> = (1..=total).collect();
            assert_eq!(seen, expect, "{nb}x{nc}: slots {slots:?}");
            // The publish cursor stopped exactly at the grid size.
            assert_eq!(cursor, total, "{nb}x{nc}");
        }
    }

    /// Extract the human-readable message of a caught panic payload.
    fn payload_str(payload: &(dyn std::any::Any + Send)) -> &str {
        payload
            .downcast_ref::<&'static str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
            .unwrap_or("<non-string payload>")
    }

    /// Containment on the parallel-for surfaces: the first panic is
    /// re-thrown to the caller with its original payload, no index runs
    /// twice, and the same pool instance completes the next region.
    #[test]
    fn for_each_panic_propagates_and_pool_survives() {
        for threads in [1usize, 2, 4, 8] {
            for owned in [false, true] {
                let pool = Pool::new(threads);
                let dispatch = |f: &(dyn Fn(usize) + Sync)| {
                    if owned {
                        pool.for_each_owned(64, f);
                    } else {
                        pool.for_each_index(64, f);
                    }
                };
                let err = catch_unwind(AssertUnwindSafe(|| {
                    dispatch(&|i| {
                        if i == 17 {
                            panic!("boom-index");
                        }
                    });
                }))
                .expect_err("panic must propagate to the dispatching caller");
                assert_eq!(payload_str(&*err), "boom-index", "threads={threads}");
                // Survival: full single coverage on the next region.
                let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
                dispatch(&|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} owned={owned}"
                );
            }
        }
    }

    /// Containment on both wavefront schedules: an injected task panic
    /// neither deadlocks peers (the dead task's successors are released
    /// but skipped) nor poisons the pool — the next wavefront on the same
    /// pool reproduces the sequential dataflow bitwise.
    #[test]
    fn wave_panic_drains_and_next_job_is_bitwise_correct() {
        let (nb, nc) = (4usize, 5usize);
        let mix = |a: u64, b: u64, c: u64, t: u64| {
            splitmix(a ^ b.rotate_left(17) ^ c.rotate_left(34) ^ t)
        };
        // Sequential gold for the dataflow check after recovery.
        let mut gold = vec![0u64; nb * nc];
        for b in 0..nb {
            for i in 0..nc {
                let left = if i > 0 { gold[b * nc + i - 1] } else { 7 };
                let below = if b > 0 { gold[(b - 1) * nc + i] } else { 11 };
                let right = if b > 0 && i + 1 < nc {
                    gold[(b - 1) * nc + i + 1]
                } else {
                    13
                };
                gold[b * nc + i] = mix(left, below, right, (b * nc + i) as u64);
            }
        }
        for threads in [1usize, 2, 4, 8] {
            for schedule in [WaveSchedule::Pipelined, WaveSchedule::Barrier] {
                let pool = Pool::with_config(PoolConfig::new(threads).schedule(schedule));
                let err = catch_unwind(AssertUnwindSafe(|| {
                    pool.waves(nb, nc, |b, i| {
                        if (b, i) == (2, 3) {
                            panic!("boom-wave");
                        }
                    });
                }))
                .expect_err("panic must propagate out of waves");
                assert_eq!(
                    payload_str(&*err),
                    "boom-wave",
                    "threads={threads} schedule={schedule:?}"
                );
                if schedule == WaveSchedule::Pipelined && threads > 1 {
                    // The pipelined queue must be reset to a clean
                    // reusable state, not left mid-flight.
                    let (counts, slots, cursor) = scratch_state(&pool, nb * nc);
                    assert!(counts.iter().all(|&c| c == 0), "counts {counts:?}");
                    assert!(slots.iter().all(|&s| s == 0), "slots {slots:?}");
                    assert_eq!(cursor, 0);
                }
                // Survival: the next job on the same pool is bitwise
                // identical to the sequential reference.
                let mut cells = vec![0u64; nb * nc];
                let shared = SyncSlice::new(&mut cells);
                pool.waves(nb, nc, |b, i| {
                    // SAFETY: task (b, i) writes only cell b*nc+i and
                    // reads only predecessor cells, whose tasks completed
                    // before this one was released (the waves dependence
                    // contract).
                    let cells = unsafe { shared.slice_mut() };
                    let left = if i > 0 { cells[b * nc + i - 1] } else { 7 };
                    let below = if b > 0 { cells[(b - 1) * nc + i] } else { 11 };
                    let right = if b > 0 && i + 1 < nc {
                        cells[(b - 1) * nc + i + 1]
                    } else {
                        13
                    };
                    cells[b * nc + i] = mix(left, below, right, (b * nc + i) as u64);
                });
                assert_eq!(cells, gold, "threads={threads} schedule={schedule:?}");
            }
        }
    }

    /// The opt-in watchdog: a wavefront whose publish cursor stops moving
    /// (here: one task sleeping far past the timeout on a fully serial
    /// dependence chain) panics with a task-graph snapshot instead of
    /// spinning forever, and the pool survives to run the next job.
    #[test]
    #[cfg_attr(miri, ignore = "wall-clock watchdog is meaningless under miri")]
    fn watchdog_converts_stall_into_panic() {
        let pool = Pool::with_config(
            PoolConfig::new(4).stall_timeout(std::time::Duration::from_millis(50)),
        );
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.waves_pipelined(1, 16, |_b, i| {
                if i == 0 {
                    // Holds back every successor: the other claimers see
                    // zero cursor progress for >> stall_timeout.
                    std::thread::sleep(std::time::Duration::from_millis(600));
                }
            });
        }))
        .expect_err("watchdog must fire");
        let msg = payload_str(&*err);
        assert!(
            msg.contains("wavefront stalled"),
            "unexpected message: {msg}"
        );
        assert!(msg.contains("1x16 grid"), "unexpected message: {msg}");
        // Survival: the same pool completes the next wavefront.
        let count = AtomicUsize::new(0);
        pool.waves_pipelined(1, 16, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    /// A tiny deterministic PRNG (splitmix64) for the adversarial
    /// schedules; no external crates, stable across platforms.
    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    /// The adversarial wavefront harness (the dynamic complement of the
    /// static orderings audit): deterministically perturb each task's
    /// completion time with a seeded busy delay — which permutes the
    /// dependence-counter queue's release order — and assert that the
    /// pipelined schedule still computes the exact same dataflow result
    /// as the barrier schedule and the sequential reference.
    ///
    /// Each task `(b, i)` writes one cell from its three predecessors'
    /// cells, so any missing happens-before edge in the queue (a stale
    /// read of a predecessor cell) changes the output bitwise.
    #[test]
    fn waves_adversarial_release_orders_agree_bitwise() {
        // Miri executes ~1000x slower and already explores its own
        // interleavings; shrink the sweep but keep both schedules.
        let (grids, seeds): (&[(usize, usize)], u64) = if cfg!(miri) {
            (&[(3, 4)], 2)
        } else {
            (&[(5, 7), (2, 9), (8, 3)], 6)
        };
        let mix = |a: u64, b: u64, c: u64, t: u64| {
            splitmix(a ^ b.rotate_left(17) ^ c.rotate_left(34) ^ t)
        };
        for &(nb, nc) in grids {
            // Sequential reference for the dataflow value of each cell.
            let mut gold = vec![0u64; nb * nc];
            for b in 0..nb {
                for i in 0..nc {
                    let left = if i > 0 { gold[b * nc + i - 1] } else { 7 };
                    let below = if b > 0 { gold[(b - 1) * nc + i] } else { 11 };
                    let right = if b > 0 && i + 1 < nc {
                        gold[(b - 1) * nc + i + 1]
                    } else {
                        13
                    };
                    gold[b * nc + i] = mix(left, below, right, (b * nc + i) as u64);
                }
            }
            for threads in [2usize, 4, 8] {
                let pool = Pool::new(threads);
                for seed in 0..seeds {
                    for barrier in [false, true] {
                        let mut cells = vec![0u64; nb * nc];
                        let shared = SyncSlice::new(&mut cells);
                        let task = |b: usize, i: usize| {
                            // Seeded perturbation: stall this task so its
                            // successors' releases happen in a different
                            // order on every (seed, b, i).
                            let delay = splitmix(seed ^ ((b * nc + i) as u64) << 8) % 500;
                            for _ in 0..delay {
                                std::hint::spin_loop();
                            }
                            // SAFETY: task (b, i) writes only cell
                            // b*nc+i and reads only predecessor cells,
                            // whose tasks completed before this one was
                            // released (the waves dependence contract).
                            let cells = unsafe { shared.slice_mut() };
                            let left = if i > 0 { cells[b * nc + i - 1] } else { 7 };
                            let below = if b > 0 { cells[(b - 1) * nc + i] } else { 11 };
                            let right = if b > 0 && i + 1 < nc {
                                cells[(b - 1) * nc + i + 1]
                            } else {
                                13
                            };
                            cells[b * nc + i] = mix(left, below, right, (b * nc + i) as u64);
                        };
                        if barrier {
                            pool.waves_barrier(nb, nc, task);
                        } else {
                            pool.waves_pipelined(nb, nc, task);
                        }
                        assert_eq!(
                            cells, gold,
                            "{nb}x{nc} threads={threads} seed={seed} barrier={barrier}"
                        );
                    }
                }
            }
        }
    }
}
