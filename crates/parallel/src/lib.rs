//! # tempora-parallel — worker pool and wavefront executor
//!
//! The multicore substrate for the parallel experiments (paper §4: "The
//! parallel codes were scaled from uni-core to all the 24 cores"),
//! replacing the authors' OpenMP runtime with a small pinned-worker
//! executor:
//!
//! * [`Pool::for_each_index`] — a parallel-for with chunked atomic work
//!   claiming, used where every task of a region is independent;
//! * [`Pool::for_each_owned`] — a parallel-for with **static contiguous
//!   ownership**: index `i` always runs on the same worker, so a
//!   workspace can first-touch its arenas from the worker that will
//!   later advance them (NUMA-correct page placement);
//! * [`Pool::waves`] — a wavefront over a `(band, block)` grid with the
//!   dependence pattern of skewed/rectangular time tiling (`(b, i)`
//!   waits for `(b, i-1)` and `(b-1, i..=i+1)`). The default
//!   [`WaveSchedule::Pipelined`] schedule tracks per-task predecessor
//!   counts and releases each task the moment its last dependence
//!   completes — no full-pool barrier per anti-diagonal; the legacy
//!   [`WaveSchedule::Barrier`] schedule is kept for A/B ablations;
//! * per-core **pinning** ([`PoolConfig::pin`]) via `sched_setaffinity`
//!   on Linux/x86_64 behind a capability probe, a no-op elsewhere;
//! * [`SyncSlice`] — a shared-mutable slice handle for tile executors
//!   whose write sets are disjoint by construction.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Thread-to-core pinning via raw `sched_{get,set}affinity` syscalls.
///
/// The workspace vendors no libc, so on Linux/x86_64 the two syscalls
/// are issued directly with inline assembly; every other target
/// compiles to an honest "unsupported" stub and pinning is a no-op.
mod affinity {
    /// Bits per mask word.
    const WORD_BITS: usize = 64;
    /// Words in a 1024-bit CPU mask (the kernel's default ceiling).
    const MASK_WORDS: usize = 1024 / WORD_BITS;

    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    mod sys {
        use super::MASK_WORDS;

        const SYS_SCHED_SETAFFINITY: isize = 203;
        const SYS_SCHED_GETAFFINITY: isize = 204;

        /// Issue a 3-argument Linux syscall; returns the raw kernel
        /// result (negative errno on failure).
        unsafe fn syscall3(num: isize, a1: usize, a2: usize, a3: usize) -> isize {
            let mut ret = num;
            core::arch::asm!(
                "syscall",
                inout("rax") ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
            ret
        }

        /// The calling thread's affinity mask, or `None` if the kernel
        /// refused (the capability probe).
        pub fn get_mask() -> Option<[u64; MASK_WORDS]> {
            let mut mask = [0u64; MASK_WORDS];
            let r = unsafe {
                syscall3(
                    SYS_SCHED_GETAFFINITY,
                    0,
                    core::mem::size_of_val(&mask),
                    mask.as_mut_ptr() as usize,
                )
            };
            (r > 0).then_some(mask)
        }

        /// Replace the calling thread's affinity mask; returns success.
        pub fn set_mask(mask: &[u64; MASK_WORDS]) -> bool {
            let r = unsafe {
                syscall3(
                    SYS_SCHED_SETAFFINITY,
                    0,
                    core::mem::size_of_val(mask),
                    mask.as_ptr() as usize,
                )
            };
            r == 0
        }
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    mod sys {
        use super::MASK_WORDS;

        pub fn get_mask() -> Option<[u64; MASK_WORDS]> {
            None
        }

        pub fn set_mask(_mask: &[u64; MASK_WORDS]) -> bool {
            false
        }
    }

    /// A saved affinity mask, used to restore the dispatching thread's
    /// original affinity when a pinned pool is dropped.
    #[derive(Clone, Copy)]
    pub(crate) struct Mask([u64; MASK_WORDS]);

    /// Snapshot the calling thread's current affinity mask.
    pub(crate) fn current() -> Option<Mask> {
        sys::get_mask().map(Mask)
    }

    /// Restore a previously saved mask; returns success.
    pub(crate) fn restore(mask: &Mask) -> bool {
        sys::set_mask(&mask.0)
    }

    /// CPU ids the calling thread may currently run on, in ascending
    /// order. Empty when affinity control is unsupported.
    pub(crate) fn available_cpus() -> Vec<usize> {
        let Some(mask) = sys::get_mask() else {
            return Vec::new();
        };
        let mut cpus = Vec::new();
        for (w, &word) in mask.iter().enumerate() {
            for b in 0..WORD_BITS {
                if word & (1u64 << b) != 0 {
                    cpus.push(w * WORD_BITS + b);
                }
            }
        }
        cpus
    }

    /// Pin the calling thread to a single CPU; returns success.
    pub(crate) fn pin_to(cpu: usize) -> bool {
        if cpu >= MASK_WORDS * WORD_BITS {
            return false;
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / WORD_BITS] |= 1u64 << (cpu % WORD_BITS);
        sys::set_mask(&mask)
    }

    /// Whether this platform supports affinity control at all.
    pub(crate) fn supported() -> bool {
        sys::get_mask().is_some()
    }
}

/// Which schedule [`Pool::waves`] dispatches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WaveSchedule {
    /// Dependence-counter pipeline: every `(band, block)` task carries
    /// an atomic count of its ≤ 3 unfinished predecessors and is
    /// released to a ready queue the moment the last one completes, so
    /// bands overlap and no full-pool barrier runs per anti-diagonal.
    /// The default.
    #[default]
    Pipelined,
    /// The legacy bulk-synchronous schedule: anti-diagonal `w = 2b + i`
    /// runs as one parallel region with a barrier between waves. Kept
    /// behind this flag for A/B comparison in ablation runs.
    Barrier,
}

/// Construction-time options for [`Pool::with_config`].
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Worker count, including the dispatching thread (clamped to ≥ 1).
    pub threads: usize,
    /// Pin each worker (and the dispatching thread) to one CPU.
    /// Best-effort: [`Pool::is_pinned`] reports whether every pin took
    /// effect. The dispatcher's original affinity is restored on drop.
    pub pin: bool,
    /// The schedule [`Pool::waves`] uses.
    pub schedule: WaveSchedule,
}

impl PoolConfig {
    /// Options for an unpinned pool of `threads` workers with the
    /// default pipelined wavefront schedule.
    pub fn new(threads: usize) -> Self {
        PoolConfig {
            threads,
            pin: false,
            schedule: WaveSchedule::Pipelined,
        }
    }

    /// Request per-core pinning.
    pub fn pin(mut self, pin: bool) -> Self {
        self.pin = pin;
        self
    }

    /// Select the wavefront schedule.
    pub fn schedule(mut self, schedule: WaveSchedule) -> Self {
        self.schedule = schedule;
        self
    }
}

/// A fat pointer to the current region's task, smuggled to the workers.
///
/// The dispatching call blocks until every worker has finished the
/// region, so the erased lifetime never escapes the borrow.
#[derive(Clone, Copy)]
struct TaskRef(&'static (dyn Fn(usize) + Sync));

// SAFETY: the underlying closure is Sync and only invoked while the
// dispatching call keeps the original borrow alive.
unsafe impl Send for TaskRef {}

/// How a region's index space is handed to the workers.
#[derive(Clone, Copy)]
enum RegionSpec {
    /// Workers claim runs of `chunk` indices per `fetch_add`.
    Dynamic { n: usize, chunk: usize },
    /// Worker `w` of `T` statically owns indices
    /// `[w·n/T, (w+1)·n/T)` — no atomics, and index `i` lands on the
    /// same worker in every region of the same size.
    Owned { n: usize },
}

struct PoolState {
    /// Region generation; bumped once per dispatched parallel region.
    generation: u64,
    /// The current region's task and index-space shape.
    task: Option<(TaskRef, RegionSpec)>,
    /// Workers still running the current region.
    active: usize,
    /// Workers that finished startup (pinning settled).
    started: usize,
    /// Pool shutdown flag (set on drop).
    shutdown: bool,
}

/// Reusable scratch for the pipelined wavefront: predecessor counts and
/// the ready-slot queue. Grow-only, so steady-state `waves` calls are
/// allocation-free.
#[derive(Default)]
struct WaveScratch {
    /// Remaining unfinished predecessors per task.
    counts: Vec<AtomicUsize>,
    /// Ready queue: slot `k` holds `task_id + 1` once the `k`-th task to
    /// become ready is published (0 = not yet).
    slots: Vec<AtomicUsize>,
    /// Next free publish slot.
    cursor: AtomicUsize,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
    next: AtomicUsize,
    /// Worker count, including the dispatching thread.
    threads: usize,
    /// False if any requested worker pin failed.
    pin_ok: AtomicBool,
    wave_scratch: Mutex<WaveScratch>,
}

/// A fixed-width worker pool with **persistent, parked workers**.
///
/// Stencil time-tiling dispatches thousands of small parallel regions
/// (one or two per band, or one per tile grid); spawning threads per
/// region costs hundreds of microseconds on some kernels and would
/// dominate the tile work, so the workers are created once and woken
/// through a condvar. The dispatching thread participates in the work
/// as worker 0.
pub struct Pool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
    pinned: bool,
    schedule: WaveSchedule,
    /// The dispatcher's pre-pinning affinity, restored on drop.
    caller_mask: Option<affinity::Mask>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pool(threads={}, pinned={}, schedule={:?})",
            self.threads, self.pinned, self.schedule
        )
    }
}

impl Pool {
    /// Create an unpinned pool using `threads` workers (clamped to
    /// ≥ 1) and the default pipelined wavefront schedule. One of the
    /// workers is the caller itself, so `threads - 1` OS threads are
    /// spawned.
    pub fn new(threads: usize) -> Self {
        Pool::with_config(PoolConfig::new(threads))
    }

    /// Create a pool from explicit [`PoolConfig`] options.
    pub fn with_config(cfg: PoolConfig) -> Self {
        let threads = cfg.threads.max(1);
        // Enumerate pinnable CPUs up front; worker k goes to
        // cpus[k mod len] so oversubscribed pools still pin sanely.
        let cpus = if cfg.pin {
            affinity::available_cpus()
        } else {
            Vec::new()
        };
        let want_pin = cfg.pin && !cpus.is_empty();
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                generation: 0,
                task: None,
                active: 0,
                started: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            threads,
            pin_ok: AtomicBool::new(true),
            wave_scratch: Mutex::new(WaveScratch::default()),
        });
        let handles: Vec<_> = (1..threads)
            .map(|k| {
                let shared = Arc::clone(&shared);
                let target = want_pin.then(|| cpus[k % cpus.len()]);
                std::thread::spawn(move || {
                    if let Some(cpu) = target {
                        if !affinity::pin_to(cpu) {
                            shared.pin_ok.store(false, Ordering::Release);
                        }
                    }
                    {
                        let mut st = shared.state.lock();
                        st.started += 1;
                        shared.done_cv.notify_all();
                    }
                    worker_loop(&shared, k);
                })
            })
            .collect();
        // Pin the dispatcher (worker 0), keeping its original mask so
        // Drop can hand the thread back unpinned.
        let mut caller_mask = None;
        let mut pinned = want_pin;
        if want_pin {
            caller_mask = affinity::current();
            if !affinity::pin_to(cpus[0]) {
                pinned = false;
            }
        }
        // Wait for every worker's pin attempt to settle so is_pinned()
        // is accurate from the first query.
        {
            let mut st = shared.state.lock();
            while st.started != threads - 1 {
                shared.done_cv.wait(&mut st);
            }
        }
        pinned = pinned && shared.pin_ok.load(Ordering::Acquire);
        Pool {
            shared,
            threads,
            handles,
            pinned,
            schedule: cfg.schedule,
            caller_mask,
        }
    }

    /// A pool sized to the machine.
    pub fn max() -> Self {
        Pool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of workers (including the dispatching thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when pinning was requested and every thread of the pool
    /// (workers and dispatcher) was successfully pinned to a CPU.
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// The wavefront schedule [`Pool::waves`] dispatches.
    pub fn wave_schedule(&self) -> WaveSchedule {
        self.schedule
    }

    /// Whether this platform supports thread-to-core pinning at all
    /// (Linux/x86_64 with a readable affinity mask).
    pub fn pinning_supported() -> bool {
        affinity::supported()
    }

    /// Dispatch one parallel region and block until it completes.
    fn dispatch(&self, spec: RegionSpec, f: &(dyn Fn(usize) + Sync)) {
        // Erase the closure's lifetime; the wait below keeps it alive
        // until every worker is done with it.
        // SAFETY: see TaskRef — the borrow outlives the region because
        // this function blocks until `active == 0`.
        let task = TaskRef(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = self.shared.state.lock();
            self.shared.next.store(0, Ordering::Relaxed);
            st.task = Some((task, spec));
            st.active = self.threads - 1;
            st.generation += 1;
            self.shared.work_cv.notify_all();
        }
        // The dispatcher helps as worker 0.
        run_region(&self.shared, 0, task, spec);
        // Wait for the workers to drain their in-flight tasks.
        let mut st = self.shared.state.lock();
        while st.active != 0 {
            self.shared.done_cv.wait(&mut st);
        }
        st.task = None;
    }

    /// Run `f(i)` for every `i ∈ 0..n`, distributing indices over the
    /// workers in chunked runs claimed off one atomic counter. Returns
    /// when all tasks finished (bulk-synchronous).
    pub fn for_each_index<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 || n <= 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        // ~4 chunks per worker: coarse enough that tiny tile regions
        // stop hammering the shared counter, fine enough to balance.
        let chunk = (n / (self.threads * 4)).max(1);
        self.dispatch(RegionSpec::Dynamic { n, chunk }, &f);
    }

    /// Run `f(i)` for every `i ∈ 0..n` with **static ownership**:
    /// worker `w` of `T` always executes the contiguous range
    /// `[w·n/T, (w+1)·n/T)`. Two calls with the same `n` on the same
    /// pool run each index on the same worker, which is what lets a
    /// workspace first-touch tile arenas from the worker that will
    /// advance them. No atomics are touched on the hot path.
    pub fn for_each_owned<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        if n == 0 {
            return;
        }
        self.dispatch(RegionSpec::Owned { n }, &f);
    }

    /// Execute `f(band, block)` for all `(band, block) ∈ n_bands ×
    /// n_blocks` respecting the dependences of skewed time tiling —
    /// `(b, i)` after `(b, i-1)`, `(b-1, i)` and `(b-1, i+1)` — using
    /// the pool's configured [`WaveSchedule`].
    ///
    /// Tasks that may run concurrently under either schedule are at
    /// band distance ≥ 1 and block distance ≥ 2, which the tiling
    /// layer uses to prove write-set disjointness. `f` must not
    /// dispatch further regions on this pool.
    pub fn waves<F>(&self, n_bands: usize, n_blocks: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        match self.schedule {
            WaveSchedule::Pipelined => self.waves_pipelined(n_bands, n_blocks, f),
            WaveSchedule::Barrier => self.waves_barrier(n_bands, n_blocks, f),
        }
    }

    /// The dependence-counter pipelined wavefront (see
    /// [`WaveSchedule::Pipelined`]). One parallel region covers the
    /// whole `(band, block)` grid: each task's atomic predecessor count
    /// is decremented as its dependences complete, and the task is
    /// published to a lock-free ready queue when the count hits zero.
    /// Workers claim ready slots in publish order, so bands overlap and
    /// the pool is woken exactly once.
    pub fn waves_pipelined<F>(&self, n_bands: usize, n_blocks: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if n_bands == 0 || n_blocks == 0 {
            return;
        }
        let total = n_bands * n_blocks;
        if self.threads == 1 || total == 1 {
            // Row-major order satisfies every dependence sequentially.
            for b in 0..n_bands {
                for i in 0..n_blocks {
                    f(b, i);
                }
            }
            return;
        }
        let mut scratch = self.shared.wave_scratch.lock();
        let scratch = &mut *scratch;
        if scratch.counts.len() < total {
            scratch.counts.resize_with(total, || AtomicUsize::new(0));
            scratch.slots.resize_with(total, || AtomicUsize::new(0));
        }
        for b in 0..n_bands {
            for i in 0..n_blocks {
                let preds = usize::from(i > 0)
                    + usize::from(b > 0)
                    + usize::from(b > 0 && i + 1 < n_blocks);
                scratch.counts[b * n_blocks + i].store(preds, Ordering::Relaxed);
            }
        }
        for s in &scratch.slots[..total] {
            s.store(0, Ordering::Relaxed);
        }
        // Only (0, 0) starts with zero predecessors; publish it.
        scratch.slots[0].store(1, Ordering::Relaxed);
        scratch.cursor.store(1, Ordering::Relaxed);
        let scratch = &*scratch;
        // Each worker claims sequential tickets; ticket k spins until
        // the k-th ready task is published. Liveness: among the workers
        // the one spinning on the lowest ticket always has every lower
        // ticket's task executing on some other worker, and whenever
        // unexecuted tasks remain the dependence DAG has a minimal
        // element whose final predecessor's completion publishes it.
        let run_one = move |ticket: usize| {
            let mut spins = 0u32;
            let task = loop {
                let v = scratch.slots[ticket].load(Ordering::Acquire);
                if v != 0 {
                    break v - 1;
                }
                spins = spins.wrapping_add(1);
                if spins % 64 == 0 {
                    // Keep oversubscribed pools (threads > cores) live.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            };
            let b = task / n_blocks;
            let i = task % n_blocks;
            f(b, i);
            let release = |tb: usize, ti: usize| {
                let id = tb * n_blocks + ti;
                // AcqRel chains every predecessor's writes into the
                // publish below; the claimer's Acquire load sees both.
                if scratch.counts[id].fetch_sub(1, Ordering::AcqRel) == 1 {
                    let p = scratch.cursor.fetch_add(1, Ordering::Relaxed);
                    scratch.slots[p].store(id + 1, Ordering::Release);
                }
            };
            if i + 1 < n_blocks {
                release(b, i + 1);
            }
            if b + 1 < n_bands {
                release(b + 1, i);
                if i > 0 {
                    release(b + 1, i - 1);
                }
            }
        };
        // chunk = 1: tickets are awaited individually, so claiming runs
        // would serialize the pipeline's release order.
        self.dispatch(RegionSpec::Dynamic { n: total, chunk: 1 }, &run_one);
    }

    /// The legacy bulk-synchronous wavefront (see
    /// [`WaveSchedule::Barrier`]): wave `w` runs every task with
    /// `2·band + block == w`, waves in ascending order with a full-pool
    /// barrier between them. Kept for A/B ablation against
    /// [`Pool::waves_pipelined`].
    pub fn waves_barrier<F>(&self, n_bands: usize, n_blocks: usize, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        if n_bands == 0 || n_blocks == 0 {
            return;
        }
        let max_wave = 2 * (n_bands - 1) + (n_blocks - 1);
        for w in 0..=max_wave {
            // Tasks on this wave: band b with block i = w - 2b.
            let b_lo = w.saturating_sub(n_blocks - 1).div_ceil(2);
            let b_hi = (w / 2).min(n_bands - 1);
            if b_lo > b_hi {
                continue;
            }
            let count = b_hi - b_lo + 1;
            self.for_each_index(count, |k| {
                let b = b_lo + k;
                let i = w - 2 * b;
                f(b, i);
            });
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(mask) = self.caller_mask.take() {
            let _ = affinity::restore(&mask);
        }
    }
}

/// Execute one region's share of work as worker `id`.
fn run_region(shared: &PoolShared, id: usize, task: TaskRef, spec: RegionSpec) {
    match spec {
        RegionSpec::Dynamic { n, chunk } => loop {
            let start = shared.next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            for i in start..(start + chunk).min(n) {
                (task.0)(i);
            }
        },
        RegionSpec::Owned { n } => {
            let t = shared.threads;
            for i in (id * n / t)..((id + 1) * n / t) {
                (task.0)(i);
            }
        }
    }
}

fn worker_loop(shared: &PoolShared, id: usize) {
    let mut seen = 0u64;
    loop {
        let (task, spec) = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break;
                }
                shared.work_cv.wait(&mut st);
            }
            st.task.expect("woken without a task")
        };
        run_region(shared, id, task, spec);
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_one();
        }
    }
}

/// A shared, mutably-aliasable slice for tile executors with provably
/// disjoint write sets.
///
/// The stencil tiling layers hand each task a region of one global array;
/// the scheduling proofs (ghost-zone independence, wavefront distance)
/// guarantee no two concurrent tasks touch overlapping elements, which
/// Rust's type system cannot express directly. `SyncSlice` centralizes
/// the single `unsafe` escape hatch behind that argument.
pub struct SyncSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access discipline is delegated to the caller per the type docs;
// the pointer itself is valid for 'a.
unsafe impl<T: Send> Send for SyncSlice<'_, T> {}
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wrap a mutable slice for concurrent disjoint access.
    pub fn new(slice: &'a mut [T]) -> Self {
        SyncSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrow the whole slice mutably.
    ///
    /// # Safety
    /// The caller must guarantee that no two concurrently-live borrows
    /// (from any thread) access overlapping index ranges, and that reads
    /// of ranges written by other tasks happen only after those tasks
    /// completed (e.g. across a pool barrier or a wavefront dependence).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self) -> &mut [T] {
        core::slice::from_raw_parts_mut(self.ptr, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn for_each_index_covers_all_once() {
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            pool.for_each_index(100, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn for_each_empty_and_single() {
        let pool = Pool::new(4);
        pool.for_each_index(0, |_| panic!("no tasks expected"));
        let count = AtomicUsize::new(0);
        pool.for_each_index(1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn owned_covers_all_once_and_is_stable() {
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            for n in [0usize, 1, 3, 37, 100] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                pool.for_each_owned(n, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} n={n}"
                );
            }
            // Ownership must be stable: the same index lands on the same
            // worker thread across regions of the same size.
            let n = 37;
            let owner_map = || {
                let owners = Mutex::new(vec![None; n]);
                pool.for_each_owned(n, |i| {
                    owners.lock().unwrap()[i] = Some(std::thread::current().id());
                });
                owners.into_inner().unwrap()
            };
            let first = owner_map();
            assert!(first.iter().all(|o| o.is_some()));
            assert_eq!(first, owner_map(), "threads={threads}");
        }
    }

    /// The stamp oracle shared by every wavefront test: run the
    /// schedule, then check that each task's completion stamp is after
    /// all three of its dependences.
    fn check_wave_order(pool: &Pool, nb: usize, nc: usize, barrier: bool) {
        let log = Mutex::new(Vec::new());
        let stamp = AtomicU64::new(0);
        let record = |b: usize, i: usize| {
            let t = stamp.fetch_add(1, Ordering::SeqCst);
            log.lock().unwrap().push((b, i, t));
        };
        if barrier {
            pool.waves_barrier(nb, nc, record);
        } else {
            pool.waves_pipelined(nb, nc, record);
        }
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), nb * nc);
        let stamp_of = |b: usize, i: usize| log.iter().find(|e| e.0 == b && e.1 == i).unwrap().2;
        for b in 0..nb {
            for i in 0..nc {
                if i > 0 {
                    assert!(stamp_of(b, i - 1) < stamp_of(b, i), "left dep violated");
                }
                if b > 0 {
                    assert!(stamp_of(b - 1, i) < stamp_of(b, i), "below dep violated");
                    if i + 1 < nc {
                        assert!(
                            stamp_of(b - 1, i + 1) < stamp_of(b, i),
                            "below-right dep violated"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn waves_cover_grid_and_respect_order() {
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            for (nb, nc) in [(5usize, 7usize), (1, 9), (6, 1), (3, 3)] {
                check_wave_order(&pool, nb, nc, false);
                check_wave_order(&pool, nb, nc, true);
            }
        }
    }

    #[test]
    fn waves_dispatches_configured_schedule() {
        let pool = Pool::with_config(PoolConfig::new(2).schedule(WaveSchedule::Barrier));
        assert_eq!(pool.wave_schedule(), WaveSchedule::Barrier);
        let count = AtomicUsize::new(0);
        pool.waves(4, 5, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 20);
        assert_eq!(Pool::new(1).wave_schedule(), WaveSchedule::Pipelined);
    }

    #[test]
    fn many_small_regions_generation_churn() {
        // Time tiling dispatches thousands of tiny regions back to
        // back; the generation protocol must not lose or double-run
        // any of them.
        let pool = Pool::new(4);
        let count = AtomicUsize::new(0);
        for _ in 0..1500 {
            pool.for_each_index(3, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 1500 * 3);
        for _ in 0..200 {
            pool.waves(2, 3, |_, _| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 1500 * 3 + 200 * 6);
        for _ in 0..500 {
            pool.for_each_owned(5, |_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(count.load(Ordering::Relaxed), 1500 * 3 + 200 * 6 + 500 * 5);
    }

    #[test]
    fn pinned_pool_runs_and_reports() {
        let pool = Pool::with_config(PoolConfig::new(2).pin(true));
        // On Linux pinning should take effect; elsewhere it must be an
        // honest no-op, never a panic.
        assert_eq!(pool.is_pinned(), Pool::pinning_supported());
        let count = AtomicUsize::new(0);
        pool.for_each_index(100, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        pool.waves(3, 4, |_, _| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 112);
    }

    #[test]
    fn sync_slice_disjoint_parallel_writes() {
        let pool = Pool::new(4);
        let mut data = vec![0u64; 64];
        let shared = SyncSlice::new(&mut data);
        pool.for_each_index(8, |i| {
            // SAFETY: each task writes a disjoint 8-element block.
            let s = unsafe { shared.slice_mut() };
            for v in &mut s[i * 8..(i + 1) * 8] {
                *v = i as u64 + 1;
            }
        });
        for (j, &v) in data.iter().enumerate() {
            assert_eq!(v, (j / 8) as u64 + 1);
        }
    }

    #[test]
    fn pool_sizes() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::max().threads() >= 1);
    }
}
