//! Thread-to-core pinning via raw `sched_{get,set}affinity` syscalls.
//!
//! The workspace vendors no libc, so on Linux/x86_64 the two syscalls
//! are issued directly with inline assembly; every other target
//! compiles to an honest "unsupported" stub and pinning is a no-op.
//!
//! This module is the workspace's **only** sanctioned home for inline
//! `asm!` outside `tempora_simd::arch` — `cargo xtask audit` bans the
//! construct everywhere else. Keeping the syscall surface in one small
//! leaf module keeps the unsafe boundary auditable: everything above it
//! (worker startup, `Pool::with_config`, drop-time restore) is safe
//! code over the four `pub(crate)` entry points below.

/// Bits per mask word.
const WORD_BITS: usize = 64;
/// Words in a 1024-bit CPU mask (the kernel's default ceiling).
const MASK_WORDS: usize = 1024 / WORD_BITS;

#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
mod sys {
    use super::MASK_WORDS;

    const SYS_SCHED_SETAFFINITY: isize = 203;
    const SYS_SCHED_GETAFFINITY: isize = 204;

    /// Issue a 3-argument Linux syscall; returns the raw kernel
    /// result (negative errno on failure).
    ///
    /// # Safety
    /// `num` must be a syscall whose three arguments are plain values
    /// or pointers valid for the kernel's access pattern; for the two
    /// affinity syscalls used here, `a3` must point to at least `a2`
    /// bytes of (writable, for GET) memory.
    unsafe fn syscall3(num: isize, a1: usize, a2: usize, a3: usize) -> isize {
        let mut ret = num;
        // SAFETY: the `syscall` instruction with the x86-64 Linux ABI —
        // number in rax, args in rdi/rsi/rdx — clobbers only rcx/r11
        // (declared) and rax (inout). The caller's contract guarantees
        // the pointed-to mask buffer outlives and fits the call, and
        // `options(nostack)` holds: no stack access is performed.
        unsafe {
            core::arch::asm!(
                "syscall",
                inout("rax") ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                out("rcx") _,
                out("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// The calling thread's affinity mask, or `None` if the kernel
    /// refused (the capability probe).
    pub fn get_mask() -> Option<[u64; MASK_WORDS]> {
        let mut mask = [0u64; MASK_WORDS];
        // SAFETY: `mask` is a live, writable 128-byte buffer on this
        // frame and `size_of_val(&mask)` is exactly its length, so the
        // kernel's write stays in bounds; arg 0 (pid) means "self".
        let r = unsafe {
            syscall3(
                SYS_SCHED_GETAFFINITY,
                0,
                core::mem::size_of_val(&mask),
                mask.as_mut_ptr() as usize,
            )
        };
        (r > 0).then_some(mask)
    }

    /// Replace the calling thread's affinity mask; returns success.
    pub fn set_mask(mask: &[u64; MASK_WORDS]) -> bool {
        // SAFETY: `mask` is a live 128-byte buffer borrowed for the
        // whole call and `size_of_val(mask)` is exactly its length; the
        // kernel only reads it; arg 0 (pid) means "self".
        let r = unsafe {
            syscall3(
                SYS_SCHED_SETAFFINITY,
                0,
                core::mem::size_of_val(mask),
                mask.as_ptr() as usize,
            )
        };
        r == 0
    }
}

// Miri cannot execute inline asm (and there is no kernel to call), so
// the interpreter — like every non-Linux/x86-64 target — gets the
// honest "unsupported" stub and pinning becomes a no-op.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
mod sys {
    use super::MASK_WORDS;

    pub fn get_mask() -> Option<[u64; MASK_WORDS]> {
        None
    }

    pub fn set_mask(_mask: &[u64; MASK_WORDS]) -> bool {
        false
    }
}

/// A saved affinity mask, used to restore the dispatching thread's
/// original affinity when a pinned pool is dropped.
#[derive(Clone, Copy)]
pub(crate) struct Mask([u64; MASK_WORDS]);

/// Snapshot the calling thread's current affinity mask.
pub(crate) fn current() -> Option<Mask> {
    sys::get_mask().map(Mask)
}

/// Restore a previously saved mask; returns success.
pub(crate) fn restore(mask: &Mask) -> bool {
    sys::set_mask(&mask.0)
}

/// CPU ids the calling thread may currently run on, in ascending
/// order. Empty when affinity control is unsupported.
pub(crate) fn available_cpus() -> Vec<usize> {
    let Some(mask) = sys::get_mask() else {
        return Vec::new();
    };
    let mut cpus = Vec::new();
    for (w, &word) in mask.iter().enumerate() {
        for b in 0..WORD_BITS {
            if word & (1u64 << b) != 0 {
                cpus.push(w * WORD_BITS + b);
            }
        }
    }
    cpus
}

/// Pin the calling thread to a single CPU; returns success.
pub(crate) fn pin_to(cpu: usize) -> bool {
    if cpu >= MASK_WORDS * WORD_BITS {
        return false;
    }
    let mut mask = [0u64; MASK_WORDS];
    mask[cpu / WORD_BITS] |= 1u64 << (cpu % WORD_BITS);
    sys::set_mask(&mask)
}

/// Whether this platform supports affinity control at all.
pub(crate) fn supported() -> bool {
    sys::get_mask().is_some()
}
