//! Data-reorganization spatial vectorization (paper §2.2).
//!
//! Instead of re-loading overlapping vectors from memory, this scheme
//! loads each input element exactly once with **aligned** vector loads and
//! assembles the shifted neighbour vectors with inter-register shuffles
//! (`palignr`-style concatenate-and-extract, [`Pack::align_pair`]).
//! Memory traffic matches the scalar code; the cost moves into the CPU's
//! shuffle port, which the paper identifies as the potential bottleneck —
//! and the number of shuffles still grows with stencil order, vector
//! length and dimensionality, unlike the temporal scheme's constant.
//!
//! The counted variant feeds the §3.5 instruction-budget comparison: for
//! the 1D3P kernel it performs 2 shuffles per output vector (left and
//! right neighbours; `vl`-aligned blocks make the centre free).

use tempora_grid::Grid1;
use tempora_simd::count::{self, Op};
use tempora_simd::Pack;
use tempora_stencil::Heat1dCoeffs;

const N: usize = 4;

/// One data-reorganization 1D3P Jacobi step over blocks of `N` outputs.
///
/// Outputs are produced for block starts `x = 1, 1+N, …`; the two aligned
/// loads per block are `a[x-1 .. x-1+N]` and `a[x-1+N .. x-1+2N]` (the
/// second is reused as the next block's first load).
#[inline]
fn step<const COUNT: bool>(a: &[f64], b: &mut [f64], n: usize, c: &Heat1dCoeffs) {
    let mut x = 1usize;
    // Block-aligned loads relative to x-1 (x-1 is a multiple of N when the
    // interior starts at 1 after one halo cell... in general these loads
    // are *block*-aligned rather than 32-byte-aligned; the shuffle count
    // is what the scheme is about).
    // Both aligned loads of a block must stay inside the slice
    // (`a.len() == n + 2`): the `hi` load touches `x-1+2N-1 <= n+1`.
    if x + 2 * N <= n + 3 {
        let mut lo = Pack::<f64, N>::load(a, x - 1);
        while x + 2 * N <= n + 3 {
            let hi = Pack::<f64, N>::load(a, x - 1 + N);
            if COUNT {
                count::record(Op::VecLoad, 1);
            }
            let l = lo;
            let m = Pack::align_pair(lo, hi, 1);
            let r = Pack::align_pair(lo, hi, 2);
            if COUNT {
                // align by 1 and by 2 on 256-bit f64 lanes: one in-lane
                // (vshufpd-class) + one lane-crossing (vperm2f128-class).
                count::record(Op::InLane, 1);
                count::record(Op::CrossLane, 1);
                count::record_output(1);
            }
            c.apply_pack(l, m, r).store(b, x);
            if COUNT {
                count::record(Op::VecStore, 1);
            }
            lo = hi;
            x += N;
        }
    }
    for x in x..=n {
        b[x] = c.apply(a[x - 1], a[x], a[x + 1]);
    }
}

/// `steps` data-reorganization 1D3P Jacobi sweeps.
pub fn heat1d(g: &Grid1<f64>, c: Heat1dCoeffs, steps: usize) -> Grid1<f64> {
    assert_eq!(g.halo(), 1);
    let mut cur = g.clone();
    let mut next = g.clone();
    let n = g.n();
    for _ in 0..steps {
        step::<false>(cur.data(), next.data_mut(), n, &c);
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Counted variant of [`heat1d`] for the reorganization-budget ablation.
pub fn heat1d_counted(g: &Grid1<f64>, c: Heat1dCoeffs, steps: usize) -> Grid1<f64> {
    assert_eq!(g.halo(), 1);
    let mut cur = g.clone();
    let mut next = g.clone();
    let n = g.n();
    for _ in 0..steps {
        step::<true>(cur.data(), next.data_mut(), n, &c);
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_grid::{fill_random_1d, Boundary};
    use tempora_stencil::reference;

    #[test]
    fn matches_reference() {
        let c = Heat1dCoeffs::classic(0.25);
        for &n in &[3usize, 4, 7, 16, 41, 128] {
            for steps in [0usize, 1, 2, 9] {
                let mut g = Grid1::new(n, 1, Boundary::Dirichlet(1.0));
                fill_random_1d(&mut g, n as u64 + steps as u64, -1.0, 1.0);
                let ours = heat1d(&g, c, steps);
                let gold = reference::heat1d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "n={n} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn shuffle_budget_is_two_per_output_vector() {
        let c = Heat1dCoeffs::classic(0.25);
        let mut g = Grid1::new(4096, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 9, -1.0, 1.0);
        let session = tempora_simd::count::Session::start();
        let _ = heat1d_counted(&g, c, 4);
        let counts = session.finish();
        assert!(counts.output_vectors > 0);
        // 1 in-lane + 1 lane-crossing shuffle per output vector (paper
        // §3.5: "1 lane-crossing and 2 in-lane" counting the blend of the
        // store path; our variant stores directly).
        assert_eq!(counts.in_lane, counts.output_vectors);
        assert_eq!(counts.cross_lane, counts.output_vectors);
        // Exactly one new aligned load per output vector.
        assert_eq!(counts.vec_load, counts.output_vectors);
    }
}
