//! # tempora-baseline — spatial vectorization baselines
//!
//! The three pre-existing solutions to the data alignment conflict that
//! the paper compares against (§2.2), implemented from scratch:
//!
//! * [`multiload`] — overlapping unaligned loads (Algorithm 2); the code
//!   shape auto-vectorizing compilers emit, used as the paper's "auto"
//!   measurement curves, for all five Jacobi benchmarks;
//! * [`reorg`] — aligned loads + inter-register shuffles;
//! * [`dlt`] — Dimension-Lifting Transpose (Henretty CC'11).
//!
//! None of these applies to Gauss-Seidel stencils — that is the gap the
//! temporal scheme (in `tempora-core`) fills.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dlt;
pub mod multiload;
pub mod reorg;
