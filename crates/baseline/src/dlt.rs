//! Dimension-Lifting Transpose (DLT) vectorization (paper §2.2;
//! Henretty et al., CC'11).
//!
//! DLT sidesteps the data alignment conflict by *changing the layout*: the
//! interior of length `n = vl·m` is viewed as a `vl × m` matrix (row `k` =
//! elements `k·m .. (k+1)·m`) and transposed, so lane `k` of transformed
//! vector `T(c)` holds `a[k·m + c]`. Spatial neighbours `x ± 1` are then
//! the *whole vectors* `T(c ∓∓ … )` — `T(c-1)` and `T(c+1)` — with no data
//! sharing: the bulk of the sweep runs on full aligned vectors with zero
//! shuffles. Only the two boundary columns need lane shifts
//! ([`Pack::shift_up_insert`] / [`Pack::shift_down_insert`]), and the
//! transpose itself must be paid on entry and exit.
//!
//! The known drawbacks the paper exploits (§2.2, §3.1): the transpose
//! costs `O(n)` each way and must be amortized over many time steps, an
//! extra array is needed, blocking loses a factor `vl` of reuse because
//! the `vl` rows are independent stencils, and DLT cannot express
//! Gauss-Seidel updates at all. This implementation requires `vl | n` and
//! `m ≥ 2`; other sizes fall back to the multi-load scheme (documented
//! substitution — the fix-up machinery of the original paper adds nothing
//! to the measured trends).

use crate::multiload;
use tempora_grid::Grid1;
use tempora_simd::Pack;
use tempora_stencil::Heat1dCoeffs;

const N: usize = 4;

/// True when the DLT fast path applies to interior length `n`.
pub fn dlt_applicable(n: usize) -> bool {
    n % N == 0 && n / N >= 2
}

/// Transpose the interior into DLT layout: `t[c*N + k] = a[1 + k*m + c]`.
fn transpose_in(a: &[f64], t: &mut [f64], m: usize) {
    for c in 0..m {
        for k in 0..N {
            t[c * N + k] = a[1 + k * m + c];
        }
    }
}

/// Transpose back from DLT layout into the interior.
fn transpose_out(t: &[f64], a: &mut [f64], m: usize) {
    for c in 0..m {
        for k in 0..N {
            a[1 + k * m + c] = t[c * N + k];
        }
    }
}

/// One DLT-layout Jacobi step: `dst(c) = S(T(c-1), T(c), T(c+1))` with the
/// two boundary columns assembled by lane shifts against the halo values.
#[inline]
fn step(t: &[f64], dst: &mut [f64], m: usize, c: &Heat1dCoeffs, halo_l: f64, halo_r: f64) {
    let col = |i: usize| Pack::<f64, N>::load(t, i * N);
    // Column 0: left neighbour lane k is a[k·m - 1] = lane k-1 of T(m-1),
    // with the true left halo entering lane 0.
    {
        let left = col(m - 1).shift_up_insert(halo_l);
        let mid = col(0);
        let right = col(1);
        c.apply_pack(left, mid, right).store(dst, 0);
    }
    // Bulk: full vectors, no shuffles at all.
    for i in 1..m - 1 {
        let out = c.apply_pack(col(i - 1), col(i), col(i + 1));
        out.store(dst, i * N);
    }
    // Column m-1: right neighbour lane k is a[k·m + m] = lane k+1 of T(0),
    // with the true right halo entering lane N-1.
    {
        let left = col(m - 2);
        let mid = col(m - 1);
        let right = col(0).shift_down_insert(halo_r);
        c.apply_pack(left, mid, right).store(dst, (m - 1) * N);
    }
}

/// `steps` DLT-vectorized 1D3P Jacobi sweeps: transpose in, sweep in the
/// lifted layout, transpose out. Falls back to multi-load when
/// [`dlt_applicable`] is false.
pub fn heat1d(g: &Grid1<f64>, c: Heat1dCoeffs, steps: usize) -> Grid1<f64> {
    assert_eq!(g.halo(), 1);
    let n = g.n();
    if !dlt_applicable(n) {
        return multiload::heat1d(g, c, steps);
    }
    if steps == 0 {
        return g.clone();
    }
    let m = n / N;
    let mut out = g.clone();
    let halo_l = g.get(0);
    let halo_r = g.get(n + 1);

    let mut t0 = vec![0.0f64; n];
    let mut t1 = vec![0.0f64; n];
    transpose_in(g.data(), &mut t0, m);
    for _ in 0..steps {
        step(&t0, &mut t1, m, &c, halo_l, halo_r);
        core::mem::swap(&mut t0, &mut t1);
    }
    transpose_out(&t0, out.data_mut(), m);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_grid::{fill_random_1d, Boundary};
    use tempora_stencil::reference;

    #[test]
    fn transpose_round_trip() {
        let mut g = Grid1::new(24, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 1, -1.0, 1.0);
        let mut t = vec![0.0; 24];
        let mut back = g.clone();
        transpose_in(g.data(), &mut t, 6);
        transpose_out(&t, back.data_mut(), 6);
        assert!(back.interior_eq(&g));
    }

    #[test]
    fn matches_reference_divisible_sizes() {
        let c = Heat1dCoeffs::classic(0.25);
        for &n in &[8usize, 16, 24, 100, 256] {
            for steps in [1usize, 2, 5, 12] {
                let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.7));
                fill_random_1d(&mut g, (n + steps) as u64, -1.0, 1.0);
                let ours = heat1d(&g, c, steps);
                let gold = reference::heat1d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "n={n} steps={steps} {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn falls_back_on_awkward_sizes() {
        let c = Heat1dCoeffs::classic(0.2);
        for &n in &[3usize, 5, 7, 13] {
            let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.0));
            fill_random_1d(&mut g, 2, -1.0, 1.0);
            let ours = heat1d(&g, c, 3);
            let gold = reference::heat1d(&g, c, 3);
            assert!(ours.interior_eq(&gold), "n={n}");
        }
    }

    #[test]
    fn nonzero_halo_values_enter_boundary_columns() {
        let c = Heat1dCoeffs::classic(0.25);
        let mut g = Grid1::new(16, 1, Boundary::Dirichlet(5.0));
        fill_random_1d(&mut g, 4, -1.0, 1.0);
        let ours = heat1d(&g, c, 4);
        let gold = reference::heat1d(&g, c, 4);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }
}
