//! Multi-load spatial vectorization (paper §2.2, Algorithm 2).
//!
//! This is the code shape production compilers (the paper's ICC "auto"
//! baseline) emit for stencil loops: the innermost unit-stride loop is
//! vectorized by loading **every** needed neighbour vector straight from
//! memory. Because adjacent stencil applications share inputs, the loads
//! overlap — the *data alignment conflict*: for a `(2r+1)`-point stencil
//! each element is loaded `2r+1` times and at most one of the loads per
//! iteration is aligned.
//!
//! All kernels here are double-buffered Jacobi sweeps, bit-identical to
//! the scalar references (same fused operation trees). Gauss-Seidel has
//! no multi-load form — spatial vectorization of GS loops is illegal
//! (paper §1), which is exactly why the temporal scheme matters.

use tempora_grid::{Grid1, Grid2, Grid3};
use tempora_simd::Pack;
use tempora_stencil::{Box2dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs, LifeRule};

/// Vector width used by the f64 baselines (the paper's AVX `vl = 4`).
pub const VL_F64: usize = 4;
/// Vector width used by the integer (Life) baseline.
pub const VL_I32: usize = 8;

/// One multi-load 1D3P Jacobi step: `b = S(a)`.
#[inline]
fn heat1d_step(a: &[f64], b: &mut [f64], n: usize, c: &Heat1dCoeffs) {
    const N: usize = VL_F64;
    let mut x = 1;
    // Overlapping unaligned loads at x-1, x, x+1 (Algorithm 2 lines 3-5).
    while x + N <= n + 1 {
        let l = Pack::<f64, N>::load(a, x - 1);
        let m = Pack::<f64, N>::load(a, x);
        let r = Pack::<f64, N>::load(a, x + 1);
        c.apply_pack(l, m, r).store(b, x);
        x += N;
    }
    for x in x..=n {
        b[x] = c.apply(a[x - 1], a[x], a[x + 1]);
    }
}

/// `steps` multi-load 1D3P Jacobi sweeps.
pub fn heat1d(g: &Grid1<f64>, c: Heat1dCoeffs, steps: usize) -> Grid1<f64> {
    assert_eq!(g.halo(), 1);
    let mut cur = g.clone();
    let mut next = g.clone();
    let n = g.n();
    for _ in 0..steps {
        heat1d_step(cur.data(), next.data_mut(), n, &c);
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// `steps` multi-load 2D5P Jacobi sweeps (vectorized along `y`).
pub fn heat2d(g: &Grid2<f64>, c: Heat2dCoeffs, steps: usize) -> Grid2<f64> {
    assert_eq!(g.halo(), 1);
    const N: usize = VL_F64;
    let mut cur = g.clone();
    let mut next = g.clone();
    let (nx, ny, p) = (g.nx(), g.ny(), g.pitch());
    for _ in 0..steps {
        let a = cur.data();
        let b = next.data_mut();
        for x in 1..=nx {
            let r = x * p;
            let mut y = 1;
            while y + N <= ny + 1 {
                let up = Pack::<f64, N>::load(a, r - p + y);
                let w = Pack::<f64, N>::load(a, r + y - 1);
                let m = Pack::<f64, N>::load(a, r + y);
                let e = Pack::<f64, N>::load(a, r + y + 1);
                let dn = Pack::<f64, N>::load(a, r + p + y);
                c.apply_pack(up, w, m, e, dn).store(b, r + y);
                y += N;
            }
            for y in y..=ny {
                b[r + y] = c.apply(
                    a[r - p + y],
                    a[r + y - 1],
                    a[r + y],
                    a[r + y + 1],
                    a[r + p + y],
                );
            }
        }
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// `steps` multi-load 3D7P Jacobi sweeps (vectorized along `z`).
pub fn heat3d(g: &Grid3<f64>, c: Heat3dCoeffs, steps: usize) -> Grid3<f64> {
    assert_eq!(g.halo(), 1);
    const N: usize = VL_F64;
    let mut cur = g.clone();
    let mut next = g.clone();
    let (nx, ny, nz) = (g.nx(), g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    for _ in 0..steps {
        let a = cur.data();
        let b = next.data_mut();
        for x in 1..=nx {
            for y in 1..=ny {
                let r = x * pl + y * p;
                let mut z = 1;
                while z + N <= nz + 1 {
                    let xm = Pack::<f64, N>::load(a, r - pl + z);
                    let ym = Pack::<f64, N>::load(a, r - p + z);
                    let zm = Pack::<f64, N>::load(a, r + z - 1);
                    let m = Pack::<f64, N>::load(a, r + z);
                    let zp = Pack::<f64, N>::load(a, r + z + 1);
                    let yp = Pack::<f64, N>::load(a, r + p + z);
                    let xp = Pack::<f64, N>::load(a, r + pl + z);
                    c.apply_pack(xm, ym, zm, m, zp, yp, xp).store(b, r + z);
                    z += N;
                }
                for z in z..=nz {
                    b[r + z] = c.apply(
                        a[r - pl + z],
                        a[r - p + z],
                        a[r + z - 1],
                        a[r + z],
                        a[r + z + 1],
                        a[r + p + z],
                        a[r + pl + z],
                    );
                }
            }
        }
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// `steps` multi-load 2D9P box sweeps (vectorized along `y`; the paper
/// notes the box shape suffers alignment conflicts in *both* dimensions).
pub fn box2d(g: &Grid2<f64>, c: Box2dCoeffs, steps: usize) -> Grid2<f64> {
    assert_eq!(g.halo(), 1);
    const N: usize = VL_F64;
    let mut cur = g.clone();
    let mut next = g.clone();
    let (nx, ny, p) = (g.nx(), g.ny(), g.pitch());
    for _ in 0..steps {
        let a = cur.data();
        let b = next.data_mut();
        for x in 1..=nx {
            let r = x * p;
            let mut y = 1;
            let rows = [r - p, r, r + p];
            while y + N <= ny + 1 {
                let v: [[Pack<f64, N>; 3]; 3] = core::array::from_fn(|di| {
                    core::array::from_fn(|dj| Pack::load(a, rows[di] + y + dj - 1))
                });
                c.apply_pack(v).store(b, r + y);
                y += N;
            }
            for y in y..=ny {
                let v = [
                    [a[r - p + y - 1], a[r - p + y], a[r - p + y + 1]],
                    [a[r + y - 1], a[r + y], a[r + y + 1]],
                    [a[r + p + y - 1], a[r + p + y], a[r + p + y + 1]],
                ];
                b[r + y] = c.apply(v);
            }
        }
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// `steps` multi-load Life generations (integer 2D9P, 8 lanes).
pub fn life(g: &Grid2<i32>, rule: LifeRule, steps: usize) -> Grid2<i32> {
    assert_eq!(g.halo(), 1);
    const N: usize = VL_I32;
    let mut cur = g.clone();
    let mut next = g.clone();
    let (nx, ny, p) = (g.nx(), g.ny(), g.pitch());
    for _ in 0..steps {
        let a = cur.data();
        let b = next.data_mut();
        for x in 1..=nx {
            let r = x * p;
            let mut y = 1;
            while y + N <= ny + 1 {
                let row = |off: usize, d: usize| Pack::<i32, N>::load(a, off + y + d - 1);
                let v = [
                    [row(r - p, 0), row(r - p, 1), row(r - p, 2)],
                    [row(r, 0), row(r, 1), row(r, 2)],
                    [row(r + p, 0), row(r + p, 1), row(r + p, 2)],
                ];
                rule.apply_neighborhood_pack(v).store(b, r + y);
                y += N;
            }
            for y in y..=ny {
                let v = [
                    [a[r - p + y - 1], a[r - p + y], a[r - p + y + 1]],
                    [a[r + y - 1], a[r + y], a[r + y + 1]],
                    [a[r + p + y - 1], a[r + p + y], a[r + p + y + 1]],
                ];
                b[r + y] = rule.apply_neighborhood(v);
            }
        }
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_grid::{
        fill_random_1d, fill_random_2d, fill_random_3d, fill_random_life, Boundary,
    };
    use tempora_stencil::reference;

    #[test]
    fn heat1d_matches_reference() {
        let c = Heat1dCoeffs::classic(0.25);
        for &n in &[4usize, 5, 16, 33, 100] {
            for steps in [0usize, 1, 3, 8] {
                let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.3));
                fill_random_1d(&mut g, n as u64, -1.0, 1.0);
                let ours = heat1d(&g, c, steps);
                let gold = reference::heat1d(&g, c, steps);
                assert!(ours.interior_eq(&gold), "n={n} steps={steps}");
            }
        }
    }

    #[test]
    fn heat2d_matches_reference() {
        let c = Heat2dCoeffs::classic(0.12);
        for &(nx, ny) in &[(5usize, 4usize), (8, 9), (16, 21)] {
            let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(-0.5));
            fill_random_2d(&mut g, 17, -1.0, 1.0);
            let ours = heat2d(&g, c, 5);
            let gold = reference::heat2d(&g, c, 5);
            assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
        }
    }

    #[test]
    fn heat3d_matches_reference() {
        let c = Heat3dCoeffs::classic(0.1);
        let mut g = Grid3::new(6, 7, 9, 1, Boundary::Dirichlet(0.0));
        fill_random_3d(&mut g, 5, -1.0, 1.0);
        let ours = heat3d(&g, c, 4);
        let gold = reference::heat3d(&g, c, 4);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }

    #[test]
    fn box2d_matches_reference() {
        let c = Box2dCoeffs::smooth(0.09);
        let mut g = Grid2::new(12, 13, 1, Boundary::Dirichlet(0.25));
        fill_random_2d(&mut g, 23, -1.0, 1.0);
        let ours = box2d(&g, c, 6);
        let gold = reference::box2d(&g, c, 6);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }

    #[test]
    fn life_matches_reference() {
        let rule = LifeRule::b2s23();
        let mut g = Grid2::new(20, 24, 1, Boundary::Dirichlet(0));
        fill_random_life(&mut g, 3, 0.4);
        let ours = life(&g, rule, 10);
        let gold = reference::life(&g, rule, 10);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }
}
