//! Scalar reference sweeps — the correctness oracles of the workspace.
//!
//! Every optimized scheme (spatial baselines, temporal engines, tiled and
//! parallel executions) is required to reproduce these results **exactly**
//! (bit-for-bit: all kernels share the same per-point fused operation
//! trees, so no tolerance is needed). The reference code is deliberately
//! the naive `d+1`-deep loop nest of the paper's Algorithm 1.
//!
//! These functions double as the paper's "scalar" measurement curves; see
//! `tempora-bench` for the caveat about LLVM auto-vectorizing them.

use crate::gs::{Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs};
use crate::heat::{Box2dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs};
use crate::lcs::lcs_update;
use crate::life::LifeRule;
use tempora_grid::{Grid1, Grid2, Grid3};

/// `steps` Jacobi sweeps of the 1D3P heat stencil (Algorithm 1).
pub fn heat1d(g: &Grid1<f64>, c: Heat1dCoeffs, steps: usize) -> Grid1<f64> {
    assert!(g.halo() >= 1);
    let mut cur = g.clone();
    let mut next = g.clone();
    let (h, n) = (g.halo(), g.n());
    for _ in 0..steps {
        let a = cur.data();
        let b = next.data_mut();
        for x in h..h + n {
            b[x] = c.apply(a[x - 1], a[x], a[x + 1]);
        }
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// `steps` Jacobi sweeps of the 2D5P heat stencil.
pub fn heat2d(g: &Grid2<f64>, c: Heat2dCoeffs, steps: usize) -> Grid2<f64> {
    assert!(g.halo() >= 1);
    let mut cur = g.clone();
    let mut next = g.clone();
    let (h, nx, ny, p) = (g.halo(), g.nx(), g.ny(), g.pitch());
    for _ in 0..steps {
        let a = cur.data();
        let b = next.data_mut();
        for x in h..h + nx {
            let r = x * p;
            for y in h..h + ny {
                b[r + y] = c.apply(
                    a[r - p + y],
                    a[r + y - 1],
                    a[r + y],
                    a[r + y + 1],
                    a[r + p + y],
                );
            }
        }
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// `steps` Jacobi sweeps of the 3D7P heat stencil.
pub fn heat3d(g: &Grid3<f64>, c: Heat3dCoeffs, steps: usize) -> Grid3<f64> {
    assert!(g.halo() >= 1);
    let mut cur = g.clone();
    let mut next = g.clone();
    let (h, nx, ny, nz) = (g.halo(), g.nx(), g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    for _ in 0..steps {
        let a = cur.data();
        let b = next.data_mut();
        for x in h..h + nx {
            for y in h..h + ny {
                let r = x * pl + y * p;
                for z in h..h + nz {
                    b[r + z] = c.apply(
                        a[r - pl + z],
                        a[r - p + z],
                        a[r + z - 1],
                        a[r + z],
                        a[r + z + 1],
                        a[r + p + z],
                        a[r + pl + z],
                    );
                }
            }
        }
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// `steps` Jacobi sweeps of the 2D9P box stencil.
pub fn box2d(g: &Grid2<f64>, c: Box2dCoeffs, steps: usize) -> Grid2<f64> {
    assert!(g.halo() >= 1);
    let mut cur = g.clone();
    let mut next = g.clone();
    let (h, nx, ny, p) = (g.halo(), g.nx(), g.ny(), g.pitch());
    for _ in 0..steps {
        let a = cur.data();
        let b = next.data_mut();
        for x in h..h + nx {
            let r = x * p;
            for y in h..h + ny {
                let v = [
                    [a[r - p + y - 1], a[r - p + y], a[r - p + y + 1]],
                    [a[r + y - 1], a[r + y], a[r + y + 1]],
                    [a[r + p + y - 1], a[r + p + y], a[r + p + y + 1]],
                ];
                b[r + y] = c.apply(v);
            }
        }
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// `steps` generations of the Game of Life (integer 2D9P box stencil).
pub fn life(g: &Grid2<i32>, rule: LifeRule, steps: usize) -> Grid2<i32> {
    assert!(g.halo() >= 1);
    let mut cur = g.clone();
    let mut next = g.clone();
    let (h, nx, ny, p) = (g.halo(), g.nx(), g.ny(), g.pitch());
    for _ in 0..steps {
        let a = cur.data();
        let b = next.data_mut();
        for x in h..h + nx {
            let r = x * p;
            for y in h..h + ny {
                let v = [
                    [a[r - p + y - 1], a[r - p + y], a[r - p + y + 1]],
                    [a[r + y - 1], a[r + y], a[r + y + 1]],
                    [a[r + p + y - 1], a[r + p + y], a[r + p + y + 1]],
                ];
                b[r + y] = rule.apply_neighborhood(v);
            }
        }
        core::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// `steps` in-place Gauss-Seidel sweeps of the 1D3P stencil
/// (ascending `x`; `a[x-1]` is the newest value).
pub fn gs1d(g: &Grid1<f64>, c: Gs1dCoeffs, steps: usize) -> Grid1<f64> {
    assert!(g.halo() >= 1);
    let mut cur = g.clone();
    let (h, n) = (g.halo(), g.n());
    for _ in 0..steps {
        let a = cur.data_mut();
        for x in h..h + n {
            a[x] = c.apply(a[x - 1], a[x], a[x + 1]);
        }
    }
    cur
}

/// `steps` in-place Gauss-Seidel sweeps of the 2D5P stencil
/// (ascending `x` then `y`; north and west operands newest).
pub fn gs2d(g: &Grid2<f64>, c: Gs2dCoeffs, steps: usize) -> Grid2<f64> {
    assert!(g.halo() >= 1);
    let mut cur = g.clone();
    let (h, nx, ny, p) = (g.halo(), g.nx(), g.ny(), g.pitch());
    for _ in 0..steps {
        let a = cur.data_mut();
        for x in h..h + nx {
            let r = x * p;
            for y in h..h + ny {
                a[r + y] = c.apply(
                    a[r - p + y],
                    a[r + y - 1],
                    a[r + y],
                    a[r + y + 1],
                    a[r + p + y],
                );
            }
        }
    }
    cur
}

/// `steps` in-place Gauss-Seidel sweeps of the 3D7P stencil.
pub fn gs3d(g: &Grid3<f64>, c: Gs3dCoeffs, steps: usize) -> Grid3<f64> {
    assert!(g.halo() >= 1);
    let mut cur = g.clone();
    let (h, nx, ny, nz) = (g.halo(), g.nx(), g.ny(), g.nz());
    let (p, pl) = (g.pitch(), g.plane());
    for _ in 0..steps {
        let a = cur.data_mut();
        for x in h..h + nx {
            for y in h..h + ny {
                let r = x * pl + y * p;
                for z in h..h + nz {
                    a[r + z] = c.apply(
                        a[r - pl + z],
                        a[r - p + z],
                        a[r + z - 1],
                        a[r + z],
                        a[r + z + 1],
                        a[r + p + z],
                        a[r + pl + z],
                    );
                }
            }
        }
    }
    cur
}

/// Full LCS dynamic-programming table, flattened row-major with shape
/// `(a.len()+1) × (b.len()+1)`; row/column 0 are zero.
///
/// Quadratic memory — intended for tests and small examples; use
/// [`lcs_len`] for large inputs.
pub fn lcs_table(a: &[u8], b: &[u8]) -> Vec<i32> {
    let (la, lb) = (a.len(), b.len());
    let w = lb + 1;
    let mut t = vec![0i32; (la + 1) * w];
    for x in 1..=la {
        for y in 1..=lb {
            t[x * w + y] = lcs_update(
                t[(x - 1) * w + y - 1],
                t[(x - 1) * w + y],
                t[x * w + y - 1],
                a[x - 1],
                b[y - 1],
            );
        }
    }
    t
}

/// The final DP row `lcs[a.len()][0..=b.len()]` with rolling-row storage —
/// the wavefront state the temporal LCS engine is tested against.
pub fn lcs_final_row(a: &[u8], b: &[u8]) -> Vec<i32> {
    let lb = b.len();
    let mut prev = vec![0i32; lb + 1];
    let mut cur = vec![0i32; lb + 1];
    for &ca in a {
        for y in 1..=lb {
            cur[y] = lcs_update(prev[y - 1], prev[y], cur[y - 1], ca, b[y - 1]);
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    prev
}

/// LCS length with rolling-row storage (O(min-side) memory after the
/// caller orients the inputs; here simply O(b.len())).
pub fn lcs_len(a: &[u8], b: &[u8]) -> i32 {
    let lb = b.len();
    let mut prev = vec![0i32; lb + 1];
    let mut cur = vec![0i32; lb + 1];
    for &ca in a {
        for y in 1..=lb {
            cur[y] = lcs_update(prev[y - 1], prev[y], cur[y - 1], ca, b[y - 1]);
        }
        core::mem::swap(&mut prev, &mut cur);
    }
    prev[lb]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_grid::{fill_random_1d, fill_random_2d, Boundary};

    #[test]
    fn heat1d_constant_field_is_fixed_point() {
        let mut g = Grid1::new(32, 1, Boundary::Dirichlet(2.0));
        g.fill_interior(|_| 2.0);
        let r = heat1d(&g, Heat1dCoeffs::classic(0.25), 10);
        assert!(r.interior().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn heat1d_impulse_two_steps_by_hand() {
        // alpha = 0.25: one step spreads 1.0 at x=3 into [.25, .5, .25].
        let mut g = Grid1::new(7, 1, Boundary::Dirichlet(0.0));
        g.fill_interior(|i| if i == 2 { 1.0 } else { 0.0 }); // global x = 3
        let c = Heat1dCoeffs::classic(0.25);
        let r1 = heat1d(&g, c, 1);
        assert_eq!(r1.interior(), &[0.0, 0.25, 0.5, 0.25, 0.0, 0.0, 0.0]);
        let r2 = heat1d(&g, c, 2);
        // Second step by hand: conv of [.25,.5,.25] with itself.
        assert_eq!(
            r2.interior(),
            &[0.0625, 0.25, 0.375, 0.25, 0.0625, 0.0, 0.0]
        );
    }

    #[test]
    fn heat1d_zero_steps_is_identity() {
        let mut g = Grid1::new(16, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 1, -1.0, 1.0);
        assert!(heat1d(&g, Heat1dCoeffs::classic(0.2), 0).interior_eq(&g));
    }

    #[test]
    fn heat2d_impulse_symmetry() {
        let mut g = Grid2::new(9, 9, 1, Boundary::Dirichlet(0.0));
        g.fill_interior(|i, j| if (i, j) == (4, 4) { 1.0 } else { 0.0 });
        let r = heat2d(&g, Heat2dCoeffs::classic(0.125), 3);
        // 4-fold symmetry around the centre.
        for di in 0..4 {
            for dj in 0..4 {
                let v = r.get(5 + di, 5 + dj);
                assert_eq!(v, r.get(5 - di, 5 + dj));
                assert_eq!(v, r.get(5 + di, 5 - dj));
                assert_eq!(v, r.get(5 + dj, 5 + di));
            }
        }
    }

    #[test]
    fn heat3d_constant_fixed_point_within_eps() {
        let mut g = Grid3::new(6, 6, 6, 1, Boundary::Dirichlet(1.0));
        g.fill_interior(|_, _, _| 1.0);
        let r = heat3d(&g, Heat3dCoeffs::classic(1.0 / 6.0), 4);
        for v in 0..6 {
            assert!((r.get(1 + v, 3, 3) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn box2d_matches_heat2d_when_corners_zero() {
        // A 9P kernel with zero corner weights equals the 5P star kernel.
        let mut g = Grid2::new(12, 10, 1, Boundary::Dirichlet(0.5));
        fill_random_2d(&mut g, 3, -1.0, 1.0);
        let a = 0.15;
        let b9 = Box2dCoeffs::new([[0.0, a, 0.0], [a, 1.0 - 4.0 * a, a], [0.0, a, 0.0]]);
        let b5 = Heat2dCoeffs::classic(a);
        let r9 = box2d(&g, b9, 5);
        let r5 = heat2d(&g, b5, 5);
        // Same numbers, but the op-tree order differs -> allow tiny eps.
        assert!(r9.max_abs_diff(&r5) < 1e-12);
    }

    #[test]
    fn life_blinker_oscillates() {
        // Vertical blinker at the centre of a 5x5 board (Conway rule).
        let mut g = Grid2::new(5, 5, 1, Boundary::Dirichlet(0));
        for d in 0..3 {
            g.set(2 + d, 3, 1);
        }
        let r1 = life(&g, LifeRule::conway(), 1);
        // Becomes horizontal.
        assert_eq!(r1.get(3, 2), 1);
        assert_eq!(r1.get(3, 3), 1);
        assert_eq!(r1.get(3, 4), 1);
        assert_eq!(r1.get(2, 3), 0);
        let r2 = life(&g, LifeRule::conway(), 2);
        assert!(r2.interior_eq(&g), "period-2 oscillator");
    }

    #[test]
    fn gs1d_first_sweep_by_hand() {
        let mut g = Grid1::new(3, 1, Boundary::Dirichlet(0.0));
        g.fill_interior(|i| (i + 1) as f64); // [1, 2, 3]
        let c = Gs1dCoeffs::new(0.5, 0.25, 0.25);
        let r = gs1d(&g, c, 1);
        // x=1: .5*0 + .25*1 + .25*2 = 0.75
        // x=2: .5*0.75 + .25*2 + .25*3 = 1.625
        // x=3: .5*1.625 + .25*3 + .25*0 = 1.5625
        assert_eq!(r.interior(), &[0.75, 1.625, 1.5625]);
    }

    #[test]
    fn gs2d_constant_fixed_point() {
        let mut g = Grid2::new(8, 8, 1, Boundary::Dirichlet(3.0));
        g.fill_interior(|_, _| 3.0);
        let r = gs2d(&g, Gs2dCoeffs::classic(0.25), 5);
        for i in 0..8 {
            for j in 0..8 {
                assert!((r.get(1 + i, 1 + j) - 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gs3d_smoke_and_gs_ordering_matters() {
        let mut g = Grid3::new(4, 4, 4, 1, Boundary::Dirichlet(0.0));
        g.fill_interior(|i, j, k| (i + j + k) as f64);
        let r = gs3d(&g, Gs3dCoeffs::classic(0.1), 2);
        // Gauss-Seidel is order dependent: result differs from Jacobi.
        let rj = heat3d(&g, Heat3dCoeffs::classic(0.1), 2);
        assert!(r.max_abs_diff(&rj) > 1e-6);
    }

    #[test]
    fn lcs_known_answers() {
        assert_eq!(lcs_len(b"ABCBDAB", b"BDCABA"), 4); // classic: BCBA/BDAB
        assert_eq!(lcs_len(b"", b"ABC"), 0);
        assert_eq!(lcs_len(b"ABC", b"ABC"), 3);
        assert_eq!(lcs_len(b"ABC", b"CBA"), 1);
        let t = lcs_table(b"AGCAT", b"GAC");
        assert_eq!(t[(5) * 4 + 3], 2);
    }

    #[test]
    fn lcs_table_and_len_agree() {
        let a = b"GATTACA-GATTACA";
        let b = b"TACGATTA";
        let t = lcs_table(a, b);
        assert_eq!(t[a.len() * (b.len() + 1) + b.len()], lcs_len(a, b));
    }
}
