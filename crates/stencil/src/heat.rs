//! Jacobi heat-equation stencils: 1D3P, 2D5P and 3D7P (star shaped).
//!
//! These are the paper's Heat-1D/2D/3D benchmarks (Table 1). Each
//! coefficient set provides a *scalar* point update and a *pack* update
//! with the identical operation tree — both bottom out in the same IEEE
//! fused multiply-adds, so every vectorized scheme in the workspace can be
//! compared bit-for-bit against the scalar reference.

use crate::deps::{Dep, DepSet};
use tempora_simd::Pack;

/// Coefficients of the 1D 3-point Jacobi stencil
/// `a'[x] = w·a[x-1] + c·a[x] + e·a[x+1]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Heat1dCoeffs {
    /// Weight of the west (left) neighbour.
    pub w: f64,
    /// Weight of the centre point.
    pub c: f64,
    /// Weight of the east (right) neighbour.
    pub e: f64,
}

impl Heat1dCoeffs {
    /// Arbitrary coefficients.
    pub const fn new(w: f64, c: f64, e: f64) -> Self {
        Heat1dCoeffs { w, c, e }
    }

    /// The classic explicit heat discretization
    /// `a' = α·a[x-1] + (1-2α)·a[x] + α·a[x+1]`, stable for `α ≤ 1/2`.
    pub const fn classic(alpha: f64) -> Self {
        Heat1dCoeffs {
            w: alpha,
            c: 1.0 - 2.0 * alpha,
            e: alpha,
        }
    }

    /// Dependence set projected on `(t, x)`.
    pub fn deps() -> DepSet {
        DepSet::new(
            "heat1d",
            vec![Dep::new(1, -1), Dep::new(1, 0), Dep::new(1, 1)],
        )
    }

    /// Scalar point update.
    #[inline(always)]
    pub fn apply(&self, l: f64, m: f64, r: f64) -> f64 {
        l.mul_add(self.w, m.mul_add(self.c, r * self.e))
    }

    /// Pack update — the identical operation tree, lane-wise.
    #[inline(always)]
    pub fn apply_pack<const N: usize>(
        &self,
        l: Pack<f64, N>,
        m: Pack<f64, N>,
        r: Pack<f64, N>,
    ) -> Pack<f64, N> {
        l.mul_add(
            Pack::splat(self.w),
            m.mul_add(Pack::splat(self.c), r * Pack::splat(self.e)),
        )
    }
}

/// Coefficients of the 2D 5-point star Jacobi stencil. The outer (slow)
/// dimension is `x`, the unit-stride dimension is `y`:
/// `a'[x][y] = cn·a[x-1][y] + cw·a[x][y-1] + cc·a[x][y] + ce·a[x][y+1] + cs·a[x+1][y]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Heat2dCoeffs {
    /// Weight of `a[x-1][y]` (north, previous outer row).
    pub cn: f64,
    /// Weight of `a[x][y-1]` (west).
    pub cw: f64,
    /// Weight of the centre point.
    pub cc: f64,
    /// Weight of `a[x][y+1]` (east).
    pub ce: f64,
    /// Weight of `a[x+1][y]` (south, next outer row).
    pub cs: f64,
}

impl Heat2dCoeffs {
    /// Arbitrary coefficients.
    pub const fn new(cn: f64, cw: f64, cc: f64, ce: f64, cs: f64) -> Self {
        Heat2dCoeffs { cn, cw, cc, ce, cs }
    }

    /// Classic 2-D explicit heat discretization, stable for `α ≤ 1/4`.
    pub const fn classic(alpha: f64) -> Self {
        Heat2dCoeffs {
            cn: alpha,
            cw: alpha,
            cc: 1.0 - 4.0 * alpha,
            ce: alpha,
            cs: alpha,
        }
    }

    /// Dependence set projected on `(t, x_outer)`.
    pub fn deps() -> DepSet {
        DepSet::new(
            "heat2d",
            vec![
                Dep::new(1, -1),
                Dep::new(1, 0), // also covers the y-direction neighbours
                Dep::new(1, 1),
            ],
        )
    }

    /// Scalar point update (`n` = north `x-1`, `w` = west `y-1`, …).
    #[inline(always)]
    pub fn apply(&self, n: f64, w: f64, m: f64, e: f64, s: f64) -> f64 {
        n.mul_add(
            self.cn,
            w.mul_add(self.cw, m.mul_add(self.cc, e.mul_add(self.ce, s * self.cs))),
        )
    }

    /// Pack update — identical operation tree, lane-wise.
    #[inline(always)]
    pub fn apply_pack<const N: usize>(
        &self,
        n: Pack<f64, N>,
        w: Pack<f64, N>,
        m: Pack<f64, N>,
        e: Pack<f64, N>,
        s: Pack<f64, N>,
    ) -> Pack<f64, N> {
        n.mul_add(
            Pack::splat(self.cn),
            w.mul_add(
                Pack::splat(self.cw),
                m.mul_add(
                    Pack::splat(self.cc),
                    e.mul_add(Pack::splat(self.ce), s * Pack::splat(self.cs)),
                ),
            ),
        )
    }
}

/// Coefficients of the 3D 7-point star Jacobi stencil. Dimensions ordered
/// `x` (outer/slow), `y`, `z` (unit stride):
/// `a' = cxm·a[x-1][y][z] + cym·a[x][y-1][z] + czm·a[x][y][z-1] + cc·a
///      + czp·a[x][y][z+1] + cyp·a[x][y+1][z] + cxp·a[x+1][y][z]`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Heat3dCoeffs {
    /// Weight of `a[x-1][y][z]`.
    pub cxm: f64,
    /// Weight of `a[x][y-1][z]`.
    pub cym: f64,
    /// Weight of `a[x][y][z-1]`.
    pub czm: f64,
    /// Weight of the centre point.
    pub cc: f64,
    /// Weight of `a[x][y][z+1]`.
    pub czp: f64,
    /// Weight of `a[x][y+1][z]`.
    pub cyp: f64,
    /// Weight of `a[x+1][y][z]`.
    pub cxp: f64,
}

impl Heat3dCoeffs {
    /// Arbitrary coefficients.
    // Justification: seven coefficients are the 3-D stencil star itself, in sweep order; a struct literal at call sites would be noisier.
    #[allow(clippy::too_many_arguments)]
    pub const fn new(cxm: f64, cym: f64, czm: f64, cc: f64, czp: f64, cyp: f64, cxp: f64) -> Self {
        Heat3dCoeffs {
            cxm,
            cym,
            czm,
            cc,
            czp,
            cyp,
            cxp,
        }
    }

    /// Classic 3-D explicit heat discretization, stable for `α ≤ 1/6`.
    pub const fn classic(alpha: f64) -> Self {
        Heat3dCoeffs {
            cxm: alpha,
            cym: alpha,
            czm: alpha,
            cc: 1.0 - 6.0 * alpha,
            czp: alpha,
            cyp: alpha,
            cxp: alpha,
        }
    }

    /// Dependence set projected on `(t, x_outer)`.
    pub fn deps() -> DepSet {
        DepSet::new(
            "heat3d",
            vec![Dep::new(1, -1), Dep::new(1, 0), Dep::new(1, 1)],
        )
    }

    /// Scalar point update.
    // Justification: seven neighbors are the 3-D stencil star itself, in sweep order.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub fn apply(&self, xm: f64, ym: f64, zm: f64, m: f64, zp: f64, yp: f64, xp: f64) -> f64 {
        xm.mul_add(
            self.cxm,
            ym.mul_add(
                self.cym,
                zm.mul_add(
                    self.czm,
                    m.mul_add(
                        self.cc,
                        zp.mul_add(self.czp, yp.mul_add(self.cyp, xp * self.cxp)),
                    ),
                ),
            ),
        )
    }

    /// Pack update — identical operation tree, lane-wise.
    // Justification: seven neighbor packs are the 3-D stencil star itself, in sweep order.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub fn apply_pack<const N: usize>(
        &self,
        xm: Pack<f64, N>,
        ym: Pack<f64, N>,
        zm: Pack<f64, N>,
        m: Pack<f64, N>,
        zp: Pack<f64, N>,
        yp: Pack<f64, N>,
        xp: Pack<f64, N>,
    ) -> Pack<f64, N> {
        xm.mul_add(
            Pack::splat(self.cxm),
            ym.mul_add(
                Pack::splat(self.cym),
                zm.mul_add(
                    Pack::splat(self.czm),
                    m.mul_add(
                        Pack::splat(self.cc),
                        zp.mul_add(
                            Pack::splat(self.czp),
                            yp.mul_add(Pack::splat(self.cyp), xp * Pack::splat(self.cxp)),
                        ),
                    ),
                ),
            ),
        )
    }
}

/// Coefficients of the 2D 9-point **box** Jacobi stencil (the paper's 2D9P
/// benchmark): all eight neighbours plus the centre, weights indexed
/// `c[di+1][dj+1]` for offsets `di, dj ∈ {-1, 0, 1}` in `(x, y)`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Box2dCoeffs {
    /// Weights, `c[di+1][dj+1]` multiplying `a[x+di][y+dj]`.
    pub c: [[f64; 3]; 3],
}

impl Box2dCoeffs {
    /// Arbitrary coefficients.
    pub const fn new(c: [[f64; 3]; 3]) -> Self {
        Box2dCoeffs { c }
    }

    /// A smoothing box kernel: centre weight `1-8α`, neighbours `α` each.
    pub const fn smooth(alpha: f64) -> Self {
        let a = alpha;
        Box2dCoeffs {
            c: [[a, a, a], [a, 1.0 - 8.0 * a, a], [a, a, a]],
        }
    }

    /// Dependence set projected on `(t, x_outer)`.
    pub fn deps() -> DepSet {
        DepSet::new(
            "box2d9p",
            vec![Dep::new(1, -1), Dep::new(1, 0), Dep::new(1, 1)],
        )
    }

    /// Scalar point update over the 3×3 neighbourhood
    /// (`v[di+1][dj+1] = a[x+di][y+dj]`), evaluated in row-major order with
    /// a single fused chain.
    #[inline(always)]
    pub fn apply(&self, v: [[f64; 3]; 3]) -> f64 {
        let c = &self.c;
        v[0][0].mul_add(
            c[0][0],
            v[0][1].mul_add(
                c[0][1],
                v[0][2].mul_add(
                    c[0][2],
                    v[1][0].mul_add(
                        c[1][0],
                        v[1][1].mul_add(
                            c[1][1],
                            v[1][2].mul_add(
                                c[1][2],
                                v[2][0]
                                    .mul_add(c[2][0], v[2][1].mul_add(c[2][1], v[2][2] * c[2][2])),
                            ),
                        ),
                    ),
                ),
            ),
        )
    }

    /// Pack update — identical operation tree, lane-wise.
    #[inline(always)]
    pub fn apply_pack<const N: usize>(&self, v: [[Pack<f64, N>; 3]; 3]) -> Pack<f64, N> {
        let s = |x: f64| Pack::<f64, N>::splat(x);
        let c = &self.c;
        v[0][0].mul_add(
            s(c[0][0]),
            v[0][1].mul_add(
                s(c[0][1]),
                v[0][2].mul_add(
                    s(c[0][2]),
                    v[1][0].mul_add(
                        s(c[1][0]),
                        v[1][1].mul_add(
                            s(c[1][1]),
                            v[1][2].mul_add(
                                s(c[1][2]),
                                v[2][0].mul_add(
                                    s(c[2][0]),
                                    v[2][1].mul_add(s(c[2][1]), v[2][2] * s(c[2][2])),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_simd::F64x4;

    #[test]
    fn heat1d_scalar_pack_bitwise_equal() {
        let c = Heat1dCoeffs::classic(0.26);
        let l = Pack([0.1, -2.0, 3.5, 1e-8]);
        let m = Pack([0.7, 0.2, -1.5, 2e8]);
        let r = Pack([-0.3, 9.1, 0.0, 3.25]);
        let p = c.apply_pack(l, m, r);
        for i in 0..4 {
            assert_eq!(
                p.extract(i),
                c.apply(l.extract(i), m.extract(i), r.extract(i))
            );
        }
    }

    #[test]
    fn heat1d_classic_preserves_constant_field() {
        let c = Heat1dCoeffs::classic(0.25);
        assert_eq!(c.apply(3.0, 3.0, 3.0), 3.0);
    }

    #[test]
    fn heat2d_scalar_pack_bitwise_equal() {
        let c = Heat2dCoeffs::new(0.11, 0.22, 0.1, 0.31, 0.26);
        let v: [F64x4; 5] =
            core::array::from_fn(|k| F64x4::from_fn(|i| (k * 4 + i) as f64 * 0.37 - 1.0));
        let p = c.apply_pack(v[0], v[1], v[2], v[3], v[4]);
        for i in 0..4 {
            assert_eq!(
                p.extract(i),
                c.apply(
                    v[0].extract(i),
                    v[1].extract(i),
                    v[2].extract(i),
                    v[3].extract(i),
                    v[4].extract(i)
                )
            );
        }
    }

    #[test]
    fn heat2d_classic_preserves_constant_field() {
        let c = Heat2dCoeffs::classic(0.125);
        assert!((c.apply(2.0, 2.0, 2.0, 2.0, 2.0) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn heat3d_scalar_pack_bitwise_equal() {
        let c = Heat3dCoeffs::classic(0.12);
        let v: [F64x4; 7] =
            core::array::from_fn(|k| F64x4::from_fn(|i| ((k + 1) * (i + 2)) as f64 * 0.19));
        let p = c.apply_pack(v[0], v[1], v[2], v[3], v[4], v[5], v[6]);
        for i in 0..4 {
            let s: Vec<f64> = v.iter().map(|q| q.extract(i)).collect();
            assert_eq!(
                p.extract(i),
                c.apply(s[0], s[1], s[2], s[3], s[4], s[5], s[6])
            );
        }
    }

    #[test]
    fn box2d_scalar_pack_bitwise_equal() {
        let c = Box2dCoeffs::new([[0.01, 0.02, 0.03], [0.04, 0.8, 0.05], [0.06, 0.07, 0.08]]);
        let v: [[F64x4; 3]; 3] = core::array::from_fn(|i| {
            core::array::from_fn(|j| F64x4::from_fn(|k| (i * 9 + j * 3 + k) as f64 * 0.13 - 0.5))
        });
        let p = c.apply_pack(v);
        for k in 0..4 {
            let s: [[f64; 3]; 3] =
                core::array::from_fn(|i| core::array::from_fn(|j| v[i][j].extract(k)));
            assert_eq!(p.extract(k), c.apply(s));
        }
    }

    #[test]
    fn box2d_smooth_preserves_constant_field() {
        let c = Box2dCoeffs::smooth(0.1);
        assert!((c.apply([[5.0; 3]; 3]) - 5.0).abs() < 1e-14);
    }

    #[test]
    fn min_strides() {
        assert_eq!(Heat1dCoeffs::deps().min_stride(), 2);
        assert_eq!(Heat2dCoeffs::deps().min_stride(), 2);
        assert_eq!(Heat3dCoeffs::deps().min_stride(), 2);
        assert_eq!(Box2dCoeffs::deps().min_stride(), 2);
        assert!(!Heat1dCoeffs::deps().is_gauss_seidel());
    }
}
