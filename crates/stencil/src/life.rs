//! Conway-style Game of Life as an integer 2D9P box stencil.
//!
//! The paper evaluates the Pluto benchmark variant **B2S23** (a cell is
//! *born* when it has exactly 2 live neighbours and *survives* with 2 or
//! 3); cells are stored as `i32` 0/1 "like other works to facilitate the
//! summation of values of 8 neighbors" (§3.4). The rule is kept fully
//! general (any B/S bitmask) so classic Conway B3S23 is available too.

use crate::deps::{Dep, DepSet};
use tempora_simd::Pack;

/// A Life rule given as birth/survival neighbour-count bitmasks
/// (bit `c` set ⇔ the transition applies at neighbour count `c`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LifeRule {
    /// Birth mask: dead cell becomes alive when bit `count` is set.
    pub birth: u16,
    /// Survival mask: live cell stays alive when bit `count` is set.
    pub survive: u16,
}

impl LifeRule {
    /// The paper's / Pluto's B2S23 variant.
    pub const fn b2s23() -> Self {
        LifeRule {
            birth: 1 << 2,
            survive: (1 << 2) | (1 << 3),
        }
    }

    /// Classic Conway B3S23.
    pub const fn conway() -> Self {
        LifeRule {
            birth: 1 << 3,
            survive: (1 << 2) | (1 << 3),
        }
    }

    /// Dependence set projected on `(t, x_outer)` — a box stencil, same
    /// projection as 2D9P.
    pub fn deps() -> DepSet {
        DepSet::new(
            "life",
            vec![Dep::new(1, -1), Dep::new(1, 0), Dep::new(1, 1)],
        )
    }

    /// Scalar transition: `cur ∈ {0,1}`, `sum` = number of live neighbours.
    #[inline(always)]
    pub fn apply(&self, cur: i32, sum: i32) -> i32 {
        debug_assert!((0..=8).contains(&sum), "neighbour sum out of range");
        let mask = if cur == 0 { self.birth } else { self.survive };
        ((mask >> sum) & 1) as i32
    }

    /// Pack transition with the identical semantics, implemented in pure
    /// branch-free integer arithmetic so it lowers to straight vector
    /// code regardless of how unpredictable the board is:
    ///
    /// * per relevant count `c`, `eq01 = 1 - min(1, (sum-c)²)` is the 0/1
    ///   indicator of `sum == c` (counts are in `0..=8`, so the square
    ///   never overflows and is 0 exactly on equality);
    /// * indicators of distinct counts are disjoint, so the rule masks
    ///   reduce to *sums* of indicators;
    /// * cells are 0/1 by the Life invariant, so the final blend is
    ///   `(1-cur)·born + cur·surv`.
    #[inline(always)]
    pub fn apply_pack<const N: usize>(&self, cur: Pack<i32, N>, sum: Pack<i32, N>) -> Pack<i32, N> {
        debug_assert!((0..N).all(|i| cur.extract(i) == 0 || cur.extract(i) == 1));
        // The applicable rule mask per lane, selected arithmetically
        // (cells are 0/1): birth + cur·(survive - birth).
        let mask = Pack::<i32, N>::splat(self.birth as i32)
            + cur * Pack::splat(self.survive as i32 - self.birth as i32);
        // (mask >> sum) & 1, lane-wise — the same variable-shift bit test
        // as the scalar rule; LLVM lowers the fixed-size loop to a single
        // vector variable-shift on AVX2+.
        Pack::from_fn(|i| (mask[i] >> sum[i]) & 1)
    }

    /// Scalar 3×3 neighbourhood update (`v[di+1][dj+1] = a[x+di][y+dj]`):
    /// sums the eight neighbours and applies the transition to the centre.
    #[inline(always)]
    pub fn apply_neighborhood(&self, v: [[i32; 3]; 3]) -> i32 {
        let sum = v[0][0] + v[0][1] + v[0][2] + v[1][0] + v[1][2] + v[2][0] + v[2][1] + v[2][2];
        self.apply(v[1][1], sum)
    }

    /// Pack 3×3 neighbourhood update, lane-wise identical to
    /// [`LifeRule::apply_neighborhood`].
    #[inline(always)]
    pub fn apply_neighborhood_pack<const N: usize>(
        &self,
        v: [[Pack<i32, N>; 3]; 3],
    ) -> Pack<i32, N> {
        let sum = v[0][0] + v[0][1] + v[0][2] + v[1][0] + v[1][2] + v[2][0] + v[2][1] + v[2][2];
        self.apply_pack(v[1][1], sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_simd::I32x8;

    #[test]
    fn b2s23_truth_table() {
        let r = LifeRule::b2s23();
        // Dead cell: born only with exactly 2 neighbours.
        for sum in 0..=8 {
            assert_eq!(r.apply(0, sum), i32::from(sum == 2), "dead, sum={sum}");
        }
        // Live cell: survives with 2 or 3.
        for sum in 0..=8 {
            assert_eq!(
                r.apply(1, sum),
                i32::from(sum == 2 || sum == 3),
                "live, sum={sum}"
            );
        }
    }

    #[test]
    fn conway_truth_table() {
        let r = LifeRule::conway();
        for sum in 0..=8 {
            assert_eq!(r.apply(0, sum), i32::from(sum == 3));
            assert_eq!(r.apply(1, sum), i32::from(sum == 2 || sum == 3));
        }
    }

    #[test]
    fn pack_matches_scalar_exhaustively() {
        for rule in [LifeRule::b2s23(), LifeRule::conway()] {
            // All (cur, sum) pairs across lanes.
            for base in 0..3 {
                let cur = I32x8::from_fn(|i| ((i + base) % 2) as i32);
                let sum = I32x8::from_fn(|i| (i % 9) as i32);
                let p = rule.apply_pack(cur, sum);
                for i in 0..8 {
                    assert_eq!(p.extract(i), rule.apply(cur.extract(i), sum.extract(i)));
                }
            }
        }
    }

    #[test]
    fn neighborhood_matches_manual_sum() {
        let r = LifeRule::b2s23();
        let v = [[1, 0, 1], [0, 1, 0], [0, 0, 0]];
        // sum = 2, live centre -> survives.
        assert_eq!(r.apply_neighborhood(v), 1);
        let v2 = [[1, 1, 1], [0, 1, 0], [0, 0, 0]];
        // sum = 3, live centre -> survives under S23.
        assert_eq!(r.apply_neighborhood(v2), 1);
        let v3 = [[1, 1, 1], [1, 1, 0], [0, 0, 0]];
        // sum = 4 -> dies.
        assert_eq!(r.apply_neighborhood(v3), 0);
    }

    #[test]
    fn neighborhood_pack_matches_scalar() {
        let r = LifeRule::b2s23();
        let v: [[I32x8; 3]; 3] = core::array::from_fn(|i| {
            core::array::from_fn(|j| I32x8::from_fn(|k| ((i * 5 + j * 3 + k) % 2) as i32))
        });
        let p = r.apply_neighborhood_pack(v);
        for k in 0..8 {
            let s: [[i32; 3]; 3] =
                core::array::from_fn(|i| core::array::from_fn(|j| v[i][j].extract(k)));
            assert_eq!(p.extract(k), r.apply_neighborhood(s));
        }
    }

    #[test]
    fn deps_shape() {
        assert_eq!(LifeRule::deps().min_stride(), 2);
        assert!(!LifeRule::deps().is_gauss_seidel());
    }
}
