//! Gauss-Seidel stencils: 1D3P, 2D5P and 3D7P.
//!
//! Gauss-Seidel updates read the **newest** values of the already-swept
//! neighbours (smaller coordinates, in sweep order) and the old values of
//! the not-yet-swept ones, in place, with a single array. The intra-step
//! dependence chain makes *every* loop of the naive nest illegal to
//! vectorize spatially — the paper's temporal scheme is, to the authors'
//! knowledge, the first vectorization that applies (§3.4): newest-value
//! operands are taken from previous *output* vectors.

use crate::deps::{Dep, DepSet};
use tempora_simd::Pack;

/// Coefficients of the 1D 3-point Gauss-Seidel stencil
/// `a[x] ← w·a[x-1] + c·a[x] + e·a[x+1]` with `a[x-1]` already updated
/// (time `t+1`) and `a[x]`, `a[x+1]` old (time `t`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Gs1dCoeffs {
    /// Weight of the *newest* west neighbour.
    pub w: f64,
    /// Weight of the (old) centre value.
    pub c: f64,
    /// Weight of the (old) east neighbour.
    pub e: f64,
}

impl Gs1dCoeffs {
    /// Arbitrary coefficients.
    pub const fn new(w: f64, c: f64, e: f64) -> Self {
        Gs1dCoeffs { w, c, e }
    }

    /// A Gauss-Seidel relaxation sweep weighting, sum-preserving on
    /// constant fields.
    pub const fn classic(alpha: f64) -> Self {
        Gs1dCoeffs {
            w: alpha,
            c: 1.0 - 2.0 * alpha,
            e: alpha,
        }
    }

    /// Dependence set projected on `(t, x)`: `(0,-1)` is the newest-value
    /// read, the defining Gauss-Seidel dependence.
    pub fn deps() -> DepSet {
        DepSet::new(
            "gs1d",
            vec![Dep::new(0, -1), Dep::new(1, 0), Dep::new(1, 1)],
        )
    }

    /// Scalar point update (`l_new` already at time `t+1`).
    #[inline(always)]
    pub fn apply(&self, l_new: f64, m: f64, r: f64) -> f64 {
        l_new.mul_add(self.w, m.mul_add(self.c, r * self.e))
    }

    /// Pack update — identical operation tree, lane-wise. `l_new` is the
    /// previous *output* vector (§3.4).
    #[inline(always)]
    pub fn apply_pack<const N: usize>(
        &self,
        l_new: Pack<f64, N>,
        m: Pack<f64, N>,
        r: Pack<f64, N>,
    ) -> Pack<f64, N> {
        l_new.mul_add(
            Pack::splat(self.w),
            m.mul_add(Pack::splat(self.c), r * Pack::splat(self.e)),
        )
    }
}

/// Coefficients of the 2D 5-point Gauss-Seidel stencil (sweep order:
/// `x` ascending outer, `y` ascending inner):
/// `a[x][y] ← cn·a[x-1][y] + cw·a[x][y-1] + cc·a[x][y] + ce·a[x][y+1] + cs·a[x+1][y]`
/// with the north and west operands already updated.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Gs2dCoeffs {
    /// Weight of the *newest* `a[x-1][y]`.
    pub cn: f64,
    /// Weight of the *newest* `a[x][y-1]`.
    pub cw: f64,
    /// Weight of the old centre.
    pub cc: f64,
    /// Weight of the old `a[x][y+1]`.
    pub ce: f64,
    /// Weight of the old `a[x+1][y]`.
    pub cs: f64,
}

impl Gs2dCoeffs {
    /// Arbitrary coefficients.
    pub const fn new(cn: f64, cw: f64, cc: f64, ce: f64, cs: f64) -> Self {
        Gs2dCoeffs { cn, cw, cc, ce, cs }
    }

    /// Sum-preserving relaxation weights.
    pub const fn classic(alpha: f64) -> Self {
        Gs2dCoeffs {
            cn: alpha,
            cw: alpha,
            cc: 1.0 - 4.0 * alpha,
            ce: alpha,
            cs: alpha,
        }
    }

    /// Dependence set projected on `(t, x_outer)`.
    pub fn deps() -> DepSet {
        DepSet::new(
            "gs2d",
            vec![Dep::new(0, -1), Dep::new(1, 0), Dep::new(1, 1)],
        )
    }

    /// Scalar point update (`n_new`, `w_new` already at time `t+1`).
    #[inline(always)]
    pub fn apply(&self, n_new: f64, w_new: f64, m: f64, e: f64, s: f64) -> f64 {
        n_new.mul_add(
            self.cn,
            w_new.mul_add(self.cw, m.mul_add(self.cc, e.mul_add(self.ce, s * self.cs))),
        )
    }

    /// Pack update — identical operation tree, lane-wise.
    #[inline(always)]
    pub fn apply_pack<const N: usize>(
        &self,
        n_new: Pack<f64, N>,
        w_new: Pack<f64, N>,
        m: Pack<f64, N>,
        e: Pack<f64, N>,
        s: Pack<f64, N>,
    ) -> Pack<f64, N> {
        n_new.mul_add(
            Pack::splat(self.cn),
            w_new.mul_add(
                Pack::splat(self.cw),
                m.mul_add(
                    Pack::splat(self.cc),
                    e.mul_add(Pack::splat(self.ce), s * Pack::splat(self.cs)),
                ),
            ),
        )
    }
}

/// Coefficients of the 3D 7-point Gauss-Seidel stencil (sweep order `x`,
/// `y`, `z` all ascending; `x-1`, `y-1`, `z-1` operands are newest).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Gs3dCoeffs {
    /// Weight of the *newest* `a[x-1][y][z]`.
    pub cxm: f64,
    /// Weight of the *newest* `a[x][y-1][z]`.
    pub cym: f64,
    /// Weight of the *newest* `a[x][y][z-1]`.
    pub czm: f64,
    /// Weight of the old centre.
    pub cc: f64,
    /// Weight of the old `a[x][y][z+1]`.
    pub czp: f64,
    /// Weight of the old `a[x][y+1][z]`.
    pub cyp: f64,
    /// Weight of the old `a[x+1][y][z]`.
    pub cxp: f64,
}

impl Gs3dCoeffs {
    /// Arbitrary coefficients.
    // Justification: seven coefficients are the 3-D stencil star itself, in sweep order; a struct literal at call sites would be noisier.
    #[allow(clippy::too_many_arguments)]
    pub const fn new(cxm: f64, cym: f64, czm: f64, cc: f64, czp: f64, cyp: f64, cxp: f64) -> Self {
        Gs3dCoeffs {
            cxm,
            cym,
            czm,
            cc,
            czp,
            cyp,
            cxp,
        }
    }

    /// Sum-preserving relaxation weights.
    pub const fn classic(alpha: f64) -> Self {
        Gs3dCoeffs {
            cxm: alpha,
            cym: alpha,
            czm: alpha,
            cc: 1.0 - 6.0 * alpha,
            czp: alpha,
            cyp: alpha,
            cxp: alpha,
        }
    }

    /// Dependence set projected on `(t, x_outer)`.
    pub fn deps() -> DepSet {
        DepSet::new(
            "gs3d",
            vec![Dep::new(0, -1), Dep::new(1, 0), Dep::new(1, 1)],
        )
    }

    /// Scalar point update (`xm`, `ym`, `zm` already at time `t+1`).
    // Justification: seven neighbors are the 3-D stencil star itself, in sweep order.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub fn apply(&self, xm: f64, ym: f64, zm: f64, m: f64, zp: f64, yp: f64, xp: f64) -> f64 {
        xm.mul_add(
            self.cxm,
            ym.mul_add(
                self.cym,
                zm.mul_add(
                    self.czm,
                    m.mul_add(
                        self.cc,
                        zp.mul_add(self.czp, yp.mul_add(self.cyp, xp * self.cxp)),
                    ),
                ),
            ),
        )
    }

    /// Pack update — identical operation tree, lane-wise.
    // Justification: seven neighbor packs are the 3-D stencil star itself, in sweep order.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub fn apply_pack<const N: usize>(
        &self,
        xm: Pack<f64, N>,
        ym: Pack<f64, N>,
        zm: Pack<f64, N>,
        m: Pack<f64, N>,
        zp: Pack<f64, N>,
        yp: Pack<f64, N>,
        xp: Pack<f64, N>,
    ) -> Pack<f64, N> {
        xm.mul_add(
            Pack::splat(self.cxm),
            ym.mul_add(
                Pack::splat(self.cym),
                zm.mul_add(
                    Pack::splat(self.czm),
                    m.mul_add(
                        Pack::splat(self.cc),
                        zp.mul_add(
                            Pack::splat(self.czp),
                            yp.mul_add(Pack::splat(self.cyp), xp * Pack::splat(self.cxp)),
                        ),
                    ),
                ),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::validate_schedule;
    use tempora_simd::F64x4;

    #[test]
    fn gs_kernels_are_gauss_seidel() {
        assert!(Gs1dCoeffs::deps().is_gauss_seidel());
        assert!(Gs2dCoeffs::deps().is_gauss_seidel());
        assert!(Gs3dCoeffs::deps().is_gauss_seidel());
        assert_eq!(Gs1dCoeffs::deps().min_stride(), 2);
        assert_eq!(Gs2dCoeffs::deps().min_stride(), 2);
        assert_eq!(Gs3dCoeffs::deps().min_stride(), 2);
    }

    #[test]
    fn gs_schedule_legal_for_paper_strides() {
        // Paper uses s = 7 for GS-1D and s = 2 for GS-2D/3D.
        validate_schedule(&Gs1dCoeffs::deps(), 4, 7, 128).unwrap();
        validate_schedule(&Gs2dCoeffs::deps(), 4, 2, 64).unwrap();
        assert!(validate_schedule(&Gs1dCoeffs::deps(), 4, 1, 64).is_err());
    }

    #[test]
    fn gs1d_scalar_pack_bitwise_equal() {
        let c = Gs1dCoeffs::classic(0.3);
        let l = Pack([1.0, -0.5, 3.25, 0.125]);
        let m = Pack([2.0, 0.5, -1.25, 7.5]);
        let r = Pack([0.25, 4.0, 0.5, -2.0]);
        let p = c.apply_pack(l, m, r);
        for i in 0..4 {
            assert_eq!(
                p.extract(i),
                c.apply(l.extract(i), m.extract(i), r.extract(i))
            );
        }
    }

    #[test]
    fn gs2d_gs3d_scalar_pack_bitwise_equal() {
        let c2 = Gs2dCoeffs::new(0.13, 0.21, 0.2, 0.19, 0.27);
        let v: [F64x4; 5] = core::array::from_fn(|k| F64x4::from_fn(|i| (k + i) as f64 * 0.41));
        let p2 = c2.apply_pack(v[0], v[1], v[2], v[3], v[4]);
        for i in 0..4 {
            let s: Vec<f64> = v.iter().map(|q| q.extract(i)).collect();
            assert_eq!(p2.extract(i), c2.apply(s[0], s[1], s[2], s[3], s[4]));
        }

        let c3 = Gs3dCoeffs::classic(0.11);
        let w: [F64x4; 7] = core::array::from_fn(|k| F64x4::from_fn(|i| (k * 3 + i) as f64 * 0.07));
        let p3 = c3.apply_pack(w[0], w[1], w[2], w[3], w[4], w[5], w[6]);
        for i in 0..4 {
            let s: Vec<f64> = w.iter().map(|q| q.extract(i)).collect();
            assert_eq!(
                p3.extract(i),
                c3.apply(s[0], s[1], s[2], s[3], s[4], s[5], s[6])
            );
        }
    }

    #[test]
    fn constant_field_fixed_point() {
        let c = Gs1dCoeffs::classic(0.25);
        assert_eq!(c.apply(4.0, 4.0, 4.0), 4.0);
        let c2 = Gs2dCoeffs::classic(0.125);
        assert!((c2.apply(1.5, 1.5, 1.5, 1.5, 1.5) - 1.5).abs() < 1e-15);
    }
}
