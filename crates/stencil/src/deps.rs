//! Dependence analysis and temporal-vectorization legality (§3.2).
//!
//! The temporal scheme assembles points of `vl` consecutive time levels in
//! one vector, `s` grid points apart along the *outermost* space dimension.
//! Whether a given stride `s` is legal depends only on the stencil's
//! dependences projected onto `(t, x_outer)`:
//!
//! * a dependence with time lag `dt ≥ 1` and **positive** outer offset
//!   `dx` (the update reads an *older* value at a *larger* `x`) must come
//!   from input vector `V(x + dx)`, which the steady-state loop produced
//!   at iteration `x + dx − s`; that iteration must precede iteration `x`,
//!   giving `s ≥ dx + 1`;
//! * dependences with `dt ≥ 1, dx ≤ 0` live in the ring of already-held
//!   input vectors and impose no stride constraint;
//! * *newest-value* dependences (`dt = 0, dx < 0`, the Gauss-Seidel case)
//!   are satisfied from previous **output** vectors (§3.4), again with no
//!   stride constraint. `dt = 0, dx ≥ 0` would make the sweep non-causal
//!   and is rejected.
//!
//! This module also contains [`validate_schedule`], a small interpreter
//! that *executes* the temporal schedule on an abstract iteration space and
//! checks every operand is produced before it is consumed — the paper's
//! legality condition verified mechanically rather than trusted.

/// One dependence of a stencil, projected onto the time dimension and the
/// outermost space dimension.
///
/// The update of point `(t+dt, x)` reads point `(t, x+dx)`; equivalently
/// the *sink* lags the *source* by `dt` time steps and the source sits
/// `dx` cells to the right (`dx > 0`) or left (`dx < 0`) of the sink.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Dep {
    /// Time lag from source to sink (`0` = newest-value / Gauss-Seidel).
    pub dt: u32,
    /// Outer-space offset of the source relative to the sink.
    pub dx: i32,
}

impl Dep {
    /// Shorthand constructor.
    pub const fn new(dt: u32, dx: i32) -> Self {
        Dep { dt, dx }
    }
}

/// The dependence signature of a stencil in the outermost dimension,
/// together with the pieces of shape information the engines need.
#[derive(Clone, Debug)]
pub struct DepSet {
    /// All `(dt, dx)` dependences (projected; duplicates are harmless).
    pub deps: Vec<Dep>,
    /// Human-readable stencil name (for diagnostics and reports).
    pub name: &'static str,
}

impl DepSet {
    /// Build a dependence set, rejecting non-causal entries.
    ///
    /// # Panics
    /// Panics if any dependence has `dt = 0, dx ≥ 0`: a same-time-step
    /// read at the same or larger `x` cannot be satisfied by any ascending
    /// sweep.
    pub fn new(name: &'static str, deps: Vec<Dep>) -> Self {
        for d in &deps {
            assert!(
                !(d.dt == 0 && d.dx >= 0),
                "{name}: non-causal dependence (dt=0, dx={})",
                d.dx
            );
        }
        DepSet { deps, name }
    }

    /// True when the stencil has newest-value (`dt = 0`) dependences —
    /// i.e. it is a Gauss-Seidel style update.
    pub fn is_gauss_seidel(&self) -> bool {
        self.deps.iter().any(|d| d.dt == 0)
    }

    /// Stencil radius in the outer dimension (`max |dx|`).
    pub fn radius(&self) -> u32 {
        self.deps
            .iter()
            .map(|d| d.dx.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    /// Minimum legal space stride `s` for the temporal scheme.
    ///
    /// This is the operational sharpening of the paper's condition
    /// `s > max{dx/dt}`: every right-hand (`dx > 0`) old-value read of
    /// distance `dx` forces `s ≥ dx + 1`; everything else allows `s = 1`.
    pub fn min_stride(&self) -> usize {
        let max_right = self
            .deps
            .iter()
            .filter(|d| d.dt >= 1 && d.dx > 0)
            .map(|d| d.dx as usize)
            .max()
            .unwrap_or(0);
        max_right + 1
    }

    /// True when `s` is a legal temporal-vectorization stride.
    pub fn stride_legal(&self, s: usize) -> bool {
        s >= self.min_stride()
    }
}

/// Mechanically verify the temporal schedule for a stencil with dependence
/// set `deps`, vector length `vl` and stride `s` on an abstract 1-D
/// iteration space of `nx` points and `vl` time levels.
///
/// The interpreter replays the exact production order of the engines in
/// `tempora-core`:
///
/// 1. prologue: level `k` (`1..vl`) is computed scalar over
///    `x ∈ 1..=(vl-k)·s`,
/// 2. steady state: iteration `x` computes, for every lane `i ∈ 0..vl`,
///    the point `(level i+1, x + (vl-1-i)·s)`,
/// 3. epilogue: remaining points per level in ascending `x`.
///
/// For every computed point it checks all operands `(level−dt, x+dx)` were
/// produced earlier (level-0 points and out-of-domain ghost reads are
/// always available). Returns `Err(description)` on the first violation.
pub fn validate_schedule(deps: &DepSet, vl: usize, s: usize, nx: usize) -> Result<(), String> {
    // done[k][x] = point (level k, x) has been produced; level 0 = initial.
    let mut done = vec![vec![false; nx + 2]; vl + 1];
    done[0].fill(true);

    let check_and_set = |done: &mut Vec<Vec<bool>>, k: usize, x: usize| -> Result<(), String> {
        for d in &deps.deps {
            let src_k = k as i64 - d.dt as i64;
            let src_x = x as i64 + d.dx as i64;
            if src_k < 0 {
                return Err(format!(
                    "{}: level {k} x {x} reads below level 0 (dt={})",
                    deps.name, d.dt
                ));
            }
            // Ghost reads outside [1, nx] are boundary values: always there.
            if src_x < 1 || src_x > nx as i64 {
                continue;
            }
            if !done[src_k as usize][src_x as usize] {
                return Err(format!(
                    "{}: vl={vl} s={s}: point (level {k}, x={x}) consumed \
                     unproduced operand (level {src_k}, x={src_x})",
                    deps.name
                ));
            }
        }
        if done[k][x] {
            return Err(format!(
                "{}: point (level {k}, x={x}) produced twice",
                deps.name
            ));
        }
        done[k][x] = true;
        Ok(())
    };

    // 1. Prologue triangles.
    for k in 1..vl {
        let hi = ((vl - k) * s).min(nx);
        for x in 1..=hi {
            check_and_set(&mut done, k, x)?;
        }
    }

    // 2. Steady state: x_max chosen exactly as in the engines.
    let x_max = (nx + 1).saturating_sub(vl * s);
    for x in 1..=x_max {
        // Lane vl-1 (top) first or last does not matter for the checker —
        // all lanes of one output vector are produced "simultaneously",
        // but lanes of the same vector must not depend on each other.
        // Model that by checking all lanes against the *pre-iteration*
        // state, then committing. Intra-vector self-dependences would be
        // flagged because the operand is not yet marked done.
        let lanes: Vec<(usize, usize)> = (0..vl)
            .map(|i| (i + 1, x + (vl - 1 - i) * s))
            .filter(|&(_, px)| px <= nx)
            .collect();
        for &(k, px) in &lanes {
            for d in &deps.deps {
                let src_k = k as i64 - d.dt as i64;
                let src_x = px as i64 + d.dx as i64;
                if src_k < 0 || src_x < 1 || src_x > nx as i64 {
                    continue;
                }
                // Newest-value (dt = 0) operands come from the output
                // vector at x-1, produced in the previous iteration:
                // represented by done[] as well since we commit whole
                // vectors after checking.
                if !done[src_k as usize][src_x as usize] {
                    return Err(format!(
                        "{}: vl={vl} s={s}: steady x={x} lane level {k} (x={px}) \
                         consumed unproduced operand (level {src_k}, x={src_x})",
                        deps.name
                    ));
                }
            }
        }
        for &(k, px) in &lanes {
            if done[k][px] {
                return Err(format!(
                    "{}: steady x={x}: (level {k}, x={px}) produced twice",
                    deps.name
                ));
            }
            done[k][px] = true;
        }
    }

    // 3. Epilogue: everything not yet produced, by level then x ascending.
    for k in 1..=vl {
        for x in 1..=nx {
            if !done[k][x] {
                check_and_set(&mut done, k, x)?;
            }
        }
    }

    // Completeness: every point of every level must now be produced.
    for (k, row) in done.iter().enumerate().skip(1) {
        for (x, &ok) in row.iter().enumerate().take(nx + 1).skip(1) {
            if !ok {
                return Err(format!(
                    "{}: point (level {k}, x={x}) never produced",
                    deps.name
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jacobi3p() -> DepSet {
        DepSet::new(
            "1d3p-jacobi",
            vec![Dep::new(1, -1), Dep::new(1, 0), Dep::new(1, 1)],
        )
    }

    fn gs3p() -> DepSet {
        DepSet::new(
            "1d3p-gs",
            vec![Dep::new(0, -1), Dep::new(1, 0), Dep::new(1, 1)],
        )
    }

    fn lcs() -> DepSet {
        DepSet::new(
            "lcs",
            vec![Dep::new(1, 0), Dep::new(1, -1), Dep::new(0, -1)],
        )
    }

    #[test]
    fn min_strides_match_paper() {
        // §3.2: 1D3P Jacobi legal for s > 1.
        assert_eq!(jacobi3p().min_stride(), 2);
        // Gauss-Seidel still has the old right neighbour -> s >= 2.
        assert_eq!(gs3p().min_stride(), 2);
        // §3.4: LCS "the space stride must satisfy s >= 1".
        assert_eq!(lcs().min_stride(), 1);
    }

    #[test]
    fn gauss_seidel_detection() {
        assert!(!jacobi3p().is_gauss_seidel());
        assert!(gs3p().is_gauss_seidel());
        assert!(lcs().is_gauss_seidel());
    }

    #[test]
    #[should_panic(expected = "non-causal")]
    fn non_causal_rejected() {
        DepSet::new("bad", vec![Dep::new(0, 1)]);
    }

    #[test]
    fn schedule_validates_legal_strides() {
        for nx in [8usize, 13, 40, 64, 100] {
            for s in 2..=8 {
                validate_schedule(&jacobi3p(), 4, s, nx).unwrap();
                validate_schedule(&gs3p(), 4, s, nx).unwrap();
            }
            for s in 1..=4 {
                validate_schedule(&lcs(), 8, s, nx).unwrap();
            }
        }
    }

    #[test]
    fn schedule_rejects_illegal_stride() {
        // s = 1 breaks the 1D3P Jacobi right-neighbour dependence as soon
        // as the steady-state loop runs at least two iterations.
        let err = validate_schedule(&jacobi3p(), 4, 1, 32).unwrap_err();
        assert!(err.contains("unproduced operand"), "{err}");
        let err = validate_schedule(&gs3p(), 4, 1, 32).unwrap_err();
        assert!(err.contains("unproduced operand"), "{err}");
    }

    #[test]
    fn radius_projection() {
        assert_eq!(jacobi3p().radius(), 1);
        assert_eq!(lcs().radius(), 1);
    }
}
