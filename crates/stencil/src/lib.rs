//! # tempora-stencil — problem definitions and scalar oracles
//!
//! The nine benchmarks of the paper's evaluation (Table 1), each as a
//! coefficient/rule struct with **matched scalar and pack update
//! functions** (identical fused operation trees → bit-for-bit comparable),
//! a projected dependence set for the §3.2 legality analysis, plus the
//! naive scalar reference sweeps every optimized scheme is tested against.
//!
//! | benchmark | module | kind |
//! |---|---|---|
//! | Heat-1D (1D3P) | [`heat`] | Jacobi |
//! | Heat-2D (2D5P) | [`heat`] | Jacobi star |
//! | Heat-3D (3D7P) | [`heat`] | Jacobi star |
//! | 2D9P           | [`heat`] | Jacobi box |
//! | Life (B2S23)   | [`life`] | Jacobi box, integer |
//! | GS-1D/2D/3D    | [`gs`]   | Gauss-Seidel |
//! | LCS            | [`lcs`]  | DP wavefront / 1-D Gauss-Seidel |

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod deps;
pub mod gs;
pub mod heat;
pub mod lcs;
pub mod life;
pub mod reference;

pub use deps::{validate_schedule, Dep, DepSet};
pub use gs::{Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs};
pub use heat::{Box2dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs};
pub use lcs::{lcs_deps, lcs_update, lcs_update_pack};
pub use life::LifeRule;
