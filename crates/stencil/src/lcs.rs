//! Longest common subsequence as a 1-D Gauss-Seidel stencil (§3.4).
//!
//! `lcs[x][y]` — the LCS length of prefixes `A[1..=x]`, `B[1..=y]` —
//! depends on `lcs[x-1][y]`, `lcs[x-1][y-1]` and `lcs[x][y-1]`. Viewing
//! the `x` loop as *time* and `y` as *space* turns the DP table into a 1-D
//! stencil whose only same-time dependence is the west neighbour: a
//! Gauss-Seidel shape with minimum temporal stride `s ≥ 1` (the paper's
//! observation). Sequence `A` acts as a per-time-level constant and `B` as
//! a variable per-space coefficient.
//!
//! Values are `i32` and the vector kernels use 8 lanes, matching the
//! paper's "theoretical maximal speedup of 8" for integer SIMD.

use crate::deps::{Dep, DepSet};
use tempora_simd::{Mask, Pack};

/// Dependence set of LCS projected on `(t = x, space = y)`.
pub fn lcs_deps() -> DepSet {
    DepSet::new(
        "lcs",
        vec![Dep::new(1, 0), Dep::new(1, -1), Dep::new(0, -1)],
    )
}

/// Scalar LCS cell update:
/// `if a == b { diag + 1 } else { max(up, left) }`.
///
/// `up` is `lcs[x-1][y]` (old value, same column), `left` is
/// `lcs[x][y-1]` (newest, same row), `diag` is `lcs[x-1][y-1]`.
#[inline(always)]
pub fn lcs_update(diag: i32, up: i32, left: i32, a: u8, b: u8) -> i32 {
    if a == b {
        diag + 1
    } else {
        up.max(left)
    }
}

/// Pack LCS cell update with identical semantics, branch-free: the paper's
/// "blend instruction with a mask vector of equalities".
///
/// `a_eq_b` is the per-lane equality mask of the sequence characters.
#[inline(always)]
pub fn lcs_update_pack<const N: usize>(
    diag: Pack<i32, N>,
    up: Pack<i32, N>,
    left: Pack<i32, N>,
    a_eq_b: Mask<N>,
) -> Pack<i32, N> {
    Pack::select(a_eq_b, diag + Pack::splat(1), up.max(left))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deps::validate_schedule;
    use tempora_simd::I32x8;

    #[test]
    fn deps_allow_stride_one() {
        let d = lcs_deps();
        assert!(d.is_gauss_seidel());
        assert_eq!(d.min_stride(), 1);
        for s in 1..=4 {
            validate_schedule(&d, 8, s, 50).unwrap();
        }
    }

    #[test]
    fn scalar_update_cases() {
        assert_eq!(lcs_update(3, 5, 4, b'a', b'a'), 4); // match: diag + 1
        assert_eq!(lcs_update(3, 5, 4, b'a', b'b'), 5); // mismatch: max
        assert_eq!(lcs_update(0, 0, 0, b'x', b'x'), 1);
    }

    #[test]
    fn pack_matches_scalar() {
        let diag = I32x8::from_fn(|i| i as i32);
        let up = I32x8::from_fn(|i| (7 - i) as i32);
        let left = I32x8::from_fn(|i| ((i * 3) % 5) as i32);
        let a: [u8; 8] = [0, 1, 2, 3, 0, 1, 2, 3];
        let b: [u8; 8] = [0, 2, 2, 1, 3, 1, 0, 3];
        let eq = Mask::from_fn(|i| a[i] == b[i]);
        let p = lcs_update_pack(diag, up, left, eq);
        for i in 0..8 {
            assert_eq!(
                p.extract(i),
                lcs_update(diag.extract(i), up.extract(i), left.extract(i), a[i], b[i])
            );
        }
    }
}
