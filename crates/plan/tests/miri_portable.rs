//! Miri-clean end-to-end coverage of the portable path.
//!
//! `cargo miri test -p tempora_plan --test miri_portable` interprets the
//! whole Problem → Plan → Report lifecycle — validation, engine
//! resolution, scratch arenas, the pinned thread pool and both wavefront
//! schedules — with no `std::arch` intrinsics, no inline `asm!` and no
//! affinity syscalls in sight: `avx2_available()` reports `false` under
//! Miri, which routes every `Select::Auto` dispatch onto the portable
//! pack engines, and the pinning module compiles to its portable stub.
//!
//! Problem sizes are deliberately tiny (Miri interprets ~100× slower
//! than native); the same tests run natively in the ordinary suite,
//! where they pin the portable path's bit-exactness at miniature scale.

use tempora_plan::{Method, PlanBuilder, Problem, Select, State, Tiling, WaveSchedule};
use tempora_stencil::{Gs2dCoeffs, Heat1dCoeffs, Heat2dCoeffs};

/// Interior cells as raw bit patterns: bit-exact comparison that skips
/// the halo (whose NaN canaries are incomparable under `==`).
fn bits2(state: &State) -> Vec<u64> {
    let g = state.grid2().unwrap();
    let mut out = Vec::new();
    for x in 1..=g.nx() {
        for y in 1..=g.ny() {
            out.push(g.get(x, y).to_bits());
        }
    }
    out
}

/// Deterministic interior fill that needs no RNG (keeps the test
/// dependency-free and Miri-fast).
fn fill1(state: &mut State) {
    state
        .grid1_mut()
        .unwrap()
        .fill_interior(|i| ((i * 37 + 11) % 97) as f64 * 0.021 - 1.0);
}

fn fill2(state: &mut State) {
    state
        .grid2_mut()
        .unwrap()
        .fill_interior(|x, y| ((x * 31 + y * 17 + 5) % 89) as f64 * 0.023 - 1.0);
}

#[test]
fn plan_lifecycle_is_reusable_and_deterministic() {
    let problem = Problem::heat1d(96, 12, Heat1dCoeffs::classic(0.25));
    let mut plan = PlanBuilder::new()
        .method(Method::Temporal)
        .stride(3)
        .select(Select::Portable)
        .build(&problem)
        .expect("valid configuration");

    let mut first = problem.state();
    fill1(&mut first);
    let report = plan.run(&mut first).expect("state matches plan");
    assert_eq!(report.steps, 12);

    // Re-running the same plan against a fresh identical state must be
    // bit-identical: plans own their scratch and reset it per run.
    let mut second = problem.state();
    fill1(&mut second);
    plan.run(&mut second).expect("plan is reusable");
    assert_eq!(
        first.grid1().unwrap().data(),
        second.grid1().unwrap().data()
    );
}

#[test]
fn ghost_tiled_portable_matches_untiled() {
    let problem = Problem::heat2d(20, 18, 8, Heat2dCoeffs::classic(0.20));

    let mut base = problem.state();
    fill2(&mut base);
    PlanBuilder::new()
        .method(Method::Temporal)
        .stride(2)
        .select(Select::Portable)
        .build(&problem)
        .expect("untiled portable plan")
        .run(&mut base)
        .expect("untiled run");

    let mut tiled = problem.state();
    fill2(&mut tiled);
    PlanBuilder::new()
        .method(Method::Temporal)
        .stride(2)
        .select(Select::Portable)
        .tiling(Tiling::Ghost {
            block: 8,
            height: 8,
        })
        .threads(2)
        .build(&problem)
        .expect("ghost-tiled portable plan")
        .run(&mut tiled)
        .expect("tiled run");

    assert_eq!(bits2(&base), bits2(&tiled));
}

#[test]
fn pipelined_and_barrier_wavefronts_agree_bitwise() {
    let problem = Problem::gs2d(48, 16, 8, Gs2dCoeffs::classic(0.23));

    let run = |schedule: WaveSchedule| {
        let mut state = problem.state();
        fill2(&mut state);
        PlanBuilder::new()
            .method(Method::Temporal)
            .stride(2)
            .select(Select::Portable)
            .tiling(Tiling::Skew {
                block: 16,
                height: 4,
            })
            .threads(2)
            .wave_schedule(schedule)
            .build(&problem)
            .expect("skew-tiled portable plan")
            .run(&mut state)
            .expect("skew run");
        bits2(&state)
    };

    // The dependence-counter pipelined schedule must be bit-identical to
    // the conservative per-wave barrier schedule.
    assert_eq!(run(WaveSchedule::Pipelined), run(WaveSchedule::Barrier));
}
