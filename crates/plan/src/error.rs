//! [`PlanError`] — every way a plan can fail to build or run.
//!
//! The solver API never panics on an invalid *configuration*: each
//! rejected combination maps to a descriptive variant here, and
//! configurations with a documented honest fallback (degenerate
//! geometries, workloads without an AVX2 steady state) build fine and
//! report the engine that actually runs. Panics remain only for
//! programming errors (e.g. poisoned internal invariants).

use crate::{Method, Tiling};

/// A validation or execution error of the `Problem → Plan` pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// The temporal space stride was zero.
    ZeroStride,
    /// The temporal space stride is below the kernel's dependence bound
    /// (`min_stride` of the stencil's dependence set).
    StrideTooSmall {
        /// Requested stride.
        stride: usize,
        /// Minimum legal stride for this stencil.
        min: usize,
    },
    /// The temporal space stride exceeds the engine's ring capacity.
    StrideTooLarge {
        /// Requested stride.
        stride: usize,
        /// Maximum supported stride.
        max: usize,
    },
    /// The builder asked for zero worker threads.
    ZeroThreads,
    /// More than one thread was requested without a tiling scheme — the
    /// sequential engines cannot use extra workers, so this is almost
    /// certainly a misconfiguration.
    ThreadsRequireTiling {
        /// Requested worker count.
        threads: usize,
    },
    /// The problem has an empty interior.
    EmptyDomain,
    /// `Select::Avx2` was requested but this CPU lacks AVX2+FMA.
    Avx2Unavailable,
    /// The method cannot execute this problem (e.g. spatial multi-load
    /// vectorization of a Gauss-Seidel stencil is illegal; the reorg/DLT
    /// baselines exist only for Heat-1D).
    MethodUnsupported {
        /// The rejected method.
        method: Method,
        /// The problem kind it was applied to.
        problem: &'static str,
        /// Why the combination is rejected.
        why: &'static str,
    },
    /// The tiling scheme does not apply to this problem or method (ghost
    /// tiling is Jacobi-only, skewed tiling is Gauss-Seidel-only,
    /// rectangle tiling is LCS-only).
    TilingUnsupported {
        /// The rejected tiling.
        tiling: Tiling,
        /// The problem kind it was applied to.
        problem: &'static str,
        /// Why the combination is rejected.
        why: &'static str,
    },
    /// A tile extent (block / xblock / yblock) was zero.
    ZeroTileExtent,
    /// The time-tile height must be a positive multiple of the engine's
    /// vector length.
    BadTileHeight {
        /// Requested height.
        height: usize,
        /// The engine's vector length for this problem.
        vl: usize,
    },
    /// A skewed block narrower than `height + VL·s + VL` would let
    /// same-wave tiles overlap; the wavefront schedule requires wider
    /// blocks.
    BlockTooNarrow {
        /// Requested block width.
        block: usize,
        /// Minimum block width for wave disjointness.
        min: usize,
    },
    /// Reorg-op counting is only meaningful where the engines are
    /// instrumented (1-D temporal under the portable engine, and the
    /// reorg baseline).
    CountUnsupported {
        /// Why counting is unavailable here.
        why: &'static str,
    },
    /// `Plan::run` was handed a state of the wrong variant.
    StateMismatch {
        /// State variant the plan's problem expects.
        expected: &'static str,
        /// State variant that was passed.
        got: &'static str,
    },
    /// `Plan::run` was handed a state whose shape does not match the
    /// problem the plan was built for.
    StateShapeMismatch {
        /// Interior extents the problem declares.
        expected: [usize; 3],
        /// Interior extents of the passed state.
        got: [usize; 3],
    },
    /// `Plan::run` was handed a grid with a halo width other than 1; the
    /// solver engines assume the halo-1 layout.
    UnsupportedHalo {
        /// Halo width of the passed grid.
        halo: usize,
    },
    /// A run of this plan panicked mid-step, so the state may be half
    /// advanced. The panicking `Plan::run` call and every subsequent one
    /// return this variant until [`crate::Plan::reset`] is called with a
    /// re-initialized state; no `Report` is fabricated for a failed run.
    Poisoned {
        /// Panic message of the run that poisoned the plan.
        panic: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ZeroStride => write!(f, "temporal stride must be at least 1"),
            PlanError::StrideTooSmall { stride, min } => write!(
                f,
                "temporal stride {stride} violates the stencil's dependence bound (min {min})"
            ),
            PlanError::StrideTooLarge { stride, max } => write!(
                f,
                "temporal stride {stride} exceeds the engine ring capacity (max {max})"
            ),
            PlanError::ZeroThreads => write!(f, "thread count must be at least 1"),
            PlanError::ThreadsRequireTiling { threads } => write!(
                f,
                "{threads} threads requested but no tiling scheme selected; \
                 sequential engines use exactly one worker — pick a tiling or threads(1)"
            ),
            PlanError::EmptyDomain => write!(f, "problem interior is empty"),
            PlanError::Avx2Unavailable => {
                write!(f, "Select::Avx2 requested but this CPU lacks AVX2+FMA")
            }
            PlanError::MethodUnsupported {
                method,
                problem,
                why,
            } => write!(f, "method {method:?} cannot run {problem}: {why}"),
            PlanError::TilingUnsupported {
                tiling,
                problem,
                why,
            } => write!(f, "tiling {tiling:?} cannot run {problem}: {why}"),
            PlanError::ZeroTileExtent => write!(f, "tile extents must be at least 1"),
            PlanError::BadTileHeight { height, vl } => write!(
                f,
                "time-tile height {height} must be a positive multiple of the vector length {vl}"
            ),
            PlanError::BlockTooNarrow { block, min } => write!(
                f,
                "skewed block width {block} below the wave-disjointness bound {min}"
            ),
            PlanError::CountUnsupported { why } => {
                write!(f, "reorg-op counting unavailable: {why}")
            }
            PlanError::StateMismatch { expected, got } => {
                write!(f, "plan expects a {expected} state, got {got}")
            }
            PlanError::StateShapeMismatch { expected, got } => write!(
                f,
                "state shape {got:?} does not match the plan's problem shape {expected:?}"
            ),
            PlanError::UnsupportedHalo { halo } => write!(
                f,
                "grid has halo width {halo}; the solver engines require halo 1"
            ),
            PlanError::Poisoned { panic } => write!(
                f,
                "plan is poisoned by a panicked run ({panic}); \
                 re-initialize the state and call Plan::reset"
            ),
        }
    }
}

impl std::error::Error for PlanError {}
