//! [`PlanBuilder`] → [`Plan`] → [`Report`]: compile a [`Problem`] into a
//! reusable execution plan.

use crate::exec::{
    Dlt1d, Exec, GhostExec1d, GhostExec2d, GhostExec3d, Multiload1d, Multiload2d, Multiload3d,
    RectLcs, Reorg1d, Scalar1d, Scalar2d, Scalar3d, SeqLcs, SkewExec1d, SkewExec2d, SkewExec3d,
    Temporal1d, Temporal2d, Temporal3d,
};
use crate::{PlanError, Problem, State};
use tempora_core::engine::{
    shape_has_vector_tiles, Avx2Exec1d, Avx2Exec2d, Avx2Exec3d, Engine, Select,
};
use tempora_core::kernels::{
    BoxKern2d, GsKern1d, GsKern2d, GsKern3d, JacobiKern1d, JacobiKern2d, JacobiKern3d, Kernel1d,
    Kernel2d, Kernel3d, LifeKern2d,
};
use tempora_core::{lcs, lcs_avx2, t1d, t2d, t3d};
use tempora_grid::{Boundary, Grid2, Grid3};
use tempora_parallel::{Pool, PoolConfig, WaveSchedule};
use tempora_simd::count;
use tempora_simd::Scalar;
use tempora_tiling::{
    ghost, GhostJacobi1d, GhostJacobi2d, GhostJacobi3d, LcsRect, SkewGs1d, SkewGs2d, SkewGs3d,
};

/// The vectorization scheme a plan executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Method {
    /// The paper's temporal vectorization (the "our" curves).
    #[default]
    Temporal,
    /// Spatial multi-load vectorization (the "auto" curves); illegal for
    /// Gauss-Seidel stencils and the LCS wavefront.
    Multiload,
    /// The data-reorganization baseline (§2.2), Heat-1D only. One-shot by
    /// design — rebuilds its transposed layout per run.
    Reorg,
    /// The dimension-lifted-transpose baseline (§2.2), Heat-1D only.
    /// One-shot by design.
    Dlt,
    /// The scalar reference sweep.
    Scalar,
}

/// The time-space tiling a plan wraps around the method.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Tiling {
    /// No tiling: the sequential engine on one worker.
    #[default]
    None,
    /// Overlapped (ghost-zone) band tiling — Jacobi stencils only.
    Ghost {
        /// Interior cells per tile along the outer dimension.
        block: usize,
        /// Time levels per band (a positive multiple of the vector
        /// length).
        height: usize,
    },
    /// Parallelogram (time-skewed) tiling with pipelined wavefronts —
    /// Gauss-Seidel stencils only.
    Skew {
        /// Anchor columns per skewed block.
        block: usize,
        /// Time levels per band (a positive multiple of 4).
        height: usize,
    },
    /// Rectangle tiling with pipelined wavefronts — LCS only.
    LcsRect {
        /// DP rows per rectangle.
        xblock: usize,
        /// DP columns per rectangle.
        yblock: usize,
    },
}

/// Tile geometry a plan resolved (for tiled plans).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileGeometry {
    /// Tiles per band (ghost), skewed blocks per band (skew), or
    /// rectangles per wavefront sweep (LCS).
    pub tiles: usize,
    /// Block extent along the outer dimension (`xblock` — DP rows per
    /// rectangle — for LCS).
    pub block: usize,
    /// Time levels per band (`yblock` — DP columns per rectangle — for
    /// LCS).
    pub height: usize,
}

/// What one [`Plan::run`] call did: the resolved engine, the work
/// executed, and optional instrumentation.
#[derive(Clone, Debug)]
pub struct Report {
    /// The steady state that executed, for dispatched (temporal) methods:
    /// `Some(Engine::Avx2)` or `Some(Engine::Portable)`; `None` for
    /// non-dispatched methods (scalar, multi-load, baselines).
    pub engine: Option<Engine>,
    /// Time steps advanced (DP rows for LCS).
    pub steps: usize,
    /// Worker threads the plan's pool runs.
    pub threads: usize,
    /// True when per-core pinning was requested with
    /// [`PlanBuilder::pin`] and every pool thread was successfully
    /// pinned.
    pub pinned: bool,
    /// Tile geometry, for tiled plans.
    pub tiles: Option<TileGeometry>,
    /// Reorganization-op counts of this run, when the plan was built with
    /// [`PlanBuilder::count_reorg`].
    pub reorg: Option<count::Counts>,
    /// The LCS length, for LCS problems.
    pub lcs_length: Option<i32>,
}

/// Builder for a [`Plan`]: method, tiling, engine selection, worker
/// count, temporal stride and optional instrumentation. Every invalid
/// combination is reported as a [`PlanError`] by [`PlanBuilder::build`] —
/// no panics, no silent fallbacks beyond the documented engine-resolution
/// ones.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlanBuilder {
    method: Method,
    tiling: Tiling,
    select: Select,
    threads: Option<usize>,
    stride: Option<usize>,
    count_reorg: bool,
    pin: bool,
    wave_schedule: WaveSchedule,
}

impl PlanBuilder {
    /// A builder with the defaults: temporal method, no tiling,
    /// [`Select::Auto`], one thread, per-kind default stride.
    pub fn new() -> PlanBuilder {
        PlanBuilder::default()
    }

    /// Set the vectorization method.
    pub fn method(mut self, method: Method) -> PlanBuilder {
        self.method = method;
        self
    }

    /// Set the time-space tiling.
    pub fn tiling(mut self, tiling: Tiling) -> PlanBuilder {
        self.tiling = tiling;
        self
    }

    /// Set the engine selection policy (default [`Select::Auto`]; use
    /// [`Select::from_env`] to honour `TEMPORA_ENGINE`).
    pub fn select(mut self, select: Select) -> PlanBuilder {
        self.select = select;
        self
    }

    /// Set the worker-thread count (default 1). More than one thread
    /// requires a tiling scheme.
    pub fn threads(mut self, threads: usize) -> PlanBuilder {
        self.threads = Some(threads);
        self
    }

    /// Set the temporal space stride `s` (default: the paper's values —
    /// 7 in 1-D, 2 in 2-D/3-D, 1 for LCS).
    pub fn stride(mut self, stride: usize) -> PlanBuilder {
        self.stride = Some(stride);
        self
    }

    /// Pin each pool thread to one CPU (best-effort;
    /// `sched_setaffinity` on Linux/x86_64, an honest no-op elsewhere).
    /// The built plan reports whether pinning took effect via
    /// [`Plan::is_pinned`] and [`Report::pinned`]. Default off.
    pub fn pin(mut self, pin: bool) -> PlanBuilder {
        self.pin = pin;
        self
    }

    /// Set the wavefront schedule for skew/LCS tilings (default
    /// [`WaveSchedule::Pipelined`]; [`WaveSchedule::Barrier`] keeps the
    /// legacy bulk-synchronous schedule for A/B ablations). Both are
    /// bit-identical; only the synchronization pattern differs.
    pub fn wave_schedule(mut self, schedule: WaveSchedule) -> PlanBuilder {
        self.wave_schedule = schedule;
        self
    }

    /// Record data-reorganization operation counts in each run's
    /// [`Report`]. Only the instrumented paths support this: 1-D temporal
    /// under [`Select::Portable`] without tiling, and the reorg baseline.
    pub fn count_reorg(mut self, on: bool) -> PlanBuilder {
        self.count_reorg = on;
        self
    }

    /// Default temporal stride per problem kind (the paper's choices).
    fn default_stride(problem: &Problem) -> usize {
        match problem {
            Problem::Heat1d { .. } | Problem::Gs1d { .. } => 7,
            Problem::Lcs { .. } => 1,
            _ => 2,
        }
    }

    /// Compile `problem` into a [`Plan`]: validate the configuration,
    /// resolve the engine and tile geometry once, and allocate the thread
    /// pool and every scratch arena the execution will need.
    ///
    /// # Errors
    /// Any invalid configuration returns a descriptive [`PlanError`];
    /// see the variants for the catalogue. Degenerate-but-legal
    /// geometries (interiors below `VL·s`, workloads without an AVX2
    /// steady state) are *not* errors: they build fine and honestly
    /// resolve to the portable engine.
    pub fn build(&self, problem: &Problem) -> Result<Plan, PlanError> {
        let threads = self.threads.unwrap_or(1);
        if threads == 0 {
            return Err(PlanError::ZeroThreads);
        }
        if matches!(self.tiling, Tiling::None) && threads > 1 {
            return Err(PlanError::ThreadsRequireTiling { threads });
        }
        if problem.extents().contains(&0) && !matches!(problem, Problem::Lcs { .. }) {
            return Err(PlanError::EmptyDomain);
        }
        if self.select == Select::Avx2 && !tempora_simd::arch::avx2_available() {
            return Err(PlanError::Avx2Unavailable);
        }
        let s = match self.stride {
            Some(0) => return Err(PlanError::ZeroStride),
            Some(s) => s,
            None => Self::default_stride(problem),
        };
        self.check_method(problem)?;
        self.check_tiling(problem, s)?;
        self.check_count(problem)?;

        let (mut exec, engine, tiles) = self.build_exec(problem, s)?;
        // Pool first, then first-touch: the workspaces fault their tile
        // arenas in from the workers that will advance them (the owned
        // schedule reuses the same owner map).
        let pool = Pool::with_config(
            PoolConfig::new(threads)
                .pin(self.pin)
                .schedule(self.wave_schedule),
        );
        // A panic here (e.g. an injected `fault_in` failpoint) unwinds to
        // the caller: no `Plan` exists yet, so there is nothing to
        // poison, and dropping `pool` shuts its workers down cleanly.
        exec.fault_in(&pool);
        Ok(Plan {
            problem: *problem,
            method: self.method,
            tiling: self.tiling,
            engine,
            tiles,
            threads,
            count_reorg: self.count_reorg,
            pool,
            exec,
            poisoned: None,
        })
    }

    /// Method × problem legality.
    fn check_method(&self, problem: &Problem) -> Result<(), PlanError> {
        let reject = |why| {
            Err(PlanError::MethodUnsupported {
                method: self.method,
                problem: problem.kind_name(),
                why,
            })
        };
        match self.method {
            Method::Multiload if problem.is_gauss_seidel() => {
                reject("spatial auto-vectorization of Gauss-Seidel loops is illegal (loop-carried dependence)")
            }
            Method::Multiload if matches!(problem, Problem::Lcs { .. }) => {
                reject("the LCS wavefront has no spatial multi-load form")
            }
            Method::Reorg | Method::Dlt if !matches!(problem, Problem::Heat1d { .. }) => {
                reject("this baseline is implemented for Heat-1D only")
            }
            _ => Ok(()),
        }
    }

    /// Tiling × problem/method legality plus tile-geometry checks.
    fn check_tiling(&self, problem: &Problem, s: usize) -> Result<(), PlanError> {
        let reject = |why| {
            Err(PlanError::TilingUnsupported {
                tiling: self.tiling,
                problem: problem.kind_name(),
                why,
            })
        };
        let is_jacobi_grid = matches!(
            problem,
            Problem::Heat1d { .. }
                | Problem::Heat2d { .. }
                | Problem::Box2d { .. }
                | Problem::Life { .. }
                | Problem::Heat3d { .. }
        );
        match self.tiling {
            Tiling::None => Ok(()),
            Tiling::Ghost { block, height } => {
                if !is_jacobi_grid {
                    return reject("ghost-zone tiling applies to Jacobi stencils only");
                }
                if matches!(self.method, Method::Reorg | Method::Dlt) {
                    return Err(PlanError::MethodUnsupported {
                        method: self.method,
                        problem: problem.kind_name(),
                        why: "the reorg/DLT baselines have no tiled form",
                    });
                }
                if block == 0 {
                    return Err(PlanError::ZeroTileExtent);
                }
                let vl = if matches!(problem, Problem::Life { .. }) {
                    8
                } else {
                    4
                };
                if height < vl || height % vl != 0 {
                    return Err(PlanError::BadTileHeight { height, vl });
                }
                Ok(())
            }
            Tiling::Skew { block, height } => {
                if !problem.is_gauss_seidel() {
                    return reject(
                        "skewed (parallelogram) tiling applies to Gauss-Seidel stencils only",
                    );
                }
                if matches!(self.method, Method::Reorg | Method::Dlt) {
                    return Err(PlanError::MethodUnsupported {
                        method: self.method,
                        problem: problem.kind_name(),
                        why: "the reorg/DLT baselines have no tiled form",
                    });
                }
                if block == 0 {
                    return Err(PlanError::ZeroTileExtent);
                }
                const VL: usize = 4;
                if height < VL || height % VL != 0 {
                    return Err(PlanError::BadTileHeight { height, vl: VL });
                }
                // Wave disjointness: a tile touches block ± one block only
                // when blocks are at least height + VL·s + VL wide (scalar
                // bands reach back `height` columns: stride 0).
                let s_eff = if self.method == Method::Temporal {
                    s
                } else {
                    0
                };
                let min = height + VL * s_eff + VL;
                if block < min {
                    return Err(PlanError::BlockTooNarrow { block, min });
                }
                Ok(())
            }
            Tiling::LcsRect { xblock, yblock } => {
                if !matches!(problem, Problem::Lcs { .. }) {
                    return reject("rectangle tiling applies to the LCS wavefront only");
                }
                if xblock == 0 || yblock == 0 {
                    return Err(PlanError::ZeroTileExtent);
                }
                Ok(())
            }
        }
    }

    /// Reorg-op counting support.
    fn check_count(&self, problem: &Problem) -> Result<(), PlanError> {
        if !self.count_reorg {
            return Ok(());
        }
        match self.method {
            Method::Reorg => Ok(()),
            Method::Temporal => {
                if !matches!(problem, Problem::Heat1d { .. } | Problem::Gs1d { .. }) {
                    Err(PlanError::CountUnsupported {
                        why: "only the 1-D temporal engine is instrumented",
                    })
                } else if !matches!(self.tiling, Tiling::None) {
                    Err(PlanError::CountUnsupported {
                        why: "tiled runs are not instrumented",
                    })
                } else if self.select != Select::Portable {
                    Err(PlanError::CountUnsupported {
                        why: "counting requires Select::Portable (the AVX2 steady state is not instrumented)",
                    })
                } else {
                    Ok(())
                }
            }
            _ => Err(PlanError::CountUnsupported {
                why: "this method has no instrumented form",
            }),
        }
    }

    /// Stride legality for the temporal method (spatial methods ignore
    /// the stride entirely).
    fn check_stride_1d<K: Kernel1d>(&self, s: usize) -> Result<(), PlanError> {
        if self.method != Method::Temporal {
            return Ok(());
        }
        if s < K::MIN_STRIDE {
            return Err(PlanError::StrideTooSmall {
                stride: s,
                min: K::MIN_STRIDE,
            });
        }
        if s >= t1d::RING_CAP {
            return Err(PlanError::StrideTooLarge {
                stride: s,
                max: t1d::RING_CAP - 1,
            });
        }
        Ok(())
    }

    fn check_stride_min(&self, s: usize, min: usize) -> Result<(), PlanError> {
        if self.method == Method::Temporal && s < min {
            return Err(PlanError::StrideTooSmall { stride: s, min });
        }
        Ok(())
    }

    /// Construct the executor, resolved engine and tile geometry.
    // Justification: the boxed executor closure type is spelled out exactly once, here; a type alias would not make it clearer.
    #[allow(clippy::type_complexity)]
    fn build_exec(
        &self,
        problem: &Problem,
        s: usize,
    ) -> Result<(Box<dyn Exec>, Option<Engine>, Option<TileGeometry>), PlanError> {
        match *problem {
            Problem::Heat1d {
                n, steps, coeffs, ..
            } => {
                self.check_stride_1d::<JacobiKern1d>(s)?;
                match self.method {
                    Method::Reorg => Ok((
                        Box::new(Reorg1d {
                            coeffs,
                            steps,
                            counted: self.count_reorg,
                        }),
                        None,
                        None,
                    )),
                    Method::Dlt => Ok((Box::new(Dlt1d { coeffs, steps }), None, None)),
                    _ => self.plan_1d(JacobiKern1d(coeffs), n, steps, s),
                }
            }
            Problem::Gs1d {
                n, steps, coeffs, ..
            } => {
                self.check_stride_1d::<GsKern1d>(s)?;
                self.plan_1d(GsKern1d(coeffs), n, steps, s)
            }
            Problem::Heat2d {
                nx,
                ny,
                steps,
                coeffs,
                boundary,
            } => {
                self.check_stride_min(s, JacobiKern2d::MIN_STRIDE)?;
                self.plan_2d::<f64, 4, _>(JacobiKern2d(coeffs), nx, ny, boundary, steps, s)
            }
            Problem::Box2d {
                nx,
                ny,
                steps,
                coeffs,
                boundary,
            } => {
                self.check_stride_min(s, BoxKern2d::MIN_STRIDE)?;
                self.plan_2d::<f64, 4, _>(BoxKern2d(coeffs), nx, ny, boundary, steps, s)
            }
            Problem::Gs2d {
                nx,
                ny,
                steps,
                coeffs,
                boundary,
            } => {
                self.check_stride_min(s, GsKern2d::MIN_STRIDE)?;
                if let Tiling::Skew { block, height } = self.tiling {
                    // The 2-D skew workspace is f64-only; reached here for
                    // the one 2-D Gauss-Seidel kernel.
                    let mode = self.skew_mode(s);
                    let w = SkewGs2d::new(
                        GsKern2d(coeffs),
                        nx,
                        ny,
                        steps,
                        block,
                        height,
                        mode,
                        self.select,
                    );
                    let engine = w.engine();
                    let tiles = w.blocks();
                    Ok((
                        Box::new(SkewExec2d(w)),
                        engine,
                        Some(TileGeometry {
                            tiles,
                            block,
                            height,
                        }),
                    ))
                } else {
                    self.plan_2d::<f64, 4, _>(GsKern2d(coeffs), nx, ny, boundary, steps, s)
                }
            }
            Problem::Life {
                nx,
                ny,
                steps,
                rule,
                boundary,
            } => {
                self.check_stride_min(s, LifeKern2d::MIN_STRIDE)?;
                self.plan_2d::<i32, 8, _>(LifeKern2d(rule), nx, ny, boundary, steps, s)
            }
            Problem::Heat3d {
                nx,
                ny,
                nz,
                steps,
                coeffs,
                boundary,
            } => {
                self.check_stride_min(s, JacobiKern3d::MIN_STRIDE)?;
                self.plan_3d(JacobiKern3d(coeffs), nx, ny, nz, boundary, steps, s)
            }
            Problem::Gs3d {
                nx,
                ny,
                nz,
                steps,
                coeffs,
                boundary,
            } => {
                self.check_stride_min(s, GsKern3d::MIN_STRIDE)?;
                self.plan_3d(GsKern3d(coeffs), nx, ny, nz, boundary, steps, s)
            }
            Problem::Lcs { la, lb } => self.plan_lcs(la, lb, s),
        }
    }

    // Justification: the boxed executor closure type is spelled out at each plan_* builder; a type alias would not make it clearer.
    #[allow(clippy::type_complexity)]
    fn plan_1d<K: Avx2Exec1d + Copy + Send + 'static>(
        &self,
        kern: K,
        n: usize,
        steps: usize,
        s: usize,
    ) -> Result<(Box<dyn Exec>, Option<Engine>, Option<TileGeometry>), PlanError> {
        match self.tiling {
            Tiling::None => match self.method {
                Method::Temporal => {
                    let has = K::avx2_tile(s) && shape_has_vector_tiles(4, n, steps, s);
                    let engine = self.select.resolve(has);
                    Ok((
                        Box::new(Temporal1d {
                            kern,
                            steps,
                            s,
                            avx2: engine == Engine::Avx2,
                            counted: self.count_reorg,
                            scratch: t1d::Scratch1d::new(s),
                        }),
                        Some(engine),
                        None,
                    ))
                }
                Method::Multiload => Ok((
                    Box::new(Multiload1d {
                        kern,
                        steps,
                        tmp: vec![0.0; n + 2],
                    }),
                    None,
                    None,
                )),
                Method::Scalar => Ok((Box::new(Scalar1d { kern, steps }), None, None)),
                Method::Reorg | Method::Dlt => unreachable!("handled per-problem"),
            },
            Tiling::Ghost { block, height } => {
                let mode = self.ghost_mode(s);
                let w = GhostJacobi1d::new(kern, n, steps, block, height, mode, self.select);
                let engine = w.engine();
                let tiles = w.tiles();
                Ok((
                    Box::new(GhostExec1d(w)),
                    engine,
                    Some(TileGeometry {
                        tiles,
                        block,
                        height,
                    }),
                ))
            }
            Tiling::Skew { block, height } => {
                let mode = self.skew_mode(s);
                let w = SkewGs1d::new(kern, n, steps, block, height, mode, self.select);
                let engine = w.engine();
                let tiles = w.blocks();
                Ok((
                    Box::new(SkewExec1d(w)),
                    engine,
                    Some(TileGeometry {
                        tiles,
                        block,
                        height,
                    }),
                ))
            }
            Tiling::LcsRect { .. } => unreachable!("validated: LcsRect is LCS-only"),
        }
    }

    // Justification: the boxed executor closure type is spelled out at each plan_* builder; a type alias would not make it clearer.
    #[allow(clippy::type_complexity)]
    fn plan_2d<T: Scalar, const VL: usize, K: Avx2Exec2d<T> + Copy + Send + 'static>(
        &self,
        kern: K,
        nx: usize,
        ny: usize,
        bc: Boundary<T>,
        steps: usize,
        s: usize,
    ) -> Result<(Box<dyn Exec>, Option<Engine>, Option<TileGeometry>), PlanError>
    where
        Grid2<T>: crate::exec::StateGrid,
    {
        let rows = || (vec![T::ZERO; ny + 2], vec![T::ZERO; ny + 2]);
        match self.tiling {
            Tiling::None => match self.method {
                Method::Temporal => {
                    let has = K::avx2_tile(VL, s) && shape_has_vector_tiles(VL, nx, steps, s);
                    let engine = self.select.resolve(has);
                    Ok((
                        Box::new(Temporal2d::<T, VL, K> {
                            kern,
                            steps,
                            s,
                            avx2: engine == Engine::Avx2,
                            scratch: t2d::Scratch2d::new(s, ny),
                            rem_rows: rows(),
                        }),
                        Some(engine),
                        None,
                    ))
                }
                Method::Multiload => Ok((
                    Box::new(Multiload2d {
                        kern,
                        steps,
                        tmp: Grid2::new(nx, ny, 1, bc),
                    }),
                    None,
                    None,
                )),
                Method::Scalar => Ok((
                    Box::new(Scalar2d {
                        kern,
                        steps,
                        rows: rows(),
                    }),
                    None,
                    None,
                )),
                Method::Reorg | Method::Dlt => unreachable!("handled per-problem"),
            },
            Tiling::Ghost { block, height } => {
                let mode = self.ghost_mode(s);
                let w = GhostJacobi2d::<T, VL, K>::new(
                    kern,
                    nx,
                    ny,
                    bc,
                    steps,
                    block,
                    height,
                    mode,
                    self.select,
                );
                let engine = w.engine();
                let tiles = w.tiles();
                Ok((
                    Box::new(GhostExec2d(w)),
                    engine,
                    Some(TileGeometry {
                        tiles,
                        block,
                        height,
                    }),
                ))
            }
            Tiling::Skew { .. } => {
                unreachable!("validated: 2-D skew is handled per-problem (GS-2D only)")
            }
            Tiling::LcsRect { .. } => unreachable!("validated: LcsRect is LCS-only"),
        }
    }

    // Justification: boxed executor closure type plus the 3-D tile geometry; neither an alias nor a params struct would clarify.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn plan_3d<K: Avx2Exec3d + Copy + Send + 'static>(
        &self,
        kern: K,
        nx: usize,
        ny: usize,
        nz: usize,
        bc: Boundary<f64>,
        steps: usize,
        s: usize,
    ) -> Result<(Box<dyn Exec>, Option<Engine>, Option<TileGeometry>), PlanError> {
        let planes = || {
            let wp = (ny + 2) * (nz + 2);
            (vec![0.0; wp], vec![0.0; wp])
        };
        match self.tiling {
            Tiling::None => match self.method {
                Method::Temporal => {
                    let has = K::avx2_tile(s) && shape_has_vector_tiles(4, nx, steps, s);
                    let engine = self.select.resolve(has);
                    Ok((
                        Box::new(Temporal3d {
                            kern,
                            steps,
                            s,
                            avx2: engine == Engine::Avx2,
                            scratch: t3d::Scratch3d::new(s, ny, nz),
                            rem_planes: planes(),
                        }),
                        Some(engine),
                        None,
                    ))
                }
                Method::Multiload => Ok((
                    Box::new(Multiload3d {
                        kern,
                        steps,
                        tmp: Grid3::new(nx, ny, nz, 1, bc),
                    }),
                    None,
                    None,
                )),
                Method::Scalar => Ok((
                    Box::new(Scalar3d {
                        kern,
                        steps,
                        planes: planes(),
                    }),
                    None,
                    None,
                )),
                Method::Reorg | Method::Dlt => unreachable!("handled per-problem"),
            },
            Tiling::Ghost { block, height } => {
                let mode = self.ghost_mode(s);
                let w = GhostJacobi3d::new(
                    kern,
                    nx,
                    ny,
                    nz,
                    bc,
                    steps,
                    block,
                    height,
                    mode,
                    self.select,
                );
                let engine = w.engine();
                let tiles = w.tiles();
                Ok((
                    Box::new(GhostExec3d(w)),
                    engine,
                    Some(TileGeometry {
                        tiles,
                        block,
                        height,
                    }),
                ))
            }
            Tiling::Skew { block, height } => {
                let mode = self.skew_mode(s);
                let w = SkewGs3d::new(kern, nx, ny, nz, steps, block, height, mode, self.select);
                let engine = w.engine();
                let tiles = w.blocks();
                Ok((
                    Box::new(SkewExec3d(w)),
                    engine,
                    Some(TileGeometry {
                        tiles,
                        block,
                        height,
                    }),
                ))
            }
            Tiling::LcsRect { .. } => unreachable!("validated: LcsRect is LCS-only"),
        }
    }

    // Justification: the boxed executor closure type is spelled out at each plan_* builder; a type alias would not make it clearer.
    #[allow(clippy::type_complexity)]
    fn plan_lcs(
        &self,
        la: usize,
        lb: usize,
        s: usize,
    ) -> Result<(Box<dyn Exec>, Option<Engine>, Option<TileGeometry>), PlanError> {
        let temporal = self.method == Method::Temporal;
        match self.tiling {
            Tiling::None => {
                // Whole-row tiles: the AVX2 steady state needs one full
                // 8-level A tile and a row segment hosting the vector
                // schedule; degenerate shapes honestly resolve portable.
                let engine = temporal.then(|| {
                    self.select
                        .resolve(lcs_avx2::seq_has_vector_tiles(la, lb, s))
                });
                Ok((
                    Box::new(SeqLcs {
                        s,
                        temporal,
                        avx2: engine == Some(Engine::Avx2),
                        row: vec![0; lb + 1],
                        scratch: lcs::ScratchLcs::new(s),
                    }),
                    engine,
                    None,
                ))
            }
            Tiling::LcsRect { xblock, yblock } => {
                let w = LcsRect::new(la, lb, xblock, yblock, s, temporal, self.select);
                let engine = if temporal { w.engine() } else { None };
                Ok((
                    Box::new(RectLcs(w)),
                    engine,
                    Some(TileGeometry {
                        tiles: la.div_ceil(xblock) * lb.div_ceil(yblock),
                        block: xblock,
                        height: yblock,
                    }),
                ))
            }
            Tiling::Ghost { .. } | Tiling::Skew { .. } => {
                unreachable!("validated: grid tilings are not LCS tilings")
            }
        }
    }

    fn ghost_mode(&self, s: usize) -> ghost::Mode {
        match self.method {
            Method::Temporal => ghost::Mode::Temporal(s),
            Method::Multiload => ghost::Mode::Auto,
            Method::Scalar => ghost::Mode::Scalar,
            Method::Reorg | Method::Dlt => unreachable!("validated: baselines are untiled"),
        }
    }

    fn skew_mode(&self, s: usize) -> ghost::Mode {
        match self.method {
            Method::Temporal => ghost::Mode::Temporal(s),
            Method::Scalar => ghost::Mode::Scalar,
            _ => unreachable!("validated: skew runs temporal or scalar bands"),
        }
    }
}

/// A compiled, reusable execution plan: geometry validated, engine
/// resolved, thread pool and scratch arenas allocated — once. Call
/// [`Plan::run`] as many times as you like; after the first call no path
/// except the documented one-shot baselines (reorg/DLT) allocates.
pub struct Plan {
    problem: Problem,
    method: Method,
    tiling: Tiling,
    engine: Option<Engine>,
    tiles: Option<TileGeometry>,
    threads: usize,
    count_reorg: bool,
    pool: Pool,
    exec: Box<dyn Exec>,
    /// `Some(panic message)` after a run panicked mid-step: the state (and
    /// in principle the executor scratch) may be half advanced, so `run`
    /// refuses to produce further `Report`s until [`Plan::reset`].
    poisoned: Option<String>,
}

// A plan is the unit a serving system caches, pools and dispatches per
// request, so it must stay transferable across threads.
const _: () = {
    fn assert_send<T: Send>() {}
    fn plan_is_send() {
        assert_send::<Plan>();
    }
    let _ = plan_is_send;
};

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("problem", &self.problem)
            .field("method", &self.method)
            .field("tiling", &self.tiling)
            .field("engine", &self.engine)
            .field("tiles", &self.tiles)
            .field("threads", &self.threads)
            .finish()
    }
}

impl Plan {
    /// The problem this plan was compiled for.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The method this plan executes.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The tiling this plan executes.
    pub fn tiling(&self) -> Tiling {
        self.tiling
    }

    /// The engine the plan resolved at build time (`Some` for the
    /// dispatched temporal method, `None` otherwise).
    pub fn engine(&self) -> Option<Engine> {
        self.engine
    }

    /// Worker threads the plan's pool runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when [`PlanBuilder::pin`] was requested and every pool
    /// thread was successfully pinned to a CPU.
    pub fn is_pinned(&self) -> bool {
        self.pool.is_pinned()
    }

    /// The wavefront schedule the plan's pool dispatches for skew/LCS
    /// tilings.
    pub fn wave_schedule(&self) -> WaveSchedule {
        self.pool.wave_schedule()
    }

    /// Advance `state` by the problem's time extent (compute the DP table
    /// for LCS), reusing every arena the plan allocated at build time.
    /// Returns a [`Report`] describing what executed.
    ///
    /// # Errors
    /// [`PlanError::StateMismatch`] / [`PlanError::StateShapeMismatch`]
    /// when `state` does not belong to this plan's problem.
    /// [`PlanError::Poisoned`] when a run panicked mid-step — for the
    /// panicking call itself (the panic is caught here, never re-thrown)
    /// and for every later call until [`Plan::reset`]. A failed run never
    /// fabricates a [`Report`].
    pub fn run(&mut self, state: &mut State) -> Result<Report, PlanError> {
        if let Some(panic) = &self.poisoned {
            return Err(PlanError::Poisoned {
                panic: panic.clone(),
            });
        }
        self.problem.check_state(state)?;
        let session = self.count_reorg.then(count::Session::start);
        // AssertUnwindSafe: on a panic the executor scratch and `state`
        // may be mid-update, which is exactly what the poisoned flag
        // records — neither is read again before an explicit reset.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.exec.run(state, &self.pool)
        }));
        let reorg = session.map(count::Session::finish);
        let result = match result {
            Ok(r) => r,
            Err(payload) => {
                let panic = panic_message(payload.as_ref());
                self.poisoned = Some(panic.clone());
                return Err(PlanError::Poisoned { panic });
            }
        };
        result?;
        Ok(Report {
            engine: self.engine,
            steps: self.problem.steps(),
            threads: self.threads,
            pinned: self.pool.is_pinned(),
            tiles: self.tiles,
            reorg,
            lcs_length: state.lcs().and_then(|l| l.length),
        })
    }

    /// True when a previous [`Plan::run`] panicked and the plan refuses
    /// to run until [`Plan::reset`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Clear poisoning after a panicked run.
    ///
    /// The caller re-initializes `state`'s payload data first (a panicked
    /// run may have advanced it partially); `reset` re-validates that the
    /// state still belongs to this plan's problem and then restores the
    /// plan to a runnable configuration. Every executor fully rewrites
    /// the scratch it reads at the start of each run (the invariant the
    /// plan-reuse bitwise tests pin down), so after `reset` a run on a
    /// freshly initialized state is bitwise-identical to a fresh plan's.
    ///
    /// # Errors
    /// [`PlanError::StateMismatch`] / [`PlanError::StateShapeMismatch`]
    /// when `state` does not belong to this plan's problem; the plan
    /// stays poisoned in that case. Calling `reset` on a healthy plan is
    /// a no-op.
    pub fn reset(&mut self, state: &mut State) -> Result<(), PlanError> {
        self.problem.check_state(state)?;
        self.poisoned = None;
        Ok(())
    }
}

/// Render a caught panic payload for [`PlanError::Poisoned`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}
