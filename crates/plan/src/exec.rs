//! Object-safe executors behind [`crate::Plan`].
//!
//! Each executor owns its kernel, schedule constants and **all scratch it
//! will ever need** — temporal rings, remainder row/plane buffers,
//! multi-load ping-pong grids, tiling workspaces — so repeated
//! [`Exec::run`] calls on fresh states are allocation-free (the two
//! documented exceptions are the one-shot reorg/DLT baselines, which
//! build their transposed layouts per call by design).
//!
//! All paths reuse the engine/tiling layers' own tile primitives and are
//! bit-identical to the corresponding one-shot free functions and the
//! scalar references.

use crate::{PlanError, State};
use tempora_baseline::{dlt, reorg};
use tempora_core::engine::{Avx2Exec1d, Avx2Exec2d, Avx2Exec3d};
use tempora_core::kernels::{Kernel1d, Kernel2d, Kernel3d};
use tempora_core::{lcs, lcs_avx2, t1d, t2d, t3d};
use tempora_grid::{Grid1, Grid2, Grid3};
use tempora_parallel::Pool;
use tempora_simd::Scalar;
use tempora_stencil::Heat1dCoeffs;
use tempora_tiling::ghost::{auto_step_1d, auto_step_2d, auto_step_3d};
use tempora_tiling::{
    GhostJacobi1d, GhostJacobi2d, GhostJacobi3d, LcsRect, SkewGs1d, SkewGs2d, SkewGs3d,
};

/// One compiled execution path: advance a [`State`] by the plan's time
/// extent. Object-safe so [`crate::Plan`] can hold any workload behind
/// one pointer; `Send` so a plan can be cached in a pool and dispatched
/// across request threads.
pub(crate) trait Exec: Send {
    fn run(&mut self, state: &mut State, pool: &Pool) -> Result<(), PlanError>;

    /// First-touch the executor's arenas through `pool` so each page is
    /// faulted in by the worker that will later advance it (the tiled
    /// workspaces reuse `advance`'s owner map). Sequential executors
    /// have nothing to place, so the default is a no-op.
    fn fault_in(&mut self, _pool: &Pool) {}
}

fn mismatch(expected: &'static str, state: &State) -> PlanError {
    PlanError::StateMismatch {
        expected,
        got: state.variant_name(),
    }
}

/// Extract the concrete grid a generic executor runs on.
pub(crate) trait StateGrid: Sized {
    fn from_state(state: &mut State) -> Result<&mut Self, PlanError>;
}

impl StateGrid for Grid1<f64> {
    fn from_state(state: &mut State) -> Result<&mut Self, PlanError> {
        match state {
            State::Grid1(g) => Ok(g),
            other => Err(mismatch("Grid1", other)),
        }
    }
}

impl StateGrid for Grid2<f64> {
    fn from_state(state: &mut State) -> Result<&mut Self, PlanError> {
        match state {
            State::Grid2(g) => Ok(g),
            other => Err(mismatch("Grid2", other)),
        }
    }
}

impl StateGrid for Grid2<i32> {
    fn from_state(state: &mut State) -> Result<&mut Self, PlanError> {
        match state {
            State::Grid2i(g) => Ok(g),
            other => Err(mismatch("Grid2i", other)),
        }
    }
}

impl StateGrid for Grid3<f64> {
    fn from_state(state: &mut State) -> Result<&mut Self, PlanError> {
        match state {
            State::Grid3(g) => Ok(g),
            other => Err(mismatch("Grid3", other)),
        }
    }
}

// ---------------------------------------------------------------------
// Sequential 1-D
// ---------------------------------------------------------------------

/// Sequential temporal 1-D engine (portable or AVX2 steady state, fixed
/// at plan time), scratch reused across runs.
pub(crate) struct Temporal1d<K: Avx2Exec1d> {
    pub kern: K,
    pub steps: usize,
    pub s: usize,
    pub avx2: bool,
    pub counted: bool,
    pub scratch: t1d::Scratch1d<4>,
}

impl<K: Avx2Exec1d + Send> Exec for Temporal1d<K> {
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid1<f64> as StateGrid>::from_state(state)?;
        let n = g.n();
        let a = g.data_mut();
        for _ in 0..self.steps / 4 {
            if self.avx2 {
                self.kern.tile_avx2(a, n, self.s, &mut self.scratch);
            } else if self.counted {
                t1d::tile::<4, true, K>(a, n, &self.kern, self.s, &mut self.scratch);
            } else {
                t1d::tile::<4, false, K>(a, n, &self.kern, self.s, &mut self.scratch);
            }
        }
        for _ in 0..self.steps % 4 {
            t1d::scalar_step_inplace(a, n, &self.kern);
        }
        Ok(())
    }
}

/// Sequential scalar 1-D sweep (the paper's Algorithm 1, in place).
pub(crate) struct Scalar1d<K: Kernel1d> {
    pub kern: K,
    pub steps: usize,
}

impl<K: Kernel1d + Send> Exec for Scalar1d<K> {
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid1<f64> as StateGrid>::from_state(state)?;
        let n = g.n();
        let a = g.data_mut();
        for _ in 0..self.steps {
            t1d::scalar_step_inplace(a, n, &self.kern);
        }
        Ok(())
    }
}

/// Sequential multi-load (spatially vectorized) 1-D sweep, ping-ponging a
/// plan-owned buffer.
pub(crate) struct Multiload1d<K: Avx2Exec1d> {
    pub kern: K,
    pub steps: usize,
    pub tmp: Vec<f64>,
}

impl<K: Avx2Exec1d + Send> Exec for Multiload1d<K> {
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid1<f64> as StateGrid>::from_state(state)?;
        let n = g.n();
        let a = g.data_mut();
        let tmp = &mut self.tmp[..n + 2];
        tmp.copy_from_slice(&a[..n + 2]);
        for step in 0..self.steps {
            if step % 2 == 0 {
                auto_step_1d(a, tmp, n, &self.kern);
            } else {
                auto_step_1d(tmp, a, n, &self.kern);
            }
        }
        if self.steps % 2 == 1 {
            a[..n + 2].copy_from_slice(tmp);
        }
        Ok(())
    }
}

/// Data-reorganization baseline (§2.2), Heat-1D only. One-shot by design:
/// the scheme's transposed layout is rebuilt per call, so this executor
/// allocates per run (documented in [`crate::PlanBuilder::method`]).
pub(crate) struct Reorg1d {
    pub coeffs: Heat1dCoeffs,
    pub steps: usize,
    pub counted: bool,
}

impl Exec for Reorg1d {
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid1<f64> as StateGrid>::from_state(state)?;
        let out = if self.counted {
            reorg::heat1d_counted(g, self.coeffs, self.steps)
        } else {
            reorg::heat1d(g, self.coeffs, self.steps)
        };
        *g = out;
        Ok(())
    }
}

/// Dimension-lifted-transpose baseline (§2.2), Heat-1D only. One-shot by
/// design (see [`Reorg1d`]).
pub(crate) struct Dlt1d {
    pub coeffs: Heat1dCoeffs,
    pub steps: usize,
}

impl Exec for Dlt1d {
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid1<f64> as StateGrid>::from_state(state)?;
        *g = dlt::heat1d(g, self.coeffs, self.steps);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Sequential 2-D
// ---------------------------------------------------------------------

/// Sequential temporal 2-D engine (portable or AVX2 steady state, fixed
/// at plan time), scratch and remainder rows reused across runs. Both
/// steady states run at the plan's own lane count (4 f64 lanes, 8 i32
/// lanes for Life), so they share one scratch.
pub(crate) struct Temporal2d<T: Scalar, const VL: usize, K: Avx2Exec2d<T>> {
    pub kern: K,
    pub steps: usize,
    pub s: usize,
    pub avx2: bool,
    pub scratch: t2d::Scratch2d<T, VL>,
    pub rem_rows: (Vec<T>, Vec<T>),
}

impl<T: Scalar, const VL: usize, K: Avx2Exec2d<T> + Send> Exec for Temporal2d<T, VL, K>
where
    Grid2<T>: StateGrid,
{
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid2<T> as StateGrid>::from_state(state)?;
        for _ in 0..self.steps / VL {
            if self.avx2 {
                self.kern.tile_avx2(g, self.s, &mut self.scratch);
            } else {
                t2d::tile::<T, VL, K>(g, &self.kern, self.s, &mut self.scratch);
            }
        }
        let rem = self.steps % VL;
        if rem > 0 {
            let (ra, rb) = &mut self.rem_rows;
            for _ in 0..rem {
                t2d::scalar_step_inplace(g, &self.kern, ra, rb);
            }
        }
        Ok(())
    }
}

/// Sequential scalar 2-D sweep (in place, plan-owned row buffers).
pub(crate) struct Scalar2d<T: Scalar, K: Kernel2d<T>> {
    pub kern: K,
    pub steps: usize,
    pub rows: (Vec<T>, Vec<T>),
}

impl<T: Scalar, K: Kernel2d<T> + Send> Exec for Scalar2d<T, K>
where
    Grid2<T>: StateGrid,
{
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid2<T> as StateGrid>::from_state(state)?;
        let (ra, rb) = &mut self.rows;
        for _ in 0..self.steps {
            t2d::scalar_step_inplace(g, &self.kern, ra, rb);
        }
        Ok(())
    }
}

/// Sequential multi-load 2-D sweep, ping-ponging a plan-owned grid.
pub(crate) struct Multiload2d<T: Scalar, K: Kernel2d<T>> {
    pub kern: K,
    pub steps: usize,
    pub tmp: Grid2<T>,
}

impl<T: Scalar, K: Kernel2d<T> + Send> Exec for Multiload2d<T, K>
where
    Grid2<T>: StateGrid,
{
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid2<T> as StateGrid>::from_state(state)?;
        self.tmp.data_mut().copy_from_slice(g.data());
        for step in 0..self.steps {
            if step % 2 == 0 {
                auto_step_2d(g, &mut self.tmp, &self.kern);
            } else {
                auto_step_2d(&self.tmp, g, &self.kern);
            }
        }
        if self.steps % 2 == 1 {
            g.data_mut().copy_from_slice(self.tmp.data());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Sequential 3-D
// ---------------------------------------------------------------------

/// Sequential temporal 3-D engine (portable and AVX2 both run at
/// `VL = 4`), scratch and remainder planes reused across runs.
pub(crate) struct Temporal3d<K: Avx2Exec3d> {
    pub kern: K,
    pub steps: usize,
    pub s: usize,
    pub avx2: bool,
    pub scratch: t3d::Scratch3d<f64, 4>,
    pub rem_planes: (Vec<f64>, Vec<f64>),
}

impl<K: Avx2Exec3d + Send> Exec for Temporal3d<K> {
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid3<f64> as StateGrid>::from_state(state)?;
        for _ in 0..self.steps / 4 {
            if self.avx2 {
                self.kern.tile_avx2(g, self.s, &mut self.scratch);
            } else {
                t3d::tile::<f64, 4, K>(g, &self.kern, self.s, &mut self.scratch);
            }
        }
        let rem = self.steps % 4;
        if rem > 0 {
            let (pa, pb) = &mut self.rem_planes;
            for _ in 0..rem {
                t3d::scalar_step_inplace(g, &self.kern, pa, pb);
            }
        }
        Ok(())
    }
}

/// Sequential scalar 3-D sweep (in place, plan-owned plane buffers).
pub(crate) struct Scalar3d<K: Kernel3d<f64>> {
    pub kern: K,
    pub steps: usize,
    pub planes: (Vec<f64>, Vec<f64>),
}

impl<K: Kernel3d<f64> + Send> Exec for Scalar3d<K> {
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid3<f64> as StateGrid>::from_state(state)?;
        let (pa, pb) = &mut self.planes;
        for _ in 0..self.steps {
            t3d::scalar_step_inplace(g, &self.kern, pa, pb);
        }
        Ok(())
    }
}

/// Sequential multi-load 3-D sweep, ping-ponging a plan-owned grid.
pub(crate) struct Multiload3d<K: Kernel3d<f64>> {
    pub kern: K,
    pub steps: usize,
    pub tmp: Grid3<f64>,
}

impl<K: Kernel3d<f64> + Send> Exec for Multiload3d<K> {
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let g = <Grid3<f64> as StateGrid>::from_state(state)?;
        self.tmp.data_mut().copy_from_slice(g.data());
        for step in 0..self.steps {
            if step % 2 == 0 {
                auto_step_3d(g, &mut self.tmp, &self.kern);
            } else {
                auto_step_3d(&self.tmp, g, &self.kern);
            }
        }
        if self.steps % 2 == 1 {
            g.data_mut().copy_from_slice(self.tmp.data());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Sequential LCS
// ---------------------------------------------------------------------

/// Sequential LCS DP (temporal `i32×8` tiles — portable or AVX2 steady
/// state, fixed at plan time — or scalar rows), rolling row and scratch
/// reused across runs. Writes the result into `LcsState::length`.
pub(crate) struct SeqLcs {
    pub s: usize,
    pub temporal: bool,
    pub avx2: bool,
    pub row: Vec<i32>,
    pub scratch: lcs::ScratchLcs<8>,
}

impl Exec for SeqLcs {
    fn run(&mut self, state: &mut State, _pool: &Pool) -> Result<(), PlanError> {
        let State::Lcs(l) = state else {
            return Err(mismatch("Lcs", state));
        };
        let (la, lb) = (l.a.len(), l.b.len());
        if la == 0 || lb == 0 {
            l.length = Some(0);
            return Ok(());
        }
        self.row.fill(0);
        let row = &mut self.row[..lb + 1];
        if self.temporal {
            const VL: usize = 8;
            let tiles = la / VL;
            for t in 0..tiles {
                let a_tile = &l.a[t * VL..(t + 1) * VL];
                match self.avx2 {
                    #[cfg(target_arch = "x86_64")]
                    true => lcs_avx2::tile_avx2(row, a_tile, &l.b, self.s, &mut self.scratch),
                    #[cfg(not(target_arch = "x86_64"))]
                    true => unreachable!("AVX2 resolved on a non-x86-64 target"),
                    false => lcs::tile::<VL>(row, a_tile, &l.b, self.s, &mut self.scratch),
                }
            }
            for &ca in &l.a[tiles * VL..] {
                lcs::scalar_row_step(row, ca, &l.b);
            }
        } else {
            for &ca in &l.a {
                lcs::scalar_row_step(row, ca, &l.b);
            }
        }
        l.length = Some(row[lb]);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Tiled executors (thin adapters over the tiling workspaces)
// ---------------------------------------------------------------------

pub(crate) struct GhostExec1d<K: Avx2Exec1d>(pub GhostJacobi1d<K>);

impl<K: Avx2Exec1d + Send> Exec for GhostExec1d<K> {
    fn run(&mut self, state: &mut State, pool: &Pool) -> Result<(), PlanError> {
        self.0
            .advance(<Grid1<f64> as StateGrid>::from_state(state)?, pool);
        Ok(())
    }

    fn fault_in(&mut self, pool: &Pool) {
        self.0.fault_in(pool);
    }
}

pub(crate) struct GhostExec2d<T: Scalar, const VL: usize, K: Avx2Exec2d<T>>(
    pub GhostJacobi2d<T, VL, K>,
);

impl<T: Scalar, const VL: usize, K: Avx2Exec2d<T> + Send> Exec for GhostExec2d<T, VL, K>
where
    Grid2<T>: StateGrid,
{
    fn run(&mut self, state: &mut State, pool: &Pool) -> Result<(), PlanError> {
        self.0
            .advance(<Grid2<T> as StateGrid>::from_state(state)?, pool);
        Ok(())
    }

    fn fault_in(&mut self, pool: &Pool) {
        self.0.fault_in(pool);
    }
}

pub(crate) struct GhostExec3d<K: Avx2Exec3d>(pub GhostJacobi3d<K>);

impl<K: Avx2Exec3d + Send> Exec for GhostExec3d<K> {
    fn run(&mut self, state: &mut State, pool: &Pool) -> Result<(), PlanError> {
        self.0
            .advance(<Grid3<f64> as StateGrid>::from_state(state)?, pool);
        Ok(())
    }

    fn fault_in(&mut self, pool: &Pool) {
        self.0.fault_in(pool);
    }
}

pub(crate) struct SkewExec1d<K: Avx2Exec1d>(pub SkewGs1d<K>);

impl<K: Avx2Exec1d + Send> Exec for SkewExec1d<K> {
    fn run(&mut self, state: &mut State, pool: &Pool) -> Result<(), PlanError> {
        self.0
            .advance(<Grid1<f64> as StateGrid>::from_state(state)?, pool);
        Ok(())
    }
}

pub(crate) struct SkewExec2d<K: Avx2Exec2d<f64>>(pub SkewGs2d<K>);

impl<K: Avx2Exec2d<f64> + Send> Exec for SkewExec2d<K> {
    fn run(&mut self, state: &mut State, pool: &Pool) -> Result<(), PlanError> {
        self.0
            .advance(<Grid2<f64> as StateGrid>::from_state(state)?, pool);
        Ok(())
    }

    fn fault_in(&mut self, pool: &Pool) {
        self.0.fault_in(pool);
    }
}

pub(crate) struct SkewExec3d<K: Avx2Exec3d>(pub SkewGs3d<K>);

impl<K: Avx2Exec3d + Send> Exec for SkewExec3d<K> {
    fn run(&mut self, state: &mut State, pool: &Pool) -> Result<(), PlanError> {
        self.0
            .advance(<Grid3<f64> as StateGrid>::from_state(state)?, pool);
        Ok(())
    }

    fn fault_in(&mut self, pool: &Pool) {
        self.0.fault_in(pool);
    }
}

pub(crate) struct RectLcs(pub LcsRect);

impl Exec for RectLcs {
    fn run(&mut self, state: &mut State, pool: &Pool) -> Result<(), PlanError> {
        let State::Lcs(l) = state else {
            return Err(mismatch("Lcs", state));
        };
        l.length = Some(self.0.run(&l.a, &l.b, pool));
        Ok(())
    }

    fn fault_in(&mut self, pool: &Pool) {
        self.0.fault_in(pool);
    }
}
