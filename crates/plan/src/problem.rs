//! [`Problem`] — the typed stencil descriptor — and [`State`] — the data
//! a plan advances.
//!
//! A `Problem` carries everything geometry- and physics-shaped: the
//! stencil kind, interior extents, time extent, coefficients and boundary
//! condition. It deliberately carries **no data**: the grid (or sequence
//! pair) lives in a [`State`], so one compiled plan can be re-executed
//! against many states (the serving pattern: plan per configuration,
//! state per request).

use crate::PlanError;
use tempora_grid::{Boundary, Grid1, Grid2, Grid3};
use tempora_stencil::{
    Box2dCoeffs, Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs,
    LifeRule,
};

/// A typed stencil problem: kind + interior extents + time extent +
/// coefficients + boundary condition.
///
/// Construct one with the per-kind helpers ([`Problem::heat1d`] …), which
/// default the boundary to Dirichlet zero, or build the variant directly
/// for a custom boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum Problem {
    /// Heat-1D (1D3P Jacobi).
    Heat1d {
        /// Interior points.
        n: usize,
        /// Time steps per [`crate::Plan::run`] call.
        steps: usize,
        /// Stencil coefficients.
        coeffs: Heat1dCoeffs,
        /// Boundary condition.
        boundary: Boundary<f64>,
    },
    /// GS-1D (1D3P Gauss-Seidel).
    Gs1d {
        /// Interior points.
        n: usize,
        /// Time steps per run.
        steps: usize,
        /// Stencil coefficients.
        coeffs: Gs1dCoeffs,
        /// Boundary condition.
        boundary: Boundary<f64>,
    },
    /// Heat-2D (2D5P Jacobi).
    Heat2d {
        /// Outer interior extent.
        nx: usize,
        /// Inner interior extent.
        ny: usize,
        /// Time steps per run.
        steps: usize,
        /// Stencil coefficients.
        coeffs: Heat2dCoeffs,
        /// Boundary condition.
        boundary: Boundary<f64>,
    },
    /// 2D9P (box Jacobi).
    Box2d {
        /// Outer interior extent.
        nx: usize,
        /// Inner interior extent.
        ny: usize,
        /// Time steps per run.
        steps: usize,
        /// Stencil coefficients.
        coeffs: Box2dCoeffs,
        /// Boundary condition.
        boundary: Boundary<f64>,
    },
    /// GS-2D (2D5P Gauss-Seidel).
    Gs2d {
        /// Outer interior extent.
        nx: usize,
        /// Inner interior extent.
        ny: usize,
        /// Time steps per run.
        steps: usize,
        /// Stencil coefficients.
        coeffs: Gs2dCoeffs,
        /// Boundary condition.
        boundary: Boundary<f64>,
    },
    /// Game of Life (integer 2D9P, 8 lanes).
    Life {
        /// Outer interior extent.
        nx: usize,
        /// Inner interior extent.
        ny: usize,
        /// Generations per run.
        steps: usize,
        /// Birth/survival rule.
        rule: LifeRule,
        /// Boundary condition.
        boundary: Boundary<i32>,
    },
    /// Heat-3D (3D7P Jacobi).
    Heat3d {
        /// Outer interior extent.
        nx: usize,
        /// Middle interior extent.
        ny: usize,
        /// Inner interior extent.
        nz: usize,
        /// Time steps per run.
        steps: usize,
        /// Stencil coefficients.
        coeffs: Heat3dCoeffs,
        /// Boundary condition.
        boundary: Boundary<f64>,
    },
    /// GS-3D (3D7P Gauss-Seidel).
    Gs3d {
        /// Outer interior extent.
        nx: usize,
        /// Middle interior extent.
        ny: usize,
        /// Inner interior extent.
        nz: usize,
        /// Time steps per run.
        steps: usize,
        /// Stencil coefficients.
        coeffs: Gs3dCoeffs,
        /// Boundary condition.
        boundary: Boundary<f64>,
    },
    /// Longest-common-subsequence DP over a `la × lb` table.
    Lcs {
        /// Length of sequence A.
        la: usize,
        /// Length of sequence B.
        lb: usize,
    },
}

impl Problem {
    /// Heat-1D with Dirichlet-zero boundary.
    pub fn heat1d(n: usize, steps: usize, coeffs: Heat1dCoeffs) -> Problem {
        Problem::Heat1d {
            n,
            steps,
            coeffs,
            boundary: Boundary::Dirichlet(0.0),
        }
    }

    /// GS-1D with Dirichlet-zero boundary.
    pub fn gs1d(n: usize, steps: usize, coeffs: Gs1dCoeffs) -> Problem {
        Problem::Gs1d {
            n,
            steps,
            coeffs,
            boundary: Boundary::Dirichlet(0.0),
        }
    }

    /// Heat-2D with Dirichlet-zero boundary.
    pub fn heat2d(nx: usize, ny: usize, steps: usize, coeffs: Heat2dCoeffs) -> Problem {
        Problem::Heat2d {
            nx,
            ny,
            steps,
            coeffs,
            boundary: Boundary::Dirichlet(0.0),
        }
    }

    /// 2D9P with Dirichlet-zero boundary.
    pub fn box2d(nx: usize, ny: usize, steps: usize, coeffs: Box2dCoeffs) -> Problem {
        Problem::Box2d {
            nx,
            ny,
            steps,
            coeffs,
            boundary: Boundary::Dirichlet(0.0),
        }
    }

    /// GS-2D with Dirichlet-zero boundary.
    pub fn gs2d(nx: usize, ny: usize, steps: usize, coeffs: Gs2dCoeffs) -> Problem {
        Problem::Gs2d {
            nx,
            ny,
            steps,
            coeffs,
            boundary: Boundary::Dirichlet(0.0),
        }
    }

    /// Life with dead (zero) boundary.
    pub fn life(nx: usize, ny: usize, steps: usize, rule: LifeRule) -> Problem {
        Problem::Life {
            nx,
            ny,
            steps,
            rule,
            boundary: Boundary::Dirichlet(0),
        }
    }

    /// Heat-3D with Dirichlet-zero boundary.
    pub fn heat3d(nx: usize, ny: usize, nz: usize, steps: usize, coeffs: Heat3dCoeffs) -> Problem {
        Problem::Heat3d {
            nx,
            ny,
            nz,
            steps,
            coeffs,
            boundary: Boundary::Dirichlet(0.0),
        }
    }

    /// GS-3D with Dirichlet-zero boundary.
    pub fn gs3d(nx: usize, ny: usize, nz: usize, steps: usize, coeffs: Gs3dCoeffs) -> Problem {
        Problem::Gs3d {
            nx,
            ny,
            nz,
            steps,
            coeffs,
            boundary: Boundary::Dirichlet(0.0),
        }
    }

    /// LCS over sequences of lengths `la` and `lb`.
    pub fn lcs(la: usize, lb: usize) -> Problem {
        Problem::Lcs { la, lb }
    }

    /// The benchmark name of this problem kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Problem::Heat1d { .. } => "Heat-1D",
            Problem::Gs1d { .. } => "GS-1D",
            Problem::Heat2d { .. } => "Heat-2D",
            Problem::Box2d { .. } => "2D9P",
            Problem::Gs2d { .. } => "GS-2D",
            Problem::Life { .. } => "Life",
            Problem::Heat3d { .. } => "Heat-3D",
            Problem::Gs3d { .. } => "GS-3D",
            Problem::Lcs { .. } => "LCS",
        }
    }

    /// True for Gauss-Seidel update kinds (in-place dependence on the
    /// newest west/north values).
    pub fn is_gauss_seidel(&self) -> bool {
        matches!(
            self,
            Problem::Gs1d { .. } | Problem::Gs2d { .. } | Problem::Gs3d { .. }
        )
    }

    /// Grid points updated per time step (DP cells per row for LCS) —
    /// the numerator of the Gstencils/s metric.
    pub fn points(&self) -> usize {
        match *self {
            Problem::Heat1d { n, .. } | Problem::Gs1d { n, .. } => n,
            Problem::Heat2d { nx, ny, .. }
            | Problem::Box2d { nx, ny, .. }
            | Problem::Gs2d { nx, ny, .. }
            | Problem::Life { nx, ny, .. } => nx * ny,
            Problem::Heat3d { nx, ny, nz, .. } | Problem::Gs3d { nx, ny, nz, .. } => nx * ny * nz,
            Problem::Lcs { lb, .. } => lb,
        }
    }

    /// Time steps one `Plan::run` call advances (table rows for LCS).
    pub fn steps(&self) -> usize {
        match *self {
            Problem::Heat1d { steps, .. }
            | Problem::Gs1d { steps, .. }
            | Problem::Heat2d { steps, .. }
            | Problem::Box2d { steps, .. }
            | Problem::Gs2d { steps, .. }
            | Problem::Life { steps, .. }
            | Problem::Heat3d { steps, .. }
            | Problem::Gs3d { steps, .. } => steps,
            Problem::Lcs { la, .. } => la,
        }
    }

    /// Interior extents as `[outer, middle, inner]` (unused dimensions 1;
    /// `[la, lb, 1]` for LCS).
    pub fn extents(&self) -> [usize; 3] {
        match *self {
            Problem::Heat1d { n, .. } | Problem::Gs1d { n, .. } => [n, 1, 1],
            Problem::Heat2d { nx, ny, .. }
            | Problem::Box2d { nx, ny, .. }
            | Problem::Gs2d { nx, ny, .. }
            | Problem::Life { nx, ny, .. } => [nx, ny, 1],
            Problem::Heat3d { nx, ny, nz, .. } | Problem::Gs3d { nx, ny, nz, .. } => [nx, ny, nz],
            Problem::Lcs { la, lb } => [la, lb, 1],
        }
    }

    /// Allocate a fresh, zero-initialized [`State`] matching this problem
    /// (halo cells hold the boundary value; LCS sequences are all-zero
    /// symbols). Fill it through the state's grid accessors before
    /// running.
    pub fn state(&self) -> State {
        match *self {
            Problem::Heat1d { n, boundary, .. } | Problem::Gs1d { n, boundary, .. } => {
                State::Grid1(Grid1::new(n, 1, boundary))
            }
            Problem::Heat2d {
                nx, ny, boundary, ..
            }
            | Problem::Box2d {
                nx, ny, boundary, ..
            }
            | Problem::Gs2d {
                nx, ny, boundary, ..
            } => State::Grid2(Grid2::new(nx, ny, 1, boundary)),
            Problem::Life {
                nx, ny, boundary, ..
            } => State::Grid2i(Grid2::new(nx, ny, 1, boundary)),
            Problem::Heat3d {
                nx,
                ny,
                nz,
                boundary,
                ..
            }
            | Problem::Gs3d {
                nx,
                ny,
                nz,
                boundary,
                ..
            } => State::Grid3(Grid3::new(nx, ny, nz, 1, boundary)),
            Problem::Lcs { la, lb } => State::Lcs(LcsState {
                a: vec![0; la],
                b: vec![0; lb],
                length: None,
            }),
        }
    }

    /// Check that `state` matches this problem's kind and shape.
    pub(crate) fn check_state(&self, state: &State) -> Result<(), PlanError> {
        let expected = self.state_variant();
        let got = state.variant_name();
        if expected != got {
            return Err(PlanError::StateMismatch { expected, got });
        }
        let want = self.extents();
        let have = state.extents();
        if want != have {
            return Err(PlanError::StateShapeMismatch {
                expected: want,
                got: have,
            });
        }
        // The engines assume the halo-1 layout (`a[0]` is the boundary
        // cell, interior starts at 1); a wide-halo grid would be read
        // off by one, silently.
        if let Some(h) = state.halo() {
            if h != 1 {
                return Err(PlanError::UnsupportedHalo { halo: h });
            }
        }
        Ok(())
    }

    fn state_variant(&self) -> &'static str {
        match self {
            Problem::Heat1d { .. } | Problem::Gs1d { .. } => "Grid1",
            Problem::Heat2d { .. } | Problem::Box2d { .. } | Problem::Gs2d { .. } => "Grid2",
            Problem::Life { .. } => "Grid2i",
            Problem::Heat3d { .. } | Problem::Gs3d { .. } => "Grid3",
            Problem::Lcs { .. } => "Lcs",
        }
    }
}

/// Sequence pair (and result slot) for an LCS problem.
#[derive(Clone, Debug, Default)]
pub struct LcsState {
    /// Sequence A (symbols).
    pub a: Vec<u8>,
    /// Sequence B (symbols).
    pub b: Vec<u8>,
    /// The LCS length computed by the most recent `Plan::run`.
    pub length: Option<i32>,
}

/// The mutable data a [`crate::Plan`] advances: one grid (or sequence
/// pair) matching the plan's [`Problem`]. Build a zeroed one with
/// [`Problem::state`], or wrap an existing grid in the matching variant.
#[derive(Clone, Debug)]
pub enum State {
    /// 1-D `f64` grid (Heat-1D, GS-1D).
    Grid1(Grid1<f64>),
    /// 2-D `f64` grid (Heat-2D, 2D9P, GS-2D).
    Grid2(Grid2<f64>),
    /// 2-D `i32` grid (Life).
    Grid2i(Grid2<i32>),
    /// 3-D `f64` grid (Heat-3D, GS-3D).
    Grid3(Grid3<f64>),
    /// LCS sequence pair.
    Lcs(LcsState),
}

impl State {
    /// The variant name (for error messages).
    pub fn variant_name(&self) -> &'static str {
        match self {
            State::Grid1(_) => "Grid1",
            State::Grid2(_) => "Grid2",
            State::Grid2i(_) => "Grid2i",
            State::Grid3(_) => "Grid3",
            State::Lcs(_) => "Lcs",
        }
    }

    /// Interior extents as `[outer, middle, inner]`.
    pub fn extents(&self) -> [usize; 3] {
        match self {
            State::Grid1(g) => [g.n(), 1, 1],
            State::Grid2(g) => [g.nx(), g.ny(), 1],
            State::Grid2i(g) => [g.nx(), g.ny(), 1],
            State::Grid3(g) => [g.nx(), g.ny(), g.nz()],
            State::Lcs(l) => [l.a.len(), l.b.len(), 1],
        }
    }

    /// The grid's halo width (`None` for LCS states). The solver engines
    /// support halo 1 only; [`crate::Plan::run`] rejects anything else.
    pub fn halo(&self) -> Option<usize> {
        match self {
            State::Grid1(g) => Some(g.halo()),
            State::Grid2(g) => Some(g.halo()),
            State::Grid2i(g) => Some(g.halo()),
            State::Grid3(g) => Some(g.halo()),
            State::Lcs(_) => None,
        }
    }

    /// The 1-D grid, if this is a `Grid1` state.
    pub fn grid1(&self) -> Option<&Grid1<f64>> {
        match self {
            State::Grid1(g) => Some(g),
            _ => None,
        }
    }

    /// Mutable access to the 1-D grid.
    pub fn grid1_mut(&mut self) -> Option<&mut Grid1<f64>> {
        match self {
            State::Grid1(g) => Some(g),
            _ => None,
        }
    }

    /// The 2-D `f64` grid, if this is a `Grid2` state.
    pub fn grid2(&self) -> Option<&Grid2<f64>> {
        match self {
            State::Grid2(g) => Some(g),
            _ => None,
        }
    }

    /// Mutable access to the 2-D `f64` grid.
    pub fn grid2_mut(&mut self) -> Option<&mut Grid2<f64>> {
        match self {
            State::Grid2(g) => Some(g),
            _ => None,
        }
    }

    /// The 2-D `i32` grid, if this is a `Grid2i` state.
    pub fn grid2i(&self) -> Option<&Grid2<i32>> {
        match self {
            State::Grid2i(g) => Some(g),
            _ => None,
        }
    }

    /// Mutable access to the 2-D `i32` grid.
    pub fn grid2i_mut(&mut self) -> Option<&mut Grid2<i32>> {
        match self {
            State::Grid2i(g) => Some(g),
            _ => None,
        }
    }

    /// The 3-D grid, if this is a `Grid3` state.
    pub fn grid3(&self) -> Option<&Grid3<f64>> {
        match self {
            State::Grid3(g) => Some(g),
            _ => None,
        }
    }

    /// Mutable access to the 3-D grid.
    pub fn grid3_mut(&mut self) -> Option<&mut Grid3<f64>> {
        match self {
            State::Grid3(g) => Some(g),
            _ => None,
        }
    }

    /// The LCS state, if this is an `Lcs` state.
    pub fn lcs(&self) -> Option<&LcsState> {
        match self {
            State::Lcs(l) => Some(l),
            _ => None,
        }
    }

    /// Mutable access to the LCS state.
    pub fn lcs_mut(&mut self) -> Option<&mut LcsState> {
        match self {
            State::Lcs(l) => Some(l),
            _ => None,
        }
    }
}
