//! # tempora-plan — the unified `Problem → Plan → Report` solver API
//!
//! One entry point for the whole engine/tiling stack, shaped like the
//! compiled-operator APIs of production stencil systems (FFTW plans,
//! Devito operators): describe the **problem** once, compile a **plan**
//! once, then execute it many times against fresh **states** with
//! amortized setup.
//!
//! * [`Problem`] — typed stencil descriptor: kind, interior extents, time
//!   extent, coefficients, boundary condition. Carries no data.
//! * [`PlanBuilder`] — picks the [`Method`] (temporal / multi-load /
//!   reorg / DLT / scalar), the [`Tiling`] (none / ghost / skew /
//!   LCS rectangles), the engine [`Select`] policy, the worker-thread
//!   count and the temporal stride. [`PlanBuilder::build`] validates
//!   everything up front and returns a descriptive [`PlanError`] for any
//!   invalid combination — no panics, no silent fallbacks beyond the
//!   documented engine resolutions.
//! * [`Plan`] — geometry resolved once, engine resolved once, thread pool
//!   and every scratch arena allocated once. Repeated [`Plan::run`] calls
//!   are allocation-free (except the documented one-shot reorg/DLT
//!   baselines) and bit-identical to one-shot execution.
//! * [`Report`] — what actually executed: resolved [`Engine`], steps,
//!   tile geometry, optional reorg-op counts, LCS length.
//!
//! ```
//! use tempora_plan::{Method, PlanBuilder, Problem, Tiling};
//! use tempora_stencil::Heat1dCoeffs;
//!
//! // Describe the problem once…
//! let problem = Problem::heat1d(10_000, 64, Heat1dCoeffs::classic(0.25));
//! // …compile a plan once…
//! let mut plan = PlanBuilder::new()
//!     .method(Method::Temporal)
//!     .tiling(Tiling::None)
//!     .stride(7)
//!     .build(&problem)
//!     .expect("valid configuration");
//! // …then run it against as many states as you like.
//! let mut state = problem.state();
//! state.grid1_mut().unwrap().fill_interior(|i| (i as f64 * 0.1).sin());
//! let report = plan.run(&mut state).unwrap();
//! assert_eq!(report.steps, 64);
//! ```
//!
//! The plan is the unit of caching and dispatch for serving scenarios:
//! build one per configuration, pool them, and route each request's state
//! through the matching plan. The deprecated free functions
//! (`tempora_core::engine::run_*`, `tempora_tiling::{ghost,skew}::run_*`)
//! remain as one-shot shims for one release.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod exec;
mod plan;
mod problem;

pub use error::PlanError;
pub use plan::{Method, Plan, PlanBuilder, Report, TileGeometry, Tiling};
pub use problem::{LcsState, Problem, State};

// The engine vocabulary is part of the plan API surface.
pub use tempora_core::engine::{Engine, Select};
// So is the pool's wavefront-schedule vocabulary, for the
// [`PlanBuilder::wave_schedule`] knob.
pub use tempora_parallel::WaveSchedule;

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_grid::fill_random_1d;
    use tempora_stencil::{reference, Gs2dCoeffs, Heat1dCoeffs, LifeRule};

    #[test]
    fn plan_runs_and_reports() {
        let problem = Problem::heat1d(500, 12, Heat1dCoeffs::classic(0.25));
        let mut plan = PlanBuilder::new().stride(7).build(&problem).unwrap();
        let mut state = problem.state();
        fill_random_1d(state.grid1_mut().unwrap(), 3, -1.0, 1.0);
        let gold = reference::heat1d(state.grid1().unwrap(), Heat1dCoeffs::classic(0.25), 12);
        let report = plan.run(&mut state).unwrap();
        assert_eq!(report.steps, 12);
        assert!(report.engine.is_some());
        assert!(state.grid1().unwrap().interior_eq(&gold));
    }

    #[test]
    fn pin_and_wave_schedule_knobs_are_honest_and_bit_identical() {
        use tempora_grid::fill_random_2d;
        // Skewed GS-2D exercises the wavefront schedules; pin(true) on
        // the pipelined side exercises affinity + first-touch fault-in.
        let coeffs = Gs2dCoeffs::classic(0.2);
        let problem = Problem::gs2d(96, 9, 8, coeffs);
        let mut gold_state = problem.state();
        fill_random_2d(gold_state.grid2_mut().unwrap(), 11, -1.0, 1.0);
        let gold = reference::gs2d(gold_state.grid2().unwrap(), coeffs, 8);
        for schedule in [WaveSchedule::Pipelined, WaveSchedule::Barrier] {
            let mut plan = PlanBuilder::new()
                .tiling(Tiling::Skew {
                    block: 24,
                    height: 4,
                })
                .threads(4)
                .pin(schedule == WaveSchedule::Pipelined)
                .wave_schedule(schedule)
                .build(&problem)
                .unwrap();
            assert_eq!(plan.wave_schedule(), schedule);
            let mut state = problem.state();
            fill_random_2d(state.grid2_mut().unwrap(), 11, -1.0, 1.0);
            let report = plan.run(&mut state).unwrap();
            assert!(state.grid2().unwrap().interior_eq(&gold));
            // Pinning is honest: reported iff requested AND the host
            // supports it.
            if schedule == WaveSchedule::Pipelined {
                use tempora_parallel::Pool;
                assert_eq!(report.pinned, Pool::pinning_supported());
                assert_eq!(plan.is_pinned(), report.pinned);
            } else {
                assert!(!report.pinned);
            }
        }
    }

    #[test]
    fn errors_are_descriptive_not_panics() {
        let heat = Problem::heat1d(100, 8, Heat1dCoeffs::classic(0.25));
        assert_eq!(
            PlanBuilder::new().stride(0).build(&heat).unwrap_err(),
            PlanError::ZeroStride
        );
        assert_eq!(
            PlanBuilder::new().threads(0).build(&heat).unwrap_err(),
            PlanError::ZeroThreads
        );
        let life = Problem::life(64, 64, 8, LifeRule::b2s23());
        assert!(matches!(
            PlanBuilder::new()
                .method(Method::Reorg)
                .build(&life)
                .unwrap_err(),
            PlanError::MethodUnsupported { .. }
        ));
        let gs = Problem::gs2d(64, 64, 8, Gs2dCoeffs::classic(0.2));
        assert!(matches!(
            PlanBuilder::new()
                .method(Method::Multiload)
                .build(&gs)
                .unwrap_err(),
            PlanError::MethodUnsupported { .. }
        ));
        // Errors render as readable strings.
        let msg = PlanBuilder::new()
            .method(Method::Multiload)
            .build(&gs)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("Gauss-Seidel"), "{msg}");
    }
}
