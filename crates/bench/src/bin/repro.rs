//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale K] [--cores N] [--csv DIR] [--json FILE] <target>...
//!
//! targets: table1, fig4a..fig4j, fig5a..fig5h,
//!          ablate-reorg, ablate-stride, ablate-baselines, ablate-waves,
//!          seq (all sequential), par (all parallel), all
//! --scale K   divide the paper's problem sizes by K (default 16;
//!             --scale 1 = paper sizes, needs a big machine)
//! --cores N   max worker count for parallel figures (default: all;
//!             clamped to the logical cores actually available)
//! --csv DIR   additionally write each figure as DIR/<id>.csv
//! --json FILE additionally write all figures + machine metadata as one
//!             JSON document (the committed BENCH_*.json baseline format)
//! ```

use std::io::Write;

use tempora_bench as tb;

fn machine_banner(avail: usize) -> String {
    format!(
        "machine: {} logical cores, avx2+fma: {}, pinning: {}, engine: {} (TEMPORA_ENGINE)\n",
        avail,
        tempora_simd::arch::avx2_available(),
        tempora_parallel::Pool::pinning_supported(),
        tempora_core::engine::Select::from_env().name(),
    )
}

/// Malformed command line: print the problem to stderr and exit 2 (a
/// usage error, not a panic with a backtrace).
fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg} (see repro --help)");
    std::process::exit(2);
}

/// Parse the value of a `--flag N` pair as a positive integer, exiting
/// with a usage error on anything else.
fn parse_count(flag: &str, value: Option<String>) -> usize {
    let Some(v) = value else {
        usage_error(&format!("{flag} needs a positive integer"));
    };
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => usage_error(&format!("{flag} needs a positive integer, got '{v}'")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut scale = 16usize;
    let mut cores_requested = avail;
    let mut csv_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut targets: Vec<String> = vec![];

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => scale = parse_count("--scale", it.next()),
            "--paper" => scale = 1,
            "--cores" => cores_requested = parse_count("--cores", it.next()),
            "--csv" => {
                let Some(dir) = it.next() else {
                    usage_error("--csv needs a directory");
                };
                csv_dir = Some(dir);
            }
            "--json" => {
                let Some(path) = it.next() else {
                    usage_error("--json needs a file path");
                };
                json_path = Some(path);
            }
            "--help" | "-h" => {
                // Print the usage block between the doc comment's two
                // ```text fences, so the help text tracks doc edits
                // without hand-maintained line numbers.
                let lines: Vec<&str> = include_str!("repro.rs")
                    .lines()
                    .map(|l| {
                        l.strip_prefix("//! ")
                            .unwrap_or(l.trim_start_matches("//!"))
                    })
                    .collect();
                let fences: Vec<usize> = lines
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.starts_with("```"))
                    .map(|(i, _)| i)
                    .take(2)
                    .collect();
                let [open, close] = fences[..] else {
                    unreachable!("usage block fences missing from repro.rs docs")
                };
                println!("{}", lines[open + 1..close].join("\n"));
                return;
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".into());
    }

    // Oversubscribing a 1-core host with `--cores 8` would print a
    // "scaling" curve where every point ran the same hardware — clamp to
    // what the machine actually has, loudly.
    let cores = cores_requested.min(avail);
    if cores < cores_requested {
        eprintln!(
            "repro: --cores {cores_requested} exceeds the {avail} available logical cores; \
             clamping to {cores}"
        );
    }

    let seq_ids = [
        "fig4a", "fig4c", "fig4e", "fig4g", "fig4i", "fig5a", "fig5c", "fig5e", "fig5g",
    ];
    let par_ids = [
        "fig4b", "fig4d", "fig4f", "fig4h", "fig4j", "fig5b", "fig5d", "fig5f", "fig5h",
    ];
    let ablate_ids = [
        "ablate-reorg",
        "ablate-stride",
        "ablate-baselines",
        "ablate-waves",
    ];

    let mut expanded: Vec<String> = vec![];
    for t in &targets {
        match t.as_str() {
            "all" => {
                expanded.push("table1".into());
                expanded.extend(seq_ids.iter().map(|s| s.to_string()));
                expanded.extend(par_ids.iter().map(|s| s.to_string()));
                expanded.extend(ablate_ids.iter().map(|s| s.to_string()));
            }
            "seq" => expanded.extend(seq_ids.iter().map(|s| s.to_string())),
            "par" => expanded.extend(par_ids.iter().map(|s| s.to_string())),
            "ablate" => expanded.extend(ablate_ids.iter().map(|s| s.to_string())),
            other => expanded.push(other.to_string()),
        }
    }

    print!("{}", machine_banner(avail));
    println!("scale: 1/{scale}, max cores: {cores} (requested {cores_requested})\n");

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut figures: Vec<tb::Figure> = vec![];
    for id in &expanded {
        let fig = match id.as_str() {
            "table1" => {
                writeln!(out, "{}", tb::table1(scale)).unwrap();
                continue;
            }
            "ablate-reorg" => {
                writeln!(out, "{}", tb::ablate_reorg()).unwrap();
                continue;
            }
            "ablate-stride" => tb::ablate_stride(scale),
            "ablate-baselines" => tb::ablate_baselines(scale),
            "ablate-waves" => tb::ablate_waves(scale, cores),
            "fig4a" => tb::fig4a(scale),
            "fig4b" => tb::fig4b(scale, cores),
            "fig4c" => tb::fig4c(scale),
            "fig4d" => tb::fig4d(scale, cores),
            "fig4e" => tb::fig4e(scale),
            "fig4f" => tb::fig4f(scale, cores),
            "fig4g" => tb::fig4g(scale),
            "fig4h" => tb::fig4h(scale, cores),
            "fig4i" => tb::fig4i(scale),
            "fig4j" => tb::fig4j(scale, cores),
            "fig5a" => tb::fig5a(scale),
            "fig5b" => tb::fig5b(scale, cores),
            "fig5c" => tb::fig5c(scale),
            "fig5d" => tb::fig5d(scale, cores),
            "fig5e" => tb::fig5e(scale),
            "fig5f" => tb::fig5f(scale, cores),
            "fig5g" => tb::fig5g(scale),
            "fig5h" => tb::fig5h(scale, cores),
            other => {
                eprintln!("unknown target: {other}");
                std::process::exit(2);
            }
        };
        writeln!(out, "{}", fig.to_table()).unwrap();
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{}.csv", fig.id);
            std::fs::write(&path, fig.to_csv()).expect("write csv");
        }
        figures.push(fig);
    }

    if let Some(path) = &json_path {
        let figs: Vec<String> = figures.iter().map(|f| f.to_json()).collect();
        let doc = format!(
            "{{\"schema\":\"tempora-bench-v1\",\"cores\":{},\"cores_requested\":{},\"cores_effective\":{},\"pinning_supported\":{},\"avx2\":{},\"engine_select\":\"{}\",\"scale\":{},\"figures\":[\n{}\n]}}\n",
            cores,
            cores_requested,
            cores,
            tempora_parallel::Pool::pinning_supported(),
            tempora_simd::arch::avx2_available(),
            tempora_core::engine::Select::from_env().name(),
            scale,
            figs.join(",\n")
        );
        std::fs::write(path, doc).expect("write json");
        println!("wrote {path}");
    }
}
