//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale K] [--cores N] [--csv DIR] [--json FILE] <target>...
//!
//! targets: table1, fig4a..fig4j, fig5a..fig5h,
//!          ablate-reorg, ablate-stride, ablate-baselines, ablate-waves,
//!          seq (all sequential), par (all parallel), all
//! --scale K   divide the paper's problem sizes by K (default 16;
//!             --scale 1 = paper sizes, needs a big machine)
//! --cores N   max worker count for parallel figures (default: all;
//!             clamped to the logical cores actually available)
//! --csv DIR   additionally write each figure as DIR/<id>.csv
//! --json FILE additionally write all figures + machine metadata as one
//!             JSON document (the committed BENCH_*.json baseline format)
//! ```
//!
//! A target that fails (panics, or cannot write its CSV) does not abort
//! the sweep: the error is reported, recorded as `{"id", "error"}` in the
//! JSON document, and the remaining targets still run; the process exits
//! non-zero with a summary of the failed targets at the end.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tempora_bench as tb;

fn machine_banner(avail: usize) -> String {
    format!(
        "machine: {} logical cores, avx2+fma: {}, pinning: {}, engine: {} (TEMPORA_ENGINE)\n",
        avail,
        tempora_simd::arch::avx2_available(),
        tempora_parallel::Pool::pinning_supported(),
        tempora_core::engine::Select::from_env().name(),
    )
}

/// Malformed command line: print the problem to stderr and exit 2 (a
/// usage error, not a panic with a backtrace).
fn usage_error(msg: &str) -> ! {
    eprintln!("repro: {msg} (see repro --help)");
    std::process::exit(2);
}

/// Parse the value of a `--flag N` pair as a positive integer, exiting
/// with a usage error on anything else.
fn parse_count(flag: &str, value: Option<String>) -> usize {
    let Some(v) = value else {
        usage_error(&format!("{flag} needs a positive integer"));
    };
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => usage_error(&format!("{flag} needs a positive integer, got '{v}'")),
    }
}

/// Every id `run_target` accepts, for up-front validation of the sweep.
const KNOWN_TARGETS: &[&str] = &[
    "table1",
    "ablate-reorg",
    "ablate-stride",
    "ablate-baselines",
    "ablate-waves",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig4d",
    "fig4e",
    "fig4f",
    "fig4g",
    "fig4h",
    "fig4i",
    "fig4j",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig5e",
    "fig5f",
    "fig5g",
    "fig5h",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut scale = 16usize;
    let mut cores_requested = avail;
    let mut csv_dir: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut targets: Vec<String> = vec![];

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => scale = parse_count("--scale", it.next()),
            "--paper" => scale = 1,
            "--cores" => cores_requested = parse_count("--cores", it.next()),
            "--csv" => {
                let Some(dir) = it.next() else {
                    usage_error("--csv needs a directory");
                };
                csv_dir = Some(dir);
            }
            "--json" => {
                let Some(path) = it.next() else {
                    usage_error("--json needs a file path");
                };
                json_path = Some(path);
            }
            "--help" | "-h" => {
                // Print the usage block between the doc comment's two
                // ```text fences, so the help text tracks doc edits
                // without hand-maintained line numbers.
                let lines: Vec<&str> = include_str!("repro.rs")
                    .lines()
                    .map(|l| {
                        l.strip_prefix("//! ")
                            .unwrap_or(l.trim_start_matches("//!"))
                    })
                    .collect();
                let fences: Vec<usize> = lines
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.starts_with("```"))
                    .map(|(i, _)| i)
                    .take(2)
                    .collect();
                let [open, close] = fences[..] else {
                    unreachable!("usage block fences missing from repro.rs docs")
                };
                println!("{}", lines[open + 1..close].join("\n"));
                return;
            }
            t => targets.push(t.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".into());
    }

    // Oversubscribing a 1-core host with `--cores 8` would print a
    // "scaling" curve where every point ran the same hardware — clamp to
    // what the machine actually has, loudly.
    let cores = cores_requested.min(avail);
    if cores < cores_requested {
        eprintln!(
            "repro: --cores {cores_requested} exceeds the {avail} available logical cores; \
             clamping to {cores}"
        );
    }

    let seq_ids = [
        "fig4a", "fig4c", "fig4e", "fig4g", "fig4i", "fig5a", "fig5c", "fig5e", "fig5g",
    ];
    let par_ids = [
        "fig4b", "fig4d", "fig4f", "fig4h", "fig4j", "fig5b", "fig5d", "fig5f", "fig5h",
    ];
    let ablate_ids = [
        "ablate-reorg",
        "ablate-stride",
        "ablate-baselines",
        "ablate-waves",
    ];

    let mut expanded: Vec<String> = vec![];
    for t in &targets {
        match t.as_str() {
            "all" => {
                expanded.push("table1".into());
                expanded.extend(seq_ids.iter().map(|s| s.to_string()));
                expanded.extend(par_ids.iter().map(|s| s.to_string()));
                expanded.extend(ablate_ids.iter().map(|s| s.to_string()));
            }
            "seq" => expanded.extend(seq_ids.iter().map(|s| s.to_string())),
            "par" => expanded.extend(par_ids.iter().map(|s| s.to_string())),
            "ablate" => expanded.extend(ablate_ids.iter().map(|s| s.to_string())),
            other => expanded.push(other.to_string()),
        }
    }

    print!("{}", machine_banner(avail));
    println!("scale: 1/{scale}, max cores: {cores} (requested {cores_requested})\n");

    // Reject unknown targets up front (usage error, exit 2) so a typo is
    // not reported as a "failed figure" at the end of a long sweep.
    for id in &expanded {
        if !KNOWN_TARGETS.contains(&id.as_str()) {
            usage_error(&format!("unknown target: {id}"));
        }
    }

    // One JSON entry per target, success or failure, in sweep order.
    let mut fig_docs: Vec<String> = vec![];
    let mut failed: Vec<(String, String)> = vec![];
    for id in &expanded {
        // Containment boundary: a panicking figure (a bug in one bench
        // path, an injected failpoint, a poisoned plan) must not take the
        // rest of the sweep down with it.
        let result = catch_unwind(AssertUnwindSafe(|| run_target(id, scale, cores)));
        match result {
            Ok(Ok(Some(fig))) => {
                let mut err = None;
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/{}.csv", fig.id);
                    if let Err(e) = std::fs::create_dir_all(dir)
                        .and_then(|()| std::fs::write(&path, fig.to_csv()))
                    {
                        err = Some(format!("writing {path}: {e}"));
                    }
                }
                fig_docs.push(fig.to_json());
                if let Some(err) = err {
                    record_failure(&mut failed, id, err);
                }
            }
            Ok(Ok(None)) => {} // text-only target, nothing to record
            Ok(Err(never)) => match never {},
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                fig_docs.push(format!(
                    "{{\"id\":\"{}\",\"error\":\"{}\"}}",
                    tb::json_escape(id),
                    tb::json_escape(&msg)
                ));
                record_failure(&mut failed, id, msg);
            }
        }
    }

    if let Some(path) = &json_path {
        let doc = format!(
            "{{\"schema\":\"tempora-bench-v1\",\"cores\":{},\"cores_requested\":{},\"cores_effective\":{},\"pinning_supported\":{},\"avx2\":{},\"engine_select\":\"{}\",\"scale\":{},\"figures\":[\n{}\n]}}\n",
            cores,
            cores_requested,
            cores,
            tempora_parallel::Pool::pinning_supported(),
            tempora_simd::arch::avx2_available(),
            tempora_core::engine::Select::from_env().name(),
            scale,
            fig_docs.join(",\n")
        );
        match std::fs::write(path, doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => record_failure(&mut failed, path, format!("writing JSON: {e}")),
        }
    }

    if !failed.is_empty() {
        eprintln!("\nrepro: {} target(s) failed:", failed.len());
        for (id, msg) in &failed {
            eprintln!("  {id}: {msg}");
        }
        std::process::exit(1);
    }
}

/// Report one target's failure on stderr and remember it for the final
/// summary (and exit code).
fn record_failure(failed: &mut Vec<(String, String)>, id: &str, msg: String) {
    eprintln!("repro: {id} failed: {msg}");
    failed.push((id.to_string(), msg));
}

/// Render a caught panic payload as the failure message for a figure.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// Compute one figure target; `None` for ids that are not figure targets
/// (the text-only `table1` / `ablate-reorg`, or an unknown id).
fn compute_target(id: &str, scale: usize, cores: usize) -> Option<tb::Figure> {
    Some(match id {
        "ablate-stride" => tb::ablate_stride(scale),
        "ablate-baselines" => tb::ablate_baselines(scale),
        "ablate-waves" => tb::ablate_waves(scale, cores),
        "fig4a" => tb::fig4a(scale),
        "fig4b" => tb::fig4b(scale, cores),
        "fig4c" => tb::fig4c(scale),
        "fig4d" => tb::fig4d(scale, cores),
        "fig4e" => tb::fig4e(scale),
        "fig4f" => tb::fig4f(scale, cores),
        "fig4g" => tb::fig4g(scale),
        "fig4h" => tb::fig4h(scale, cores),
        "fig4i" => tb::fig4i(scale),
        "fig4j" => tb::fig4j(scale, cores),
        "fig5a" => tb::fig5a(scale),
        "fig5b" => tb::fig5b(scale, cores),
        "fig5c" => tb::fig5c(scale),
        "fig5d" => tb::fig5d(scale, cores),
        "fig5e" => tb::fig5e(scale),
        "fig5f" => tb::fig5f(scale, cores),
        "fig5g" => tb::fig5g(scale),
        "fig5h" => tb::fig5h(scale, cores),
        _ => return None,
    })
}

/// Run one target: print its table (or text block) to stdout and return
/// the figure when the target produces one. The `Err` arm is
/// uninhabited — it exists so the caller's match stays exhaustive if a
/// fallible target is ever added.
fn run_target(
    id: &str,
    scale: usize,
    cores: usize,
) -> Result<Option<tb::Figure>, std::convert::Infallible> {
    match id {
        "table1" => {
            println!("{}", tb::table1(scale));
            Ok(None)
        }
        "ablate-reorg" => {
            println!("{}", tb::ablate_reorg());
            Ok(None)
        }
        _ => {
            // Unknown ids were rejected before the sweep started.
            let fig = compute_target(id, scale, cores)
                .unwrap_or_else(|| unreachable!("target {id} validated before the sweep"));
            println!("{}", fig.to_table());
            Ok(Some(fig))
        }
    }
}
