//! `serve-bench` — the service latency harness.
//!
//! Spawns a release `tempora-serve` process per scenario, drives it with
//! `tempora-agent` processes (two per scenario, splitting connections),
//! merges their latency histograms, and writes `summary.json` with
//! p50/p95/p99 latency, throughput and cache hit-rate per scenario.
//!
//! Before benchmarking it runs a **verification pass** against a
//! dedicated server: the cached-plan path must perform zero plan
//! rebuilds (asserted via the reply's cache counters) and return a
//! state digest bitwise-identical to a fresh in-process plan run on the
//! same `(problem, seed)`. Any mismatch fails the whole run with a
//! nonzero exit.
//!
//! ```text
//! serve-bench [--out PATH] [--bin-dir DIR] [--requests N] [--conns N]
//!             [--scenarios a,b,c] [--n N] [--steps N] [--chaos]
//! ```
//!
//! `--chaos` (requires a `--features failpoints` build) runs the
//! **network-chaos scenario** instead: an in-process server on a Unix
//! socket, hammered by retrying clients while the harness repeatedly
//! kills connections mid-request via the `conn_frame` failpoint, stalls
//! replies via `conn_reply`, hard-drops a whole server generation, and
//! gracefully drains another. It reports availability (success rate,
//! retry/reconnect counts, p99 under faults) plus the `DrainReport`,
//! and fails unless every successful reply was bitwise-identical to a
//! fresh in-process run.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tempora_client::hist::Histogram;
use tempora_client::retry::{RetryPolicy, RetryingClient, Target};
use tempora_client::Client;
use tempora_plan::Problem;
use tempora_proto::{state_digest, JobSpec};
use tempora_server::{fresh_state, CacheConfig, ResilienceConfig, Server, ServerConfig};
use tempora_stencil::Heat1dCoeffs;

struct Options {
    out: PathBuf,
    bin_dir: Option<PathBuf>,
    requests: usize,
    conns: usize,
    scenarios: Vec<String>,
    n: usize,
    steps: usize,
    chaos: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            out: PathBuf::from("summary.json"),
            bin_dir: None,
            requests: 240,
            conns: 4,
            scenarios: ["baseline", "fan-out", "fan-in", "churn"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            n: 4096,
            steps: 32,
            chaos: false,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve-bench [--out PATH] [--bin-dir DIR] [--requests N] [--conns N] \
         [--scenarios baseline,fan-out,fan-in,churn] [--n N] [--steps N] [--chaos]"
    );
    ExitCode::from(2)
}

/// The directory holding the sibling `tempora-serve` / `tempora-agent`
/// binaries: `--bin-dir` if given, else this executable's own directory.
fn bin_dir(opts: &Options) -> Result<PathBuf, String> {
    if let Some(dir) = &opts.bin_dir {
        return Ok(dir.clone());
    }
    let exe = std::env::current_exe().map_err(|e| format!("current_exe failed: {e}"))?;
    exe.parent()
        .map(PathBuf::from)
        .ok_or_else(|| "executable has no parent directory".to_string())
}

/// Minimal JSON field scanners for the agent's flat one-line summaries
/// (keys are unique and values are unnested, so substring search is
/// exact).
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn json_str<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// A serve process with its parsed TCP address; killed on drop.
struct ServeProc {
    child: Child,
    addr: String,
}

impl ServeProc {
    fn start(dir: &Path, cache_cap: Option<usize>) -> Result<ServeProc, String> {
        let mut cmd = Command::new(dir.join("tempora-serve"));
        cmd.arg("--tcp")
            .arg("127.0.0.1:0")
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if let Some(cap) = cache_cap {
            cmd.arg("--cache-cap").arg(cap.to_string());
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawning tempora-serve failed: {e}"))?;
        let stdout = match child.stdout.take() {
            Some(s) => s,
            None => {
                let _ = child.kill();
                return Err("tempora-serve stdout not captured".to_string());
            }
        };
        let mut line = String::new();
        if BufReader::new(stdout).read_line(&mut line).is_err() || line.is_empty() {
            let _ = child.kill();
            return Err("tempora-serve printed no listening line".to_string());
        }
        // "tempora-serve listening tcp=HOST:PORT uds=-"
        let addr = line
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("tcp="))
            .map(str::to_string);
        match addr {
            Some(addr) if addr != "-" => Ok(ServeProc { child, addr }),
            _ => {
                let _ = child.kill();
                Err(format!("unparseable listening line: {line:?}"))
            }
        }
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One scenario's merged result.
struct ScenarioResult {
    name: String,
    agents: usize,
    ok: u64,
    errors: u64,
    hits: u64,
    misses: u64,
    max_batched: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    throughput_rps: f64,
}

impl ScenarioResult {
    fn to_json(&self) -> String {
        let hit_rate = if self.ok > 0 {
            self.hits as f64 / self.ok as f64
        } else {
            0.0
        };
        format!(
            concat!(
                "{{\"scenario\":\"{}\",\"agents\":{},\"ok\":{},\"errors\":{},",
                "\"hits\":{},\"misses\":{},\"hit_rate\":{:.4},\"max_batched\":{},",
                "\"p50_us\":{:.3},\"p95_us\":{:.3},\"p99_us\":{:.3},",
                "\"throughput_rps\":{:.3}}}"
            ),
            self.name,
            self.agents,
            self.ok,
            self.errors,
            self.hits,
            self.misses,
            hit_rate,
            self.max_batched,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.throughput_rps,
        )
    }
}

/// Run one scenario: its own server, two agent processes splitting the
/// load, histograms merged across agents.
fn run_scenario(dir: &Path, opts: &Options, name: &str) -> Result<ScenarioResult, String> {
    // Churn gets a deliberately tiny cache so rotation forces evictions.
    let cache_cap = if name == "churn" { Some(4) } else { None };
    let server = ServeProc::start(dir, cache_cap)?;
    let agents = if name == "baseline" { 1 } else { 2 };
    let mut children = Vec::new();
    for a in 0..agents {
        let conns = (opts.conns / agents).max(1);
        let requests = opts.requests / agents;
        let child = Command::new(dir.join("tempora-agent"))
            .args([
                "--connect",
                &server.addr,
                "--scenario",
                name,
                "--conns",
                &conns.to_string(),
                "--requests",
                &requests.to_string(),
                "--distinct",
                "8",
                "--seed",
                &(1000 + a as u64).to_string(),
                "--problem",
                "heat1d",
                "--n",
                &opts.n.to_string(),
                "--steps",
                &opts.steps.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawning tempora-agent failed: {e}"))?;
        children.push(child);
    }

    let mut merged = Histogram::new();
    let mut result = ScenarioResult {
        name: name.to_string(),
        agents,
        ok: 0,
        errors: 0,
        hits: 0,
        misses: 0,
        max_batched: 0,
        p50_us: 0.0,
        p95_us: 0.0,
        p99_us: 0.0,
        throughput_rps: 0.0,
    };
    let mut elapsed_s: f64 = 0.0;
    for child in children {
        let out = child
            .wait_with_output()
            .map_err(|e| format!("waiting for tempora-agent failed: {e}"))?;
        if !out.status.success() {
            return Err(format!("tempora-agent exited with {:?}", out.status));
        }
        let line = String::from_utf8_lossy(&out.stdout);
        let line = line.trim();
        let field =
            |k: &str| json_num(line, k).ok_or_else(|| format!("agent line missing {k:?}: {line}"));
        result.ok += field("ok")? as u64;
        result.errors += field("errors")? as u64;
        result.hits += field("hits")? as u64;
        result.misses += field("misses")? as u64;
        result.max_batched = result.max_batched.max(field("max_batched")? as u64);
        elapsed_s = elapsed_s.max(field("elapsed_s")?);
        let sparse =
            json_str(line, "hist").ok_or_else(|| format!("agent line missing hist: {line}"))?;
        merged.merge(&Histogram::from_sparse(sparse));
    }
    result.p50_us = merged.percentile(0.50) as f64 / 1000.0;
    result.p95_us = merged.percentile(0.95) as f64 / 1000.0;
    result.p99_us = merged.percentile(0.99) as f64 / 1000.0;
    result.throughput_rps = if elapsed_s > 0.0 {
        result.ok as f64 / elapsed_s
    } else {
        0.0
    };
    if result.errors > 0 {
        return Err(format!(
            "scenario {name} saw {} request errors",
            result.errors
        ));
    }
    if merged.count() == 0 {
        return Err(format!("scenario {name} recorded no latencies"));
    }
    Ok(result)
}

/// The acceptance check: against a dedicated server, the cached path
/// performs zero rebuilds and returns bitwise-identical state to a
/// fresh in-process plan.
fn verify(dir: &Path, opts: &Options) -> Result<String, String> {
    let server = ServeProc::start(dir, None)?;
    let spec = JobSpec::new(Problem::heat1d(
        opts.n,
        opts.steps,
        Heat1dCoeffs::classic(0.25),
    ));
    let seed = 0x5eed;

    // In-process reference: fresh plan, fresh state, one run.
    let mut state = fresh_state(&spec.problem, seed);
    let report = spec
        .config
        .plan_builder()
        .build(&spec.problem)
        .map_err(|e| format!("reference build failed: {e}"))?
        .run(&mut state)
        .map_err(|e| format!("reference run failed: {e}"))?;
    let want_digest = state_digest(&state);

    let mut client =
        Client::connect_tcp(&server.addr).map_err(|e| format!("connect failed: {e}"))?;
    let cold = client
        .run_steps(&spec, seed)
        .map_err(|e| format!("cold run failed: {e}"))?;
    let warm = client
        .run_steps(&spec, seed)
        .map_err(|e| format!("warm run failed: {e}"))?;

    if warm.plan_builds != 1 {
        return Err(format!(
            "cached path rebuilt: plan_builds = {} (want 1)",
            warm.plan_builds
        ));
    }
    if !warm.cache_hit {
        return Err("second request was not a cache hit".to_string());
    }
    for (label, got) in [("cold", &cold), ("warm", &warm)] {
        if got.digest != want_digest {
            return Err(format!(
                "{label} digest {:#x} != fresh in-process digest {want_digest:#x}",
                got.digest
            ));
        }
        if got.steps != report.steps as u64
            || got.engine != report.engine
            || got.threads != report.threads as u32
            || got.pinned != report.pinned
            || got.lcs_length != report.lcs_length
        {
            return Err(format!(
                "{label} reply's Report fields diverge from fresh plan"
            ));
        }
    }
    let engine = report.engine.map(|e| e.name()).unwrap_or("none");
    Ok(format!(
        concat!(
            "{{\"digest_match\":true,\"zero_rebuilds\":true,\"cache_hit\":true,",
            "\"digest\":\"{:#x}\",\"engine\":\"{}\",\"steps\":{},\"plan_builds\":{}}}"
        ),
        want_digest, engine, report.steps, warm.plan_builds
    ))
}

/// Shared progress the chaos driver watches while its clients run.
#[derive(Default)]
struct ChaosCounters {
    ok: AtomicU64,
    errors: AtomicU64,
    digest_mismatches: AtomicU64,
}

impl ChaosCounters {
    fn progress(&self) -> u64 {
        // Relaxed: monotonic progress estimate for pacing the chaos
        // timeline; no cross-counter consistency needed.
        self.ok.load(Ordering::Relaxed) + self.errors.load(Ordering::Relaxed)
    }
}

fn chaos_server_config(path: &Path) -> ServerConfig {
    ServerConfig {
        tcp: None,
        uds: Some(path.to_path_buf()),
        cache: CacheConfig::default(),
        resilience: ResilienceConfig {
            poll_tick: Duration::from_millis(10),
            stall_timeout: Duration::from_millis(500),
            ..ResilienceConfig::default()
        },
    }
}

/// The network-chaos scenario (see the module docs): retrying clients
/// vs injected connection kills, reply stalls, one hard server drop and
/// one graceful drain — all on one Unix socket path.
fn chaos(opts: &Options) -> Result<String, String> {
    if !tempora_failpoint::enabled() {
        return Err(
            "--chaos needs live failpoints: rebuild with --features failpoints".to_string(),
        );
    }
    let path = std::env::temp_dir().join(format!("tempora-chaos-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let spec = JobSpec::new(Problem::heat1d(
        opts.n,
        opts.steps,
        Heat1dCoeffs::classic(0.25),
    ));
    let seed = 0xc4a05;

    // The ground truth every reply — first try or Nth retry — must hit.
    let mut state = fresh_state(&spec.problem, seed);
    spec.config
        .plan_builder()
        .build(&spec.problem)
        .map_err(|e| format!("reference build failed: {e}"))?
        .run(&mut state)
        .map_err(|e| format!("reference run failed: {e}"))?;
    let want_digest = state_digest(&state);

    let workers = opts.conns.max(2);
    let per_worker = (opts.requests / workers).max(20);
    let total = (workers * per_worker) as u64;
    let counters = Arc::new(ChaosCounters::default());
    let merged = Arc::new(Mutex::new(Histogram::new()));
    let retry_totals = Arc::new(Mutex::new((0u64, 0u64))); // (retries, reconnects)

    // Injected connection kills are *expected* here; keep their panic
    // reports to one quiet line each instead of a full backtrace storm.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info.payload().downcast_ref::<String>().cloned();
        match msg {
            Some(m) if m.starts_with("failpoint `conn_") => {
                eprintln!("serve-bench: injected fault: {m}");
            }
            _ => default_hook(info),
        }
    }));

    tempora_failpoint::clear();
    let gen1 =
        Server::start(chaos_server_config(&path)).map_err(|e| format!("gen-1 bind failed: {e}"))?;

    let started = Instant::now();
    let mut handles = Vec::new();
    for w in 0..workers {
        let path = path.clone();
        let counters = Arc::clone(&counters);
        let merged = Arc::clone(&merged);
        let retry_totals = Arc::clone(&retry_totals);
        handles.push(std::thread::spawn(move || {
            let mut client = RetryingClient::new(
                Target::Uds(path),
                RetryPolicy {
                    max_attempts: 64,
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(50),
                    jitter_seed: 0x5eed ^ (w as u64) << 8,
                },
            )
            .with_io_timeout(Duration::from_secs(5));
            let mut latency = Histogram::new();
            for _ in 0..per_worker {
                let sent = Instant::now();
                match client.run_steps(&spec, seed) {
                    Ok(reply) => {
                        // Relaxed: statistics.
                        counters.ok.fetch_add(1, Ordering::Relaxed);
                        if reply.digest != want_digest {
                            // Relaxed: statistic.
                            counters.digest_mismatches.fetch_add(1, Ordering::Relaxed);
                        }
                        latency.record(sent.elapsed().as_nanos() as u64);
                    }
                    Err(_) => {
                        // Relaxed: statistic.
                        counters.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let stats = client.stats();
            // Justification: lock poisoning here means a sibling worker
            // panicked, which already fails the bench.
            let mut totals = retry_totals.lock().expect("retry totals mutex");
            totals.0 += stats.retries;
            totals.1 += stats.reconnects;
            // Justification: poisoned only if a sibling worker panicked.
            merged.lock().expect("histogram mutex").merge(&latency);
        }));
    }

    // Chaos timeline, paced by client progress so every phase lands
    // mid-scenario regardless of machine speed.
    let wait_until = |frac: f64, label: &str| -> Result<(), String> {
        let target = (total as f64 * frac) as u64;
        let deadline = Instant::now() + Duration::from_secs(120);
        while counters.progress() < target {
            if Instant::now() > deadline {
                return Err(format!("chaos stalled waiting for {label}"));
            }
            // Connection-kill faults: each arm panics (at most) one
            // connection thread at its next request — a dropped
            // connection mid-stream, from the client's point of view.
            tempora_failpoint::arm("conn_frame=panic@1");
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    };

    wait_until(1.0 / 6.0, "first fault window")?;
    // A stalled reply (slow server, not dead server).
    tempora_failpoint::arm("conn_reply=sleep:100@1");
    wait_until(2.0 / 6.0, "hard-kill point")?;

    // Hard kill: no farewell, no drain — connections are force-closed
    // and the socket file vanishes, exactly like a crashed process.
    drop(gen1);
    let gen2 =
        Server::start(chaos_server_config(&path)).map_err(|e| format!("gen-2 bind failed: {e}"))?;

    wait_until(4.0 / 6.0, "graceful-drain point")?;

    // Graceful drain mid-load: shutdown must flush in-flight replies,
    // farewell the rest, and join every connection thread.
    tempora_failpoint::clear();
    let drain = gen2.shutdown(Duration::from_secs(10));
    if drain.elapsed > Duration::from_secs(10) {
        return Err(format!("mid-load drain blew its deadline: {drain:?}"));
    }
    let gen3 =
        Server::start(chaos_server_config(&path)).map_err(|e| format!("gen-3 bind failed: {e}"))?;

    for handle in handles {
        handle
            .join()
            .map_err(|_| "chaos worker panicked".to_string())?;
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    let final_drain = gen3.shutdown(Duration::from_secs(10));
    if !final_drain.clean {
        return Err(format!("final drain left stragglers: {final_drain:?}"));
    }
    let _ = std::fs::remove_file(&path);

    let ok = counters.ok.load(Ordering::Relaxed); // Relaxed: reporting
    let errors = counters.errors.load(Ordering::Relaxed); // Relaxed: reporting
                                                          // Relaxed: reporting.
    let mismatches = counters.digest_mismatches.load(Ordering::Relaxed);
    if mismatches > 0 {
        return Err(format!(
            "{mismatches} replies diverged from the fresh in-process digest"
        ));
    }
    if ok + errors != total {
        return Err(format!(
            "accounting hole: {ok} ok + {errors} errors != {total} issued"
        ));
    }
    let availability = ok as f64 / total as f64;
    // Justification: workers are joined; a poisoned lock means one
    // panicked and the bench should die loudly.
    let (retries, reconnects) = *retry_totals.lock().expect("retry totals mutex");
    if reconnects == 0 {
        return Err("chaos run saw zero reconnects — faults never landed".to_string());
    }
    // Justification: workers are joined; poisoning implies a panic.
    let merged = merged.lock().expect("histogram mutex");
    Ok(format!(
        concat!(
            "{{\"scenario\":\"chaos\",\"workers\":{},\"requests\":{},",
            "\"ok\":{},\"errors\":{},\"availability\":{:.4},",
            "\"retries\":{},\"reconnects\":{},\"digest_match\":true,",
            "\"restarts\":2,\"drain_drained\":{},\"drain_forced\":{},",
            "\"drain_clean\":{},\"drain_elapsed_ms\":{:.1},",
            "\"p50_us\":{:.3},\"p99_us\":{:.3},\"elapsed_s\":{:.3}}}"
        ),
        workers,
        total,
        ok,
        errors,
        availability,
        retries,
        reconnects,
        drain.drained,
        drain.forced,
        drain.clean,
        drain.elapsed.as_secs_f64() * 1000.0,
        merged.percentile(0.50) as f64 / 1000.0,
        merged.percentile(0.99) as f64 / 1000.0,
        elapsed_s,
    ))
}

fn run(opts: &Options) -> Result<(), String> {
    if opts.chaos {
        eprintln!("serve-bench: running network-chaos scenario");
        let chaos_json = chaos(opts)?;
        let summary = format!(
            "{{\"schema\":\"tempora-serve-chaos-v1\",\"problem\":\"heat1d\",\"n\":{},\"steps\":{},\"chaos\":{}}}\n",
            opts.n, opts.steps, chaos_json
        );
        let mut file = std::fs::File::create(&opts.out)
            .map_err(|e| format!("creating {} failed: {e}", opts.out.display()))?;
        file.write_all(summary.as_bytes())
            .map_err(|e| format!("writing {} failed: {e}", opts.out.display()))?;
        eprintln!("serve-bench: wrote {}", opts.out.display());
        return Ok(());
    }
    let dir = bin_dir(opts)?;
    for bin in ["tempora-serve", "tempora-agent"] {
        if !dir.join(bin).exists() {
            return Err(format!(
                "{} not found in {} — build it first (cargo build --release -p tempora_server -p tempora_client)",
                bin,
                dir.display()
            ));
        }
    }
    eprintln!("serve-bench: verifying cached-path bitwise identity");
    let verify_json = verify(&dir, opts)?;
    let mut scenarios = Vec::new();
    for name in &opts.scenarios {
        eprintln!("serve-bench: running scenario {name}");
        let result = run_scenario(&dir, opts, name)?;
        eprintln!(
            "serve-bench: {name}: p50 {:.1}us p99 {:.1}us, {:.0} req/s, hits {}/{}",
            result.p50_us, result.p99_us, result.throughput_rps, result.hits, result.ok
        );
        scenarios.push(result.to_json());
    }
    let summary = format!(
        "{{\"schema\":\"tempora-serve-bench-v1\",\"problem\":\"heat1d\",\"n\":{},\"steps\":{},\"requests\":{},\"verify\":{},\"scenarios\":[{}]}}\n",
        opts.n,
        opts.steps,
        opts.requests,
        verify_json,
        scenarios.join(",")
    );
    let mut file = std::fs::File::create(&opts.out)
        .map_err(|e| format!("creating {} failed: {e}", opts.out.display()))?;
    file.write_all(summary.as_bytes())
        .map_err(|e| format!("writing {} failed: {e}", opts.out.display()))?;
    eprintln!("serve-bench: wrote {}", opts.out.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if matches!(arg.as_str(), "--help" | "-h") {
            return usage();
        }
        if arg == "--chaos" {
            opts.chaos = true;
            continue;
        }
        let Some(value) = args.next() else {
            eprintln!("serve-bench: {arg} needs a value");
            return usage();
        };
        let ok = match arg.as_str() {
            "--out" => {
                opts.out = value.into();
                true
            }
            "--bin-dir" => {
                opts.bin_dir = Some(value.into());
                true
            }
            "--scenarios" => {
                opts.scenarios = value.split(',').map(str::to_string).collect();
                true
            }
            "--requests" => value.parse().map(|v| opts.requests = v).is_ok(),
            "--conns" => value.parse().map(|v| opts.conns = v).is_ok(),
            "--n" => value.parse().map(|v| opts.n = v).is_ok(),
            "--steps" => value.parse().map(|v| opts.steps = v).is_ok(),
            _ => {
                eprintln!("serve-bench: unknown flag {arg}");
                return usage();
            }
        };
        if !ok {
            eprintln!("serve-bench: bad value for {arg}");
            return usage();
        }
    }
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve-bench: FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}
