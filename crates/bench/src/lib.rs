//! # tempora-bench — reproduction harness for the paper's evaluation
//!
//! One runner per table/figure of the evaluation section (§4), wired to
//! the `repro` binary:
//!
//! | id | artefact | runner |
//! |---|---|---|
//! | `table1` | Table 1 problem/blocking sizes | [`table1`] |
//! | `fig4a`/`fig4b` | Heat-1D sequential / parallel | [`fig4a`], [`fig4b`] |
//! | `fig4c`/`fig4d` | Heat-2D | [`fig4c`], [`fig4d`] |
//! | `fig4e`/`fig4f` | Heat-3D | [`fig4e`], [`fig4f`] |
//! | `fig4g`/`fig4h` | 2D9P | [`fig4g`], [`fig4h`] |
//! | `fig4i`/`fig4j` | Life | [`fig4i`], [`fig4j`] |
//! | `fig5a`/`fig5b` | GS-1D | [`fig5a`], [`fig5b`] |
//! | `fig5c`/`fig5d` | GS-2D | [`fig5c`], [`fig5d`] |
//! | `fig5e`/`fig5f` | GS-3D | [`fig5e`], [`fig5f`] |
//! | `fig5g`/`fig5h` | LCS | [`fig5g`], [`fig5h`] |
//! | `ablate-reorg` | §3.3/§3.5 reorganization budgets | [`ablate_reorg`] |
//! | `ablate-stride` | §3.3 stride/ILP sweep | [`ablate_stride`] |
//! | `ablate-baselines` | §2.2 baseline comparison | [`ablate_baselines`] |
//!
//! Measurements report **Gstencils/s** (grid points updated per second,
//! the paper's metric). The `scale` parameter shrinks the paper's problem
//! sizes by a linear factor so the full suite runs on a laptop; `scale =
//! 1` reproduces the paper's sizes (Table 1). Shapes — who wins, by what
//! factor, where curves cross — are the reproduction target, not
//! absolute numbers (different machine, different vector ISA).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use tempora_baseline::{dlt, multiload, reorg};
use tempora_core::engine::{self, Select};
use tempora_core::kernels::{
    BoxKern2d, GsKern1d, GsKern2d, GsKern3d, JacobiKern1d, JacobiKern2d, JacobiKern3d, LifeKern2d,
};
use tempora_core::t1d;
use tempora_grid::{
    fill_random_1d, fill_random_2d, fill_random_3d, fill_random_life, random_sequence, Boundary,
    Grid1, Grid2, Grid3,
};
use tempora_parallel::Pool;
use tempora_stencil::{
    reference, Box2dCoeffs, Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs, Heat1dCoeffs, Heat2dCoeffs,
    Heat3dCoeffs, LifeRule,
};
use tempora_tiling::{ghost, lcs_rect, skew, Mode};

/// One measured curve: label + `(x, Gstencils/s)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Scheme name (`our`, `auto`, `scalar`, …).
    pub label: String,
    /// The engine the dispatch layer resolved to for this series
    /// (`portable` | `avx2`), when the series routes through
    /// `tempora_core::engine` — sequential *and* tiling-driven parallel
    /// sweeps alike. `None` for baseline schemes, non-dispatched modes
    /// and the LCS wavefront.
    pub engine: Option<String>,
    /// `(x, Gstencils/s)` samples.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Column heading: the label, suffixed with the resolved engine for
    /// dispatched series (`our:avx2`).
    pub fn column_label(&self) -> String {
        match &self.engine {
            Some(e) => format!("{}:{e}", self.label),
            None => self.label.clone(),
        }
    }
}

/// One reproduced figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier (e.g. `fig4a`).
    pub id: String,
    /// Human title matching the paper.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// The measured curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as an aligned text table (the harness output format).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, self.title));
        out.push_str(&format!("{:>13}", self.xlabel));
        for s in &self.series {
            out.push_str(&format!("{:>13}", s.column_label()));
        }
        out.push('\n');
        let npts = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for i in 0..npts {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.0))
                .unwrap_or(f64::NAN);
            if x == x.trunc() && x.abs() < 1e15 {
                out.push_str(&format!("{:>13}", x as i64));
            } else {
                out.push_str(&format!("{:>13.3}", x));
            }
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, g)) => out.push_str(&format!("{:>13.4}", g)),
                    None => out.push_str(&format!("{:>13}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (`x,label1,label2,…`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push('x');
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label);
        }
        out.push('\n');
        let npts = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for i in 0..npts {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.0))
                .unwrap_or(f64::NAN);
            out.push_str(&format!("{x}"));
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, g)) => out.push_str(&format!(",{g}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as a JSON object (`{"id", "title", "xlabel", "series"}`),
    /// the element format of the committed `BENCH_*.json` baselines.
    pub fn to_json(&self) -> String {
        let series: Vec<String> = self
            .series
            .iter()
            .map(|s| {
                let pts: Vec<String> = s
                    .points
                    .iter()
                    .map(|&(x, g)| format!("[{},{}]", json_num(x), json_num(g)))
                    .collect();
                let engine = match &s.engine {
                    Some(e) => format!("\"engine\":\"{}\",", json_escape(e)),
                    None => String::new(),
                };
                format!(
                    "{{\"label\":\"{}\",{engine}\"points\":[{}]}}",
                    json_escape(&s.label),
                    pts.join(",")
                )
            })
            .collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"xlabel\":\"{}\",\"series\":[{}]}}",
            json_escape(&self.id),
            json_escape(&self.title),
            json_escape(&self.xlabel),
            series.join(",")
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number; JSON has no inf/NaN, so non-finite
/// measurements (e.g. throughput over a sub-resolution timing) become
/// `null` rather than corrupting the whole document.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Time a closure once, in seconds — a single **cold** measurement.
/// Prefer [`time_stable`] for anything that lands in reported figures.
pub fn time_once<F: FnOnce()>(f: F) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// One untimed warm-up call (faults in pages, warms caches and branch
/// predictors, spins up worker pools) followed by `reps` timed calls;
/// returns the **median** of the timed calls. The median is robust to the
/// one-off outliers a cold single-shot measurement produces (e.g. the
/// fig5g scalar dip in `BENCH_pr1.json`).
pub fn time_median<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f(); // warm-up, untimed
    let mut ts: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    ts.sort_by(f64::total_cmp);
    ts[ts.len() / 2]
}

/// The harness's standard measurement: warm-up plus median of 3.
pub fn time_stable<F: FnMut()>(f: F) -> f64 {
    time_median(f, 3)
}

/// Convert a measurement to Gstencils/s.
pub fn gstencils(points: usize, steps: usize, secs: f64) -> f64 {
    (points as f64) * (steps as f64) / secs / 1e9
}

/// Pick a step count so one measurement touches roughly `budget` point
/// updates: rounded up to a multiple of 4 (a whole number of `VL = 4`
/// temporal tiles) **then** clamped to `[lo, hi]`, so the result can
/// never exceed `hi`. Callers keep `lo` and `hi` multiples of 4 so the
/// clamp preserves the tile alignment.
pub fn choose_steps(points: usize, budget: f64, lo: usize, hi: usize) -> usize {
    let raw = (budget / points.max(1) as f64).round() as usize;
    (raw.div_ceil(4) * 4).clamp(lo, hi)
}

/// Per-measurement point-update budget (tuned so a full sequential sweep
/// finishes in minutes on a laptop).
pub const SEQ_BUDGET: f64 = 6.0e7;

const SEED: u64 = 0x7e3707a;

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// Scaled parallel configurations `(size, steps, block, height)` per
/// benchmark (`height` = time-block depth of Table 1, clamped to the
/// scaled step count and rounded to the engine's vector length).
pub struct ParallelConfigs {
    /// Heat-1D `(n, steps, block, height)`.
    pub heat1d: (usize, usize, usize, usize),
    /// Heat-2D `(n, steps, block, height)`.
    pub heat2d: (usize, usize, usize, usize),
    /// 2D9P `(n, steps, block, height)`.
    pub box2d: (usize, usize, usize, usize),
    /// Heat-3D `(n, steps, block, height)`.
    pub heat3d: (usize, usize, usize, usize),
    /// Life `(n, steps, block, height)`.
    pub life: (usize, usize, usize, usize),
    /// GS-1D `(n, steps, block, height)`.
    pub gs1d: (usize, usize, usize, usize),
    /// GS-2D `(n, steps, block, height)`.
    pub gs2d: (usize, usize, usize, usize),
    /// GS-3D `(n, steps, block, height)`.
    pub gs3d: (usize, usize, usize, usize),
    /// LCS `(len, xblock, yblock)`.
    pub lcs: (usize, usize, usize),
}

/// Table-1 configurations divided by `scale` (linear dimensions), with
/// step counts shortened so runtimes stay laptop-sized.
pub fn parallel_configs(scale: usize) -> ParallelConfigs {
    let s = scale.max(1);
    let d = |v: usize, lo: usize| (v / s).max(lo);
    // Clamp a paper time-block height: ghost (Jacobi) tiles want a few
    // bands and a ghost width well below the block; skewed (GS) tiles
    // want a deep enough pipeline (>= 8 bands) for wavefront parallelism.
    let hj = |paper: usize, steps: usize, block: usize, vl: usize| {
        (paper.min(steps / 2).min(block / 4).max(vl) / vl) * vl
    };
    let hg = |paper: usize, steps: usize, block: usize, s_: usize, vl: usize| {
        let cap = block.saturating_sub(vl * s_ + vl); // wave disjointness
        (paper.min(steps / 8).min(cap).max(vl) / vl) * vl
    };
    let heat1d = (d(16_000_000, 4096), d(6000, 64).min(256), d(16384, 512));
    let heat2d = (d(8000, 128), d(2000, 32).min(64), d(256, 32));
    let heat3d = (d(800, 32), d(200, 16).min(32), d(32, 8));
    let life = (d(8000, 128), d(2000, 32).min(64), d(256, 32));
    let gs1d_n = d(16_000_000, 4096);
    let gs1d = (gs1d_n, d(6000, 64).min(256), (gs1d_n / 64).max(512));
    let gs2d_n = d(8000, 128);
    let gs2d = (gs2d_n, d(2000, 32).min(64), (gs2d_n / 4).max(32));
    let gs3d_n = d(800, 32);
    let gs3d = (gs3d_n, d(200, 16).min(32), (gs3d_n / 2).max(24));
    ParallelConfigs {
        heat1d: (heat1d.0, heat1d.1, heat1d.2, hj(128, heat1d.1, heat1d.2, 4)),
        heat2d: (heat2d.0, heat2d.1, heat2d.2, hj(64, heat2d.1, heat2d.2, 4)),
        box2d: (heat2d.0, heat2d.1, heat2d.2, hj(64, heat2d.1, heat2d.2, 4)),
        heat3d: (heat3d.0, heat3d.1, heat3d.2, hj(8, heat3d.1, heat3d.2, 4)),
        life: (life.0, life.1, life.2, hj(32, life.1, life.2, 8)),
        gs1d: (gs1d.0, gs1d.1, gs1d.2, hg(64, gs1d.1, gs1d.2, 7, 4)),
        gs2d: (gs2d.0, gs2d.1, gs2d.2, hg(32, gs2d.1 * 2, gs2d.2, 2, 4)),
        gs3d: (gs3d.0, gs3d.1, gs3d.2, hg(32, gs3d.1 * 2, gs3d.2, 2, 4)),
        lcs: (d(200_000, 2048), d(4096, 256), d(4096, 256)),
    }
}

/// Reproduce Table 1: benchmark names, paper problem/blocking sizes, and
/// the sizes this harness actually runs at the given `scale` divisor.
pub fn table1(scale: usize) -> String {
    let s = scale.max(1);
    let rows = [
        ("Heat-1D", "16000000 x 6000", "16384 x 128"),
        ("Heat-2D", "8000^2 x 2000", "256^2 x 64"),
        ("2D9P", "8000^2 x 2000", "256^2 x 64"),
        ("Heat-3D", "800^3 x 200", "32^3 x 8"),
        ("Life", "8000^2 x 2000", "256^2 x 32"),
        ("GS-1D", "16000000 x 6000", "2048 x 64"),
        ("GS-2D", "8000^2 x 2000", "128^2 x 32"),
        ("GS-3D", "800^3 x 200", "32^3 x 32"),
        ("LCS", "200000 x 200000", "4096 x 4096"),
    ];
    let p = parallel_configs(s);
    let scaled = [
        format!(
            "{} x {} / blk {}x{}",
            p.heat1d.0, p.heat1d.1, p.heat1d.2, p.heat1d.3
        ),
        format!(
            "{}^2 x {} / blk {}x{}",
            p.heat2d.0, p.heat2d.1, p.heat2d.2, p.heat2d.3
        ),
        format!(
            "{}^2 x {} / blk {}x{}",
            p.box2d.0, p.box2d.1, p.box2d.2, p.box2d.3
        ),
        format!(
            "{}^3 x {} / blk {}x{}",
            p.heat3d.0, p.heat3d.1, p.heat3d.2, p.heat3d.3
        ),
        format!(
            "{}^2 x {} / blk {}x{}",
            p.life.0, p.life.1, p.life.2, p.life.3
        ),
        format!(
            "{} x {} / blk {}x{}",
            p.gs1d.0, p.gs1d.1, p.gs1d.2, p.gs1d.3
        ),
        format!(
            "{}^2 x {} / blk {}x{}",
            p.gs2d.0, p.gs2d.1, p.gs2d.2, p.gs2d.3
        ),
        format!(
            "{}^3 x {} / blk {}x{}",
            p.gs3d.0, p.gs3d.1, p.gs3d.2, p.gs3d.3
        ),
        format!("{}^2 / blk {}^2", p.lcs.0, p.lcs.1),
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "# table1 — Problem and blocking sizes (paper vs this run, scale 1/{s})\n"
    ));
    out.push_str(&format!(
        "{:<10}{:>22}{:>16}{:>34}\n",
        "benchmark", "paper size", "paper block", "this run"
    ));
    for (i, (name, size, blockv)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{:<10}{:>22}{:>16}{:>34}\n",
            name, size, blockv, scaled[i]
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Workload builders
// ---------------------------------------------------------------------

fn grid1(n: usize) -> Grid1<f64> {
    let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.0));
    fill_random_1d(&mut g, SEED, -1.0, 1.0);
    g
}

fn grid2(n: usize) -> Grid2<f64> {
    let mut g = Grid2::new(n, n, 1, Boundary::Dirichlet(0.0));
    fill_random_2d(&mut g, SEED, -1.0, 1.0);
    g
}

fn grid3(n: usize) -> Grid3<f64> {
    let mut g = Grid3::new(n, n, n, 1, Boundary::Dirichlet(0.0));
    fill_random_3d(&mut g, SEED, -1.0, 1.0);
    g
}

fn pow2_sizes(lo_exp: u32, hi_exp: u32) -> Vec<usize> {
    (lo_exp..=hi_exp).map(|e| 1usize << e).collect()
}

/// One sequential measurement: median wall time plus the engine the
/// dispatch layer resolved to (for schemes that route through
/// `tempora_core::engine`; `None` for baselines).
pub struct Sample {
    /// Median measured wall time, seconds.
    pub secs: f64,
    /// Resolved engine name (`portable` | `avx2`), for dispatched schemes.
    pub engine: Option<&'static str>,
}

impl Sample {
    /// A measurement of a non-dispatched (baseline) scheme.
    pub fn plain(secs: f64) -> Sample {
        Sample { secs, engine: None }
    }

    /// Measure a scheme that routes through `tempora_core::engine`:
    /// warm-up + median-of-3 over `f`, recording the engine the dispatch
    /// layer resolved to. The run result is black-boxed so the work is
    /// not optimized away.
    pub fn dispatched<R>(mut f: impl FnMut() -> (R, engine::Engine)) -> Sample {
        let mut eng = None;
        let secs = time_stable(|| {
            let (r, e) = f();
            std::hint::black_box(r);
            eng = Some(e.name());
        });
        Sample { secs, engine: eng }
    }
}

/// Labelled `(n, steps) -> Sample` runner for a sequential sweep.
type SeqRun<'a> = (&'static str, Box<dyn Fn(usize, usize) -> Sample + 'a>);
/// Labelled pool-driven runner for a core-count sweep; returns the engine
/// the tiled dispatch layer resolved to (`None` for non-dispatched
/// schemes), so parallel figures report `our:avx2` vs `our:portable`
/// exactly like the sequential ones.
type ParRun<'a> = (
    &'static str,
    Box<dyn Fn(&Pool) -> Option<&'static str> + 'a>,
);

#[allow(clippy::too_many_arguments)]
fn seq_sweep<'a>(
    id: &str,
    title: &str,
    xlabel: &str,
    xs: &[usize],
    xmap: impl Fn(usize) -> f64,
    points_of: impl Fn(usize) -> usize,
    runs: Vec<SeqRun<'a>>,
    steps_hi: usize,
) -> Figure {
    let mut series: Vec<Series> = runs
        .iter()
        .map(|(label, _)| Series {
            label: label.to_string(),
            engine: None,
            points: vec![],
        })
        .collect();
    for &n in xs {
        let pts = points_of(n);
        let steps = choose_steps(pts, SEQ_BUDGET, 4, steps_hi);
        for (k, (_, run)) in runs.iter().enumerate() {
            let smp = run(n, steps);
            if series[k].engine.is_none() {
                series[k].engine = smp.engine.map(str::to_string);
            }
            series[k]
                .points
                .push((xmap(n), gstencils(pts, steps, smp.secs)));
        }
    }
    Figure {
        id: id.into(),
        title: title.into(),
        xlabel: xlabel.into(),
        series,
    }
}

// ---------------------------------------------------------------------
// Sequential figures (left column of Figures 4 and 5)
// ---------------------------------------------------------------------

/// Figure 4a: Heat-1D sequential, Gstencils/s vs problem size (2^x).
pub fn fig4a(scale: usize) -> Figure {
    let hi = match scale {
        0..=1 => 23,
        2..=4 => 22,
        5..=16 => 20,
        _ => 18,
    };
    let c = Heat1dCoeffs::classic(0.25);
    let kern = JacobiKern1d(c);
    let sel = Select::from_env();
    seq_sweep(
        "fig4a",
        "Heat-1D Sequential",
        "log2(N)",
        &pow2_sizes(7, hi),
        |n| (n as f64).log2(),
        |n| n,
        vec![
            (
                "our",
                Box::new(move |n, steps| {
                    let g = grid1(n);
                    Sample::dispatched(|| engine::run_heat1d(sel, &g, &kern, steps, 7))
                }),
            ),
            (
                "auto",
                Box::new(move |n, steps| {
                    let g = grid1(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(multiload::heat1d(&g, c, steps));
                    }))
                }),
            ),
            (
                "scalar",
                Box::new(move |n, steps| {
                    let g = grid1(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(reference::heat1d(&g, c, steps));
                    }))
                }),
            ),
        ],
        65536,
    )
}

/// Figure 4c: Heat-2D sequential.
pub fn fig4c(scale: usize) -> Figure {
    let cap = 8192 / scale.clamp(1, 8);
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let c = Heat2dCoeffs::classic(0.125);
    let kern = JacobiKern2d(c);
    let sel = Select::from_env();
    seq_sweep(
        "fig4c",
        "Heat-2D Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n,
        vec![
            (
                "our",
                Box::new(move |n, steps| {
                    let g = grid2(n);
                    Sample::dispatched(|| engine::run_heat2d(sel, &g, &kern, steps, 2))
                }),
            ),
            (
                "auto",
                Box::new(move |n, steps| {
                    let g = grid2(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(multiload::heat2d(&g, c, steps));
                    }))
                }),
            ),
            (
                "scalar",
                Box::new(move |n, steps| {
                    let g = grid2(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(reference::heat2d(&g, c, steps));
                    }))
                }),
            ),
        ],
        2000,
    )
}

/// Figure 4e: Heat-3D sequential.
pub fn fig4e(scale: usize) -> Figure {
    let cap = match scale {
        0..=1 => 512,
        2..=4 => 256,
        _ => 128,
    };
    let sizes: Vec<usize> = [16usize, 32, 64, 128, 256, 512]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let c = Heat3dCoeffs::classic(1.0 / 6.0);
    let kern = JacobiKern3d(c);
    let sel = Select::from_env();
    seq_sweep(
        "fig4e",
        "Heat-3D Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n * n,
        vec![
            (
                "our",
                Box::new(move |n, steps| {
                    let g = grid3(n);
                    Sample::dispatched(|| engine::run_heat3d(sel, &g, &kern, steps, 2))
                }),
            ),
            (
                "auto",
                Box::new(move |n, steps| {
                    let g = grid3(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(multiload::heat3d(&g, c, steps));
                    }))
                }),
            ),
            (
                "scalar",
                Box::new(move |n, steps| {
                    let g = grid3(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(reference::heat3d(&g, c, steps));
                    }))
                }),
            ),
        ],
        512,
    )
}

/// Figure 4g: 2D9P sequential.
pub fn fig4g(scale: usize) -> Figure {
    let cap = 8192 / scale.clamp(1, 8);
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let c = Box2dCoeffs::smooth(0.1);
    let kern = BoxKern2d(c);
    let sel = Select::from_env();
    seq_sweep(
        "fig4g",
        "2D9P Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n,
        vec![
            (
                "our",
                Box::new(move |n, steps| {
                    let g = grid2(n);
                    Sample::dispatched(|| engine::run_box2d(sel, &g, &kern, steps, 2))
                }),
            ),
            (
                "auto",
                Box::new(move |n, steps| {
                    let g = grid2(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(multiload::box2d(&g, c, steps));
                    }))
                }),
            ),
            (
                "scalar",
                Box::new(move |n, steps| {
                    let g = grid2(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(reference::box2d(&g, c, steps));
                    }))
                }),
            ),
        ],
        2000,
    )
}

/// Figure 4i: Life sequential (integer 2D9P, 8 lanes).
pub fn fig4i(scale: usize) -> Figure {
    let cap = 8192 / scale.clamp(1, 8);
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let rule = LifeRule::b2s23();
    let kern = LifeKern2d(rule);
    let mk = |n: usize| {
        let mut g = Grid2::<i32>::new(n, n, 1, Boundary::Dirichlet(0));
        fill_random_life(&mut g, SEED, 0.35);
        g
    };
    let sel = Select::from_env();
    seq_sweep(
        "fig4i",
        "Life Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n,
        vec![
            (
                "our",
                Box::new(move |n, steps| {
                    let g = mk(n);
                    Sample::dispatched(|| engine::run_life(sel, &g, &kern, steps, 2))
                }),
            ),
            (
                "auto",
                Box::new(move |n, steps| {
                    let g = mk(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(multiload::life(&g, rule, steps));
                    }))
                }),
            ),
            (
                "scalar",
                Box::new(move |n, steps| {
                    let g = mk(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(reference::life(&g, rule, steps));
                    }))
                }),
            ),
        ],
        2000,
    )
}

/// Figure 5a: GS-1D sequential (no "auto" — spatial vectorization of
/// Gauss-Seidel loops is illegal).
pub fn fig5a(scale: usize) -> Figure {
    let hi = match scale {
        0..=1 => 23,
        2..=4 => 22,
        5..=16 => 20,
        _ => 18,
    };
    let c = Gs1dCoeffs::classic(0.25);
    let kern = GsKern1d(c);
    let sel = Select::from_env();
    seq_sweep(
        "fig5a",
        "GS-1D Sequential",
        "log2(N)",
        &pow2_sizes(7, hi),
        |n| (n as f64).log2(),
        |n| n,
        vec![
            (
                "our",
                Box::new(move |n, steps| {
                    let g = grid1(n);
                    Sample::dispatched(|| engine::run_gs1d(sel, &g, &kern, steps, 7))
                }),
            ),
            (
                "scalar",
                Box::new(move |n, steps| {
                    let g = grid1(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(reference::gs1d(&g, c, steps));
                    }))
                }),
            ),
        ],
        65536,
    )
}

/// Figure 5c: GS-2D sequential.
pub fn fig5c(scale: usize) -> Figure {
    let cap = 8192 / scale.clamp(1, 8);
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let c = Gs2dCoeffs::classic(0.2);
    let kern = GsKern2d(c);
    let sel = Select::from_env();
    seq_sweep(
        "fig5c",
        "GS-2D Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n,
        vec![
            (
                "our",
                Box::new(move |n, steps| {
                    let g = grid2(n);
                    Sample::dispatched(|| engine::run_gs2d(sel, &g, &kern, steps, 2))
                }),
            ),
            (
                "scalar",
                Box::new(move |n, steps| {
                    let g = grid2(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(reference::gs2d(&g, c, steps));
                    }))
                }),
            ),
        ],
        2000,
    )
}

/// Figure 5e: GS-3D sequential.
pub fn fig5e(scale: usize) -> Figure {
    let cap = match scale {
        0..=1 => 512,
        2..=4 => 256,
        _ => 128,
    };
    let sizes: Vec<usize> = [16usize, 32, 64, 128, 256, 512]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let c = Gs3dCoeffs::classic(0.125);
    let kern = GsKern3d(c);
    let sel = Select::from_env();
    seq_sweep(
        "fig5e",
        "GS-3D Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n * n,
        vec![
            (
                "our",
                Box::new(move |n, steps| {
                    let g = grid3(n);
                    Sample::dispatched(|| engine::run_gs3d(sel, &g, &kern, steps, 2))
                }),
            ),
            (
                "scalar",
                Box::new(move |n, steps| {
                    let g = grid3(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(reference::gs3d(&g, c, steps));
                    }))
                }),
            ),
        ],
        512,
    )
}

/// Figure 5g: LCS sequential (one full DP table; Gcells/s).
pub fn fig5g(scale: usize) -> Figure {
    let hi = match scale {
        0..=1 => 17,
        2..=4 => 16,
        _ => 14,
    };
    let sel = Select::from_env();
    let mut our = vec![];
    let mut scalar = vec![];
    let mut our_engine = None;
    for n in pow2_sizes(7, hi) {
        let a = random_sequence(n, 4, SEED);
        let b = random_sequence(n, 4, SEED + 1);
        let smp = Sample::dispatched(|| engine::run_lcs(sel, &a, &b, 1));
        our_engine = smp.engine.map(str::to_string);
        let t_scalar = time_stable(|| {
            std::hint::black_box(reference::lcs_len(&a, &b));
        });
        let x = (n as f64).log2();
        our.push((x, gstencils(n, n, smp.secs)));
        scalar.push((x, gstencils(n, n, t_scalar)));
    }
    Figure {
        id: "fig5g".into(),
        title: "LCS Sequential".into(),
        xlabel: "log2(N)".into(),
        series: vec![
            Series {
                label: "our".into(),
                engine: our_engine,
                points: our,
            },
            Series {
                label: "scalar".into(),
                engine: None,
                points: scalar,
            },
        ],
    }
}

// ---------------------------------------------------------------------
// Parallel figures (right column of Figures 4 and 5)
// ---------------------------------------------------------------------

fn core_counts(max_cores: usize) -> Vec<usize> {
    let mut v: Vec<usize> = vec![1];
    let mut c = 2;
    while c <= max_cores {
        v.push(c);
        c += if c < 4 { 1 } else { 4 };
    }
    v.dedup();
    v
}

fn parallel_sweep<'a>(
    id: &str,
    title: &str,
    max_cores: usize,
    pts: usize,
    steps: usize,
    runs: Vec<ParRun<'a>>,
) -> Figure {
    let mut series: Vec<Series> = runs
        .iter()
        .map(|(label, _)| Series {
            label: label.to_string(),
            engine: None,
            points: vec![],
        })
        .collect();
    for &cores in &core_counts(max_cores) {
        let pool = Pool::new(cores);
        for (k, (_, run)) in runs.iter().enumerate() {
            // time_stable's built-in warm-up faults in pages and spins up
            // the workers before the three timed runs.
            let mut eng = None;
            let t = time_stable(|| eng = run(&pool));
            if series[k].engine.is_none() {
                series[k].engine = eng.map(str::to_string);
            }
            series[k]
                .points
                .push((cores as f64, gstencils(pts, steps, t)));
        }
    }
    Figure {
        id: id.into(),
        title: title.into(),
        xlabel: "cores".into(),
        series,
    }
}

/// Figure 4b: Heat-1D parallel scaling (ghost-zone temporal bands,
/// in-tile engine dispatched through `tempora_core::engine`).
pub fn fig4b(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).heat1d;
    let c = Heat1dCoeffs::classic(0.25);
    let kern = JacobiKern1d(c);
    let sel = Select::from_env();
    let g = grid1(n);
    let run = |mode: Mode| {
        let g = &g;
        let kern = &kern;
        move |pool: &Pool| {
            let (r, e) = ghost::run_jacobi_1d(g, kern, steps, block, height, mode, sel, pool);
            std::hint::black_box(r);
            e.map(engine::Engine::name)
        }
    };
    parallel_sweep(
        "fig4b",
        "Heat-1D Parallel",
        max_cores,
        n,
        steps,
        vec![
            ("our", Box::new(run(Mode::Temporal(7)))),
            ("auto", Box::new(run(Mode::Auto))),
            ("scalar", Box::new(run(Mode::Scalar))),
        ],
    )
}

/// Figure 4d: Heat-2D parallel scaling.
pub fn fig4d(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).heat2d;
    let c = Heat2dCoeffs::classic(0.125);
    let kern = JacobiKern2d(c);
    let sel = Select::from_env();
    let g = grid2(n);
    let run = |mode: Mode| {
        let g = &g;
        let kern = &kern;
        move |pool: &Pool| {
            let (r, e) =
                ghost::run_jacobi_2d::<f64, 4, _>(g, kern, steps, block, height, mode, sel, pool);
            std::hint::black_box(r);
            e.map(engine::Engine::name)
        }
    };
    parallel_sweep(
        "fig4d",
        "Heat-2D Parallel",
        max_cores,
        n * n,
        steps,
        vec![
            ("our", Box::new(run(Mode::Temporal(2)))),
            ("auto", Box::new(run(Mode::Auto))),
            ("scalar", Box::new(run(Mode::Scalar))),
        ],
    )
}

/// Figure 4f: Heat-3D parallel scaling.
pub fn fig4f(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).heat3d;
    let c = Heat3dCoeffs::classic(1.0 / 6.0);
    let kern = JacobiKern3d(c);
    let sel = Select::from_env();
    let g = grid3(n);
    let run = |mode: Mode| {
        let g = &g;
        let kern = &kern;
        move |pool: &Pool| {
            let (r, e) = ghost::run_jacobi_3d(g, kern, steps, block, height, mode, sel, pool);
            std::hint::black_box(r);
            e.map(engine::Engine::name)
        }
    };
    parallel_sweep(
        "fig4f",
        "Heat-3D Parallel",
        max_cores,
        n * n * n,
        steps,
        vec![
            ("our", Box::new(run(Mode::Temporal(2)))),
            ("auto", Box::new(run(Mode::Auto))),
            ("scalar", Box::new(run(Mode::Scalar))),
        ],
    )
}

/// Figure 4h: 2D9P parallel scaling.
pub fn fig4h(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).box2d;
    let c = Box2dCoeffs::smooth(0.1);
    let kern = BoxKern2d(c);
    let sel = Select::from_env();
    let g = grid2(n);
    let run = |mode: Mode| {
        let g = &g;
        let kern = &kern;
        move |pool: &Pool| {
            let (r, e) =
                ghost::run_jacobi_2d::<f64, 4, _>(g, kern, steps, block, height, mode, sel, pool);
            std::hint::black_box(r);
            e.map(engine::Engine::name)
        }
    };
    parallel_sweep(
        "fig4h",
        "2D9P Parallel",
        max_cores,
        n * n,
        steps,
        vec![
            ("our", Box::new(run(Mode::Temporal(2)))),
            ("auto", Box::new(run(Mode::Auto))),
            ("scalar", Box::new(run(Mode::Scalar))),
        ],
    )
}

/// Figure 4j: Life parallel scaling.
pub fn fig4j(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).life;
    let rule = LifeRule::b2s23();
    let kern = LifeKern2d(rule);
    let sel = Select::from_env();
    let mut g = Grid2::<i32>::new(n, n, 1, Boundary::Dirichlet(0));
    fill_random_life(&mut g, SEED, 0.35);
    let run = |mode: Mode| {
        let g = &g;
        let kern = &kern;
        move |pool: &Pool| {
            let (r, e) =
                ghost::run_jacobi_2d::<i32, 8, _>(g, kern, steps, block, height, mode, sel, pool);
            std::hint::black_box(r);
            e.map(engine::Engine::name)
        }
    };
    parallel_sweep(
        "fig4j",
        "Life Parallel",
        max_cores,
        n * n,
        steps,
        vec![
            ("our", Box::new(run(Mode::Temporal(2)))),
            ("auto", Box::new(run(Mode::Auto))),
            ("scalar", Box::new(run(Mode::Scalar))),
        ],
    )
}

/// Figure 5b: GS-1D parallel scaling (pipelined parallelogram tiles).
pub fn fig5b(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).gs1d;
    let c = Gs1dCoeffs::classic(0.25);
    let kern = GsKern1d(c);
    let sel = Select::from_env();
    let g = grid1(n);
    let run = |mode: Mode| {
        let g = &g;
        let kern = &kern;
        move |pool: &Pool| {
            let (r, e) = skew::run_gs_1d(g, kern, steps, block, height, mode, sel, pool);
            std::hint::black_box(r);
            e.map(engine::Engine::name)
        }
    };
    parallel_sweep(
        "fig5b",
        "GS-1D Parallel",
        max_cores,
        n,
        steps,
        vec![
            ("our", Box::new(run(Mode::Temporal(7)))),
            ("scalar", Box::new(run(Mode::Scalar))),
        ],
    )
}

/// Figure 5d: GS-2D parallel scaling.
pub fn fig5d(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).gs2d;
    let c = Gs2dCoeffs::classic(0.2);
    let kern = GsKern2d(c);
    let sel = Select::from_env();
    let g = grid2(n);
    let run = |mode: Mode| {
        let g = &g;
        let kern = &kern;
        move |pool: &Pool| {
            let (r, e) = skew::run_gs_2d(g, kern, steps, block, height, mode, sel, pool);
            std::hint::black_box(r);
            e.map(engine::Engine::name)
        }
    };
    parallel_sweep(
        "fig5d",
        "GS-2D Parallel",
        max_cores,
        n * n,
        steps,
        vec![
            ("our", Box::new(run(Mode::Temporal(2)))),
            ("scalar", Box::new(run(Mode::Scalar))),
        ],
    )
}

/// Figure 5f: GS-3D parallel scaling.
pub fn fig5f(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).gs3d;
    let c = Gs3dCoeffs::classic(0.125);
    let kern = GsKern3d(c);
    let sel = Select::from_env();
    let g = grid3(n);
    let run = |mode: Mode| {
        let g = &g;
        let kern = &kern;
        move |pool: &Pool| {
            let (r, e) = skew::run_gs_3d(g, kern, steps, block, height, mode, sel, pool);
            std::hint::black_box(r);
            e.map(engine::Engine::name)
        }
    };
    parallel_sweep(
        "fig5f",
        "GS-3D Parallel",
        max_cores,
        n * n * n,
        steps,
        vec![
            ("our", Box::new(run(Mode::Temporal(2)))),
            ("scalar", Box::new(run(Mode::Scalar))),
        ],
    )
}

/// Figure 5h: LCS parallel scaling (rectangle tiles, wavefront).
pub fn fig5h(scale: usize, max_cores: usize) -> Figure {
    let (n, xb, yb) = parallel_configs(scale).lcs;
    let a = random_sequence(n, 4, SEED);
    let b = random_sequence(n, 4, SEED + 1);
    let run = |temporal: bool| {
        let a = &a;
        let b = &b;
        move |pool: &Pool| {
            std::hint::black_box(lcs_rect::run_lcs(a, b, xb, yb, 1, temporal, pool));
            None // the LCS wavefront does not route through the dispatcher yet
        }
    };
    parallel_sweep(
        "fig5h",
        "LCS Parallel",
        max_cores,
        n,
        n,
        vec![
            ("our", Box::new(run(true))),
            ("scalar", Box::new(run(false))),
        ],
    )
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// §3.3/§3.5 reorganization-instruction budgets, measured with the
/// counting kernels: the temporal scheme's constant per-output-vector
/// cost versus the data-reorganization baseline.
pub fn ablate_reorg() -> String {
    use tempora_simd::count;
    let c = Heat1dCoeffs::classic(0.25);
    let g = grid1(1 << 14);
    let mut out = String::new();
    out.push_str("# ablate-reorg — data-reorganization ops per output vector (1D3P, vl=4)\n");
    out.push_str(&format!(
        "{:<28}{:>10}{:>12}{:>10}{:>10}\n",
        "scheme", "in-lane", "cross-lane", "total", "gathers"
    ));
    {
        let sess = count::Session::start();
        let _ = t1d::run_counted::<4, _>(&g, &JacobiKern1d(c), 4, 7);
        let k = sess.finish();
        out.push_str(&format!(
            "{:<28}{:>10.3}{:>12.3}{:>10.3}{:>10}\n",
            "temporal (ours)",
            k.in_lane_per_output(),
            k.cross_lane_per_output(),
            k.reorg_per_output(),
            k.gather,
        ));
    }
    {
        let sess = count::Session::start();
        let _ = t1d::run_batched_counted::<4, _>(&g, &JacobiKern1d(c), 4, 7);
        let k = sess.finish();
        out.push_str(&format!(
            "{:<28}{:>10.3}{:>12.3}{:>10.3}{:>10}\n",
            "temporal, batched tops",
            k.in_lane_per_output(),
            k.cross_lane_per_output(),
            k.reorg_per_output(),
            k.gather,
        ));
    }
    {
        let sess = count::Session::start();
        let _ = reorg::heat1d_counted(&g, c, 4);
        let k = sess.finish();
        out.push_str(&format!(
            "{:<28}{:>10.3}{:>12.3}{:>10.3}{:>10}\n",
            "data-reorganization",
            k.in_lane_per_output(),
            k.cross_lane_per_output(),
            k.reorg_per_output(),
            k.gather,
        ));
    }
    out.push_str(
        "\npaper's analysis: temporal = 1 rotate (cross-lane) + 1 blend (in-lane)\n\
         per output vector, independent of vl, order and dimension; the\n\
         data-reorganization baseline needs >= 2 shuffles per vector and grows\n\
         with stencil order and dimensionality (§3.5).\n",
    );
    out
}

/// §3.3 stride sweep: Gstencils/s of the 1-D temporal engine as the
/// space stride `s` (and with it the number of in-flight input vectors /
/// ILP) varies.
pub fn ablate_stride(scale: usize) -> Figure {
    let n = ((1usize << 20) / scale.max(1)).max(1 << 12);
    let c = Heat1dCoeffs::classic(0.25);
    let kern = JacobiKern1d(c);
    let sel = Select::from_env();
    let g = grid1(n);
    let steps = choose_steps(n, SEQ_BUDGET, 8, 4096);
    let mut pts = vec![];
    let mut eng = None;
    for s in 2..=8 {
        let smp = Sample::dispatched(|| engine::run_heat1d(sel, &g, &kern, steps, s));
        eng = smp.engine.map(str::to_string);
        pts.push((s as f64, gstencils(n, steps, smp.secs)));
    }
    Figure {
        id: "ablate-stride".into(),
        title: "Temporal stride sweep (Heat-1D)".into(),
        xlabel: "stride s".into(),
        series: vec![Series {
            label: "our".into(),
            engine: eng,
            points: pts,
        }],
    }
}

/// §2.2 baseline comparison: all five sequential schemes on Heat-1D.
pub fn ablate_baselines(scale: usize) -> Figure {
    let hi = if scale <= 2 { 22 } else { 19 };
    let c = Heat1dCoeffs::classic(0.25);
    let kern = JacobiKern1d(c);
    let sel = Select::from_env();
    seq_sweep(
        "ablate-baselines",
        "All vectorization schemes (Heat-1D sequential)",
        "log2(N)",
        &pow2_sizes(10, hi),
        |n| (n as f64).log2(),
        |n| n,
        vec![
            (
                "our",
                Box::new(move |n, steps| {
                    let g = grid1(n);
                    Sample::dispatched(|| engine::run_heat1d(sel, &g, &kern, steps, 7))
                }),
            ),
            (
                "multiload",
                Box::new(move |n, steps| {
                    let g = grid1(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(multiload::heat1d(&g, c, steps));
                    }))
                }),
            ),
            (
                "reorg",
                Box::new(move |n, steps| {
                    let g = grid1(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(reorg::heat1d(&g, c, steps));
                    }))
                }),
            ),
            (
                "dlt",
                Box::new(move |n, steps| {
                    let g = grid1(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(dlt::heat1d(&g, c, steps));
                    }))
                }),
            ),
            (
                "scalar",
                Box::new(move |n, steps| {
                    let g = grid1(n);
                    Sample::plain(time_stable(|| {
                        std::hint::black_box(reference::heat1d(&g, c, steps));
                    }))
                }),
            ),
        ],
        16384,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_selection() {
        assert_eq!(choose_steps(1 << 20, 1e7, 8, 4096) % 4, 0);
        assert!(choose_steps(10, 1e7, 8, 4096) <= 4096);
        assert!(choose_steps(usize::MAX / 2, 1e7, 8, 4096) >= 8);
    }

    #[test]
    fn steps_never_exceed_hi() {
        // Regression: rounding up to a multiple of 4 *after* clamping used
        // to push the result past `hi` (e.g. hi = 5 -> 8).
        assert_eq!(choose_steps(1, 1e9, 4, 5), 5);
        assert_eq!(choose_steps(1, 1e9, 4, 2000), 2000);
        for hi in [4usize, 5, 512, 2000, 65536] {
            assert!(choose_steps(1, 1e12, 4, hi) <= hi, "hi={hi}");
        }
        // Small raw counts still land on a tile multiple within range.
        assert_eq!(choose_steps(1 << 20, 6e7, 4, 65536), 60);
    }

    #[test]
    fn figure_rendering() {
        let f = Figure {
            id: "t".into(),
            title: "T".into(),
            xlabel: "x".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    engine: None,
                    points: vec![(1.0, 2.0), (2.0, 3.0)],
                },
                Series {
                    label: "our".into(),
                    engine: Some("avx2".into()),
                    points: vec![(1.0, 4.0), (2.0, 5.0)],
                },
            ],
        };
        let table = f.to_table();
        assert!(table.contains("# t — T"));
        assert!(table.contains("our:avx2"), "{table}");
        let csv = f.to_csv();
        assert!(csv.starts_with("x,a,our\n"));
        assert!(csv.contains("1,2,4\n"));
        let json = f.to_json();
        assert!(json.contains("\"engine\":\"avx2\""), "{json}");
        assert!(!json.contains("\"label\":\"a\",\"engine\""), "{json}");
    }

    #[test]
    fn time_median_is_robust_to_one_outlier() {
        // The first (cold) call is the slowest by construction; the median
        // of the post-warm-up runs must not report it.
        let mut calls = 0u32;
        let t = time_median(
            || {
                calls += 1;
                if calls == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            },
            3,
        );
        assert_eq!(calls, 4); // 1 warm-up + 3 timed
        assert!(t < 0.015, "median contaminated by warm-up outlier: {t}");
    }

    #[test]
    fn reorg_ablation_confirms_paper_budget() {
        let r = ablate_reorg();
        assert!(r.contains("temporal (ours)"));
        // The temporal line must report exactly 1 in-lane + 1 cross-lane
        // per output vector.
        let line = r.lines().find(|l| l.starts_with("temporal")).unwrap();
        assert!(line.contains("1.000"), "{line}");
    }

    #[test]
    fn parallel_configs_scale_down() {
        let p1 = parallel_configs(1);
        let p16 = parallel_configs(16);
        assert!(p16.heat1d.0 < p1.heat1d.0);
        assert!(p16.lcs.0 < p1.lcs.0);
        assert!(p16.heat2d.0 >= 128);
    }

    #[test]
    fn core_count_ladder() {
        assert_eq!(core_counts(1), vec![1]);
        assert_eq!(core_counts(2), vec![1, 2]);
        assert_eq!(core_counts(4), vec![1, 2, 3, 4]);
        let c24 = core_counts(24);
        assert!(c24.starts_with(&[1, 2, 3, 4, 8, 12]));
    }
}
