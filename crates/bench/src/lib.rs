//! # tempora-bench — reproduction harness for the paper's evaluation
//!
//! One runner per table/figure of the evaluation section (§4), wired to
//! the `repro` binary:
//!
//! | id | artefact | runner |
//! |---|---|---|
//! | `table1` | Table 1 problem/blocking sizes | [`table1`] |
//! | `fig4a`/`fig4b` | Heat-1D sequential / parallel | [`fig4a`], [`fig4b`] |
//! | `fig4c`/`fig4d` | Heat-2D | [`fig4c`], [`fig4d`] |
//! | `fig4e`/`fig4f` | Heat-3D | [`fig4e`], [`fig4f`] |
//! | `fig4g`/`fig4h` | 2D9P | [`fig4g`], [`fig4h`] |
//! | `fig4i`/`fig4j` | Life | [`fig4i`], [`fig4j`] |
//! | `fig5a`/`fig5b` | GS-1D | [`fig5a`], [`fig5b`] |
//! | `fig5c`/`fig5d` | GS-2D | [`fig5c`], [`fig5d`] |
//! | `fig5e`/`fig5f` | GS-3D | [`fig5e`], [`fig5f`] |
//! | `fig5g`/`fig5h` | LCS | [`fig5g`], [`fig5h`] |
//! | `ablate-reorg` | §3.3/§3.5 reorganization budgets | [`ablate_reorg`] |
//! | `ablate-stride` | §3.3 stride/ILP sweep | [`ablate_stride`] |
//! | `ablate-baselines` | §2.2 baseline comparison | [`ablate_baselines`] |
//! | `ablate-waves` | pipelined vs barrier wavefront schedule | [`ablate_waves`] |
//!
//! Every series runs through the unified solver API
//! (`tempora_plan::Plan`): the harness compiles one plan per
//! configuration — geometry validated, engine resolved, scratch and
//! thread pool allocated once — and times repeated `plan.run(&mut
//! state)` calls, exactly the serving pattern the plan API exists for.
//! Each dispatched ("our") series records the engine its plan resolved
//! to; the JSON baselines carry it as the per-series `"engine"` field.
//!
//! Measurements report **Gstencils/s** (grid points updated per second,
//! the paper's metric). The `scale` parameter shrinks the paper's problem
//! sizes by a linear factor so the full suite runs on a laptop; `scale =
//! 1` reproduces the paper's sizes (Table 1). Shapes — who wins, by what
//! factor, where curves cross — are the reproduction target, not
//! absolute numbers (different machine, different vector ISA).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use tempora_core::t1d;
use tempora_grid::{
    fill_random_1d, fill_random_2d, fill_random_3d, fill_random_life, random_sequence,
};
use tempora_plan::{Method, PlanBuilder, Problem, Select, State, Tiling};
use tempora_stencil::{
    Box2dCoeffs, Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs,
    LifeRule,
};

/// One measured curve: label + `(x, Gstencils/s)` points, with the
/// resolved engine and worker count recorded **per point** (a sweep can
/// legitimately resolve different engines at different sizes, e.g. a
/// degenerate small geometry falling back to portable — recording only
/// the first point's engine would misreport the rest of the curve).
#[derive(Clone, Debug)]
pub struct Series {
    /// Scheme name (`our`, `auto`, `scalar`, …).
    pub label: String,
    /// Per-point engine the plan resolved to (`portable` | `avx2`), for
    /// dispatched (temporal) series — sequential *and* tiling-driven
    /// parallel sweeps alike, LCS included. `None` entries for baseline
    /// schemes and non-dispatched methods. Same length as `points`.
    pub engines: Vec<Option<String>>,
    /// Per-point worker-thread count the measuring plan ran (1 for
    /// sequential sweeps, the x-axis core count for parallel sweeps).
    /// Same length as `points`.
    pub cores: Vec<usize>,
    /// `(x, Gstencils/s)` samples.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series with the given scheme label.
    pub fn new(label: &str) -> Series {
        Series {
            label: label.to_string(),
            engines: vec![],
            cores: vec![],
            points: vec![],
        }
    }

    /// Append one measured point with its resolved engine and worker
    /// count.
    pub fn push(&mut self, x: f64, gst: f64, cores: usize, engine: Option<&str>) {
        self.points.push((x, gst));
        self.cores.push(cores);
        self.engines.push(engine.map(str::to_string));
    }

    /// Summary of the per-point engines: `None` when no point was
    /// dispatched, the engine name when every dispatched point agrees,
    /// and `"mixed"` when the sweep resolved different engines at
    /// different points.
    pub fn engine_summary(&self) -> Option<String> {
        let mut summary: Option<&str> = None;
        for e in self.engines.iter().flatten() {
            match summary {
                None => summary = Some(e),
                Some(s) if s == e => {}
                Some(_) => return Some("mixed".to_string()),
            }
        }
        summary.map(str::to_string)
    }

    /// Column heading: the label, suffixed with the resolved engine for
    /// dispatched series (`our:avx2`; `our:mixed` when the sweep did not
    /// resolve one engine throughout).
    pub fn column_label(&self) -> String {
        match self.engine_summary() {
            Some(e) => format!("{}:{e}", self.label),
            None => self.label.clone(),
        }
    }
}

/// One reproduced figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier (e.g. `fig4a`).
    pub id: String,
    /// Human title matching the paper.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// The measured curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as an aligned text table (the harness output format).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} — {}\n", self.id, self.title));
        out.push_str(&format!("{:>13}", self.xlabel));
        for s in &self.series {
            out.push_str(&format!("{:>13}", s.column_label()));
        }
        out.push('\n');
        let npts = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for i in 0..npts {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.0))
                .unwrap_or(f64::NAN);
            if x == x.trunc() && x.abs() < 1e15 {
                out.push_str(&format!("{:>13}", x as i64));
            } else {
                out.push_str(&format!("{:>13.3}", x));
            }
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, g)) => out.push_str(&format!("{:>13.4}", g)),
                    None => out.push_str(&format!("{:>13}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (`x,label1,label2,…`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push('x');
        for s in &self.series {
            out.push(',');
            out.push_str(&s.label);
        }
        out.push('\n');
        let npts = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for i in 0..npts {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(i).map(|p| p.0))
                .unwrap_or(f64::NAN);
            out.push_str(&format!("{x}"));
            for s in &self.series {
                match s.points.get(i) {
                    Some(&(_, g)) => out.push_str(&format!(",{g}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as a JSON object (`{"id", "title", "xlabel", "series"}`),
    /// the element format of the committed `BENCH_*.json` baselines.
    /// Each series carries the summary `"engine"` (when dispatched) plus
    /// per-point `"cores"` and `"engines"` arrays aligned with
    /// `"points"`, so a reader can tell exactly which engine produced
    /// each sample and at how many workers.
    pub fn to_json(&self) -> String {
        let series: Vec<String> = self
            .series
            .iter()
            .map(|s| {
                let pts: Vec<String> = s
                    .points
                    .iter()
                    .map(|&(x, g)| format!("[{},{}]", json_num(x), json_num(g)))
                    .collect();
                let engine = match s.engine_summary() {
                    Some(e) => format!("\"engine\":\"{}\",", json_escape(&e)),
                    None => String::new(),
                };
                let cores: Vec<String> = s.cores.iter().map(|c| c.to_string()).collect();
                let engines: Vec<String> = s
                    .engines
                    .iter()
                    .map(|e| match e {
                        Some(e) => format!("\"{}\"", json_escape(e)),
                        None => "null".to_string(),
                    })
                    .collect();
                format!(
                    "{{\"label\":\"{}\",{engine}\"cores\":[{}],\"engines\":[{}],\"points\":[{}]}}",
                    json_escape(&s.label),
                    cores.join(","),
                    engines.join(","),
                    pts.join(",")
                )
            })
            .collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"xlabel\":\"{}\",\"series\":[{}]}}",
            json_escape(&self.id),
            json_escape(&self.title),
            json_escape(&self.xlabel),
            series.join(",")
        )
    }
}

/// Escape a string for embedding in a JSON document (quotes, backslashes
/// and control characters). Public so the `repro` binary can record
/// failure messages in the same JSON format as [`Figure::to_json`].
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON number; JSON has no inf/NaN, so non-finite
/// measurements (e.g. throughput over a sub-resolution timing) become
/// `null` rather than corrupting the whole document.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Time a closure once, in seconds — a single **cold** measurement.
/// Prefer [`time_stable`] for anything that lands in reported figures.
pub fn time_once<F: FnOnce()>(f: F) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// One untimed warm-up call (faults in pages, warms caches and branch
/// predictors, spins up worker pools) followed by `reps` timed calls;
/// returns the **median** of the timed calls. The median is robust to the
/// one-off outliers a cold single-shot measurement produces (e.g. the
/// fig5g scalar dip in `BENCH_pr1.json`).
pub fn time_median<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    f(); // warm-up, untimed
    let mut ts: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    ts.sort_by(f64::total_cmp);
    ts[ts.len() / 2]
}

/// The harness's standard measurement: warm-up plus median of 3.
pub fn time_stable<F: FnMut()>(f: F) -> f64 {
    time_median(f, 3)
}

/// Convert a measurement to Gstencils/s.
pub fn gstencils(points: usize, steps: usize, secs: f64) -> f64 {
    (points as f64) * (steps as f64) / secs / 1e9
}

/// Pick a step count so one measurement touches roughly `budget` point
/// updates: rounded up to a multiple of 4 (a whole number of `VL = 4`
/// temporal tiles) **then** clamped to `[lo, hi]`, so the result can
/// never exceed `hi`. Callers keep `lo` and `hi` multiples of 4 so the
/// clamp preserves the tile alignment.
pub fn choose_steps(points: usize, budget: f64, lo: usize, hi: usize) -> usize {
    let raw = (budget / points.max(1) as f64).round() as usize;
    (raw.div_ceil(4) * 4).clamp(lo, hi)
}

/// Per-measurement point-update budget (tuned so a full sequential sweep
/// finishes in minutes on a laptop).
pub const SEQ_BUDGET: f64 = 6.0e7;

const SEED: u64 = 0x7e3707a;

// ---------------------------------------------------------------------
// Plan-driven measurement
// ---------------------------------------------------------------------

/// One measurement: median wall time of repeated `plan.run` calls plus
/// the engine the plan resolved to (for dispatched temporal plans).
pub struct Sample {
    /// Median measured wall time, seconds.
    pub secs: f64,
    /// Resolved engine name (`portable` | `avx2`), for dispatched plans.
    pub engine: Option<&'static str>,
}

/// Compile `builder` against `problem`, build and fill a state, then
/// measure repeated `plan.run(&mut state)` calls (warm-up + median of 3;
/// setup — validation, engine resolution, scratch and pool allocation —
/// happens once, outside the timed region, exactly as a serving system
/// would amortize it).
pub fn plan_sample(problem: &Problem, builder: PlanBuilder, fill: &dyn Fn(&mut State)) -> Sample {
    let mut plan = builder
        .build(problem)
        // Panic-justification: every harness configuration is hard-coded
        // against its problem; a build failure is a bench-suite bug.
        .expect("bench configurations are valid by construction");
    let mut state = problem.state();
    fill(&mut state);
    let mut engine = None;
    let secs = time_stable(|| {
        // Panic-justification: the state comes from `problem.state()`, so
        // the shape check cannot fail; a poisoned plan aborts the bench.
        let report = plan.run(&mut state).expect("state matches plan");
        engine = report.engine.map(|e| e.name());
        std::hint::black_box(&state);
    });
    Sample { secs, engine }
}

/// Fill helper: seeded random interior for whichever grid the state
/// holds; LCS states get two random 4-symbol sequences.
fn fill_state(state: &mut State) {
    match state {
        State::Grid1(g) => fill_random_1d(g, SEED, -1.0, 1.0),
        State::Grid2(g) => fill_random_2d(g, SEED, -1.0, 1.0),
        State::Grid2i(g) => fill_random_life(g, SEED, 0.35),
        State::Grid3(g) => fill_random_3d(g, SEED, -1.0, 1.0),
        State::Lcs(l) => {
            let (la, lb) = (l.a.len(), l.b.len());
            l.a = random_sequence(la, 4, SEED);
            l.b = random_sequence(lb, 4, SEED + 1);
        }
    }
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// Scaled parallel configurations `(size, steps, block, height)` per
/// benchmark (`height` = time-block depth of Table 1, clamped to the
/// scaled step count and rounded to the engine's vector length).
pub struct ParallelConfigs {
    /// Heat-1D `(n, steps, block, height)`.
    pub heat1d: (usize, usize, usize, usize),
    /// Heat-2D `(n, steps, block, height)`.
    pub heat2d: (usize, usize, usize, usize),
    /// 2D9P `(n, steps, block, height)`.
    pub box2d: (usize, usize, usize, usize),
    /// Heat-3D `(n, steps, block, height)`.
    pub heat3d: (usize, usize, usize, usize),
    /// Life `(n, steps, block, height)`.
    pub life: (usize, usize, usize, usize),
    /// GS-1D `(n, steps, block, height)`.
    pub gs1d: (usize, usize, usize, usize),
    /// GS-2D `(n, steps, block, height)`.
    pub gs2d: (usize, usize, usize, usize),
    /// GS-3D `(n, steps, block, height)`.
    pub gs3d: (usize, usize, usize, usize),
    /// LCS `(len, xblock, yblock)`.
    pub lcs: (usize, usize, usize),
}

/// Table-1 configurations divided by `scale` (linear dimensions), with
/// step counts shortened so runtimes stay laptop-sized.
pub fn parallel_configs(scale: usize) -> ParallelConfigs {
    let s = scale.max(1);
    let d = |v: usize, lo: usize| (v / s).max(lo);
    // Clamp a paper time-block height: ghost (Jacobi) tiles want a few
    // bands and a ghost width well below the block; skewed (GS) tiles
    // want a deep enough pipeline (>= 8 bands) for wavefront parallelism.
    let hj = |paper: usize, steps: usize, block: usize, vl: usize| {
        (paper.min(steps / 2).min(block / 4).max(vl) / vl) * vl
    };
    let hg = |paper: usize, steps: usize, block: usize, s_: usize, vl: usize| {
        let cap = block.saturating_sub(vl * s_ + vl); // wave disjointness
        (paper.min(steps / 8).min(cap).max(vl) / vl) * vl
    };
    let heat1d = (d(16_000_000, 4096), d(6000, 64).min(256), d(16384, 512));
    let heat2d = (d(8000, 128), d(2000, 32).min(64), d(256, 32));
    let heat3d = (d(800, 32), d(200, 16).min(32), d(32, 8));
    let life = (d(8000, 128), d(2000, 32).min(64), d(256, 32));
    let gs1d_n = d(16_000_000, 4096);
    let gs1d = (gs1d_n, d(6000, 64).min(256), (gs1d_n / 64).max(512));
    let gs2d_n = d(8000, 128);
    let gs2d = (gs2d_n, d(2000, 32).min(64), (gs2d_n / 4).max(32));
    let gs3d_n = d(800, 32);
    let gs3d = (gs3d_n, d(200, 16).min(32), (gs3d_n / 2).max(24));
    ParallelConfigs {
        heat1d: (heat1d.0, heat1d.1, heat1d.2, hj(128, heat1d.1, heat1d.2, 4)),
        heat2d: (heat2d.0, heat2d.1, heat2d.2, hj(64, heat2d.1, heat2d.2, 4)),
        box2d: (heat2d.0, heat2d.1, heat2d.2, hj(64, heat2d.1, heat2d.2, 4)),
        heat3d: (heat3d.0, heat3d.1, heat3d.2, hj(8, heat3d.1, heat3d.2, 4)),
        life: (life.0, life.1, life.2, hj(32, life.1, life.2, 8)),
        gs1d: (gs1d.0, gs1d.1, gs1d.2, hg(64, gs1d.1, gs1d.2, 7, 4)),
        gs2d: (gs2d.0, gs2d.1, gs2d.2, hg(32, gs2d.1 * 2, gs2d.2, 2, 4)),
        gs3d: (gs3d.0, gs3d.1, gs3d.2, hg(32, gs3d.1 * 2, gs3d.2, 2, 4)),
        lcs: (d(200_000, 2048), d(4096, 256), d(4096, 256)),
    }
}

/// Reproduce Table 1: benchmark names, paper problem/blocking sizes, and
/// the sizes this harness actually runs at the given `scale` divisor.
pub fn table1(scale: usize) -> String {
    let s = scale.max(1);
    let rows = [
        ("Heat-1D", "16000000 x 6000", "16384 x 128"),
        ("Heat-2D", "8000^2 x 2000", "256^2 x 64"),
        ("2D9P", "8000^2 x 2000", "256^2 x 64"),
        ("Heat-3D", "800^3 x 200", "32^3 x 8"),
        ("Life", "8000^2 x 2000", "256^2 x 32"),
        ("GS-1D", "16000000 x 6000", "2048 x 64"),
        ("GS-2D", "8000^2 x 2000", "128^2 x 32"),
        ("GS-3D", "800^3 x 200", "32^3 x 32"),
        ("LCS", "200000 x 200000", "4096 x 4096"),
    ];
    let p = parallel_configs(s);
    let scaled = [
        format!(
            "{} x {} / blk {}x{}",
            p.heat1d.0, p.heat1d.1, p.heat1d.2, p.heat1d.3
        ),
        format!(
            "{}^2 x {} / blk {}x{}",
            p.heat2d.0, p.heat2d.1, p.heat2d.2, p.heat2d.3
        ),
        format!(
            "{}^2 x {} / blk {}x{}",
            p.box2d.0, p.box2d.1, p.box2d.2, p.box2d.3
        ),
        format!(
            "{}^3 x {} / blk {}x{}",
            p.heat3d.0, p.heat3d.1, p.heat3d.2, p.heat3d.3
        ),
        format!(
            "{}^2 x {} / blk {}x{}",
            p.life.0, p.life.1, p.life.2, p.life.3
        ),
        format!(
            "{} x {} / blk {}x{}",
            p.gs1d.0, p.gs1d.1, p.gs1d.2, p.gs1d.3
        ),
        format!(
            "{}^2 x {} / blk {}x{}",
            p.gs2d.0, p.gs2d.1, p.gs2d.2, p.gs2d.3
        ),
        format!(
            "{}^3 x {} / blk {}x{}",
            p.gs3d.0, p.gs3d.1, p.gs3d.2, p.gs3d.3
        ),
        format!("{}^2 / blk {}^2", p.lcs.0, p.lcs.1),
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "# table1 — Problem and blocking sizes (paper vs this run, scale 1/{s})\n"
    ));
    out.push_str(&format!(
        "{:<10}{:>22}{:>16}{:>34}\n",
        "benchmark", "paper size", "paper block", "this run"
    ));
    for (i, (name, size, blockv)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{:<10}{:>22}{:>16}{:>34}\n",
            name, size, blockv, scaled[i]
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Sweep scaffolding
// ---------------------------------------------------------------------

fn pow2_sizes(lo_exp: u32, hi_exp: u32) -> Vec<usize> {
    (lo_exp..=hi_exp).map(|e| 1usize << e).collect()
}

/// Labelled `(n, steps) -> (Problem, PlanBuilder)` factory for one series
/// of a sequential sweep.
type SeqRun<'a> = (
    &'static str,
    Box<dyn Fn(usize, usize) -> (Problem, PlanBuilder) + 'a>,
);

// Justification: the parameter list mirrors the figure's sweep geometry; a params struct would obscure the harness call sites.
#[allow(clippy::too_many_arguments)]
fn seq_sweep<'a>(
    id: &str,
    title: &str,
    xlabel: &str,
    xs: &[usize],
    xmap: impl Fn(usize) -> f64,
    points_of: impl Fn(usize) -> usize,
    runs: Vec<SeqRun<'a>>,
    steps_hi: usize,
) -> Figure {
    let mut series: Vec<Series> = runs.iter().map(|(label, _)| Series::new(label)).collect();
    for &n in xs {
        let pts = points_of(n);
        let steps = choose_steps(pts, SEQ_BUDGET, 4, steps_hi);
        for (k, (_, run)) in runs.iter().enumerate() {
            let (problem, builder) = run(n, steps);
            let smp = plan_sample(&problem, builder, &fill_state);
            series[k].push(xmap(n), gstencils(pts, steps, smp.secs), 1, smp.engine);
        }
    }
    Figure {
        id: id.into(),
        title: title.into(),
        xlabel: xlabel.into(),
        series,
    }
}

fn core_counts(max_cores: usize) -> Vec<usize> {
    let mut v: Vec<usize> = vec![1];
    let mut c = 2;
    while c <= max_cores {
        v.push(c);
        c += if c < 4 { 1 } else { 4 };
    }
    v.dedup();
    v
}

/// Labelled `(cores) -> (Problem, PlanBuilder)` factory for one series of
/// a core-count sweep; the builder already carries the tiling, and the
/// sweep adds `.threads(cores)`.
type ParRun<'a> = (&'static str, Box<dyn Fn() -> (Problem, PlanBuilder) + 'a>);

fn parallel_sweep<'a>(
    id: &str,
    title: &str,
    max_cores: usize,
    pts: usize,
    steps: usize,
    runs: Vec<ParRun<'a>>,
) -> Figure {
    let mut series: Vec<Series> = runs.iter().map(|(label, _)| Series::new(label)).collect();
    for &cores in &core_counts(max_cores) {
        for (k, (_, run)) in runs.iter().enumerate() {
            let (problem, builder) = run();
            // plan_sample's built-in warm-up faults in pages and spins up
            // the plan's workers before the three timed runs. Workers are
            // pinned one-per-core (best-effort) so the core-count axis
            // means what it says, and the plan first-touches its tile
            // arenas from their owning workers.
            let smp = plan_sample(&problem, builder.threads(cores).pin(true), &fill_state);
            series[k].push(
                cores as f64,
                gstencils(pts, steps, smp.secs),
                cores,
                smp.engine,
            );
        }
    }
    Figure {
        id: id.into(),
        title: title.into(),
        xlabel: "cores".into(),
        series,
    }
}

/// The three standard sequential builders: temporal ("our"), multi-load
/// ("auto"), scalar.
fn seq_builders(sel: Select, stride: usize) -> [(&'static str, PlanBuilder); 3] {
    [
        ("our", PlanBuilder::new().stride(stride).select(sel)),
        ("auto", PlanBuilder::new().method(Method::Multiload)),
        ("scalar", PlanBuilder::new().method(Method::Scalar)),
    ]
}

// ---------------------------------------------------------------------
// Sequential figures (left column of Figures 4 and 5)
// ---------------------------------------------------------------------

/// Figure 4a: Heat-1D sequential, Gstencils/s vs problem size (2^x).
pub fn fig4a(scale: usize) -> Figure {
    let hi = match scale {
        0..=1 => 23,
        2..=4 => 22,
        5..=16 => 20,
        _ => 18,
    };
    let c = Heat1dCoeffs::classic(0.25);
    let sel = Select::from_env();
    seq_sweep(
        "fig4a",
        "Heat-1D Sequential",
        "log2(N)",
        &pow2_sizes(7, hi),
        |n| (n as f64).log2(),
        |n| n,
        seq_builders(sel, 7)
            .into_iter()
            .map(|(label, b)| -> SeqRun<'_> {
                (
                    label,
                    Box::new(move |n, steps| (Problem::heat1d(n, steps, c), b)),
                )
            })
            .collect(),
        65536,
    )
}

/// Figure 4c: Heat-2D sequential.
pub fn fig4c(scale: usize) -> Figure {
    let cap = 8192 / scale.clamp(1, 8);
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let c = Heat2dCoeffs::classic(0.125);
    let sel = Select::from_env();
    seq_sweep(
        "fig4c",
        "Heat-2D Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n,
        seq_builders(sel, 2)
            .into_iter()
            .map(|(label, b)| -> SeqRun<'_> {
                (
                    label,
                    Box::new(move |n, steps| (Problem::heat2d(n, n, steps, c), b)),
                )
            })
            .collect(),
        2000,
    )
}

/// Figure 4e: Heat-3D sequential.
pub fn fig4e(scale: usize) -> Figure {
    let cap = match scale {
        0..=1 => 512,
        2..=4 => 256,
        _ => 128,
    };
    let sizes: Vec<usize> = [16usize, 32, 64, 128, 256, 512]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let c = Heat3dCoeffs::classic(1.0 / 6.0);
    let sel = Select::from_env();
    seq_sweep(
        "fig4e",
        "Heat-3D Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n * n,
        seq_builders(sel, 2)
            .into_iter()
            .map(|(label, b)| -> SeqRun<'_> {
                (
                    label,
                    Box::new(move |n, steps| (Problem::heat3d(n, n, n, steps, c), b)),
                )
            })
            .collect(),
        512,
    )
}

/// Figure 4g: 2D9P sequential.
pub fn fig4g(scale: usize) -> Figure {
    let cap = 8192 / scale.clamp(1, 8);
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let c = Box2dCoeffs::smooth(0.1);
    let sel = Select::from_env();
    seq_sweep(
        "fig4g",
        "2D9P Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n,
        seq_builders(sel, 2)
            .into_iter()
            .map(|(label, b)| -> SeqRun<'_> {
                (
                    label,
                    Box::new(move |n, steps| (Problem::box2d(n, n, steps, c), b)),
                )
            })
            .collect(),
        2000,
    )
}

/// Figure 4i: Life sequential (integer 2D9P, 8 lanes).
pub fn fig4i(scale: usize) -> Figure {
    let cap = 8192 / scale.clamp(1, 8);
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let rule = LifeRule::b2s23();
    let sel = Select::from_env();
    seq_sweep(
        "fig4i",
        "Life Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n,
        seq_builders(sel, 2)
            .into_iter()
            .map(|(label, b)| -> SeqRun<'_> {
                (
                    label,
                    Box::new(move |n, steps| (Problem::life(n, n, steps, rule), b)),
                )
            })
            .collect(),
        2000,
    )
}

/// Figure 5a: GS-1D sequential (no "auto" — spatial vectorization of
/// Gauss-Seidel loops is illegal, and the plan API rejects it).
pub fn fig5a(scale: usize) -> Figure {
    let hi = match scale {
        0..=1 => 23,
        2..=4 => 22,
        5..=16 => 20,
        _ => 18,
    };
    let c = Gs1dCoeffs::classic(0.25);
    let sel = Select::from_env();
    let our = PlanBuilder::new().stride(7).select(sel);
    let scalar = PlanBuilder::new().method(Method::Scalar);
    seq_sweep(
        "fig5a",
        "GS-1D Sequential",
        "log2(N)",
        &pow2_sizes(7, hi),
        |n| (n as f64).log2(),
        |n| n,
        vec![
            (
                "our",
                Box::new(move |n, steps| (Problem::gs1d(n, steps, c), our)),
            ),
            (
                "scalar",
                Box::new(move |n, steps| (Problem::gs1d(n, steps, c), scalar)),
            ),
        ],
        65536,
    )
}

/// Figure 5c: GS-2D sequential.
pub fn fig5c(scale: usize) -> Figure {
    let cap = 8192 / scale.clamp(1, 8);
    let sizes: Vec<usize> = [128usize, 256, 512, 1024, 2048, 4096, 8192]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let c = Gs2dCoeffs::classic(0.2);
    let sel = Select::from_env();
    let our = PlanBuilder::new().stride(2).select(sel);
    let scalar = PlanBuilder::new().method(Method::Scalar);
    seq_sweep(
        "fig5c",
        "GS-2D Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n,
        vec![
            (
                "our",
                Box::new(move |n, steps| (Problem::gs2d(n, n, steps, c), our)),
            ),
            (
                "scalar",
                Box::new(move |n, steps| (Problem::gs2d(n, n, steps, c), scalar)),
            ),
        ],
        2000,
    )
}

/// Figure 5e: GS-3D sequential.
pub fn fig5e(scale: usize) -> Figure {
    let cap = match scale {
        0..=1 => 512,
        2..=4 => 256,
        _ => 128,
    };
    let sizes: Vec<usize> = [16usize, 32, 64, 128, 256, 512]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect();
    let c = Gs3dCoeffs::classic(0.125);
    let sel = Select::from_env();
    let our = PlanBuilder::new().stride(2).select(sel);
    let scalar = PlanBuilder::new().method(Method::Scalar);
    seq_sweep(
        "fig5e",
        "GS-3D Sequential",
        "N",
        &sizes,
        |n| n as f64,
        |n| n * n * n,
        vec![
            (
                "our",
                Box::new(move |n, steps| (Problem::gs3d(n, n, n, steps, c), our)),
            ),
            (
                "scalar",
                Box::new(move |n, steps| (Problem::gs3d(n, n, n, steps, c), scalar)),
            ),
        ],
        512,
    )
}

/// Figure 5g: LCS sequential (one full DP table; Gcells/s). The temporal
/// series is dispatched like every other figure: its plan resolves (and
/// reports) the engine — the `i32×8` AVX2 LCS steady state on AVX2
/// hosts, portable otherwise.
pub fn fig5g(scale: usize) -> Figure {
    let hi = match scale {
        0..=1 => 17,
        2..=4 => 16,
        _ => 14,
    };
    let sel = Select::from_env();
    let builders: [(&'static str, PlanBuilder); 2] = [
        ("our", PlanBuilder::new().stride(1).select(sel)),
        ("scalar", PlanBuilder::new().method(Method::Scalar)),
    ];
    let mut series: Vec<Series> = builders
        .iter()
        .map(|(label, _)| Series::new(label))
        .collect();
    // One run computes the whole n × n table, so the "step" count is n
    // DP rows — fixed by the problem, not by the point budget.
    for n in pow2_sizes(7, hi) {
        let problem = Problem::lcs(n, n);
        for (k, (_, builder)) in builders.iter().enumerate() {
            let smp = plan_sample(&problem, *builder, &fill_state);
            series[k].push((n as f64).log2(), gstencils(n, n, smp.secs), 1, smp.engine);
        }
    }
    Figure {
        id: "fig5g".into(),
        title: "LCS Sequential".into(),
        xlabel: "log2(N)".into(),
        series,
    }
}

// ---------------------------------------------------------------------
// Parallel figures (right column of Figures 4 and 5)
// ---------------------------------------------------------------------

/// Figure 4b: Heat-1D parallel scaling (ghost-zone temporal bands; each
/// plan owns its pool and in-tile engine resolution).
pub fn fig4b(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).heat1d;
    let c = Heat1dCoeffs::classic(0.25);
    let sel = Select::from_env();
    let ghost = Tiling::Ghost { block, height };
    let mk = move |method: Method, stride: usize| -> ParRun<'static> {
        let label = match method {
            Method::Temporal => "our",
            Method::Multiload => "auto",
            _ => "scalar",
        };
        (
            label,
            Box::new(move || {
                (
                    Problem::heat1d(n, steps, c),
                    PlanBuilder::new()
                        .method(method)
                        .tiling(ghost)
                        .stride(stride)
                        .select(sel),
                )
            }),
        )
    };
    parallel_sweep(
        "fig4b",
        "Heat-1D Parallel",
        max_cores,
        n,
        steps,
        vec![
            mk(Method::Temporal, 7),
            mk(Method::Multiload, 7),
            mk(Method::Scalar, 7),
        ],
    )
}

/// Shared scaffolding for the 2-D/3-D ghost-tiled parallel figures.
// Justification: the parameter list mirrors the figure's sweep geometry; a params struct would obscure the harness call sites.
#[allow(clippy::too_many_arguments)]
fn ghost_par_fig(
    id: &str,
    title: &str,
    max_cores: usize,
    pts: usize,
    steps: usize,
    problem: Problem,
    tiling: Tiling,
    with_auto: bool,
) -> Figure {
    let sel = Select::from_env();
    let mk = move |method: Method| -> ParRun<'static> {
        let label = match method {
            Method::Temporal => "our",
            Method::Multiload => "auto",
            _ => "scalar",
        };
        (
            label,
            Box::new(move || {
                (
                    problem,
                    PlanBuilder::new()
                        .method(method)
                        .tiling(tiling)
                        .stride(2)
                        .select(sel),
                )
            }),
        )
    };
    let mut runs = vec![mk(Method::Temporal)];
    if with_auto {
        runs.push(mk(Method::Multiload));
    }
    runs.push(mk(Method::Scalar));
    parallel_sweep(id, title, max_cores, pts, steps, runs)
}

/// Figure 4d: Heat-2D parallel scaling.
pub fn fig4d(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).heat2d;
    ghost_par_fig(
        "fig4d",
        "Heat-2D Parallel",
        max_cores,
        n * n,
        steps,
        Problem::heat2d(n, n, steps, Heat2dCoeffs::classic(0.125)),
        Tiling::Ghost { block, height },
        true,
    )
}

/// Figure 4f: Heat-3D parallel scaling.
pub fn fig4f(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).heat3d;
    ghost_par_fig(
        "fig4f",
        "Heat-3D Parallel",
        max_cores,
        n * n * n,
        steps,
        Problem::heat3d(n, n, n, steps, Heat3dCoeffs::classic(1.0 / 6.0)),
        Tiling::Ghost { block, height },
        true,
    )
}

/// Figure 4h: 2D9P parallel scaling.
pub fn fig4h(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).box2d;
    ghost_par_fig(
        "fig4h",
        "2D9P Parallel",
        max_cores,
        n * n,
        steps,
        Problem::box2d(n, n, steps, Box2dCoeffs::smooth(0.1)),
        Tiling::Ghost { block, height },
        true,
    )
}

/// Figure 4j: Life parallel scaling.
pub fn fig4j(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).life;
    ghost_par_fig(
        "fig4j",
        "Life Parallel",
        max_cores,
        n * n,
        steps,
        Problem::life(n, n, steps, LifeRule::b2s23()),
        Tiling::Ghost { block, height },
        true,
    )
}

/// Shared scaffolding for the skew-tiled Gauss-Seidel parallel figures.
// Justification: the parameter list mirrors the figure's sweep geometry; a params struct would obscure the harness call sites.
#[allow(clippy::too_many_arguments)]
fn skew_par_fig(
    id: &str,
    title: &str,
    max_cores: usize,
    pts: usize,
    steps: usize,
    problem: Problem,
    tiling: Tiling,
    stride: usize,
) -> Figure {
    let sel = Select::from_env();
    let mk = move |method: Method| -> ParRun<'static> {
        let label = if method == Method::Temporal {
            "our"
        } else {
            "scalar"
        };
        (
            label,
            Box::new(move || {
                (
                    problem,
                    PlanBuilder::new()
                        .method(method)
                        .tiling(tiling)
                        .stride(stride)
                        .select(sel),
                )
            }),
        )
    };
    parallel_sweep(
        id,
        title,
        max_cores,
        pts,
        steps,
        vec![mk(Method::Temporal), mk(Method::Scalar)],
    )
}

/// Figure 5b: GS-1D parallel scaling (pipelined parallelogram tiles).
pub fn fig5b(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).gs1d;
    skew_par_fig(
        "fig5b",
        "GS-1D Parallel",
        max_cores,
        n,
        steps,
        Problem::gs1d(n, steps, Gs1dCoeffs::classic(0.25)),
        Tiling::Skew { block, height },
        7,
    )
}

/// Figure 5d: GS-2D parallel scaling.
pub fn fig5d(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).gs2d;
    skew_par_fig(
        "fig5d",
        "GS-2D Parallel",
        max_cores,
        n * n,
        steps,
        Problem::gs2d(n, n, steps, Gs2dCoeffs::classic(0.2)),
        Tiling::Skew { block, height },
        2,
    )
}

/// Figure 5f: GS-3D parallel scaling.
pub fn fig5f(scale: usize, max_cores: usize) -> Figure {
    let (n, steps, block, height) = parallel_configs(scale).gs3d;
    skew_par_fig(
        "fig5f",
        "GS-3D Parallel",
        max_cores,
        n * n * n,
        steps,
        Problem::gs3d(n, n, n, steps, Gs3dCoeffs::classic(0.125)),
        Tiling::Skew { block, height },
        2,
    )
}

/// Figure 5h: LCS parallel scaling (rectangle tiles, wavefront). Routed
/// through the same plan dispatch as every other figure; the rectangle
/// workspace resolves the `i32×8` AVX2 steady state per block column on
/// AVX2 hosts.
pub fn fig5h(scale: usize, max_cores: usize) -> Figure {
    let (n, xb, yb) = parallel_configs(scale).lcs;
    let sel = Select::from_env();
    let tiling = Tiling::LcsRect {
        xblock: xb,
        yblock: yb,
    };
    let mk = move |method: Method| -> ParRun<'static> {
        let label = if method == Method::Temporal {
            "our"
        } else {
            "scalar"
        };
        (
            label,
            Box::new(move || {
                (
                    Problem::lcs(n, n),
                    PlanBuilder::new()
                        .method(method)
                        .tiling(tiling)
                        .stride(1)
                        .select(sel),
                )
            }),
        )
    };
    parallel_sweep(
        "fig5h",
        "LCS Parallel",
        max_cores,
        n,
        n,
        vec![mk(Method::Temporal), mk(Method::Scalar)],
    )
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// §3.3/§3.5 reorganization-instruction budgets, measured through plan
/// reports (`PlanBuilder::count_reorg`): the temporal scheme's constant
/// per-output-vector cost versus the data-reorganization baseline. The
/// batched-top variant keeps its direct counted engine call (it is an
/// engine ablation, not a plan method).
pub fn ablate_reorg() -> String {
    use tempora_core::kernels::JacobiKern1d;
    use tempora_simd::count;
    let c = Heat1dCoeffs::classic(0.25);
    let n = 1 << 14;
    let mut out = String::new();
    out.push_str("# ablate-reorg — data-reorganization ops per output vector (1D3P, vl=4)\n");
    out.push_str(&format!(
        "{:<28}{:>10}{:>12}{:>10}{:>10}\n",
        "scheme", "in-lane", "cross-lane", "total", "gathers"
    ));
    let mut line = |name: &str, k: count::Counts| {
        out.push_str(&format!(
            "{:<28}{:>10.3}{:>12.3}{:>10.3}{:>10}\n",
            name,
            k.in_lane_per_output(),
            k.cross_lane_per_output(),
            k.reorg_per_output(),
            k.gather,
        ));
    };
    let counted = |method: Method| -> count::Counts {
        let problem = Problem::heat1d(n, 4, c);
        let mut plan = PlanBuilder::new()
            .method(method)
            .stride(7)
            .select(Select::Portable)
            .count_reorg(true)
            .build(&problem)
            // Panic-justification: the configuration is hard-coded above;
            // a build failure is an ablation-harness bug.
            .expect("counting configuration is valid");
        let mut state = problem.state();
        fill_state(&mut state);
        plan.run(&mut state)
            // Panic-justification: the state comes from `problem.state()`.
            .expect("state matches plan")
            .reorg
            // Panic-justification: `count_reorg(true)` was set on the
            // builder two lines up, so the report always carries counts.
            .expect("count_reorg plans report counts")
    };
    line("temporal (ours)", counted(Method::Temporal));
    {
        // Batched top/bottom vectors: an engine-level ablation of the
        // same schedule, counted directly.
        let mut g = tempora_grid::Grid1::new(n, 1, tempora_grid::Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, SEED, -1.0, 1.0);
        let sess = count::Session::start();
        let _ = t1d::run_batched_counted::<4, _>(&g, &JacobiKern1d(c), 4, 7);
        line("temporal, batched tops", sess.finish());
    }
    line("data-reorganization", counted(Method::Reorg));
    out.push_str(
        "\npaper's analysis: temporal = 1 rotate (cross-lane) + 1 blend (in-lane)\n\
         per output vector, independent of vl, order and dimension; the\n\
         data-reorganization baseline needs >= 2 shuffles per vector and grows\n\
         with stencil order and dimensionality (§3.5).\n",
    );
    out
}

/// §3.3 stride sweep: Gstencils/s of the 1-D temporal engine as the
/// space stride `s` (and with it the number of in-flight input vectors /
/// ILP) varies.
pub fn ablate_stride(scale: usize) -> Figure {
    let n = ((1usize << 20) / scale.max(1)).max(1 << 12);
    let c = Heat1dCoeffs::classic(0.25);
    let sel = Select::from_env();
    let steps = choose_steps(n, SEQ_BUDGET, 8, 4096);
    let problem = Problem::heat1d(n, steps, c);
    let mut series = Series::new("our");
    for s in 2..=8 {
        let smp = plan_sample(
            &problem,
            PlanBuilder::new().stride(s).select(sel),
            &fill_state,
        );
        series.push(s as f64, gstencils(n, steps, smp.secs), 1, smp.engine);
    }
    Figure {
        id: "ablate-stride".into(),
        title: "Temporal stride sweep (Heat-1D)".into(),
        xlabel: "stride s".into(),
        series: vec![series],
    }
}

/// §2.2 baseline comparison: all five sequential schemes on Heat-1D,
/// each as a plan method.
pub fn ablate_baselines(scale: usize) -> Figure {
    let hi = if scale <= 2 { 22 } else { 19 };
    let c = Heat1dCoeffs::classic(0.25);
    let sel = Select::from_env();
    let schemes: [(&'static str, PlanBuilder); 5] = [
        ("our", PlanBuilder::new().stride(7).select(sel)),
        ("multiload", PlanBuilder::new().method(Method::Multiload)),
        ("reorg", PlanBuilder::new().method(Method::Reorg)),
        ("dlt", PlanBuilder::new().method(Method::Dlt)),
        ("scalar", PlanBuilder::new().method(Method::Scalar)),
    ];
    seq_sweep(
        "ablate-baselines",
        "All vectorization schemes (Heat-1D sequential)",
        "log2(N)",
        &pow2_sizes(10, hi),
        |n| (n as f64).log2(),
        |n| n,
        schemes
            .into_iter()
            .map(|(label, b)| -> SeqRun<'_> {
                (
                    label,
                    Box::new(move |n, steps| (Problem::heat1d(n, steps, c), b)),
                )
            })
            .collect(),
        16384,
    )
}

/// Wavefront-schedule A/B: the dependence-counter pipelined schedule
/// versus the legacy barrier-per-anti-diagonal schedule on the skew-tiled
/// GS-2D workload, across core counts. Both schedules are bit-identical
/// (verified by the tiling test suite); this ablation measures only the
/// synchronization cost the barrier adds per wave.
pub fn ablate_waves(scale: usize, max_cores: usize) -> Figure {
    use tempora_plan::WaveSchedule;
    let (n, steps, block, height) = parallel_configs(scale).gs2d;
    let c = Gs2dCoeffs::classic(0.2);
    let sel = Select::from_env();
    let tiling = Tiling::Skew { block, height };
    let mk = move |label: &'static str, schedule: WaveSchedule| -> ParRun<'static> {
        (
            label,
            Box::new(move || {
                (
                    Problem::gs2d(n, n, steps, c),
                    PlanBuilder::new()
                        .stride(2)
                        .select(sel)
                        .tiling(tiling)
                        .wave_schedule(schedule),
                )
            }),
        )
    };
    parallel_sweep(
        "ablate-waves",
        "Wavefront schedule A/B (GS-2D, pipelined vs barrier)",
        max_cores,
        n * n,
        steps,
        vec![
            mk("pipelined", WaveSchedule::Pipelined),
            mk("barrier", WaveSchedule::Barrier),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_selection() {
        assert_eq!(choose_steps(1 << 20, 1e7, 8, 4096) % 4, 0);
        assert!(choose_steps(10, 1e7, 8, 4096) <= 4096);
        assert!(choose_steps(usize::MAX / 2, 1e7, 8, 4096) >= 8);
    }

    #[test]
    fn steps_never_exceed_hi() {
        // Regression: rounding up to a multiple of 4 *after* clamping used
        // to push the result past `hi` (e.g. hi = 5 -> 8).
        assert_eq!(choose_steps(1, 1e9, 4, 5), 5);
        assert_eq!(choose_steps(1, 1e9, 4, 2000), 2000);
        for hi in [4usize, 5, 512, 2000, 65536] {
            assert!(choose_steps(1, 1e12, 4, hi) <= hi, "hi={hi}");
        }
        // Small raw counts still land on a tile multiple within range.
        assert_eq!(choose_steps(1 << 20, 6e7, 4, 65536), 60);
    }

    #[test]
    fn figure_rendering() {
        let mut a = Series::new("a");
        a.push(1.0, 2.0, 1, None);
        a.push(2.0, 3.0, 2, None);
        let mut our = Series::new("our");
        our.push(1.0, 4.0, 1, Some("avx2"));
        our.push(2.0, 5.0, 2, Some("avx2"));
        let f = Figure {
            id: "t".into(),
            title: "T".into(),
            xlabel: "x".into(),
            series: vec![a, our],
        };
        let table = f.to_table();
        assert!(table.contains("# t — T"));
        assert!(table.contains("our:avx2"), "{table}");
        let csv = f.to_csv();
        assert!(csv.starts_with("x,a,our\n"));
        assert!(csv.contains("1,2,4\n"));
        let json = f.to_json();
        assert!(json.contains("\"engine\":\"avx2\""), "{json}");
        assert!(!json.contains("\"label\":\"a\",\"engine\""), "{json}");
        // Per-point provenance lands in the JSON baselines.
        assert!(json.contains("\"cores\":[1,2]"), "{json}");
        assert!(json.contains("\"engines\":[\"avx2\",\"avx2\"]"), "{json}");
        assert!(json.contains("\"engines\":[null,null]"), "{json}");
    }

    #[test]
    fn mixed_engine_sweeps_are_reported_honestly() {
        // Regression for the first-point-only engine recording: a sweep
        // whose plans resolve different engines at different points must
        // say "mixed", not whatever the first point happened to resolve.
        let mut s = Series::new("our");
        s.push(1.0, 1.0, 1, Some("avx2"));
        s.push(2.0, 1.0, 1, Some("portable"));
        assert_eq!(s.engine_summary().as_deref(), Some("mixed"));
        assert_eq!(s.column_label(), "our:mixed");
        // Uniform sweeps keep the plain engine name; undispatched points
        // (None) don't poison the summary.
        let mut u = Series::new("our");
        u.push(1.0, 1.0, 1, None);
        u.push(2.0, 1.0, 1, Some("portable"));
        assert_eq!(u.engine_summary().as_deref(), Some("portable"));
        assert_eq!(Series::new("scalar").engine_summary(), None);
    }

    #[test]
    fn time_median_is_robust_to_one_outlier() {
        // The first (cold) call is the slowest by construction; the median
        // of the post-warm-up runs must not report it.
        let mut calls = 0u32;
        let t = time_median(
            || {
                calls += 1;
                if calls == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
            },
            3,
        );
        assert_eq!(calls, 4); // 1 warm-up + 3 timed
        assert!(t < 0.015, "median contaminated by warm-up outlier: {t}");
    }

    #[test]
    fn reorg_ablation_confirms_paper_budget() {
        let r = ablate_reorg();
        assert!(r.contains("temporal (ours)"));
        // The temporal line must report exactly 1 in-lane + 1 cross-lane
        // per output vector.
        let line = r.lines().find(|l| l.starts_with("temporal")).unwrap();
        assert!(line.contains("1.000"), "{line}");
    }

    #[test]
    fn plan_sample_reports_engine_for_temporal_only() {
        let c = Heat1dCoeffs::classic(0.25);
        let problem = Problem::heat1d(512, 8, c);
        let our = plan_sample(&problem, PlanBuilder::new().stride(7), &fill_state);
        assert!(our.engine.is_some());
        let scalar = plan_sample(
            &problem,
            PlanBuilder::new().method(Method::Scalar),
            &fill_state,
        );
        assert!(scalar.engine.is_none());
    }

    #[test]
    fn lcs_series_report_resolved_engine() {
        // fig5g/fig5h regression: the LCS temporal series must carry the
        // resolved engine like every other dispatched series — avx2 on
        // AVX2 hosts now that the integer steady state exists.
        let expect = if tempora_simd::arch::avx2_available() {
            Some("avx2")
        } else {
            Some("portable")
        };
        let problem = Problem::lcs(128, 128);
        let seq = plan_sample(&problem, PlanBuilder::new().stride(1), &fill_state);
        assert_eq!(seq.engine, expect);
        let par = plan_sample(
            &problem,
            PlanBuilder::new()
                .stride(1)
                .tiling(Tiling::LcsRect {
                    xblock: 32,
                    yblock: 32,
                })
                .threads(2),
            &fill_state,
        );
        assert_eq!(par.engine, expect);
        // Forced portable stays portable.
        let forced = plan_sample(
            &problem,
            PlanBuilder::new().stride(1).select(Select::Portable),
            &fill_state,
        );
        assert_eq!(forced.engine, Some("portable"));
    }

    #[test]
    fn parallel_configs_scale_down() {
        let p1 = parallel_configs(1);
        let p16 = parallel_configs(16);
        assert!(p16.heat1d.0 < p1.heat1d.0);
        assert!(p16.lcs.0 < p1.lcs.0);
        assert!(p16.heat2d.0 >= 128);
    }

    #[test]
    fn core_count_ladder() {
        assert_eq!(core_counts(1), vec![1]);
        assert_eq!(core_counts(2), vec![1, 2]);
        assert_eq!(core_counts(4), vec![1, 2, 3, 4]);
        let c24 = core_counts(24);
        assert!(c24.starts_with(&[1, 2, 3, 4, 8, 12]));
    }
}
