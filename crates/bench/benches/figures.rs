//! Criterion wrappers around one representative configuration per paper
//! figure, so `cargo bench` alone exercises every experiment end to end
//! (the full sweeps with all sizes/core-counts live in the `repro`
//! binary: `cargo run --release -p tempora-bench --bin repro -- all`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tempora_core::engine::Select;
use tempora_core::kernels::*;
use tempora_core::{lcs, t1d, t2d, t3d};
use tempora_grid::*;
use tempora_parallel::Pool;
use tempora_stencil::*;
use tempora_tiling::{ghost, lcs_rect, skew, Mode};

fn sequential_figures(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("figures_seq");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600));

    {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let mut g = Grid1::new(1 << 16, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 1, -1.0, 1.0);
        group.bench_function("fig4a_heat1d_our", |b| {
            b.iter(|| std::hint::black_box(t1d::run::<4, _>(&g, &kern, 16, 7)))
        });
    }
    {
        let c = Heat2dCoeffs::classic(0.125);
        let kern = JacobiKern2d(c);
        let mut g = Grid2::new(256, 256, 1, Boundary::Dirichlet(0.0));
        fill_random_2d(&mut g, 1, -1.0, 1.0);
        group.bench_function("fig4c_heat2d_our", |b| {
            b.iter(|| std::hint::black_box(t2d::run::<f64, 4, _>(&g, &kern, 8, 2)))
        });
    }
    {
        let c = Heat3dCoeffs::classic(1.0 / 6.0);
        let kern = JacobiKern3d(c);
        let mut g = Grid3::new(48, 48, 48, 1, Boundary::Dirichlet(0.0));
        fill_random_3d(&mut g, 1, -1.0, 1.0);
        group.bench_function("fig4e_heat3d_our", |b| {
            b.iter(|| std::hint::black_box(t3d::run::<f64, 4, _>(&g, &kern, 8, 2)))
        });
    }
    {
        let c = Box2dCoeffs::smooth(0.1);
        let kern = BoxKern2d(c);
        let mut g = Grid2::new(256, 256, 1, Boundary::Dirichlet(0.0));
        fill_random_2d(&mut g, 1, -1.0, 1.0);
        group.bench_function("fig4g_2d9p_our", |b| {
            b.iter(|| std::hint::black_box(t2d::run::<f64, 4, _>(&g, &kern, 8, 2)))
        });
    }
    {
        let rule = LifeRule::b2s23();
        let kern = LifeKern2d(rule);
        let mut g = Grid2::<i32>::new(256, 256, 1, Boundary::Dirichlet(0));
        fill_random_life(&mut g, 1, 0.35);
        group.bench_function("fig4i_life_our", |b| {
            b.iter(|| std::hint::black_box(t2d::run::<i32, 8, _>(&g, &kern, 16, 2)))
        });
    }
    {
        let c = Gs1dCoeffs::classic(0.25);
        let kern = GsKern1d(c);
        let mut g = Grid1::new(1 << 16, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 1, -1.0, 1.0);
        group.bench_function("fig5a_gs1d_our", |b| {
            b.iter(|| std::hint::black_box(t1d::run::<4, _>(&g, &kern, 16, 7)))
        });
    }
    {
        let c = Gs2dCoeffs::classic(0.2);
        let kern = GsKern2d(c);
        let mut g = Grid2::new(256, 256, 1, Boundary::Dirichlet(0.0));
        fill_random_2d(&mut g, 1, -1.0, 1.0);
        group.bench_function("fig5c_gs2d_our", |b| {
            b.iter(|| std::hint::black_box(t2d::run::<f64, 4, _>(&g, &kern, 8, 2)))
        });
    }
    {
        let c = Gs3dCoeffs::classic(0.125);
        let kern = GsKern3d(c);
        let mut g = Grid3::new(48, 48, 48, 1, Boundary::Dirichlet(0.0));
        fill_random_3d(&mut g, 1, -1.0, 1.0);
        group.bench_function("fig5e_gs3d_our", |b| {
            b.iter(|| std::hint::black_box(t3d::run::<f64, 4, _>(&g, &kern, 8, 2)))
        });
    }
    {
        let a = random_sequence(2048, 4, 1);
        let b_seq = random_sequence(2048, 4, 2);
        group.bench_function("fig5g_lcs_our", |b| {
            b.iter(|| std::hint::black_box(lcs::length(&a, &b_seq, 1)))
        });
    }
    group.finish();
}

fn parallel_figures(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("figures_par");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    let pool = Pool::max();

    {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let mut g = Grid1::new(1 << 18, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 1, -1.0, 1.0);
        group.bench_function("fig4b_heat1d_par_our", |b| {
            b.iter(|| {
                std::hint::black_box(ghost::run_jacobi_1d(
                    &g,
                    &kern,
                    32,
                    1 << 14,
                    16,
                    Mode::Temporal(7),
                    Select::Auto,
                    &pool,
                ))
            })
        });
    }
    {
        let c = Heat2dCoeffs::classic(0.125);
        let kern = JacobiKern2d(c);
        let mut g = Grid2::new(384, 384, 1, Boundary::Dirichlet(0.0));
        fill_random_2d(&mut g, 1, -1.0, 1.0);
        group.bench_function("fig4d_heat2d_par_our", |b| {
            b.iter(|| {
                std::hint::black_box(ghost::run_jacobi_2d::<f64, 4, _>(
                    &g,
                    &kern,
                    16,
                    96,
                    8,
                    Mode::Temporal(2),
                    Select::Auto,
                    &pool,
                ))
            })
        });
    }
    {
        let c = Gs1dCoeffs::classic(0.25);
        let kern = GsKern1d(c);
        let mut g = Grid1::new(1 << 18, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 1, -1.0, 1.0);
        group.bench_function("fig5b_gs1d_par_our", |b| {
            b.iter(|| {
                std::hint::black_box(skew::run_gs_1d(
                    &g,
                    &kern,
                    32,
                    1 << 13,
                    16,
                    Mode::Temporal(7),
                    Select::Auto,
                    &pool,
                ))
            })
        });
    }
    {
        let a = random_sequence(4096, 4, 1);
        let b_seq = random_sequence(4096, 4, 2);
        group.bench_function("fig5h_lcs_par_our", |b| {
            b.iter(|| std::hint::black_box(lcs_rect::run_lcs(&a, &b_seq, 512, 512, 1, true, &pool)))
        });
    }
    group.finish();
}

criterion_group!(benches, sequential_figures, parallel_figures);
criterion_main!(benches);
