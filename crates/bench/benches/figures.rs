//! Criterion wrappers around one representative configuration per paper
//! figure, so `cargo bench` alone exercises every experiment end to end
//! (the full sweeps with all sizes/core-counts live in the `repro`
//! binary: `cargo run --release -p tempora-bench --bin repro -- all`).
//!
//! Every benchmark compiles a `tempora_plan::Plan` once and times
//! repeated `plan.run(&mut state)` calls — the reuse pattern the plan
//! API amortizes setup for.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tempora_grid::{
    fill_random_1d, fill_random_2d, fill_random_3d, fill_random_life, random_sequence,
};
use tempora_plan::{Method, Plan, PlanBuilder, Problem, State, Tiling};
use tempora_stencil::*;

fn compiled(problem: Problem, builder: PlanBuilder) -> (Plan, State) {
    let plan = builder.build(&problem).expect("valid bench configuration");
    let mut state = problem.state();
    match &mut state {
        State::Grid1(g) => fill_random_1d(g, 1, -1.0, 1.0),
        State::Grid2(g) => fill_random_2d(g, 1, -1.0, 1.0),
        State::Grid2i(g) => fill_random_life(g, 1, 0.35),
        State::Grid3(g) => fill_random_3d(g, 1, -1.0, 1.0),
        State::Lcs(l) => {
            let (la, lb) = (l.a.len(), l.b.len());
            l.a = random_sequence(la, 4, 1);
            l.b = random_sequence(lb, 4, 2);
        }
    }
    (plan, state)
}

fn bench_plan(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    problem: Problem,
    builder: PlanBuilder,
) {
    let (mut plan, mut state) = compiled(problem, builder);
    group.bench_function(name, |b| {
        b.iter(|| {
            std::hint::black_box(plan.run(&mut state).expect("state matches plan"));
        })
    });
}

fn sequential_figures(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("figures_seq");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(600));
    let our = |s: usize| PlanBuilder::new().stride(s);

    bench_plan(
        &mut group,
        "fig4a_heat1d_our",
        Problem::heat1d(1 << 16, 16, Heat1dCoeffs::classic(0.25)),
        our(7),
    );
    bench_plan(
        &mut group,
        "fig4c_heat2d_our",
        Problem::heat2d(256, 256, 8, Heat2dCoeffs::classic(0.125)),
        our(2),
    );
    bench_plan(
        &mut group,
        "fig4e_heat3d_our",
        Problem::heat3d(48, 48, 48, 8, Heat3dCoeffs::classic(1.0 / 6.0)),
        our(2),
    );
    bench_plan(
        &mut group,
        "fig4g_2d9p_our",
        Problem::box2d(256, 256, 8, Box2dCoeffs::smooth(0.1)),
        our(2),
    );
    bench_plan(
        &mut group,
        "fig4i_life_our",
        Problem::life(256, 256, 16, LifeRule::b2s23()),
        our(2),
    );
    bench_plan(
        &mut group,
        "fig5a_gs1d_our",
        Problem::gs1d(1 << 16, 16, Gs1dCoeffs::classic(0.25)),
        our(7),
    );
    bench_plan(
        &mut group,
        "fig5c_gs2d_our",
        Problem::gs2d(256, 256, 8, Gs2dCoeffs::classic(0.2)),
        our(2),
    );
    bench_plan(
        &mut group,
        "fig5e_gs3d_our",
        Problem::gs3d(48, 48, 48, 8, Gs3dCoeffs::classic(0.125)),
        our(2),
    );
    bench_plan(
        &mut group,
        "fig5g_lcs_our",
        Problem::lcs(2048, 2048),
        our(1),
    );
    group.finish();
}

fn parallel_figures(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("figures_par");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    bench_plan(
        &mut group,
        "fig4b_heat1d_par_our",
        Problem::heat1d(1 << 18, 32, Heat1dCoeffs::classic(0.25)),
        PlanBuilder::new()
            .stride(7)
            .tiling(Tiling::Ghost {
                block: 1 << 14,
                height: 16,
            })
            .threads(threads),
    );
    bench_plan(
        &mut group,
        "fig4d_heat2d_par_our",
        Problem::heat2d(384, 384, 16, Heat2dCoeffs::classic(0.125)),
        PlanBuilder::new()
            .stride(2)
            .tiling(Tiling::Ghost {
                block: 96,
                height: 8,
            })
            .threads(threads),
    );
    bench_plan(
        &mut group,
        "fig5b_gs1d_par_our",
        Problem::gs1d(1 << 18, 32, Gs1dCoeffs::classic(0.25)),
        PlanBuilder::new()
            .stride(7)
            .tiling(Tiling::Skew {
                block: 1 << 13,
                height: 16,
            })
            .threads(threads),
    );
    bench_plan(
        &mut group,
        "fig5h_lcs_par_our",
        Problem::lcs(4096, 4096),
        PlanBuilder::new()
            .stride(1)
            .tiling(Tiling::LcsRect {
                xblock: 512,
                yblock: 512,
            })
            .threads(threads),
    );
    // A scalar reference point through the same API.
    bench_plan(
        &mut group,
        "fig4b_heat1d_par_scalar",
        Problem::heat1d(1 << 18, 32, Heat1dCoeffs::classic(0.25)),
        PlanBuilder::new()
            .method(Method::Scalar)
            .tiling(Tiling::Ghost {
                block: 1 << 14,
                height: 16,
            })
            .threads(threads),
    );
    group.finish();
}

criterion_group!(benches, sequential_figures, parallel_figures);
criterion_main!(benches);
