//! Criterion micro-benchmarks: one representative point per kernel and
//! scheme, for regression tracking. The full figure sweeps live in the
//! `repro` binary; these benches are deliberately small and fast.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tempora_baseline::{dlt, multiload, reorg};
use tempora_core::kernels::*;
use tempora_core::{lcs, t1d, t2d, t3d};
#[cfg(target_arch = "x86_64")]
use tempora_core::{lcs_avx2, t2d_avx2};
use tempora_grid::*;
use tempora_stencil::*;

fn heat1d_schemes(crit: &mut Criterion) {
    let n = 1 << 16;
    let steps = 32;
    let c = Heat1dCoeffs::classic(0.25);
    let kern = JacobiKern1d(c);
    let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.0));
    fill_random_1d(&mut g, 1, -1.0, 1.0);

    let mut group = crit.benchmark_group("heat1d_64k_x32");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    group.bench_function("temporal_s7", |b| {
        b.iter(|| std::hint::black_box(t1d::run::<4, _>(&g, &kern, steps, 7)))
    });
    group.bench_function("temporal_s2", |b| {
        b.iter(|| std::hint::black_box(t1d::run::<4, _>(&g, &kern, steps, 2)))
    });
    group.bench_function("multiload", |b| {
        b.iter(|| std::hint::black_box(multiload::heat1d(&g, c, steps)))
    });
    group.bench_function("reorg", |b| {
        b.iter(|| std::hint::black_box(reorg::heat1d(&g, c, steps)))
    });
    group.bench_function("dlt", |b| {
        b.iter(|| std::hint::black_box(dlt::heat1d(&g, c, steps)))
    });
    group.bench_function("scalar", |b| {
        b.iter(|| std::hint::black_box(reference::heat1d(&g, c, steps)))
    });
    group.finish();
}

fn heat2d_schemes(crit: &mut Criterion) {
    let n = 256;
    let steps = 8;
    let c = Heat2dCoeffs::classic(0.125);
    let kern = JacobiKern2d(c);
    let mut g = Grid2::new(n, n, 1, Boundary::Dirichlet(0.0));
    fill_random_2d(&mut g, 1, -1.0, 1.0);

    let mut group = crit.benchmark_group("heat2d_256_x8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    group.bench_function("temporal", |b| {
        b.iter(|| std::hint::black_box(t2d::run::<f64, 4, _>(&g, &kern, steps, 2)))
    });
    group.bench_function("multiload", |b| {
        b.iter(|| std::hint::black_box(multiload::heat2d(&g, c, steps)))
    });
    group.bench_function("scalar", |b| {
        b.iter(|| std::hint::black_box(reference::heat2d(&g, c, steps)))
    });
    group.finish();
}

fn heat3d_schemes(crit: &mut Criterion) {
    let n = 48;
    let steps = 8;
    let c = Heat3dCoeffs::classic(1.0 / 6.0);
    let kern = JacobiKern3d(c);
    let mut g = Grid3::new(n, n, n, 1, Boundary::Dirichlet(0.0));
    fill_random_3d(&mut g, 1, -1.0, 1.0);

    let mut group = crit.benchmark_group("heat3d_48_x8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    group.bench_function("temporal", |b| {
        b.iter(|| std::hint::black_box(t3d::run::<f64, 4, _>(&g, &kern, steps, 2)))
    });
    group.bench_function("multiload", |b| {
        b.iter(|| std::hint::black_box(multiload::heat3d(&g, c, steps)))
    });
    group.bench_function("scalar", |b| {
        b.iter(|| std::hint::black_box(reference::heat3d(&g, c, steps)))
    });
    group.finish();
}

fn life_schemes(crit: &mut Criterion) {
    let n = 256;
    let steps = 16;
    let rule = LifeRule::b2s23();
    let kern = LifeKern2d(rule);
    let mut g = Grid2::<i32>::new(n, n, 1, Boundary::Dirichlet(0));
    fill_random_life(&mut g, 1, 0.35);

    let mut group = crit.benchmark_group("life_256_x16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    group.bench_function("temporal_vl8", |b| {
        b.iter(|| std::hint::black_box(t2d::run::<i32, 8, _>(&g, &kern, steps, 2)))
    });
    #[cfg(target_arch = "x86_64")]
    if tempora_simd::arch::avx2_available() {
        group.bench_function("temporal_vl8_avx2", |b| {
            b.iter(|| std::hint::black_box(t2d_avx2::run_life2d_avx2(&g, &kern, steps, 2)))
        });
    }
    group.bench_function("multiload", |b| {
        b.iter(|| std::hint::black_box(multiload::life(&g, rule, steps)))
    });
    group.bench_function("scalar", |b| {
        b.iter(|| std::hint::black_box(reference::life(&g, rule, steps)))
    });
    group.finish();
}

fn gs_schemes(crit: &mut Criterion) {
    let n = 1 << 16;
    let steps = 16;
    let c = Gs1dCoeffs::classic(0.25);
    let kern = GsKern1d(c);
    let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.0));
    fill_random_1d(&mut g, 1, -1.0, 1.0);

    let mut group = crit.benchmark_group("gs1d_64k_x16");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    group.bench_function("temporal_s7", |b| {
        b.iter(|| std::hint::black_box(t1d::run::<4, _>(&g, &kern, steps, 7)))
    });
    group.bench_function("scalar", |b| {
        b.iter(|| std::hint::black_box(reference::gs1d(&g, c, steps)))
    });
    group.finish();
}

fn lcs_schemes(crit: &mut Criterion) {
    let n = 2048;
    let a = random_sequence(n, 4, 1);
    let b_seq = random_sequence(n, 4, 2);

    let mut group = crit.benchmark_group("lcs_2k");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(800));
    group.bench_function("temporal_i32x8", |b| {
        b.iter(|| std::hint::black_box(lcs::length(&a, &b_seq, 1)))
    });
    #[cfg(target_arch = "x86_64")]
    if tempora_simd::arch::avx2_available() {
        group.bench_function("temporal_i32x8_avx2", |b| {
            b.iter(|| std::hint::black_box(lcs_avx2::length_avx2(&a, &b_seq, 1)))
        });
        group.bench_function("temporal_i32x8_avx2_s2", |b| {
            b.iter(|| std::hint::black_box(lcs_avx2::length_avx2(&a, &b_seq, 2)))
        });
    }
    group.bench_function("scalar", |b| {
        b.iter(|| std::hint::black_box(reference::lcs_len(&a, &b_seq)))
    });
    group.finish();
}

criterion_group!(
    benches,
    heat1d_schemes,
    heat2d_schemes,
    heat3d_schemes,
    life_schemes,
    gs_schemes,
    lcs_schemes
);
criterion_main!(benches);
