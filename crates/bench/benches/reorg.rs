//! Criterion benches for the data-reorganization primitives themselves —
//! the per-instruction costs the paper's §3.3 lane analysis reasons
//! about.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tempora_simd::arch;
use tempora_simd::{F64x4, Pack};

fn lane_ops(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("lane_ops");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(500));

    let v = Pack([1.0, 2.0, 3.0, 4.0]);
    group.bench_function("portable_rotate_up", |b| {
        b.iter(|| {
            let mut x = std::hint::black_box(v);
            for _ in 0..64 {
                x = x.rotate_up();
            }
            std::hint::black_box(x)
        })
    });
    group.bench_function("portable_shift_up_insert", |b| {
        b.iter(|| {
            let mut x = std::hint::black_box(v);
            for i in 0..64 {
                x = x.shift_up_insert(i as f64);
            }
            std::hint::black_box(x)
        })
    });

    #[cfg(target_arch = "x86_64")]
    if arch::avx2_available() {
        use tempora_simd::arch::avx2;
        group.bench_function("avx2_rotate_up", |b| {
            b.iter(|| {
                let mut x = avx2::from_pack(std::hint::black_box(v));
                for _ in 0..64 {
                    // SAFETY: guarded by avx2_available above.
                    x = unsafe { avx2::rotate_up(x) };
                }
                std::hint::black_box(avx2::to_pack(x))
            })
        });
        group.bench_function("avx2_shift_up_insert", |b| {
            b.iter(|| {
                let mut x = avx2::from_pack(std::hint::black_box(v));
                for i in 0..64 {
                    // SAFETY: guarded by avx2_available above.
                    x = unsafe { avx2::shift_up_insert(x, i as f64) };
                }
                std::hint::black_box(avx2::to_pack(x))
            })
        });
    }
    group.finish();
}

fn transpose_ops(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("transpose4x4");
    group
        .sample_size(20)
        .measurement_time(Duration::from_millis(500));

    let rows: [F64x4; 4] = core::array::from_fn(|i| F64x4::from_fn(|j| (i * 4 + j) as f64));
    group.bench_function("portable", |b| {
        b.iter(|| {
            let mut r = std::hint::black_box(rows);
            for _ in 0..32 {
                tempora_simd::transpose(&mut r);
            }
            std::hint::black_box(r)
        })
    });

    #[cfg(target_arch = "x86_64")]
    if arch::avx2_available() {
        use tempora_simd::arch::avx2;
        group.bench_function("avx2", |b| {
            b.iter(|| {
                let r = std::hint::black_box(rows);
                let mut m: [_; 4] = core::array::from_fn(|i| avx2::from_pack(r[i]));
                for _ in 0..32 {
                    let (a, rest) = m.split_at_mut(1);
                    let (bb, rest2) = rest.split_at_mut(1);
                    let (c, d) = rest2.split_at_mut(1);
                    // SAFETY: guarded by avx2_available above.
                    unsafe { avx2::transpose4(&mut a[0], &mut bb[0], &mut c[0], &mut d[0]) };
                }
                std::hint::black_box(avx2::to_pack(m[0]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, lane_ops, transpose_ops);
criterion_main!(benches);
