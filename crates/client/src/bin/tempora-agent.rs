//! `tempora-agent` — a closed-loop load generator for `tempora-serve`.
//!
//! ```text
//! tempora-agent --connect HOST:PORT [--scenario NAME] [--conns N]
//!               [--requests N] [--distinct N] [--seed N]
//!               [--problem KIND] [--n N] [--steps N] [--threads N]
//!               [--retry ATTEMPTS] [--retry-base-ms MS] [--io-timeout-ms MS]
//! ```
//!
//! Runs one scenario (`baseline`, `fan-out`, `fan-in`, `churn`) and
//! prints exactly one JSON line with hit/miss counts, latency
//! percentiles and the sparse latency histogram — the `serve-bench`
//! harness consumes that line and merges histograms across agents.

use std::process::ExitCode;
use std::time::Duration;
use tempora_client::retry::RetryPolicy;
use tempora_client::scenario::{self, Scenario, ScenarioCfg};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tempora-agent (--connect HOST:PORT | --uds PATH) \
         [--scenario baseline|fan-out|fan-in|churn] [--conns N] [--requests N] \
         [--distinct N] [--seed N] [--problem heat1d|gs1d|heat2d|lcs] [--n N] \
         [--steps N] [--threads N] [--retry ATTEMPTS] [--retry-base-ms MS] \
         [--io-timeout-ms MS]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut tcp = None;
    let mut uds = None;
    let mut name = "baseline".to_string();
    let mut conns = 1usize;
    let mut requests = 64usize;
    let mut distinct = 4usize;
    let mut seed = 0xc0ffee_u64;
    let mut problem = "heat1d".to_string();
    let mut n = 4096usize;
    let mut steps = 32usize;
    let mut threads = 1usize;
    let mut retry_attempts = 0u32;
    let mut retry_base_ms = 5u64;
    let mut io_timeout_ms = 0u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if matches!(arg.as_str(), "--help" | "-h") {
            return usage();
        }
        let Some(value) = args.next() else {
            eprintln!("tempora-agent: {arg} needs a value");
            return usage();
        };
        let parsed: Result<(), ()> = match arg.as_str() {
            "--connect" => {
                tcp = Some(value);
                Ok(())
            }
            "--uds" => {
                uds = Some(value);
                Ok(())
            }
            "--scenario" => {
                name = value;
                Ok(())
            }
            "--problem" => {
                problem = value;
                Ok(())
            }
            "--conns" => value.parse().map(|v| conns = v).map_err(drop),
            "--requests" => value.parse().map(|v| requests = v).map_err(drop),
            "--distinct" => value.parse().map(|v| distinct = v).map_err(drop),
            "--seed" => value.parse().map(|v| seed = v).map_err(drop),
            "--n" => value.parse().map(|v| n = v).map_err(drop),
            "--steps" => value.parse().map(|v| steps = v).map_err(drop),
            "--threads" => value.parse().map(|v| threads = v).map_err(drop),
            "--retry" => value.parse().map(|v| retry_attempts = v).map_err(drop),
            "--retry-base-ms" => value.parse().map(|v| retry_base_ms = v).map_err(drop),
            "--io-timeout-ms" => value.parse().map(|v| io_timeout_ms = v).map_err(drop),
            _ => {
                eprintln!("tempora-agent: unknown flag {arg}");
                return usage();
            }
        };
        if parsed.is_err() {
            eprintln!("tempora-agent: bad value for {arg}");
            return usage();
        }
    }

    let Some(scenario) = Scenario::parse(&name) else {
        eprintln!("tempora-agent: unknown scenario {name:?}");
        return usage();
    };
    let Some(mut base) = scenario::default_spec(&problem, n, steps) else {
        eprintln!("tempora-agent: unknown problem kind {problem:?}");
        return usage();
    };
    base.config.threads = threads;

    let retry = (retry_attempts > 1).then(|| RetryPolicy {
        max_attempts: retry_attempts,
        base: Duration::from_millis(retry_base_ms),
        jitter_seed: seed,
        ..RetryPolicy::default()
    });
    let cfg = ScenarioCfg {
        tcp,
        uds,
        scenario,
        conns,
        requests,
        distinct,
        seed,
        base,
        retry,
        io_timeout: (io_timeout_ms > 0).then(|| Duration::from_millis(io_timeout_ms)),
    };
    match scenario::run(&cfg) {
        Ok(outcome) => {
            println!("{}", outcome.to_json_line());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tempora-agent: scenario failed: {e}");
            ExitCode::FAILURE
        }
    }
}
