//! An HDR-lite latency histogram: log2 octaves split into 32
//! sub-buckets (≈ 3% relative resolution), fixed memory, lossless
//! merge, and a sparse text form that survives a trip through the
//! agent's JSON summary line.

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;
/// Total buckets: values below `SUB` get exact buckets; above, one per
/// (octave, sub-bucket) pair up to `u64::MAX`.
const BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Fixed-size log-linear histogram of `u64` samples (nanoseconds, in
/// this crate's use). Recording never allocates; relative error is
/// bounded by `1/32`.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    // Highest set bit e ≥ SUB_BITS; drop to the octave's sub-bucket.
    let e = 63 - v.leading_zeros();
    let sub = (v >> (e - SUB_BITS)) - SUB;
    ((e - SUB_BITS + 1) as u64 * SUB + sub) as usize
}

/// The smallest value that lands in `idx` (used as the reported
/// percentile value — a ≤ 3% underestimate, never an overestimate).
fn bucket_floor(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB {
        return idx;
    }
    let octave = (idx - SUB) / SUB;
    let sub = (idx - SUB) % SUB;
    (SUB + sub) << octave
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Add every sample of `other` into `self` (lossless: equal-shaped
    /// buckets).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The value at quantile `q` in `[0, 1]` (lower bucket bound; 0 for
    /// an empty histogram).
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(idx);
            }
        }
        bucket_floor(BUCKETS - 1)
    }

    /// Sparse text form: `idx:count` pairs joined by `,` (empty string
    /// for an empty histogram). Fits inside one JSON string field.
    #[must_use]
    pub fn to_sparse(&self) -> String {
        let mut out = String::new();
        for (idx, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                if !out.is_empty() {
                    out.push(',');
                }
                out.push_str(&format!("{idx}:{c}"));
            }
        }
        out
    }

    /// Parse [`Histogram::to_sparse`] output. Unknown indices and
    /// malformed pairs are ignored (forward compatibility beats strictness
    /// for merge-side tooling).
    #[must_use]
    pub fn from_sparse(s: &str) -> Histogram {
        let mut h = Histogram::new();
        for pair in s.split(',').filter(|p| !p.is_empty()) {
            if let Some((idx, count)) = pair.split_once(':') {
                if let (Ok(idx), Ok(count)) = (idx.parse::<usize>(), count.parse::<u64>()) {
                    if idx < BUCKETS {
                        h.counts[idx] += count;
                        h.total += count;
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut last = 0;
        for v in (0..100_000u64).step_by(37) {
            let idx = bucket_index(v);
            assert!(idx >= last || bucket_index(v - 37) <= idx);
            last = idx;
            let floor = bucket_floor(idx);
            assert!(floor <= v, "floor {floor} above sample {v}");
            // ≤ 1/32 relative error for values beyond the linear range.
            if v >= 32 {
                assert!((v - floor) as f64 / v as f64 <= 1.0 / 32.0 + 1e-9);
            } else {
                assert_eq!(floor, v);
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_merge_and_sparse_roundtrip() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record(v * 1000)
            } else {
                b.record(v * 1000)
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 1000);
        let p50 = merged.percentile(0.50);
        let p99 = merged.percentile(0.99);
        assert!((470_000..=500_000).contains(&p50), "p50 was {p50}");
        assert!((950_000..=990_000).contains(&p99), "p99 was {p99}");
        let back = Histogram::from_sparse(&merged.to_sparse());
        assert_eq!(back.count(), merged.count());
        assert_eq!(back.percentile(0.95), merged.percentile(0.95));
    }
}
