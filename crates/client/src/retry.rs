//! Self-healing request layer: [`RetryPolicy`] backoff and the
//! transparently-reconnecting [`RetryingClient`].
//!
//! # The retry contract
//!
//! A request is retried only when failure is **safe to repeat** and the
//! server (or the transport) said so:
//!
//! - broken streams — connect failures, socket errors, short reads,
//!   reply-stream desync — reconnect and retry: `RunSteps` and
//!   `SubmitProblem` are idempotent (a run is a pure function of
//!   `(spec, seed)`, so a replay is bitwise-identical to the lost
//!   original);
//! - [`ErrorCode::retryable`] replies — [`ErrorCode::Busy`] (honoring
//!   its `retry_after_ms` hint), [`ErrorCode::GoingAway`] (reconnect:
//!   the server is draining this connection), `DeadlineExceeded` and
//!   `Poisoned`.
//!
//! Everything else (`BuildFailed`, `BadFrame`, …) fails fast — retrying
//! a deterministic rejection cannot help.
//!
//! # Backoff
//!
//! [`Backoff`] implements capped exponential backoff with
//! **decorrelated jitter**: each delay is drawn uniformly from
//! `[base, prev * 3]` and capped, so synchronized clients spread out
//! instead of retrying in lockstep. The random stream is a seeded
//! `splitmix64` and the sleep goes through an injectable [`RetryClock`],
//! making every schedule reproducible in tests.

use crate::{Client, ClientError};
use std::path::PathBuf;
use std::time::Duration;
use tempora_proto::{ErrorCode, JobSpec, RunReply};

/// The sleep side-effect behind [`RetryingClient`], injectable so tests
/// observe exact backoff schedules without real time passing.
pub trait RetryClock {
    /// Block the caller for `d` (or just record it, in tests).
    fn sleep(&mut self, d: Duration);
}

/// The production clock: `std::thread::sleep`.
#[derive(Debug, Default)]
pub struct ThreadClock;

impl RetryClock for ThreadClock {
    fn sleep(&mut self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// How hard to try before giving up, and how long to wait in between.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` disables retries).
    pub max_attempts: u32,
    /// Backoff floor — the first delay and every delay's lower bound.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Seed for the decorrelated jitter; vary it per client so a fleet
    /// doesn't retry in lockstep.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Capped exponential backoff with decorrelated jitter:
/// `delay = min(cap, uniform(base, prev * 3))`.
#[derive(Clone, Debug)]
pub struct Backoff {
    base_ns: u64,
    cap_ns: u64,
    prev_ns: u64,
    rng: u64,
}

impl Backoff {
    /// A fresh schedule for `policy`.
    #[must_use]
    pub fn new(policy: &RetryPolicy) -> Backoff {
        let base_ns = (policy.base.as_nanos() as u64).max(1);
        Backoff {
            base_ns,
            cap_ns: (policy.cap.as_nanos() as u64).max(base_ns),
            prev_ns: base_ns,
            rng: policy.jitter_seed,
        }
    }

    /// The next delay: uniform in `[base, prev * 3]`, capped.
    pub fn next_delay(&mut self) -> Duration {
        let hi = self.prev_ns.saturating_mul(3).max(self.base_ns + 1);
        let span = hi - self.base_ns;
        self.prev_ns = (self.base_ns + splitmix64(&mut self.rng) % span).min(self.cap_ns);
        Duration::from_nanos(self.prev_ns)
    }

    /// Forget accumulated growth after a success, so the next failure
    /// starts again from `base`.
    pub fn reset(&mut self) {
        self.prev_ns = self.base_ns;
    }
}

/// Where [`RetryingClient`] (re)connects to.
#[derive(Clone, Debug)]
pub enum Target {
    /// TCP `host:port`.
    Tcp(String),
    /// Unix-socket path.
    Uds(PathBuf),
}

impl Target {
    fn connect(&self, io_timeout: Option<Duration>) -> Result<Client, ClientError> {
        match self {
            Target::Tcp(addr) => Client::connect_tcp_with(addr, io_timeout),
            Target::Uds(path) => Client::connect_uds_with(path, io_timeout),
        }
    }
}

/// What the retry layer did on the caller's behalf.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetryStats {
    /// Attempts beyond the first, across all requests.
    pub retries: u64,
    /// Connections re-established after a drop.
    pub reconnects: u64,
    /// `Busy` replies honored (shed or admission-refused work).
    pub busy: u64,
    /// `GoingAway` farewells absorbed (server drains survived).
    pub going_away: u64,
    /// Requests that exhausted the policy and surfaced their error.
    pub gave_up: u64,
}

/// How one failed attempt should be handled.
struct Verdict {
    retryable: bool,
    /// The connection is unusable (or about to be); reconnect first.
    drop_conn: bool,
    /// Server-provided minimum wait (Busy's `retry_after_ms`).
    hint: Option<Duration>,
}

fn classify(err: &ClientError) -> Verdict {
    match err {
        // Transport damage: the stream is gone or desynced. Safe to
        // replay (requests are idempotent), but only on a fresh
        // connection.
        ClientError::Io(_) | ClientError::Wire(_) | ClientError::Protocol(_) => Verdict {
            retryable: true,
            drop_conn: true,
            hint: None,
        },
        ClientError::Server { code, .. } => Verdict {
            retryable: code.retryable(),
            // GoingAway means this connection is draining; Deadline
            // means the server already cut it.
            drop_conn: matches!(code, ErrorCode::GoingAway | ErrorCode::DeadlineExceeded),
            hint: code
                .retry_after_ms()
                .map(|ms| Duration::from_millis(ms.into())),
        },
    }
}

/// A [`Client`] wrapper that transparently reconnects and retries per
/// its [`RetryPolicy`] — the self-healing side of the service's
/// resilience contract (see the module docs for what is and is not
/// retried).
pub struct RetryingClient {
    target: Target,
    io_timeout: Option<Duration>,
    policy: RetryPolicy,
    backoff: Backoff,
    clock: Box<dyn RetryClock + Send>,
    conn: Option<Client>,
    stats: RetryStats,
}

impl RetryingClient {
    /// A lazily-connecting client for `target` (first request dials).
    #[must_use]
    pub fn new(target: Target, policy: RetryPolicy) -> RetryingClient {
        RetryingClient {
            target,
            io_timeout: None,
            backoff: Backoff::new(&policy),
            policy,
            clock: Box::new(ThreadClock),
            conn: None,
            stats: RetryStats::default(),
        }
    }

    /// Bound every socket read/write; a peer that stops answering turns
    /// into a retryable I/O error instead of a hang.
    #[must_use]
    pub fn with_io_timeout(mut self, timeout: Duration) -> RetryingClient {
        self.io_timeout = Some(timeout);
        self
    }

    /// Replace the sleep implementation (deterministic tests).
    #[must_use]
    pub fn with_clock(mut self, clock: Box<dyn RetryClock + Send>) -> RetryingClient {
        self.clock = clock;
        self
    }

    /// Counters for availability reporting.
    #[must_use]
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// `Client::submit` with reconnect-and-retry.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<RunReply, ClientError> {
        let spec = *spec;
        self.call(move |c| c.submit(&spec))
    }

    /// `Client::run_steps` with reconnect-and-retry. A replayed run is
    /// bitwise-identical to the lost original: the server derives state
    /// from `(spec, seed)` alone.
    pub fn run_steps(&mut self, spec: &JobSpec, seed: u64) -> Result<RunReply, ClientError> {
        let spec = *spec;
        self.call(move |c| c.run_steps(&spec, seed))
    }

    fn call(
        &mut self,
        mut op: impl FnMut(&mut Client) -> Result<RunReply, ClientError>,
    ) -> Result<RunReply, ClientError> {
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let outcome = match self.ensure_conn() {
                Ok(conn) => op(conn),
                Err(e) => Err(e),
            };
            let err = match outcome {
                Ok(reply) => {
                    self.backoff.reset();
                    return Ok(reply);
                }
                Err(err) => err,
            };
            let verdict = classify(&err);
            match &err {
                ClientError::Server {
                    code: ErrorCode::Busy { .. },
                    ..
                } => self.stats.busy += 1,
                ClientError::Server {
                    code: ErrorCode::GoingAway,
                    ..
                } => self.stats.going_away += 1,
                _ => {}
            }
            if verdict.drop_conn {
                self.conn = None;
            }
            if !verdict.retryable || attempt >= max_attempts {
                if verdict.retryable {
                    self.stats.gave_up += 1;
                }
                return Err(err);
            }
            self.stats.retries += 1;
            let mut delay = self.backoff.next_delay();
            if let Some(hint) = verdict.hint {
                delay = delay.max(hint);
            }
            self.clock.sleep(delay);
        }
    }

    fn ensure_conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let fresh = self.target.connect(self.io_timeout)?;
            // Only a *re*-connect counts: the first dial is just startup.
            if self.stats.retries > 0 || self.stats.reconnects > 0 {
                self.stats.reconnects += 1;
            }
            self.conn = Some(fresh);
        }
        match self.conn.as_mut() {
            Some(conn) => Ok(conn),
            // Unreachable: the branch above just filled the slot.
            None => Err(ClientError::Protocol("connection slot empty")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_stays_within_base_cap_and_decorrelation_bounds() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(500),
            jitter_seed: 42,
        };
        let mut backoff = Backoff::new(&policy);
        let mut prev = policy.base;
        for _ in 0..1000 {
            let d = backoff.next_delay();
            assert!(d >= policy.base, "floor: {d:?}");
            assert!(d <= policy.cap, "cap: {d:?}");
            // Decorrelated jitter: next <= max(cap, prev * 3).
            assert!(
                d <= policy.cap.min(prev * 3).max(policy.base),
                "growth: {d:?} from {prev:?}"
            );
            prev = d;
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_resets_to_base() {
        let policy = RetryPolicy {
            jitter_seed: 7,
            ..RetryPolicy::default()
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(&RetryPolicy {
                jitter_seed: seed,
                ..policy
            });
            (0..16).map(|_| b.next_delay()).collect()
        };
        assert_eq!(schedule(7), schedule(7), "same seed, same schedule");
        assert_ne!(schedule(7), schedule(8), "different seed, different jitter");

        let mut b = Backoff::new(&policy);
        for _ in 0..16 {
            b.next_delay();
        }
        b.reset();
        let after_reset = b.next_delay();
        // Post-reset the window is [base, base*3) again.
        assert!(
            after_reset < policy.base * 3,
            "reset forgot growth: {after_reset:?}"
        );
    }

    #[test]
    fn backoff_grows_toward_the_cap() {
        let policy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(64),
            jitter_seed: 3,
            ..RetryPolicy::default()
        };
        let mut b = Backoff::new(&policy);
        let hits_cap_region = (0..64).any(|_| b.next_delay() >= Duration::from_millis(32));
        assert!(hits_cap_region, "1000x span never reached half the cap");
    }

    #[test]
    fn retrying_client_follows_the_schedule_then_gives_up() {
        use std::sync::{Arc, Mutex};

        struct RecordingClock(Arc<Mutex<Vec<Duration>>>);
        impl RetryClock for RecordingClock {
            fn sleep(&mut self, d: Duration) {
                self.0.lock().expect("clock mutex").push(d);
            }
        }

        // A port with nothing behind it: bind, learn the port, drop the
        // listener, so every connect is refused deterministically.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);

        let policy = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(3),
            cap: Duration::from_millis(100),
            jitter_seed: 1234,
        };
        let sleeps = Arc::new(Mutex::new(Vec::new()));
        let mut client = RetryingClient::new(Target::Tcp(addr), policy)
            .with_clock(Box::new(RecordingClock(Arc::clone(&sleeps))));
        let spec = tempora_proto::JobSpec::new(tempora_proto::Problem::lcs(16, 16));
        let err = client.run_steps(&spec, 1).expect_err("nothing listening");
        assert!(matches!(err, ClientError::Io(_)), "got {err:?}");

        // Exactly max_attempts - 1 sleeps, each inside [base, cap] and
        // matching the policy's own deterministic schedule.
        let sleeps = sleeps.lock().expect("clock mutex").clone();
        assert_eq!(sleeps.len(), 4, "5 attempts bracket 4 backoffs");
        let mut reference = Backoff::new(&policy);
        for d in &sleeps {
            assert_eq!(*d, reference.next_delay(), "schedule must be reproducible");
            assert!(*d >= policy.base && *d <= policy.cap);
        }
        let stats = client.stats();
        assert_eq!(stats.retries, 4);
        assert_eq!(stats.gave_up, 1);
    }

    #[test]
    fn classification_retries_transport_and_hinted_codes_only() {
        let io = ClientError::Io(std::io::Error::from(std::io::ErrorKind::BrokenPipe));
        let v = classify(&io);
        assert!(v.retryable && v.drop_conn);

        let busy = ClientError::Server {
            code: ErrorCode::Busy { retry_after_ms: 40 },
            message: String::new(),
        };
        let v = classify(&busy);
        assert!(v.retryable && !v.drop_conn);
        assert_eq!(v.hint, Some(Duration::from_millis(40)));

        let going = ClientError::Server {
            code: ErrorCode::GoingAway,
            message: String::new(),
        };
        let v = classify(&going);
        assert!(v.retryable && v.drop_conn, "GoingAway must reconnect");

        let build = ClientError::Server {
            code: ErrorCode::BuildFailed,
            message: String::new(),
        };
        let v = classify(&build);
        assert!(!v.retryable, "deterministic rejections fail fast");
    }
}
