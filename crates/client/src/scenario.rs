//! Closed-loop load scenarios and their single-line JSON summary.
//!
//! Each scenario opens `conns` connections (one thread each) and issues
//! `requests` total `RunSteps` calls back-to-back (closed loop: the next
//! request leaves when the previous reply lands). They differ in how
//! requests map onto specs:
//!
//! | scenario | shape |
//! |---|---|
//! | `baseline` | 1 connection, 1 spec — pure cached-path latency |
//! | `fan-out` | N connections, 1 shared spec — combiner batching under contention |
//! | `fan-in` | N connections, N distinct specs — shard spread, no plan sharing |
//! | `churn` | N connections rotating through more specs than the cache holds — eviction pressure |

use crate::hist::Histogram;
use crate::retry::{RetryPolicy, RetryingClient, Target};
use crate::{Client, ClientError};
use std::time::{Duration, Instant};
use tempora_proto::{JobSpec, Problem, RunReply};
use tempora_stencil::{Gs1dCoeffs, Heat1dCoeffs, Heat2dCoeffs};

/// Which load pattern to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// One connection, one spec.
    Baseline,
    /// Many connections, one shared spec.
    FanOut,
    /// Many connections, distinct specs.
    FanIn,
    /// Many connections rotating through more specs than the cache
    /// capacity, forcing evictions and rebuilds.
    Churn,
}

impl Scenario {
    /// The scenario's CLI/JSON name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::FanOut => "fan-out",
            Scenario::FanIn => "fan-in",
            Scenario::Churn => "churn",
        }
    }

    /// Parse a CLI/JSON name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Scenario> {
        match s {
            "baseline" => Some(Scenario::Baseline),
            "fan-out" => Some(Scenario::FanOut),
            "fan-in" => Some(Scenario::FanIn),
            "churn" => Some(Scenario::Churn),
            _ => None,
        }
    }
}

/// Where and what to drive.
#[derive(Clone, Debug)]
pub struct ScenarioCfg {
    /// TCP address (`host:port`) — used unless `uds` is set.
    pub tcp: Option<String>,
    /// Unix-socket path, taking precedence over `tcp`.
    pub uds: Option<String>,
    /// The load pattern.
    pub scenario: Scenario,
    /// Connections (threads). Baseline forces 1.
    pub conns: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Distinct specs for fan-in/churn.
    pub distinct: usize,
    /// Base seed; per-request seeds derive from it.
    pub seed: u64,
    /// The base spec every variant derives from.
    pub base: JobSpec,
    /// When set, every connection goes through a [`RetryingClient`]
    /// with this policy (jitter-seeded per connection): broken streams
    /// reconnect, `Busy`/`GoingAway` back off and retry, and request
    /// failures count as `errors` instead of aborting the scenario.
    pub retry: Option<RetryPolicy>,
    /// Socket read/write timeout for retry-enabled connections.
    pub io_timeout: Option<Duration>,
}

/// What one agent observed, ready to serialize as one JSON line.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Scenario name.
    pub scenario: String,
    /// Connections used.
    pub conns: usize,
    /// Requests completed (successes).
    pub ok: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Replies with `cache_hit`.
    pub hits: u64,
    /// Replies without `cache_hit`.
    pub misses: u64,
    /// Total plan builds observed (max `plan_builds` per distinct spec
    /// is summed by the harness via server stats; this is the per-reply
    /// build-attribution count: replies that triggered a build).
    pub built: u64,
    /// Largest combiner batch observed.
    pub max_batched: u32,
    /// Retry attempts beyond each request's first try (retry mode).
    pub retries: u64,
    /// Connections re-established after a drop (retry mode).
    pub reconnects: u64,
    /// End-to-end client-side request latencies (ns).
    pub latency: Histogram,
    /// Wall-clock duration of the whole scenario (seconds).
    pub elapsed_s: f64,
}

impl Outcome {
    /// Render the single-line JSON summary `tempora-agent` prints.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let p50 = self.latency.percentile(0.50);
        let p95 = self.latency.percentile(0.95);
        let p99 = self.latency.percentile(0.99);
        let throughput = if self.elapsed_s > 0.0 {
            self.ok as f64 / self.elapsed_s
        } else {
            0.0
        };
        format!(
            concat!(
                "{{\"scenario\":\"{}\",\"conns\":{},\"ok\":{},\"errors\":{},",
                "\"hits\":{},\"misses\":{},\"built\":{},\"max_batched\":{},",
                "\"retries\":{},\"reconnects\":{},",
                "\"p50_us\":{:.3},\"p95_us\":{:.3},\"p99_us\":{:.3},",
                "\"throughput_rps\":{:.3},\"elapsed_s\":{:.6},\"hist\":\"{}\"}}"
            ),
            self.scenario,
            self.conns,
            self.ok,
            self.errors,
            self.hits,
            self.misses,
            self.built,
            self.max_batched,
            self.retries,
            self.reconnects,
            p50 as f64 / 1000.0,
            p95 as f64 / 1000.0,
            p99 as f64 / 1000.0,
            throughput,
            self.elapsed_s,
            self.latency.to_sparse(),
        )
    }
}

/// The `idx`-th spec variant of `base`: same kind and configuration,
/// distinct geometry (so distinct canonical key and a genuinely
/// different compiled plan).
#[must_use]
pub fn vary_spec(base: &JobSpec, idx: usize) -> JobSpec {
    if idx == 0 {
        return *base;
    }
    let mut spec = *base;
    let bump = 8 * idx;
    spec.problem = match spec.problem {
        Problem::Heat1d {
            n, steps, coeffs, ..
        } => Problem::heat1d(n + bump, steps, coeffs),
        Problem::Gs1d {
            n, steps, coeffs, ..
        } => Problem::gs1d(n + bump, steps, coeffs),
        Problem::Heat2d {
            nx,
            ny,
            steps,
            coeffs,
            ..
        } => Problem::heat2d(nx + bump, ny, steps, coeffs),
        other => other,
    };
    spec
}

fn target(cfg: &ScenarioCfg) -> Result<Target, ClientError> {
    if let Some(path) = &cfg.uds {
        return Ok(Target::Uds(path.into()));
    }
    match &cfg.tcp {
        Some(addr) => Ok(Target::Tcp(addr.clone())),
        None => Err(ClientError::Protocol("no --connect or --uds target")),
    }
}

/// One connection's request path: bare [`Client`] (a request failure
/// beyond a typed server error aborts the scenario) or a
/// [`RetryingClient`] (failures surface only after the policy is
/// exhausted, and count as errors rather than aborting).
enum Driver {
    Plain(Client),
    Retrying(RetryingClient),
}

impl Driver {
    fn new(cfg: &ScenarioCfg, conn_idx: usize) -> Result<Driver, ClientError> {
        let target = target(cfg)?;
        match cfg.retry {
            Some(policy) => {
                // Distinct jitter stream per connection so a fleet's
                // retries spread instead of stampeding.
                let policy = RetryPolicy {
                    jitter_seed: policy
                        .jitter_seed
                        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(conn_idx as u64 + 1)),
                    ..policy
                };
                let mut client = RetryingClient::new(target, policy);
                if let Some(t) = cfg.io_timeout {
                    client = client.with_io_timeout(t);
                }
                Ok(Driver::Retrying(client))
            }
            None => {
                let client = match &target {
                    Target::Tcp(addr) => Client::connect_tcp(addr)?,
                    Target::Uds(path) => Client::connect_uds(path)?,
                };
                Ok(Driver::Plain(client))
            }
        }
    }

    fn run_steps(&mut self, spec: &JobSpec, seed: u64) -> Result<RunReply, ClientError> {
        match self {
            Driver::Plain(c) => c.run_steps(spec, seed),
            Driver::Retrying(c) => c.run_steps(spec, seed),
        }
    }
}

/// Run the configured scenario to completion and aggregate every
/// connection's observations.
pub fn run(cfg: &ScenarioCfg) -> Result<Outcome, ClientError> {
    let conns = match cfg.scenario {
        Scenario::Baseline => 1,
        _ => cfg.conns.max(1),
    };
    let distinct = match cfg.scenario {
        Scenario::Baseline | Scenario::FanOut => 1,
        Scenario::FanIn => cfg.distinct.max(conns),
        Scenario::Churn => cfg.distinct.max(2),
    };
    let start = Instant::now();
    let mut handles = Vec::new();
    for conn_idx in 0..conns {
        let cfg = cfg.clone();
        let requests = cfg.requests / conns + usize::from(conn_idx < cfg.requests % conns);
        handles.push(std::thread::spawn(
            move || -> Result<Outcome, ClientError> {
                let mut driver = Driver::new(&cfg, conn_idx)?;
                let mut out = Outcome::default();
                for req in 0..requests {
                    let spec_idx = match cfg.scenario {
                        Scenario::Baseline | Scenario::FanOut => 0,
                        // Fan-in: each connection owns one spec.
                        Scenario::FanIn => conn_idx % distinct,
                        // Churn: every request rotates to the next spec.
                        Scenario::Churn => (conn_idx + req * conns) % distinct,
                    };
                    let spec = vary_spec(&cfg.base, spec_idx);
                    let seed = cfg.seed ^ ((spec_idx as u64) << 32);
                    let sent = Instant::now();
                    match driver.run_steps(&spec, seed) {
                        Ok(reply) => {
                            out.ok += 1;
                            if reply.cache_hit {
                                out.hits += 1;
                            } else {
                                out.misses += 1;
                            }
                            if !reply.cache_hit && reply.plan_builds > 0 {
                                out.built += 1;
                            }
                            out.max_batched = out.max_batched.max(reply.batched);
                            out.latency.record(sent.elapsed().as_nanos() as u64);
                        }
                        Err(ClientError::Server { .. }) => out.errors += 1,
                        // Retry mode: the policy already fought for this
                        // request; an exhausted retryable failure is an
                        // availability miss, not a harness abort.
                        Err(_) if matches!(driver, Driver::Retrying(_)) => out.errors += 1,
                        Err(fatal) => return Err(fatal),
                    }
                }
                if let Driver::Retrying(client) = &driver {
                    let stats = client.stats();
                    out.retries = stats.retries;
                    out.reconnects = stats.reconnects;
                }
                Ok(out)
            },
        ));
    }
    let mut total = Outcome {
        scenario: cfg.scenario.name().to_string(),
        conns,
        ..Outcome::default()
    };
    let mut first_err = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(out)) => {
                total.ok += out.ok;
                total.errors += out.errors;
                total.hits += out.hits;
                total.misses += out.misses;
                total.built += out.built;
                total.max_batched = total.max_batched.max(out.max_batched);
                total.retries += out.retries;
                total.reconnects += out.reconnects;
                total.latency.merge(&out.latency);
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err = first_err.or(Some(ClientError::Protocol("scenario thread panicked")))
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    total.elapsed_s = start.elapsed().as_secs_f64();
    Ok(total)
}

/// The default problem the agent drives when none is specified: a 1-D
/// heat stencil sized for sub-millisecond steady-state runs.
#[must_use]
pub fn default_spec(problem: &str, n: usize, steps: usize) -> Option<JobSpec> {
    let spec = match problem {
        "heat1d" => JobSpec::new(Problem::heat1d(n, steps, Heat1dCoeffs::classic(0.25))),
        "gs1d" => JobSpec::new(Problem::gs1d(n, steps, Gs1dCoeffs::classic(0.25))),
        "heat2d" => JobSpec::new(Problem::heat2d(
            n,
            n / 2 + 8,
            steps,
            Heat2dCoeffs::classic(0.125),
        )),
        "lcs" => JobSpec::new(Problem::lcs(n, n / 2 + 8)),
        _ => return None,
    };
    Some(spec)
}
