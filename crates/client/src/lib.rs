//! # tempora-client — blocking client for the solver service
//!
//! [`Client`] speaks the [`tempora_proto`] frames over TCP or a Unix
//! socket: `submit` interns a plan server-side, `run_steps` executes it
//! against a seeded state and returns the server's [`RunReply`]. The
//! [`scenario`] module drives closed-loop load patterns (baseline,
//! fan-out, fan-in, cache-churn) and is what the `tempora-agent` binary
//! wraps; [`hist::Histogram`] collects the latency distributions those
//! scenarios report.
//!
//! For unreliable networks and draining servers, wrap the connection in
//! [`retry::RetryingClient`]: it reconnects on broken streams, honors
//! the server's `Busy`/`GoingAway` retry hints, and backs off with
//! capped decorrelated jitter ([`retry::RetryPolicy`]).
//!
//! Request ids are chosen by the client starting at 1 — **id 0 is
//! reserved** for the server's uncorrelated replies (decode errors,
//! drain farewells) and is never issued, even across wraparound.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hist;
pub mod retry;
pub mod scenario;

use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;
use tempora_proto::{read_frame, write_frame, ErrorCode, Frame, JobSpec, RunReply, WireError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(std::io::Error),
    /// The server's bytes failed to decode.
    Wire(WireError),
    /// The server answered with a typed `ErrorReply`.
    Server {
        /// The failure category.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered out of protocol (wrong id, wrong frame).
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

/// A blocking connection to `tempora-serve` with one in-flight request
/// at a time.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: BufWriter<Box<dyn Write + Send>>,
    next_id: u64,
}

impl Client {
    /// Connect over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        Client::connect_tcp_with(addr, None)
    }

    /// Connect over TCP with an optional socket read/write timeout, so a
    /// stalled or killed server surfaces as an I/O error instead of a
    /// hang (the retry layer then reconnects).
    pub fn connect_tcp_with(
        addr: &str,
        io_timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        let reader = stream.try_clone()?;
        Ok(Client::from_parts(Box::new(reader), Box::new(stream)))
    }

    /// Connect over a Unix socket.
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Client, ClientError> {
        Client::connect_uds_with(path, None)
    }

    /// Connect over a Unix socket with an optional socket read/write
    /// timeout (see [`Client::connect_tcp_with`]).
    pub fn connect_uds_with(
        path: impl AsRef<Path>,
        io_timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        let reader = stream.try_clone()?;
        Ok(Client::from_parts(Box::new(reader), Box::new(stream)))
    }

    fn from_parts(reader: Box<dyn Read + Send>, writer: Box<dyn Write + Send>) -> Client {
        Client {
            reader: BufReader::new(reader),
            writer: BufWriter::new(writer),
            next_id: 1,
        }
    }

    /// Intern (prepare) `spec`'s plan server-side without running it.
    /// The reply has `steps == 0`.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<RunReply, ClientError> {
        let request_id = self.next_id();
        self.roundtrip(
            Frame::SubmitProblem {
                request_id,
                spec: *spec,
            },
            request_id,
        )
    }

    /// Run `spec`'s plan over its full time extent against a fresh
    /// server-side state derived from `seed`.
    pub fn run_steps(&mut self, spec: &JobSpec, seed: u64) -> Result<RunReply, ClientError> {
        let request_id = self.next_id();
        self.roundtrip(
            Frame::RunSteps {
                request_id,
                spec: *spec,
                seed,
            },
            request_id,
        )
    }

    /// Send a raw frame and read one raw reply — escape hatch for the
    /// protocol tests (adversarial frames, version probing).
    pub fn raw_roundtrip(&mut self, frame: &Frame) -> Result<Option<Frame>, ClientError> {
        write_frame(&mut self.writer, frame)?;
        Ok(read_frame(&mut self.reader)?)
    }

    fn next_id(&mut self) -> u64 {
        let id = self.next_id;
        // Id 0 is reserved for the server's uncorrelated replies; skip
        // it even if the counter ever wraps.
        self.next_id = match self.next_id.wrapping_add(1) {
            0 => 1,
            n => n,
        };
        id
    }

    fn roundtrip(&mut self, frame: Frame, request_id: u64) -> Result<RunReply, ClientError> {
        write_frame(&mut self.writer, &frame)?;
        match read_frame(&mut self.reader)? {
            Some(Frame::ReportReply {
                request_id: rid,
                reply,
            }) => {
                if rid != request_id {
                    return Err(ClientError::Protocol("reply for a different request id"));
                }
                Ok(reply)
            }
            Some(Frame::ErrorReply { code, message, .. }) => {
                Err(ClientError::Server { code, message })
            }
            Some(_) => Err(ClientError::Protocol("unexpected frame type in reply")),
            None => Err(ClientError::Protocol("server closed mid-request")),
        }
    }
}
