//! Skewed-band (parallelogram) execution of the 2-D Gauss-Seidel engine.
//!
//! The 2-D analogue of [`crate::t1d_band`]: parallelogram tiles lean left
//! along the **outer** dimension `x` (whole `y`-rows move as units), the
//! single in-place array carries the inter-tile staircase, and the
//! temporal vector algebra is unchanged from the rectangular engine
//! [`crate::t2d`] — only the prologue/steady/epilogue row ranges shift.
//!
//! Staircase invariants (per row, identical to the 1-D case): when a tile
//! anchored at rows `[xl, xr]` starts, rows `≥ xl` hold the band-base
//! level, row `xl-k` holds level `k`, and level `k`'s rightmost row read
//! of level `k-1` finds it intact because the windows shrink by one row
//! per level.

use crate::kernels::{Kernel2d, Nbhd};
use tempora_grid::Grid2;
use tempora_simd::Pack;

/// Scalar 2-D Gauss-Seidel row update over one row `x` (columns
/// `1..=ny`), in place.
#[inline]
fn gs_row<K: Kernel2d<f64>>(a: &mut [f64], x: usize, ny: usize, p: usize, kern: &K) {
    let r = x * p;
    for y in 1..=ny {
        let nb = Nbhd {
            v: [
                [0.0, 0.0, 0.0], // old north operands unused by GS kernels
                [0.0, a[r + y], a[r + y + 1]],
                [0.0, a[r + p + y], 0.0],
            ],
            new_n: a[r - p + y],
            new_w: a[r + y - 1],
        };
        a[r + y] = kern.scalar(nb);
    }
}

/// One scalar skewed band: advance levels `1..=vl` over row windows
/// `[xl-(k-1), xr-(k-1)] ∩ [1, nx]`, in place.
pub fn band_scalar_gs2d<K: Kernel2d<f64>>(
    g: &mut Grid2<f64>,
    xl: usize,
    xr: usize,
    vl: usize,
    kern: &K,
) {
    debug_assert!(K::IS_GS);
    let (nx, ny, p) = (g.nx(), g.ny(), g.pitch());
    let a = g.data_mut();
    for k in 1..=vl {
        let lo = xl.saturating_sub(k - 1).max(1);
        let hi = (xr + 1).saturating_sub(k).min(nx);
        for x in lo..=hi {
            gs_row(a, x, ny, p, kern);
        }
    }
}

/// One temporally vectorized skewed band (2-D Gauss-Seidel),
/// bit-identical to [`band_scalar_gs2d`]. Edge or narrow tiles fall back
/// to the scalar band.
pub fn band_temporal_gs2d<const VL: usize, K: Kernel2d<f64>>(
    g: &mut Grid2<f64>,
    xl: usize,
    xr: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch2d<VL>,
) {
    debug_assert!(K::IS_GS);
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    let (nx, ny) = (g.nx(), g.ny());
    assert_eq!(sc.ny, ny, "scratch shape mismatch");
    if !crate::t1d_band::vector_band_shape::<VL>(xl, xr, nx, s) {
        band_scalar_gs2d(g, xl, xr, VL, kern);
        return;
    }
    let (x_start, x_max) = band_prologue2d::<VL, K>(g, xl, xr, s, kern, sc);
    band_steady2d::<VL, K>(g, s, kern, sc, x_start, x_max);
    band_epilogue2d::<VL, K>(g, xr, s, kern, sc, x_max);
}

/// Phase 1 of a 2-D temporal band: scalar prologue rows plus the initial
/// ring rows `V(x_start, ·) ..= V(x_start+s, ·)` and the previous output
/// row `O(x_start-1, ·)` in `sc.o_prev`. Returns `(x_start, x_max)`.
/// Shared by the portable and AVX2 steady states. Callers must have
/// checked [`crate::t1d_band::vector_band_shape`].
fn band_prologue2d<const VL: usize, K: Kernel2d<f64>>(
    g: &mut Grid2<f64>,
    xl: usize,
    xr: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch2d<VL>,
) -> (usize, usize) {
    let (ny, p) = (g.ny(), g.pitch());
    let bc = g.boundary().value();
    let a = g.data_mut();
    let x_start = xl - (VL - 1);
    let x_max = xr + 1 - VL * s;
    debug_assert!(x_max >= x_start);
    let w = ny + 2;

    // Prologue rows, stashing the row each pass is about to clobber.
    for k in 1..VL {
        sc.saved[k - 1][..w].copy_from_slice(&a[(x_start + (VL - k) * s) * p..][..w]);
        let lo = xl - (k - 1);
        let hi = x_start + (VL - k) * s;
        for x in lo..=hi {
            gs_row(a, x, ny, p, kern);
        }
    }

    // Initial ring rows V(x_start) ..= V(x_start+s) and O(x_start-1, ·).
    let rlen = s + 1;
    for (y, slot) in sc.ring[x_start % rlen].iter_mut().enumerate() {
        *slot = if y == 0 || y == ny + 1 {
            Pack::splat(bc)
        } else {
            Pack::from_fn(|i| {
                if i == VL - 1 {
                    a[x_start * p + y]
                } else {
                    sc.saved[i][y]
                }
            })
        };
    }
    for j in 1..=s {
        let x = x_start + j;
        for (y, slot) in sc.ring[x % rlen].iter_mut().enumerate() {
            *slot = if y == 0 || y == ny + 1 {
                Pack::splat(bc)
            } else {
                Pack::from_fn(|i| a[(x + (VL - 1 - i) * s) * p + y])
            };
        }
    }
    for (y, slot) in sc.o_prev.iter_mut().enumerate() {
        *slot = if y == 0 || y == ny + 1 {
            Pack::splat(bc)
        } else {
            Pack::from_fn(|i| a[(x_start - 1 + (VL - 1 - i) * s) * p + y])
        };
    }
    (x_start, x_max)
}

/// Portable steady state of a 2-D temporal band (identical to the
/// rectangular engine's inner loop).
fn band_steady2d<const VL: usize, K: Kernel2d<f64>>(
    g: &mut Grid2<f64>,
    s: usize,
    kern: &K,
    sc: &mut BandScratch2d<VL>,
    x_start: usize,
    x_max: usize,
) {
    let (ny, p) = (g.ny(), g.pitch());
    let bc = g.boundary().value();
    let a = g.data_mut();
    let rlen = s + 1;
    let zero = Pack::<f64, VL>::splat(0.0);
    for x in x_start..=x_max {
        let i0 = x % rlen;
        let ip1 = (x + 1) % rlen;
        let ips = (x + s) % rlen;
        let mut wrow = core::mem::take(&mut sc.ring[ips]);
        {
            let r0 = &sc.ring[i0];
            let rp1 = &sc.ring[ip1];
            let mut o_west = Pack::splat(bc);
            for y in 1..=ny {
                let nb = Nbhd {
                    v: [
                        [zero, zero, zero],
                        [r0[y - 1], r0[y], r0[y + 1]],
                        [zero, rp1[y], zero],
                    ],
                    new_n: sc.o_prev[y],
                    new_w: o_west,
                };
                let o = kern.pack(nb);
                a[x * p + y] = o.top();
                let bottom = a[(x + VL * s) * p + y];
                wrow[y] = o.shift_up_insert(bottom);
                sc.o_cur[y] = o;
                o_west = o;
            }
            // Halo packs of the produced row.
            wrow[0] = Pack::splat(bc);
            wrow[ny + 1] = Pack::splat(bc);
        }
        sc.ring[ips] = wrow;
        core::mem::swap(&mut sc.o_prev, &mut sc.o_cur);
        sc.o_cur[0] = Pack::splat(bc);
        sc.o_cur[ny + 1] = Pack::splat(bc);
    }
}

/// Phase 3 of a 2-D temporal band: materialize register-resident levels
/// into the staircase, then finish each level scalar.
fn band_epilogue2d<const VL: usize, K: Kernel2d<f64>>(
    g: &mut Grid2<f64>,
    xr: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch2d<VL>,
    x_max: usize,
) {
    let (ny, p) = (g.ny(), g.pitch());
    let a = g.data_mut();
    let rlen = s + 1;
    for j in x_max + 1..=x_max + s {
        let src = &sc.ring[j % rlen];
        for i in 1..VL {
            let row = (j + (VL - 1 - i) * s) * p;
            for y in 1..=ny {
                a[row + y] = src[y].extract(i);
            }
        }
    }
    for i in 0..VL - 1 {
        let row = (x_max + (VL - 1 - i) * s) * p;
        for y in 1..=ny {
            a[row + y] = sc.o_prev[y].extract(i);
        }
    }
    for k in 1..=VL {
        let lo = x_max + (VL - k) * s + 1;
        let hi = xr + 1 - k;
        for x in lo..=hi {
            gs_row(a, x, ny, p, kern);
        }
    }
}

/// One temporally vectorized skewed band (2-D Gauss-Seidel) with the
/// hand-scheduled AVX2 steady state — the same scheduling
/// (`vfmadd231pd`, `vpermpd`, `vblendpd`) as `crate::t2d_avx2`, with the newest-north
/// operand from the previous output row and the newest-west operand from
/// the previous output vector in a register (§3.4). Prologue/epilogue are
/// shared with [`band_temporal_gs2d`], so results stay bit-identical to
/// it and to [`band_scalar_gs2d`]; edge or narrow tiles fall back to the
/// scalar band. Panics without AVX2+FMA.
#[cfg(target_arch = "x86_64")]
pub fn band_temporal_gs2d_avx2(
    g: &mut Grid2<f64>,
    xl: usize,
    xr: usize,
    s: usize,
    kern: &crate::kernels::GsKern2d,
    sc: &mut BandScratch2d<4>,
) {
    use crate::kernels::GsKern2d;
    const VL: usize = 4;
    assert!(
        tempora_simd::arch::avx2_available(),
        "AVX2+FMA not available on this CPU"
    );
    assert!(
        s >= GsKern2d::MIN_STRIDE,
        "stride {s} illegal for this kernel"
    );
    let (nx, ny) = (g.nx(), g.ny());
    assert_eq!(sc.ny, ny, "scratch shape mismatch");
    if !crate::t1d_band::vector_band_shape::<VL>(xl, xr, nx, s) {
        band_scalar_gs2d(g, xl, xr, VL, kern);
        return;
    }
    let (x_start, x_max) = band_prologue2d::<VL, GsKern2d>(g, xl, xr, s, kern, sc);
    // SAFETY: availability asserted above.
    unsafe { imp::band_steady_gs2d_avx2(g, s, kern, sc, x_start, x_max) };
    band_epilogue2d::<VL, GsKern2d>(g, xr, s, kern, sc, x_max);
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::{BandScratch2d, Grid2, Pack};
    use crate::kernels::GsKern2d;
    use tempora_simd::arch::avx2;

    /// The AVX2 steady state of one skewed 2-D Gauss-Seidel band:
    /// identical algebra and iteration order to
    /// [`super::band_steady2d`].
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn band_steady_gs2d_avx2(
        g: &mut Grid2<f64>,
        s: usize,
        kern: &GsKern2d,
        sc: &mut BandScratch2d<4>,
        x_start: usize,
        x_max: usize,
    ) {
        const VL: usize = 4;
        let (ny, p) = (g.ny(), g.pitch());
        let bc = g.boundary().value();
        let a = g.data_mut();
        let rlen = s + 1;
        let cn = avx2::splat(kern.0.cn);
        let cw = avx2::splat(kern.0.cw);
        let cc = avx2::splat(kern.0.cc);
        let ce = avx2::splat(kern.0.ce);
        let cs = avx2::splat(kern.0.cs);
        // SAFETY: every unsafe op in the band steady-state loop is an
        // `arch::avx2` vocabulary call whose sole precondition is
        // AVX2/FMA availability — discharged by this fn's own
        // `#[target_feature(enable = "avx2,fma")]` caller contract. All
        // grid and ring accesses use checked slice indexing; the deepest
        // read `a[(x_max + VL·s)·p + y]` is in bounds because the band
        // shape check verified `x_max + VL·s ≤ nx + 1` before dispatch.
        unsafe {
            for x in x_start..=x_max {
                let i0 = x % rlen;
                let ip1 = (x + 1) % rlen;
                let ips = (x + s) % rlen;
                let mut wrow = core::mem::take(&mut sc.ring[ips]);
                {
                    let r0 = &sc.ring[i0];
                    let rp1 = &sc.ring[ip1];
                    let mut o_west = avx2::splat(bc); // O(x, 0): y-boundary
                    let mut m = avx2::from_pack(r0[1]);
                    for y in 1..=ny {
                        let e = avx2::from_pack(r0[y + 1]);
                        let sth = avx2::from_pack(rp1[y]);
                        let n_new = avx2::from_pack(sc.o_prev[y]);
                        // new_n·cn + (new_w·cw + (m·cc + (e·ce + s·cs))),
                        // the same fused tree as Gs2dCoeffs::apply.
                        let o = avx2::fmadd(
                            n_new,
                            cn,
                            avx2::fmadd(
                                o_west,
                                cw,
                                avx2::fmadd(m, cc, avx2::fmadd(e, ce, avx2::mul(sth, cs))),
                            ),
                        );
                        a[x * p + y] = avx2::extract_top(o);
                        let bottom = a[(x + VL * s) * p + y];
                        wrow[y] = avx2::to_pack(avx2::shift_up_insert(o, bottom));
                        sc.o_cur[y] = avx2::to_pack(o);
                        o_west = o;
                        m = e;
                    }
                    wrow[0] = Pack::splat(bc);
                    wrow[ny + 1] = Pack::splat(bc);
                }
                sc.ring[ips] = wrow;
                core::mem::swap(&mut sc.o_prev, &mut sc.o_cur);
                sc.o_cur[0] = Pack::splat(bc);
                sc.o_cur[ny + 1] = Pack::splat(bc);
            }
        }
    }
}

/// Scratch for the banded 2-D engine.
pub struct BandScratch2d<const VL: usize> {
    ring: Vec<Vec<Pack<f64, VL>>>,
    o_prev: Vec<Pack<f64, VL>>,
    o_cur: Vec<Pack<f64, VL>>,
    saved: Vec<Vec<f64>>,
    ny: usize,
}

impl<const VL: usize> BandScratch2d<VL> {
    /// Allocate scratch for stride `s` and inner extent `ny`.
    pub fn new(s: usize, ny: usize) -> Self {
        let w = ny + 2;
        BandScratch2d {
            ring: (0..s + 1).map(|_| vec![Pack::splat(0.0); w]).collect(),
            o_prev: vec![Pack::splat(0.0); w],
            o_cur: vec![Pack::splat(0.0); w],
            saved: (0..VL).map(|_| vec![0.0; w]).collect(),
            ny,
        }
    }
}

/// Decompose one band of height `VL` into skewed row-blocks of anchor
/// width `block` and execute them in ascending order.
pub fn band_sweep_gs2d<const VL: usize, K: Kernel2d<f64>>(
    g: &mut Grid2<f64>,
    block: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch2d<VL>,
    temporal: bool,
) {
    let nx = g.nx();
    let span = nx + VL - 1;
    let nblocks = span.div_ceil(block);
    for i in 0..nblocks {
        let xl = i * block + 1;
        let xr = ((i + 1) * block).min(span);
        if temporal {
            band_temporal_gs2d::<VL, K>(g, xl, xr, s, kern, sc);
        } else {
            band_scalar_gs2d(g, xl, xr, VL, kern);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::GsKern2d;
    use tempora_grid::{fill_random_2d, Boundary};
    use tempora_stencil::reference;
    use tempora_stencil::Gs2dCoeffs;

    fn run_banded(
        g: &Grid2<f64>,
        kern: &GsKern2d,
        steps: usize,
        block: usize,
        s: usize,
        temporal: bool,
    ) -> Grid2<f64> {
        const VL: usize = 4;
        let mut g = g.clone();
        let mut sc = BandScratch2d::<VL>::new(s, g.ny());
        for _ in 0..steps / VL {
            band_sweep_gs2d::<VL, _>(&mut g, block, s, kern, &mut sc, temporal);
        }
        for _ in 0..steps % VL {
            let (mut ra, mut rb) = (vec![0.0; g.ny() + 2], vec![0.0; g.ny() + 2]);
            crate::t2d::scalar_step_inplace(&mut g, kern, &mut ra, &mut rb);
        }
        g
    }

    #[test]
    fn scalar_banded_sweep_matches_reference() {
        let c = Gs2dCoeffs::classic(0.22);
        let kern = GsKern2d(c);
        for &(nx, ny, block) in &[(30usize, 9usize, 8usize), (48, 17, 16), (25, 6, 25)] {
            let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(0.2));
            fill_random_2d(&mut g, (nx * ny) as u64, -1.0, 1.0);
            let ours = run_banded(&g, &kern, 8, block, 2, false);
            let gold = reference::gs2d(&g, c, 8);
            assert!(
                ours.interior_eq(&gold),
                "nx={nx} block={block} diff {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    fn temporal_banded_sweep_matches_reference() {
        let c = Gs2dCoeffs::new(0.19, 0.23, 0.21, 0.17, 0.2);
        let kern = GsKern2d(c);
        for &(nx, ny, block, s) in &[
            (128usize, 10usize, 32usize, 2usize),
            (150, 7, 50, 3),
            (96, 16, 48, 2),
        ] {
            let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(-0.4));
            fill_random_2d(&mut g, (nx + ny) as u64, -1.0, 1.0);
            for steps in [4usize, 8, 10] {
                let ours = run_banded(&g, &kern, steps, block, s, true);
                let gold = reference::gs2d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} block={block} s={s} steps={steps} diff {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx2_band_matches_scalar_oracle_bitwise() {
        if !tempora_simd::arch::avx2_available() {
            return;
        }
        const VL: usize = 4;
        let c = Gs2dCoeffs::new(0.19, 0.23, 0.21, 0.17, 0.2);
        let kern = GsKern2d(c);
        for &(nx, ny, block, s) in &[
            (128usize, 10usize, 32usize, 2usize),
            (150, 7, 50, 3),
            (96, 16, 48, 2),
            (40, 8, 10, 2), // every tile narrow: pure scalar fallback
        ] {
            let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(-0.4));
            fill_random_2d(&mut g, (nx + ny) as u64, -1.0, 1.0);
            for steps in [4usize, 8, 10] {
                let mut ours = g.clone();
                let mut sc = BandScratch2d::<VL>::new(s, ny);
                let span = nx + VL - 1;
                for _ in 0..steps / VL {
                    for i in 0..span.div_ceil(block) {
                        let xl = i * block + 1;
                        let xr = ((i + 1) * block).min(span);
                        band_temporal_gs2d_avx2(&mut ours, xl, xr, s, &kern, &mut sc);
                    }
                }
                for _ in 0..steps % VL {
                    let (mut ra, mut rb) = (vec![0.0; ny + 2], vec![0.0; ny + 2]);
                    crate::t2d::scalar_step_inplace(&mut ours, &kern, &mut ra, &mut rb);
                }
                let gold = reference::gs2d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} block={block} s={s} steps={steps} diff {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn narrow_blocks_fall_back() {
        let c = Gs2dCoeffs::classic(0.15);
        let kern = GsKern2d(c);
        let mut g = Grid2::new(40, 8, 1, Boundary::Dirichlet(0.0));
        fill_random_2d(&mut g, 2, -1.0, 1.0);
        let ours = run_banded(&g, &kern, 8, 10, 2, true);
        let gold = reference::gs2d(&g, c, 8);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }
}
