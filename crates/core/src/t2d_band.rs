//! Skewed-band (parallelogram) execution of the 2-D Gauss-Seidel engine.
//!
//! The 2-D analogue of [`crate::t1d_band`]: parallelogram tiles lean left
//! along the **outer** dimension `x` (whole `y`-rows move as units), the
//! single in-place array carries the inter-tile staircase, and the
//! temporal vector algebra is unchanged from the rectangular engine
//! [`crate::t2d`] — only the prologue/steady/epilogue row ranges shift.
//!
//! Staircase invariants (per row, identical to the 1-D case): when a tile
//! anchored at rows `[xl, xr]` starts, rows `≥ xl` hold the band-base
//! level, row `xl-k` holds level `k`, and level `k`'s rightmost row read
//! of level `k-1` finds it intact because the windows shrink by one row
//! per level.

use crate::kernels::{Kernel2d, Nbhd};
use tempora_grid::Grid2;
use tempora_simd::Pack;

/// Scalar 2-D Gauss-Seidel row update over one row `x` (columns
/// `1..=ny`), in place.
#[inline]
fn gs_row<K: Kernel2d<f64>>(a: &mut [f64], x: usize, ny: usize, p: usize, kern: &K) {
    let r = x * p;
    for y in 1..=ny {
        let nb = Nbhd {
            v: [
                [0.0, 0.0, 0.0], // old north operands unused by GS kernels
                [0.0, a[r + y], a[r + y + 1]],
                [0.0, a[r + p + y], 0.0],
            ],
            new_n: a[r - p + y],
            new_w: a[r + y - 1],
        };
        a[r + y] = kern.scalar(nb);
    }
}

/// One scalar skewed band: advance levels `1..=vl` over row windows
/// `[xl-(k-1), xr-(k-1)] ∩ [1, nx]`, in place.
pub fn band_scalar_gs2d<K: Kernel2d<f64>>(
    g: &mut Grid2<f64>,
    xl: usize,
    xr: usize,
    vl: usize,
    kern: &K,
) {
    debug_assert!(K::IS_GS);
    let (nx, ny, p) = (g.nx(), g.ny(), g.pitch());
    let a = g.data_mut();
    for k in 1..=vl {
        let lo = xl.saturating_sub(k - 1).max(1);
        let hi = (xr + 1).saturating_sub(k).min(nx);
        for x in lo..=hi {
            gs_row(a, x, ny, p, kern);
        }
    }
}

/// One temporally vectorized skewed band (2-D Gauss-Seidel),
/// bit-identical to [`band_scalar_gs2d`]. Edge or narrow tiles fall back
/// to the scalar band.
pub fn band_temporal_gs2d<const VL: usize, K: Kernel2d<f64>>(
    g: &mut Grid2<f64>,
    xl: usize,
    xr: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch2d<VL>,
) {
    debug_assert!(K::IS_GS);
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    let (nx, ny, p) = (g.nx(), g.ny(), g.pitch());
    assert_eq!(sc.ny, ny, "scratch shape mismatch");
    let width = (xr + 1).saturating_sub(xl);
    if xl <= VL || xr > nx || width < (VL + 1) * s + VL {
        band_scalar_gs2d(g, xl, xr, VL, kern);
        return;
    }
    let bc = g.boundary().value();
    let a = g.data_mut();
    let x_start = xl - (VL - 1);
    let x_max = xr + 1 - VL * s;
    debug_assert!(x_max >= x_start);
    let w = ny + 2;

    // Prologue rows, stashing the row each pass is about to clobber.
    for k in 1..VL {
        sc.saved[k - 1][..w].copy_from_slice(&a[(x_start + (VL - k) * s) * p..][..w]);
        let lo = xl - (k - 1);
        let hi = x_start + (VL - k) * s;
        for x in lo..=hi {
            gs_row(a, x, ny, p, kern);
        }
    }

    // Initial ring rows V(x_start) ..= V(x_start+s) and O(x_start-1, ·).
    let rlen = s + 1;
    for (y, slot) in sc.ring[x_start % rlen].iter_mut().enumerate() {
        *slot = if y == 0 || y == ny + 1 {
            Pack::splat(bc)
        } else {
            Pack::from_fn(|i| {
                if i == VL - 1 {
                    a[x_start * p + y]
                } else {
                    sc.saved[i][y]
                }
            })
        };
    }
    for j in 1..=s {
        let x = x_start + j;
        for (y, slot) in sc.ring[x % rlen].iter_mut().enumerate() {
            *slot = if y == 0 || y == ny + 1 {
                Pack::splat(bc)
            } else {
                Pack::from_fn(|i| a[(x + (VL - 1 - i) * s) * p + y])
            };
        }
    }
    for (y, slot) in sc.o_prev.iter_mut().enumerate() {
        *slot = if y == 0 || y == ny + 1 {
            Pack::splat(bc)
        } else {
            Pack::from_fn(|i| a[(x_start - 1 + (VL - 1 - i) * s) * p + y])
        };
    }

    // Steady state (identical to the rectangular engine's inner loop).
    let zero = Pack::<f64, VL>::splat(0.0);
    for x in x_start..=x_max {
        let i0 = x % rlen;
        let ip1 = (x + 1) % rlen;
        let ips = (x + s) % rlen;
        let mut wrow = core::mem::take(&mut sc.ring[ips]);
        {
            let r0 = &sc.ring[i0];
            let rp1 = &sc.ring[ip1];
            let mut o_west = Pack::splat(bc);
            for y in 1..=ny {
                let nb = Nbhd {
                    v: [
                        [zero, zero, zero],
                        [r0[y - 1], r0[y], r0[y + 1]],
                        [zero, rp1[y], zero],
                    ],
                    new_n: sc.o_prev[y],
                    new_w: o_west,
                };
                let o = kern.pack(nb);
                a[x * p + y] = o.top();
                let bottom = a[(x + VL * s) * p + y];
                wrow[y] = o.shift_up_insert(bottom);
                sc.o_cur[y] = o;
                o_west = o;
            }
            // Halo packs of the produced row.
            wrow[0] = Pack::splat(bc);
            wrow[ny + 1] = Pack::splat(bc);
        }
        sc.ring[ips] = wrow;
        core::mem::swap(&mut sc.o_prev, &mut sc.o_cur);
        sc.o_cur[0] = Pack::splat(bc);
        sc.o_cur[ny + 1] = Pack::splat(bc);
    }

    // Epilogue: materialize register-resident levels into the staircase…
    for j in x_max + 1..=x_max + s {
        let src = &sc.ring[j % rlen];
        for i in 1..VL {
            let row = (j + (VL - 1 - i) * s) * p;
            for y in 1..=ny {
                a[row + y] = src[y].extract(i);
            }
        }
    }
    for i in 0..VL - 1 {
        let row = (x_max + (VL - 1 - i) * s) * p;
        for y in 1..=ny {
            a[row + y] = sc.o_prev[y].extract(i);
        }
    }
    // …then finish each level scalar.
    for k in 1..=VL {
        let lo = x_max + (VL - k) * s + 1;
        let hi = xr + 1 - k;
        for x in lo..=hi {
            gs_row(a, x, ny, p, kern);
        }
    }
}

/// Scratch for the banded 2-D engine.
pub struct BandScratch2d<const VL: usize> {
    ring: Vec<Vec<Pack<f64, VL>>>,
    o_prev: Vec<Pack<f64, VL>>,
    o_cur: Vec<Pack<f64, VL>>,
    saved: Vec<Vec<f64>>,
    ny: usize,
}

impl<const VL: usize> BandScratch2d<VL> {
    /// Allocate scratch for stride `s` and inner extent `ny`.
    pub fn new(s: usize, ny: usize) -> Self {
        let w = ny + 2;
        BandScratch2d {
            ring: (0..s + 1).map(|_| vec![Pack::splat(0.0); w]).collect(),
            o_prev: vec![Pack::splat(0.0); w],
            o_cur: vec![Pack::splat(0.0); w],
            saved: (0..VL).map(|_| vec![0.0; w]).collect(),
            ny,
        }
    }
}

/// Decompose one band of height `VL` into skewed row-blocks of anchor
/// width `block` and execute them in ascending order.
pub fn band_sweep_gs2d<const VL: usize, K: Kernel2d<f64>>(
    g: &mut Grid2<f64>,
    block: usize,
    s: usize,
    kern: &K,
    sc: &mut BandScratch2d<VL>,
    temporal: bool,
) {
    let nx = g.nx();
    let span = nx + VL - 1;
    let nblocks = span.div_ceil(block);
    for i in 0..nblocks {
        let xl = i * block + 1;
        let xr = ((i + 1) * block).min(span);
        if temporal {
            band_temporal_gs2d::<VL, K>(g, xl, xr, s, kern, sc);
        } else {
            band_scalar_gs2d(g, xl, xr, VL, kern);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::GsKern2d;
    use tempora_grid::{fill_random_2d, Boundary};
    use tempora_stencil::reference;
    use tempora_stencil::Gs2dCoeffs;

    fn run_banded(
        g: &Grid2<f64>,
        kern: &GsKern2d,
        steps: usize,
        block: usize,
        s: usize,
        temporal: bool,
    ) -> Grid2<f64> {
        const VL: usize = 4;
        let mut g = g.clone();
        let mut sc = BandScratch2d::<VL>::new(s, g.ny());
        for _ in 0..steps / VL {
            band_sweep_gs2d::<VL, _>(&mut g, block, s, kern, &mut sc, temporal);
        }
        for _ in 0..steps % VL {
            let (mut ra, mut rb) = (vec![0.0; g.ny() + 2], vec![0.0; g.ny() + 2]);
            crate::t2d::scalar_step_inplace(&mut g, kern, &mut ra, &mut rb);
        }
        g
    }

    #[test]
    fn scalar_banded_sweep_matches_reference() {
        let c = Gs2dCoeffs::classic(0.22);
        let kern = GsKern2d(c);
        for &(nx, ny, block) in &[(30usize, 9usize, 8usize), (48, 17, 16), (25, 6, 25)] {
            let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(0.2));
            fill_random_2d(&mut g, (nx * ny) as u64, -1.0, 1.0);
            let ours = run_banded(&g, &kern, 8, block, 2, false);
            let gold = reference::gs2d(&g, c, 8);
            assert!(
                ours.interior_eq(&gold),
                "nx={nx} block={block} diff {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    fn temporal_banded_sweep_matches_reference() {
        let c = Gs2dCoeffs::new(0.19, 0.23, 0.21, 0.17, 0.2);
        let kern = GsKern2d(c);
        for &(nx, ny, block, s) in &[
            (128usize, 10usize, 32usize, 2usize),
            (150, 7, 50, 3),
            (96, 16, 48, 2),
        ] {
            let mut g = Grid2::new(nx, ny, 1, Boundary::Dirichlet(-0.4));
            fill_random_2d(&mut g, (nx + ny) as u64, -1.0, 1.0);
            for steps in [4usize, 8, 10] {
                let ours = run_banded(&g, &kern, steps, block, s, true);
                let gold = reference::gs2d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "nx={nx} block={block} s={s} steps={steps} diff {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn narrow_blocks_fall_back() {
        let c = Gs2dCoeffs::classic(0.15);
        let kern = GsKern2d(c);
        let mut g = Grid2::new(40, 8, 1, Boundary::Dirichlet(0.0));
        fill_random_2d(&mut g, 2, -1.0, 1.0);
        let ours = run_banded(&g, &kern, 8, 10, 2, true);
        let gold = reference::gs2d(&g, c, 8);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }
}
