//! Temporal vectorization of one-dimensional stencils (paper §3.2,
//! Algorithm 3, generalized).
//!
//! # The scheme
//!
//! One *time tile* advances the whole grid from level `t` to level
//! `t + VL` (`VL` = vector length). Within the tile, the **input vector**
//! anchored at `x` packs one value from each level (lane `i` = level `i`):
//!
//! ```text
//! V(x) = (lane VL-1 .. lane 0) = ( a[t+VL-1][x], …, a[t+1][x+(VL-2)·s], a[t][x+(VL-1)·s] )
//! ```
//!
//! Applying the 3-point stencil to `V(x-1), V(x), V(x+1)` lane-wise yields
//! the **output vector** `O(x)` whose lane `i` is the level-`i+1` value at
//! `x + (VL-1-i)·s` — one fused update of `VL` different time levels. The
//! top lane `a[t+VL][x]` is the finished value and is stored; the rest
//! shift up one lane and absorb one fresh level-`t` element to become
//! `V(x+s)` (one `vrotate` + one `vblend`, the paper's constant
//! reorganization cost):
//!
//! ```text
//!   t+4 |    .  O₃ .  .  .  .  .  .  .        O(x) = S(V(x-1), V(x), V(x+1))
//!   t+3 |    .  V₃ .  O₂ .  .  .  .  .        V(x+s) = O(x) ⟰ a[t][x+4s]
//!   t+2 |    .  .  .  V₂ .  O₁ .  .  .        (s = 2, VL = 4)
//!   t+1 |    .  .  .  .  .  V₁ .  O₀ .
//!   t   |    .  .  .  .  .  .  .  V₀ ⬓
//!        ───────────────────────────────→ x
//! ```
//!
//! A triangular **prologue** pre-computes levels `1..VL` near the left
//! boundary scalar-wise (Algorithm 3 lines 2-4), the strided gather of
//! lines 5-7 assembles the initial `s+1` input vectors, the steady-state
//! loop runs `x = 1 ..= NX+1-VL·s`, and a triangular **epilogue** drains
//! the surviving ring vectors and finishes the right edge scalar-wise
//! (lines 16-22).
//!
//! # Gauss-Seidel
//!
//! For Gauss-Seidel stencils the newest-value west operand is lane-aligned
//! in the *previous output vector* (§3.4): `O(x) = S(O(x-1), V(x),
//! V(x+1))`. Everything else — prologue, production rule, epilogue — is
//! identical; this module implements both update kinds over the same
//! skeleton.
//!
//! # Single-array execution (§3.5)
//!
//! The sweep is **in place**: the store of `a[t+VL][x]` lands `VL·s` cells
//! behind every remaining level-`t` read, so one array serves as both
//! input and output and the memory traffic of Jacobi stencils halves.
//! Intermediate levels `1..VL` exist only in vector registers plus `O(s)`
//! scratch at the two boundaries, exactly as the paper prescribes.

use crate::kernels::Kernel1d;
use tempora_grid::Grid1;
use tempora_simd::count::{self, Op};
use tempora_simd::Pack;

/// Minimum interior size for the vector path of one tile; below this the
/// tile falls back to the scalar schedule (same results).
#[inline]
pub fn min_vector_n<const VL: usize>(s: usize) -> usize {
    VL * s
}

/// Scratch buffers for one sweep configuration, reusable across tiles.
///
/// Head plane `k` (1-based level) holds levels computed by the prologue
/// over `x ∈ 0 ..= (VL-k)·s` (entry 0 is the left boundary value); tail
/// plane `i` holds the level-`i` values surrounding the right edge,
/// re-based at `x_max + (VL-1-i)·s`.
pub struct Scratch1d<const VL: usize> {
    head: Vec<Vec<f64>>,
    tail: Vec<Vec<f64>>,
}

impl<const VL: usize> Scratch1d<VL> {
    /// Allocate scratch for stride `s`.
    pub fn new(s: usize) -> Self {
        let head = (0..VL).map(|k| vec![0.0; (VL - k) * s + 2]).collect();
        let tail = (0..VL).map(|i| vec![0.0; (i + 1) * s + 2]).collect();
        let _ = s;
        Scratch1d { head, tail }
    }
}

/// Advance `a` (interior `1..=n`, Dirichlet halos at `0` and `n+1`) by
/// `VL` time steps with the temporal-vectorized schedule.
///
/// `COUNT` enables reorganization-instruction accounting (see
/// [`tempora_simd::count`]); the counted variant is for analysis only.
///
/// # Panics
/// Panics if `s` is illegal for the kernel (`s < K::MIN_STRIDE`).
pub fn tile<const VL: usize, const COUNT: bool, K: Kernel1d>(
    a: &mut [f64],
    n: usize,
    kern: &K,
    s: usize,
    scratch: &mut Scratch1d<VL>,
) {
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    assert!(
        a.len() >= n + 2,
        "slice must include one halo cell per side"
    );
    if n < min_vector_n::<VL>(s) {
        // Degenerate tile: pure scalar schedule.
        for _ in 0..VL {
            scalar_step_inplace(a, n, kern);
        }
        return;
    }
    let (ring_init, x_max) = tile_prologue::<VL, K>(a, n, kern, s, scratch);
    let ring_len = s + 1;

    // For Gauss-Seidel: O(0), lane i = level i+1 at (VL-1-i)·s.
    let boundary_l = a[0];
    let mut o_prev = if K::IS_GS {
        gs_initial_output::<VL>(boundary_l, s, scratch)
    } else {
        Pack::splat(0.0)
    };

    // ------------------------------------------------------------------
    // Steady state (Algorithm 3 lines 8-15), in place. V(x-1) and V(x)
    // are carried in registers between iterations (vm1 ← v0 ← vp1); only
    // V(x+1) is loaded from the ring and only the produced V(x+s) is
    // stored back — one vector load + one vector store per output vector.
    // Ring indices are consecutive modulo ring_len, tracked incrementally
    // (no division in the hot loop); V(x+s) reuses the dead V(x-1) slot
    // ((x+s) ≡ (x-1) mod s+1).
    // ------------------------------------------------------------------
    let mut ring = ring_init;
    {
        let ring = &mut ring[..ring_len];
        let mut vm1 = ring[0];
        let mut v0 = ring[1 % ring_len];
        let mut ip1 = 2 % ring_len;
        let mut im1 = 0usize;
        for x in 1..=x_max {
            let vp1 = ring[ip1];
            let west = if K::IS_GS { o_prev } else { vm1 };
            let o = kern.pack::<VL>(west, v0, vp1);
            if COUNT {
                count::record_output(1);
            }
            // Store the finished top lane a[t+VL][x] (line 12)…
            a[x] = o.top();
            // …and produce V(x+s) = shift-up + fresh bottom (lines 13-14).
            let bottom = a[x + VL * s];
            ring[im1] = o.shift_up_insert(bottom);
            if COUNT {
                count::record(Op::ScalarExtract, 1);
                count::record(Op::CrossLane, 1); // vrotate
                count::record(Op::InLane, 1); // vblend
                count::record(Op::ScalarInsert, 1);
            }
            if K::IS_GS {
                o_prev = o;
            }
            vm1 = v0;
            v0 = vp1;
            im1 = if im1 + 1 == ring_len { 0 } else { im1 + 1 };
            ip1 = if ip1 + 1 == ring_len { 0 } else { ip1 + 1 };
        }
    }

    tile_epilogue::<VL, K>(a, n, kern, s, scratch, &ring, x_max);
}

/// Like [`tile`], but with the paper's **batched top/bottom vectors**
/// (§3.2): "the values at the highest position of the output vectors in
/// every four continuous iterations of the innermost loop are assembled
/// in one top vector and written to memory with a vector-storing
/// instruction", and symmetrically one vector load of `VL` contiguous
/// level-0 values feeds the blends of `VL` produced input vectors.
///
/// Numerically identical to [`tile`] (the batching only defers the
/// finished-value stores to the end of each group, which is safe because
/// every in-group read sits `VL·s > VL` cells ahead of the deferred
/// stores). The accounting matches the paper's §3.2 budget: per group of
/// `VL` output vectors, `VL` lane-crossing rotates + 5 top-batch + 5
/// bottom-batch in-lane operations — `1 + 10/VL = 3.5` reorganizations
/// per output vector at `VL = 4`.
pub fn tile_batched<const VL: usize, const COUNT: bool, K: Kernel1d>(
    a: &mut [f64],
    n: usize,
    kern: &K,
    s: usize,
    scratch: &mut Scratch1d<VL>,
) {
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    assert!(
        a.len() >= n + 2,
        "slice must include one halo cell per side"
    );
    if n < min_vector_n::<VL>(s) {
        for _ in 0..VL {
            scalar_step_inplace(a, n, kern);
        }
        return;
    }
    let (mut ring, x_max) = tile_prologue::<VL, K>(a, n, kern, s, scratch);
    let ring_len = s + 1;

    let boundary_l = a[0];
    let mut o_prev = if K::IS_GS {
        gs_initial_output::<VL>(boundary_l, s, scratch)
    } else {
        Pack::splat(0.0)
    };

    {
        let ring = &mut ring[..ring_len];
        let mut x = 1usize;
        // Grouped steady state: VL iterations per trip.
        while x + VL - 1 <= x_max {
            // One vector load covers the group's bottom elements
            // (contiguous level-0 values, untouched by the deferred
            // stores below since x + VL·s > x + VL - 1).
            let vbottom = Pack::<f64, VL>::load(a, x + VL * s);
            let mut vtop = Pack::<f64, VL>::splat(0.0);
            for k in 0..VL {
                let xi = x + k;
                let im1 = (xi + ring_len - 1) % ring_len;
                let vm1 = ring[im1];
                let v0 = ring[xi % ring_len];
                let vp1 = ring[(xi + 1) % ring_len];
                let west = if K::IS_GS { o_prev } else { vm1 };
                let o = kern.pack::<VL>(west, v0, vp1);
                vtop[k] = o.top();
                ring[im1] = o.shift_up_insert(vbottom.extract(k));
                if K::IS_GS {
                    o_prev = o;
                }
            }
            // One vector store retires the group's finished values.
            vtop.store(a, x);
            if COUNT {
                count::record_output(VL as u64);
                count::record(Op::CrossLane, VL as u64); // vrotate per vector
                count::record(Op::InLane, 10); // 5 top-batch + 5 bottom-batch
                count::record(Op::VecLoad, 1);
                count::record(Op::VecStore, 1);
            }
            x += VL;
        }
        // Ungrouped tail of the steady state.
        for x in x..=x_max {
            let im1 = (x + ring_len - 1) % ring_len;
            let vm1 = ring[im1];
            let v0 = ring[x % ring_len];
            let vp1 = ring[(x + 1) % ring_len];
            let west = if K::IS_GS { o_prev } else { vm1 };
            let o = kern.pack::<VL>(west, v0, vp1);
            if COUNT {
                count::record_output(1);
                count::record(Op::CrossLane, 1);
                count::record(Op::InLane, 1);
                count::record(Op::ScalarExtract, 1);
                count::record(Op::ScalarInsert, 1);
            }
            a[x] = o.top();
            let bottom = a[x + VL * s];
            ring[im1] = o.shift_up_insert(bottom);
            if K::IS_GS {
                o_prev = o;
            }
        }
    }

    tile_epilogue::<VL, K>(a, n, kern, s, scratch, &ring, x_max);
}

/// [`run`] with the batched-vector steady state of [`tile_batched`].
pub fn run_batched<const VL: usize, K: Kernel1d>(
    grid: &Grid1<f64>,
    kern: &K,
    steps: usize,
    s: usize,
) -> Grid1<f64> {
    assert_eq!(grid.halo(), 1, "temporal engines use halo width 1");
    let mut g = grid.clone();
    let n = g.n();
    let mut scratch = Scratch1d::<VL>::new(s);
    let a = g.data_mut();
    for _ in 0..steps / VL {
        tile_batched::<VL, false, K>(a, n, kern, s, &mut scratch);
    }
    for _ in 0..steps % VL {
        scalar_step_inplace(a, n, kern);
    }
    g
}

/// Counted variant of [`run_batched`] for the §3.2 reorganization-budget
/// ablation.
pub fn run_batched_counted<const VL: usize, K: Kernel1d>(
    grid: &Grid1<f64>,
    kern: &K,
    steps: usize,
    s: usize,
) -> Grid1<f64> {
    assert_eq!(grid.halo(), 1, "temporal engines use halo width 1");
    let mut g = grid.clone();
    let n = g.n();
    let mut scratch = Scratch1d::<VL>::new(s);
    let a = g.data_mut();
    for _ in 0..steps / VL {
        tile_batched::<VL, true, K>(a, n, kern, s, &mut scratch);
    }
    for _ in 0..steps % VL {
        scalar_step_inplace(a, n, kern);
    }
    g
}

/// Ring capacity of the phase API (supports strides up to 16).
pub const RING_CAP: usize = 17;

/// The initial Gauss-Seidel output vector `O(0)` — lane `i` holds the
/// level-`i+1` value at `x = (VL-1-i)·s` (boundary value in the top lane)
/// — assembled from the prologue's head planes. Shared by the portable
/// steady states and the arch-specialized ones (see `t1d_avx2`), so every
/// engine seeds the §3.4 recurrence identically.
pub fn gs_initial_output<const VL: usize>(
    boundary_l: f64,
    s: usize,
    scratch: &Scratch1d<VL>,
) -> Pack<f64, VL> {
    Pack::from_fn(|i| {
        let x = (VL - 1 - i) * s;
        if i == VL - 1 {
            boundary_l
        } else {
            scratch.head[i + 1][x]
        }
    })
}

/// Phase 1 of a temporal tile: scalar prologue triangles plus the strided
/// gather of the initial input vectors `V(0) ..= V(s)` (Algorithm 3 lines
/// 2-7). Returns the initial ring (slot `j % (s+1)` holds `V(j)`) and the
/// steady-state bound `x_max`.
///
/// Exposed so arch-specialized steady states (see `t1d_avx2`) can share
/// the exact boundary machinery of the portable engine.
pub fn tile_prologue<const VL: usize, K: Kernel1d>(
    a: &mut [f64],
    n: usize,
    kern: &K,
    s: usize,
    scratch: &mut Scratch1d<VL>,
) -> ([Pack<f64, VL>; RING_CAP], usize) {
    debug_assert!(n >= min_vector_n::<VL>(s));
    debug_assert!(scratch.head.len() >= VL);
    assert!(s < RING_CAP, "stride too large for the ring capacity");
    let boundary_l = a[0];
    let x_max = n + 1 - VL * s;

    // Prologue: levels k = 1..VL-1 over x ∈ 1..=(VL-k)·s, scalar.
    // head[k][x] = a[t+k][x]; head[0] is not used (level 0 lives in `a`).
    for k in 1..VL {
        let hi = (VL - k) * s;
        // Split so we can read head[k-1] while writing head[k].
        let (lo_planes, hi_planes) = scratch.head.split_at_mut(k);
        let plane = &mut hi_planes[0];
        plane[0] = boundary_l;
        if k == 1 {
            for x in 1..=hi {
                plane[x] = kern.scalar(plane[x - 1], a[x - 1], a[x], a[x + 1]);
            }
        } else {
            let below = &lo_planes[k - 1];
            for x in 1..=hi {
                plane[x] = kern.scalar(plane[x - 1], below[x - 1], below[x], below[x + 1]);
            }
        }
    }

    // Initial input vectors V(0) ..= V(s) (Algorithm 3 lines 5-7):
    // lane i of V(j) = level i at x = j + (VL-1-i)·s.
    let ring_len = s + 1;
    let mut ring = [Pack::<f64, VL>::splat(0.0); RING_CAP];
    for j in 0..=s {
        let v = Pack::<f64, VL>::from_fn(|i| {
            let x = j + (VL - 1 - i) * s;
            if i == 0 {
                a[x]
            } else if x == 0 {
                boundary_l
            } else {
                scratch.head[i][x]
            }
        });
        // Off the hot path: records only into an active counting session.
        count::record(Op::Gather, 1);
        ring[j % ring_len] = v;
    }
    (ring, x_max)
}

/// Phase 3 of a temporal tile: drain the surviving ring into the tail
/// planes and finish every level scalar-wise up to `x = n` (Algorithm 3
/// lines 16-22). `ring` must hold `V(j)` at slot `j % (s+1)` for
/// `j ∈ x_max ..= x_max+s`, as left behind by the steady state.
pub fn tile_epilogue<const VL: usize, K: Kernel1d>(
    a: &mut [f64],
    n: usize,
    kern: &K,
    s: usize,
    scratch: &mut Scratch1d<VL>,
    ring: &[Pack<f64, VL>],
    x_max: usize,
) {
    let ring_len = s + 1;
    let boundary_r = a[n + 1];
    for i in 1..VL {
        let base = x_max + (VL - 1 - i) * s;
        // Extract the s+1 surviving lane values of level i.
        for j in x_max..=x_max + s {
            let v = ring[j % ring_len];
            scratch.tail[i][j + (VL - 1 - i) * s - base] = v.extract(i);
        }
        // Scalar completion of level i over x ∈ base+s+1 ..= n, reading
        // level i-1 from tail[i-1] (or `a` when i == 1).
        let done_hi = base + s; // = x_max + (VL-i)·s
        let (lo_planes, hi_planes) = scratch.tail.split_at_mut(i);
        let plane = &mut hi_planes[0];
        for x in done_hi + 1..=n {
            let rel = x - base;
            let (bm1, b0, bp1) = if i == 1 {
                (a[x - 1], a[x], a[x + 1])
            } else {
                let below = &lo_planes[i - 1];
                let bb = x - (base + s); // base_{i-1} = base + s
                (below[bb - 1], below[bb], below[bb + 1])
            };
            let west = plane[rel - 1];
            plane[rel] = kern.scalar(west, bm1, b0, bp1);
        }
        // Right halo of the plane.
        let rel_halo = n + 1 - base;
        scratch.tail[i][rel_halo] = boundary_r;
    }

    // Final level VL over x ∈ x_max+1 ..= n, writing into `a`.
    {
        let base = x_max; // base of tail[VL-1]
        let below = &scratch.tail[VL - 1];
        for x in x_max + 1..=n {
            let rel = x - base;
            let west = a[x - 1]; // already level VL (GS) — unused for Jacobi
            a[x] = kern.scalar(west, below[rel - 1], below[rel], below[rel + 1]);
        }
    }
}

/// One in-place scalar time step (used for degenerate tiles and for the
/// `T mod VL` remainder steps). Bit-identical to the double-buffered
/// reference: for Jacobi the old west value is carried in a register so a
/// single array suffices; for Gauss-Seidel in-place *is* the definition.
pub fn scalar_step_inplace<K: Kernel1d>(a: &mut [f64], n: usize, kern: &K) {
    if K::IS_GS {
        for x in 1..=n {
            a[x] = kern.scalar(a[x - 1], a[x - 1], a[x], a[x + 1]);
        }
    } else {
        let mut prev = a[0];
        for x in 1..=n {
            let cur = a[x];
            a[x] = kern.scalar(prev, prev, cur, a[x + 1]);
            prev = cur;
        }
    }
}

/// Run `steps` time steps of a 1-D stencil with the temporal-vectorized
/// schedule (vector length `VL`), returning the final grid.
///
/// Full tiles of height `VL` run vectorized; the `steps mod VL` remainder
/// runs scalar. Results are bit-identical to the scalar reference.
pub fn run<const VL: usize, K: Kernel1d>(
    grid: &Grid1<f64>,
    kern: &K,
    steps: usize,
    s: usize,
) -> Grid1<f64> {
    assert_eq!(grid.halo(), 1, "temporal engines use halo width 1");
    let mut g = grid.clone();
    let n = g.n();
    let mut scratch = Scratch1d::<VL>::new(s);
    let tiles = steps / VL;
    let a = g.data_mut();
    for _ in 0..tiles {
        tile::<VL, false, K>(a, n, kern, s, &mut scratch);
    }
    for _ in 0..steps % VL {
        scalar_step_inplace(a, n, kern);
    }
    g
}

/// Counted variant of [`run`]: identical numerics, but every
/// data-reorganization operation of the steady state is recorded in the
/// active [`tempora_simd::count::Session`].
pub fn run_counted<const VL: usize, K: Kernel1d>(
    grid: &Grid1<f64>,
    kern: &K,
    steps: usize,
    s: usize,
) -> Grid1<f64> {
    assert_eq!(grid.halo(), 1, "temporal engines use halo width 1");
    let mut g = grid.clone();
    let n = g.n();
    let mut scratch = Scratch1d::<VL>::new(s);
    let tiles = steps / VL;
    let a = g.data_mut();
    for _ in 0..tiles {
        tile::<VL, true, K>(a, n, kern, s, &mut scratch);
    }
    for _ in 0..steps % VL {
        scalar_step_inplace(a, n, kern);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{GsKern1d, JacobiKern1d};
    use tempora_grid::{fill_random_1d, Boundary};
    use tempora_stencil::reference;
    use tempora_stencil::{Gs1dCoeffs, Heat1dCoeffs};

    fn random_grid(n: usize, seed: u64, b: f64) -> Grid1<f64> {
        let mut g = Grid1::new(n, 1, Boundary::Dirichlet(b));
        fill_random_1d(&mut g, seed, -1.0, 1.0);
        g
    }

    #[test]
    fn jacobi_single_tile_matches_reference() {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        for &n in &[8usize, 9, 16, 31, 64, 100, 127] {
            for s in 2..=7 {
                let g = random_grid(n, 42 + n as u64, 0.5);
                let ours = run::<4, _>(&g, &kern, 4, s);
                let gold = reference::heat1d(&g, c, 4);
                assert!(
                    ours.interior_eq(&gold),
                    "n={n} s={s} first diff: {:?}",
                    ours.first_diff(&gold)
                );
                ours.check_canaries().unwrap();
            }
        }
    }

    #[test]
    fn jacobi_many_steps_and_remainders() {
        let c = Heat1dCoeffs::classic(0.2);
        let kern = JacobiKern1d(c);
        for steps in [0usize, 1, 2, 3, 4, 5, 7, 8, 12, 13, 29] {
            let g = random_grid(61, 7, -0.25);
            let ours = run::<4, _>(&g, &kern, steps, 3);
            let gold = reference::heat1d(&g, c, steps);
            assert!(
                ours.interior_eq(&gold),
                "steps={steps} diff {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    fn jacobi_tiny_grids_fall_back_to_scalar() {
        let c = Heat1dCoeffs::classic(0.3);
        let kern = JacobiKern1d(c);
        for n in 1..=16 {
            let g = random_grid(n, n as u64, 1.0);
            let ours = run::<4, _>(&g, &kern, 8, 4); // needs n >= 16 for vector path
            let gold = reference::heat1d(&g, c, 8);
            assert!(ours.interior_eq(&gold), "n={n}");
        }
    }

    #[test]
    fn jacobi_vl8_matches_reference() {
        // The engine is generic over vector length: VL = 8 models an
        // AVX-512-width register.
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        for &n in &[32usize, 57, 96] {
            let g = random_grid(n, 3, 0.0);
            let ours = run::<8, _>(&g, &kern, 16, 2);
            let gold = reference::heat1d(&g, c, 16);
            assert!(
                ours.interior_eq(&gold),
                "n={n} {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    fn gs_single_tile_matches_reference() {
        let c = Gs1dCoeffs::classic(0.25);
        let kern = GsKern1d(c);
        for &n in &[8usize, 15, 33, 64, 101] {
            for s in 2..=7 {
                let g = random_grid(n, 100 + n as u64, 0.25);
                let ours = run::<4, _>(&g, &kern, 4, s);
                let gold = reference::gs1d(&g, c, 4);
                assert!(
                    ours.interior_eq(&gold),
                    "n={n} s={s} diff {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn gs_many_steps_matches_reference() {
        let c = Gs1dCoeffs::new(0.4, 0.35, 0.25);
        let kern = GsKern1d(c);
        for steps in [1usize, 4, 6, 8, 11, 20] {
            let g = random_grid(77, 9, -1.0);
            let ours = run::<4, _>(&g, &kern, steps, 7); // the paper's s = 7
            let gold = reference::gs1d(&g, c, steps);
            assert!(
                ours.interior_eq(&gold),
                "steps={steps} diff {:?}",
                ours.first_diff(&gold)
            );
        }
    }

    #[test]
    #[should_panic(expected = "illegal")]
    fn illegal_stride_panics() {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let g = random_grid(64, 1, 0.0);
        let _ = run::<4, _>(&g, &kern, 4, 1);
    }

    #[test]
    fn nonzero_boundary_is_respected() {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let g = random_grid(40, 5, 2.5);
        let ours = run::<4, _>(&g, &kern, 12, 2);
        let gold = reference::heat1d(&g, c, 12);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
        // Halo cells must still hold the boundary value.
        assert_eq!(ours.get(0), 2.5);
        assert_eq!(ours.get(41), 2.5);
    }

    #[test]
    fn batched_variant_matches_reference_bitwise() {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        for &n in &[16usize, 61, 200, 1000] {
            for s in 2..=7 {
                for steps in [4usize, 8, 13] {
                    let g = random_grid(n, (n + s + steps) as u64, 0.2);
                    let ours = run_batched::<4, _>(&g, &kern, steps, s);
                    let gold = reference::heat1d(&g, c, steps);
                    assert!(
                        ours.interior_eq(&gold),
                        "n={n} s={s} steps={steps} {:?}",
                        ours.first_diff(&gold)
                    );
                }
            }
        }
        // Gauss-Seidel through the batched path as well.
        let cg = Gs1dCoeffs::classic(0.3);
        let kg = GsKern1d(cg);
        let g = random_grid(333, 5, -0.5);
        let ours = run_batched::<4, _>(&g, &kg, 12, 7);
        let gold = reference::gs1d(&g, cg, 12);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }

    #[test]
    fn batched_budget_matches_paper_3_5_per_output() {
        // §3.2: 1 rotate + 10/4 batch operations = 3.5 reorganizations
        // per output vector.
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let g = random_grid(4096, 3, 0.0);
        let session = tempora_simd::count::Session::start();
        let _ = run_batched_counted::<4, _>(&g, &kern, 4, 7);
        let counts = session.finish();
        assert!(counts.output_vectors > 500);
        let per_output = counts.reorg_per_output();
        assert!(
            (per_output - 3.5).abs() < 0.05,
            "expected ~3.5 reorg/output, got {per_output}"
        );
        // And the batching turns most scalar element traffic into full
        // vector loads/stores.
        assert!(counts.vec_load > 0 && counts.vec_store > 0);
        assert!(counts.scalar_extract < counts.output_vectors / 16);
    }

    #[test]
    fn counted_run_reports_constant_reorg_per_output() {
        let c = Heat1dCoeffs::classic(0.25);
        let kern = JacobiKern1d(c);
        let g = random_grid(4096, 11, 0.0);
        let session = tempora_simd::count::Session::start();
        let _ = run_counted::<4, _>(&g, &kern, 4, 7);
        let counts = session.finish();
        assert!(counts.output_vectors > 0);
        // Per-iteration production rule: exactly 1 lane-crossing rotate
        // and 1 in-lane blend per output vector, independent of n and s —
        // the paper's "small fixed number".
        assert_eq!(counts.cross_lane, counts.output_vectors);
        assert_eq!(counts.in_lane, counts.output_vectors);
        // Gathers only at tile start: s+1 = 8.
        assert_eq!(counts.gather, 8);
    }
}
