//! Skewed-band (parallelogram) execution of the 1-D Gauss-Seidel engine —
//! the building block of the paper's parallel GS runs (§3.4:
//! "we utilize parallelogram tiling for all space dimensions").
//!
//! # Geometry and staircase invariants
//!
//! A *band* advances `VL` time levels. Under parallelogram tiling with
//! slope −1, the tile anchored at `[xl, xr]` (its level-1 window) updates,
//! at local level `k ∈ 1..=VL`, the window `x ∈ [xl-(k-1), xr-(k-1)]`
//! (clamped to the domain `[1, n]`) — a parallelogram leaning left in
//! `(t, x)` space. Executing the blocks of one band in ascending `x`
//! order (bands pipelined in wavefront order, see `tempora-tiling`)
//! maintains the **staircase invariant** on the single in-place array:
//!
//! * when a tile starts, every position `p ≥ xl` still holds the
//!   band-base level `t`;
//! * position `xl-k` (left of the tile) holds level `t+k` — exactly the
//!   *newest* west operand level `k` needs at its window edge;
//! * inside the tile, position `xr-k+2` holds level `t+k-1` when level
//!   `k`'s rightmost point reads it — the *old* east operand — because
//!   level `k`'s window stops one short of level `k-1`'s.
//!
//! No halo buffers are exchanged: the array itself carries every
//! inter-tile value. This module provides the scalar banded executor
//! (also the oracle) and the temporally vectorized one; the vector
//! algebra is *identical* to the rectangular engine — the skew only
//! re-shapes the prologue/steady/epilogue ranges, which is the paper's
//! point that the scheme composes with blocking by "only changing the
//! loop boundary conditions".

use crate::kernels::Kernel1d;
use tempora_simd::Pack;

/// Ring capacity of the banded executors.
const RING_CAP: usize = 17;

/// Maximum space stride the banded executors support (ring capacity
/// minus the produced slot).
pub const MAX_BAND_STRIDE: usize = RING_CAP - 1;

/// True when the skewed tile anchored at `[xl, xr]` hosts the vector
/// steady state: interior (`xl > VL`, `xr ≤ n`) and wide enough for the
/// prologue triangles plus at least one steady-state column. Edge or
/// narrow tiles run the scalar band instead (identical results). Shared
/// with the 2-D/3-D banded executors and with the tiling layer's
/// engine-resolution honesty check.
#[inline]
pub fn vector_band_shape<const VL: usize>(xl: usize, xr: usize, n: usize, s: usize) -> bool {
    let width = (xr + 1).saturating_sub(xl);
    xl > VL && xr <= n && width >= (VL + 1) * s + VL
}

/// One scalar skewed band: advance levels `1..=vl` over the shifting
/// windows `[xl-(k-1), xr-(k-1)] ∩ [1, n]`, in place.
pub fn band_scalar_gs<K: Kernel1d>(
    a: &mut [f64],
    xl: usize,
    xr: usize,
    vl: usize,
    n: usize,
    kern: &K,
) {
    debug_assert!(K::IS_GS, "banded skewed execution is for Gauss-Seidel");
    for k in 1..=vl {
        let lo = xl.saturating_sub(k - 1).max(1);
        let hi = (xr + 1).saturating_sub(k).min(n);
        for x in lo..=hi {
            a[x] = kern.scalar(a[x - 1], a[x - 1], a[x], a[x + 1]);
        }
    }
}

/// One temporally vectorized skewed band (Gauss-Seidel), bit-identical to
/// [`band_scalar_gs`].
///
/// Interior tiles (`xl > VL`, `xr ≤ n`, width large enough) run the
/// vector schedule; domain-edge or narrow tiles fall back to the scalar
/// band (identical results).
pub fn band_temporal_gs<const VL: usize, K: Kernel1d>(
    a: &mut [f64],
    xl: usize,
    xr: usize,
    n: usize,
    s: usize,
    kern: &K,
) {
    debug_assert!(K::IS_GS);
    assert!(s >= K::MIN_STRIDE, "stride {s} illegal for this kernel");
    if !vector_band_shape::<VL>(xl, xr, n, s) {
        band_scalar_gs(a, xl, xr, VL, n, kern);
        return;
    }
    let (mut ring, mut o_prev, x_start, x_max) = band_prologue::<VL, K>(a, xl, xr, s, kern);

    // ------------------------------------------------------------------
    // Steady state — identical algebra to the rectangular engine; only
    // the finished top lane touches the array.
    // ------------------------------------------------------------------
    let rlen = s + 1;
    for x in x_start..=x_max {
        let v0 = ring[x % rlen];
        let vp1 = ring[(x + 1) % rlen];
        let o = kern.pack::<VL>(o_prev, v0, vp1);
        a[x] = o.top();
        let bottom = a[x + VL * s];
        // V(x+s) replaces the dead V(x-1) slot ((x+s) ≡ x-1 mod s+1).
        ring[(x + s) % rlen] = o.shift_up_insert(bottom);
        o_prev = o;
    }

    band_epilogue::<VL, K>(a, xr, s, kern, &ring, o_prev, x_max);
}

/// Phase 1 of a temporal band: the scalar prologue triangles plus the
/// initial ring `V(x_start) ..= V(x_start+s)` and the previous output
/// vector `O(x_start-1)`. Returns `(ring, o_prev, x_start, x_max)`; ring
/// slot `j % (s+1)` holds `V(j)`. Shared by the portable steady state and
/// the AVX2 one ([`band_temporal_gs_avx2`]), so both bands seed the §3.4
/// recurrence identically. Callers must have checked
/// [`vector_band_shape`].
fn band_prologue<const VL: usize, K: Kernel1d>(
    a: &mut [f64],
    xl: usize,
    xr: usize,
    s: usize,
    kern: &K,
) -> ([Pack<f64, VL>; RING_CAP], Pack<f64, VL>, usize, usize) {
    // Steady-state anchors: O(x) lane i writes level i+1 at
    // x + (VL-1-i)·s; lane VL-1 binds the left end (x ≥ xl-(VL-1)) and
    // the bottom fill x + VL·s ≤ xr+1 binds the right end.
    let x_start = xl - (VL - 1);
    let x_max = xr + 1 - VL * s;
    debug_assert!(x_max >= x_start);

    // ------------------------------------------------------------------
    // Prologue: level k scalar over [xl-(k-1), x_start+(VL-k)·s], the
    // prefix the initial gather below needs. In-place reads are valid by
    // the staircase invariants (see module docs) — with one exception:
    // the *last* write of pass k lands on x_start+(VL-k)·s, which still
    // holds the level-(k-1) value that lane k-1 of V(x_start) needs, so
    // that value is stashed in `saved` just before each pass.
    // ------------------------------------------------------------------
    let mut saved = [0.0f64; MAX_BAND_STRIDE];
    assert!(VL <= saved.len());
    for k in 1..VL {
        saved[k - 1] = a[x_start + (VL - k) * s];
        let lo = xl - (k - 1);
        let hi = x_start + (VL - k) * s;
        for x in lo..=hi {
            a[x] = kern.scalar(a[x - 1], a[x - 1], a[x], a[x + 1]);
        }
    }

    // ------------------------------------------------------------------
    // Initial ring V(x_start) ..= V(x_start+s) and O(x_start-1), gathered
    // from the in-place staircase (plus the stashed values for the first
    // vector): every lane value is the most recent surviving write.
    // ------------------------------------------------------------------
    let rlen = s + 1;
    let mut ring = [Pack::<f64, VL>::splat(0.0); RING_CAP];
    assert!(rlen <= ring.len());
    ring[x_start % rlen] = Pack::from_fn(|i| {
        if i == VL - 1 {
            a[x_start] // staircase: holds level VL-1 from the left tile
        } else {
            saved[i] // level i at x_start + (VL-1-i)·s, pre-clobber
        }
    });
    for j in 1..=s {
        let x = x_start + j;
        ring[x % rlen] = Pack::from_fn(|i| a[x + (VL - 1 - i) * s]);
    }
    let o_prev = Pack::<f64, VL>::from_fn(|i| a[x_start - 1 + (VL - 1 - i) * s]);
    (ring, o_prev, x_start, x_max)
}

/// Phase 3 of a temporal band: materialize the register-resident levels
/// back into the array staircase, then finish each level scalar,
/// ascending. `ring` must hold `V(j)` at slot `j % (s+1)` for
/// `j ∈ x_max ..= x_max+s` and `o_prev` must be `O(x_max)`, as left
/// behind by the steady state.
fn band_epilogue<const VL: usize, K: Kernel1d>(
    a: &mut [f64],
    xr: usize,
    s: usize,
    kern: &K,
    ring: &[Pack<f64, VL>],
    o_prev: Pack<f64, VL>,
    x_max: usize,
) {
    let rlen = s + 1;
    for j in x_max + 1..=x_max + s {
        let v = ring[j % rlen];
        for i in 1..VL {
            a[j + (VL - 1 - i) * s] = v.extract(i);
        }
    }
    // O(x_max): lane i = level i+1 at x_max + (VL-1-i)·s (lane VL-1, the
    // level-VL value at x_max, is already in the array).
    for i in 0..VL - 1 {
        a[x_max + (VL - 1 - i) * s] = o_prev.extract(i);
    }

    // Scalar completion: level k resumes right after the vector frontier
    // x_max + (VL-k)·s and runs to its window end xr+1-k.
    for k in 1..=VL {
        let lo = x_max + (VL - k) * s + 1;
        let hi = xr + 1 - k;
        for x in lo..=hi {
            a[x] = kern.scalar(a[x - 1], a[x - 1], a[x], a[x + 1]);
        }
    }
}

/// One temporally vectorized skewed band with the hand-scheduled AVX2
/// steady state — the same `vfmadd231pd` + `vpermpd` + `vblendpd`
/// scheduling as `crate::t1d_avx2`, with the previous *output* vector fed
/// back as the newest-west operand from a register (§3.4). Prologue and
/// epilogue are shared with [`band_temporal_gs`], so results stay
/// bit-identical to it and to [`band_scalar_gs`]; edge or narrow tiles
/// fall back to the scalar band. Panics without AVX2+FMA.
#[cfg(target_arch = "x86_64")]
pub fn band_temporal_gs_avx2(
    a: &mut [f64],
    xl: usize,
    xr: usize,
    n: usize,
    s: usize,
    kern: &crate::kernels::GsKern1d,
) {
    use crate::kernels::GsKern1d;
    const VL: usize = 4;
    assert!(
        tempora_simd::arch::avx2_available(),
        "AVX2+FMA not available on this CPU"
    );
    assert!(
        (GsKern1d::MIN_STRIDE..=MAX_BAND_STRIDE).contains(&s),
        "stride {s} illegal for the banded AVX2 executor"
    );
    if !vector_band_shape::<VL>(xl, xr, n, s) {
        band_scalar_gs(a, xl, xr, VL, n, kern);
        return;
    }
    let (ring, o_prev, x_start, x_max) = band_prologue::<VL, GsKern1d>(a, xl, xr, s, kern);
    // SAFETY: availability asserted above.
    let (ring, o_prev) =
        unsafe { imp::band_steady_gs_avx2(a, s, kern, &ring, o_prev, x_start, x_max) };
    band_epilogue::<VL, GsKern1d>(a, xr, s, kern, &ring, o_prev, x_max);
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::{Pack, MAX_BAND_STRIDE, RING_CAP};
    use crate::kernels::GsKern1d;
    use tempora_simd::arch::avx2;

    /// The AVX2 steady state of one skewed Gauss-Seidel band: identical
    /// algebra and iteration order to the portable loop in
    /// [`super::band_temporal_gs`], with the ring kept in `__m256d`
    /// registers and incremental ring indices. Returns the surviving ring
    /// and `O(x_max)` for the shared epilogue.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn band_steady_gs_avx2(
        a: &mut [f64],
        s: usize,
        kern: &GsKern1d,
        ring_init: &[Pack<f64, 4>; RING_CAP],
        o_prev0: Pack<f64, 4>,
        x_start: usize,
        x_max: usize,
    ) -> ([Pack<f64, 4>; RING_CAP], Pack<f64, 4>) {
        const VL: usize = 4;
        debug_assert!(s <= MAX_BAND_STRIDE);
        let rlen = s + 1;
        // SAFETY: every unsafe op below is an AVX2/FMA intrinsic or an
        // `arch::avx2` vocabulary call whose sole precondition is
        // AVX2/FMA availability — discharged by this fn's own
        // `#[target_feature(enable = "avx2,fma")]` caller contract. All
        // band accesses use checked slice indexing; the deepest read
        // `a[x_max + VL·s]` is in bounds because `vector_band_shape`
        // verified `x_max + VL·s ≤ a.len() - 1` before dispatch.
        unsafe {
            let cw = avx2::splat(kern.0.w);
            let cc = avx2::splat(kern.0.c);
            let ce = avx2::splat(kern.0.e);

            let mut ring = [avx2::splat(0.0); RING_CAP];
            for k in 0..rlen {
                ring[k] = avx2::from_pack(ring_init[k]);
            }
            let mut o_prev = avx2::from_pack(o_prev0);
            let mut v0 = ring[x_start % rlen];
            let mut ip1 = (x_start + 1) % rlen;
            // V(x+s) replaces the dead V(x-1) slot ((x+s) ≡ x-1 mod s+1).
            let mut ips = (x_start + s) % rlen;
            for x in x_start..=x_max {
                let vp1 = ring[ip1];
                // w·O(x-1) + (c·v0 + e·vp1), the same fused tree as the
                // scalar oracle: l_new.mul_add(w, m.mul_add(c, r*e)).
                let o = avx2::fmadd(o_prev, cw, avx2::fmadd(v0, cc, avx2::mul(vp1, ce)));
                a[x] = avx2::extract_top(o);
                let bottom = a[x + VL * s];
                ring[ips] = avx2::shift_up_insert(o, bottom);
                o_prev = o;
                v0 = vp1;
                ips = if ips + 1 == rlen { 0 } else { ips + 1 };
                ip1 = if ip1 + 1 == rlen { 0 } else { ip1 + 1 };
            }

            let mut back = [Pack::<f64, 4>::splat(0.0); RING_CAP];
            for k in 0..rlen {
                back[k] = avx2::to_pack(ring[k]);
            }
            (back, avx2::to_pack(o_prev))
        }
    }
}

/// Decompose one band of height `vl` into skewed blocks of anchor width
/// `block` and execute them left to right (the sequential schedule; the
/// parallel executor in `tempora-tiling`/`tempora-parallel` runs the same
/// blocks in pipelined wavefront order).
pub fn band_sweep_gs<const VL: usize, K: Kernel1d>(
    a: &mut [f64],
    n: usize,
    block: usize,
    s: usize,
    kern: &K,
    temporal: bool,
) {
    let span = n + VL - 1; // anchors must reach n + vl - 1 so the last
                           // level's window still covers x = n
    let nblocks = span.div_ceil(block);
    for i in 0..nblocks {
        let xl = i * block + 1;
        let xr = ((i + 1) * block).min(span);
        if temporal {
            band_temporal_gs::<VL, K>(a, xl, xr, n, s, kern);
        } else {
            band_scalar_gs(a, xl, xr, VL, n, kern);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::GsKern1d;
    use tempora_grid::{fill_random_1d, Boundary, Grid1};
    use tempora_stencil::reference;
    use tempora_stencil::Gs1dCoeffs;

    fn run_banded(
        g: &Grid1<f64>,
        kern: &GsKern1d,
        steps: usize,
        block: usize,
        s: usize,
        temporal: bool,
    ) -> Grid1<f64> {
        const VL: usize = 4;
        let mut g = g.clone();
        let n = g.n();
        let a = g.data_mut();
        for _ in 0..steps / VL {
            band_sweep_gs::<VL, _>(a, n, block, s, kern, temporal);
        }
        for _ in 0..steps % VL {
            crate::t1d::scalar_step_inplace(a, n, kern);
        }
        g
    }

    #[test]
    fn scalar_banded_sweep_matches_reference() {
        let c = Gs1dCoeffs::classic(0.25);
        let kern = GsKern1d(c);
        for &(n, block) in &[(64usize, 16usize), (100, 25), (200, 37), (61, 64), (33, 5)] {
            let mut g = Grid1::new(n, 1, Boundary::Dirichlet(0.4));
            fill_random_1d(&mut g, n as u64, -1.0, 1.0);
            for steps in [4usize, 8, 10] {
                let ours = run_banded(&g, &kern, steps, block, 2, false);
                let gold = reference::gs1d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "n={n} block={block} steps={steps} diff {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn temporal_banded_sweep_matches_reference() {
        let c = Gs1dCoeffs::new(0.37, 0.4, 0.23);
        let kern = GsKern1d(c);
        for &(n, block, s) in &[
            (256usize, 64usize, 2usize),
            (300, 75, 3),
            (512, 128, 7),
            (200, 50, 2),
            (1000, 128, 7),
        ] {
            let mut g = Grid1::new(n, 1, Boundary::Dirichlet(-0.3));
            fill_random_1d(&mut g, (n + s) as u64, -1.0, 1.0);
            for steps in [4usize, 8, 12] {
                let ours = run_banded(&g, &kern, steps, block, s, true);
                let gold = reference::gs1d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "n={n} block={block} s={s} steps={steps} diff {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn temporal_band_falls_back_on_narrow_blocks() {
        let c = Gs1dCoeffs::classic(0.2);
        let kern = GsKern1d(c);
        let mut g = Grid1::new(64, 1, Boundary::Dirichlet(0.0));
        fill_random_1d(&mut g, 3, -1.0, 1.0);
        // block = 8 is too narrow for the vector path with s = 2: every
        // tile falls back to scalar and the sweep is still exact.
        let ours = run_banded(&g, &kern, 8, 8, 2, true);
        let gold = reference::gs1d(&g, c, 8);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn avx2_band_matches_scalar_oracle_bitwise() {
        if !tempora_simd::arch::avx2_available() {
            return;
        }
        const VL: usize = 4;
        let c = Gs1dCoeffs::new(0.37, 0.4, 0.23);
        let kern = GsKern1d(c);
        for &(n, block, s) in &[
            (256usize, 64usize, 2usize),
            (300, 75, 3),
            (512, 128, 7),
            (1000, 128, 7),
            (64, 8, 2), // every tile narrow: pure scalar fallback
        ] {
            let mut g = Grid1::new(n, 1, Boundary::Dirichlet(-0.3));
            fill_random_1d(&mut g, (n + s) as u64, -1.0, 1.0);
            for steps in [4usize, 8, 12] {
                let mut ours = g.clone();
                {
                    let nn = ours.n();
                    let a = ours.data_mut();
                    let span = nn + VL - 1;
                    for _ in 0..steps / VL {
                        for i in 0..span.div_ceil(block) {
                            let xl = i * block + 1;
                            let xr = ((i + 1) * block).min(span);
                            band_temporal_gs_avx2(a, xl, xr, nn, s, &kern);
                        }
                    }
                    for _ in 0..steps % VL {
                        crate::t1d::scalar_step_inplace(a, nn, &kern);
                    }
                }
                let gold = reference::gs1d(&g, c, steps);
                assert!(
                    ours.interior_eq(&gold),
                    "n={n} block={block} s={s} steps={steps} diff {:?}",
                    ours.first_diff(&gold)
                );
            }
        }
    }

    #[test]
    fn boundary_values_respected() {
        let c = Gs1dCoeffs::classic(0.3);
        let kern = GsKern1d(c);
        let mut g = Grid1::new(400, 1, Boundary::Dirichlet(1.75));
        fill_random_1d(&mut g, 8, -1.0, 1.0);
        let ours = run_banded(&g, &kern, 8, 100, 4, true);
        let gold = reference::gs1d(&g, c, 8);
        assert!(ours.interior_eq(&gold), "{:?}", ours.first_diff(&gold));
        assert_eq!(ours.get(0), 1.75);
        assert_eq!(ours.get(401), 1.75);
    }
}
