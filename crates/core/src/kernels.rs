//! Kernel adapters: the operand conventions the temporal engines feed.
//!
//! The engines are generic over *what* a stencil computes, but fix *which*
//! operands are available at each site (register ring, previous output
//! vector, scratch planes). These traits pin the calling convention:
//!
//! * **1-D kernels** ([`Kernel1d`]) receive a `west` operand (the newest
//!   value at `x-1`, used only by Gauss-Seidel) plus the three old values
//!   at `x-1, x, x+1` (the Jacobi neighbourhood; GS ignores the old west).
//! * The pack form receives whole vectors in the same roles: for Jacobi,
//!   `west` is the input vector `V(x-1)`; for Gauss-Seidel it is the
//!   previous *output* vector `O(x-1)` (paper §3.4: "the temporal
//!   vectorization uses their corresponding output vectors").
//!
//! Each adapter simply forwards to the matched scalar/pack update pair in
//! `tempora-stencil`, so the engines inherit the bit-for-bit equivalence.

use tempora_simd::{Pack, Scalar};
use tempora_stencil::{
    Box2dCoeffs, Gs1dCoeffs, Gs2dCoeffs, Gs3dCoeffs, Heat1dCoeffs, Heat2dCoeffs, Heat3dCoeffs,
    LifeRule,
};

/// A radius-1, 1-D stencil update usable by the temporal engine.
pub trait Kernel1d: Sync {
    /// True for Gauss-Seidel kernels (west operand is the newest value and
    /// comes from the previous output vector).
    const IS_GS: bool;
    /// Minimum legal temporal space stride (see
    /// `tempora_stencil::DepSet::min_stride`; both 3-point kernels have an
    /// old east neighbour, hence 2).
    const MIN_STRIDE: usize;

    /// Scalar update. `west_new` = newest value at `x-1` (GS only);
    /// `wm1, w0, wp1` = old values at `x-1, x, x+1` (Jacobi ignores
    /// `west_new`, GS ignores `wm1`).
    fn scalar(&self, west_new: f64, wm1: f64, w0: f64, wp1: f64) -> f64;

    /// Pack update with lanes in the same roles; must be lane-wise
    /// bit-identical to [`Kernel1d::scalar`].
    fn pack<const N: usize>(
        &self,
        west: Pack<f64, N>,
        v0: Pack<f64, N>,
        vp1: Pack<f64, N>,
    ) -> Pack<f64, N>;
}

/// 1D3P Jacobi adapter (the Heat-1D benchmark).
#[derive(Clone, Copy, Debug)]
pub struct JacobiKern1d(pub Heat1dCoeffs);

impl Kernel1d for JacobiKern1d {
    const IS_GS: bool = false;
    const MIN_STRIDE: usize = 2;

    #[inline(always)]
    fn scalar(&self, _west_new: f64, wm1: f64, w0: f64, wp1: f64) -> f64 {
        self.0.apply(wm1, w0, wp1)
    }

    #[inline(always)]
    fn pack<const N: usize>(
        &self,
        west: Pack<f64, N>,
        v0: Pack<f64, N>,
        vp1: Pack<f64, N>,
    ) -> Pack<f64, N> {
        self.0.apply_pack(west, v0, vp1)
    }
}

/// 1D3P Gauss-Seidel adapter (the GS-1D benchmark).
#[derive(Clone, Copy, Debug)]
pub struct GsKern1d(pub Gs1dCoeffs);

impl Kernel1d for GsKern1d {
    const IS_GS: bool = true;
    const MIN_STRIDE: usize = 2;

    #[inline(always)]
    fn scalar(&self, west_new: f64, _wm1: f64, w0: f64, wp1: f64) -> f64 {
        self.0.apply(west_new, w0, wp1)
    }

    #[inline(always)]
    fn pack<const N: usize>(
        &self,
        west: Pack<f64, N>,
        v0: Pack<f64, N>,
        vp1: Pack<f64, N>,
    ) -> Pack<f64, N> {
        self.0.apply_pack(west, v0, vp1)
    }
}

/// A 3×3 neighbourhood of *old* values plus the two newest-value operands
/// Gauss-Seidel kernels need. `P` is either a scalar `T` or a
/// `Pack<T, VL>` (lane-wise neighbourhood).
///
/// `v[di][dj]` is the old value at `(x+di-1, y+dj-1)`; `new_n` / `new_w`
/// are the already-updated north/west values (ignored by Jacobi kernels;
/// for packs they come from output vectors, §3.4).
#[derive(Clone, Copy, Debug)]
pub struct Nbhd<P> {
    /// Old 3×3 neighbourhood, `v[di][dj] = a(x+di-1, y+dj-1)`.
    pub v: [[P; 3]; 3],
    /// Newest value at `(x-1, y)` (Gauss-Seidel only).
    pub new_n: P,
    /// Newest value at `(x, y-1)` (Gauss-Seidel only).
    pub new_w: P,
}

/// A radius-1, 2-D stencil update usable by the temporal engine. The
/// engine materializes only the operands the kernel declares it needs
/// (`IS_BOX` ⇒ corners, `IS_GS` ⇒ newest north/west).
pub trait Kernel2d<T: Scalar>: Sync {
    /// True for Gauss-Seidel updates.
    const IS_GS: bool;
    /// True when the kernel reads the four corner neighbours.
    const IS_BOX: bool;
    /// Minimum legal temporal space stride along the outer dimension.
    const MIN_STRIDE: usize;

    /// Scalar update over a neighbourhood.
    fn scalar(&self, nb: Nbhd<T>) -> T;

    /// Pack update, lane-wise bit-identical to [`Kernel2d::scalar`].
    fn pack<const N: usize>(&self, nb: Nbhd<Pack<T, N>>) -> Pack<T, N>;
}

/// 2D5P Jacobi star adapter (the Heat-2D benchmark).
#[derive(Clone, Copy, Debug)]
pub struct JacobiKern2d(pub Heat2dCoeffs);

impl Kernel2d<f64> for JacobiKern2d {
    const IS_GS: bool = false;
    const IS_BOX: bool = false;
    const MIN_STRIDE: usize = 2;

    #[inline(always)]
    fn scalar(&self, nb: Nbhd<f64>) -> f64 {
        self.0
            .apply(nb.v[0][1], nb.v[1][0], nb.v[1][1], nb.v[1][2], nb.v[2][1])
    }

    #[inline(always)]
    fn pack<const N: usize>(&self, nb: Nbhd<Pack<f64, N>>) -> Pack<f64, N> {
        self.0
            .apply_pack(nb.v[0][1], nb.v[1][0], nb.v[1][1], nb.v[1][2], nb.v[2][1])
    }
}

/// 2D9P Jacobi box adapter (the paper's 2D9P benchmark).
#[derive(Clone, Copy, Debug)]
pub struct BoxKern2d(pub Box2dCoeffs);

impl Kernel2d<f64> for BoxKern2d {
    const IS_GS: bool = false;
    const IS_BOX: bool = true;
    const MIN_STRIDE: usize = 2;

    #[inline(always)]
    fn scalar(&self, nb: Nbhd<f64>) -> f64 {
        self.0.apply(nb.v)
    }

    #[inline(always)]
    fn pack<const N: usize>(&self, nb: Nbhd<Pack<f64, N>>) -> Pack<f64, N> {
        self.0.apply_pack(nb.v)
    }
}

/// Game-of-Life adapter (integer 2D9P box; the paper runs it at 8 lanes).
#[derive(Clone, Copy, Debug)]
pub struct LifeKern2d(pub LifeRule);

impl Kernel2d<i32> for LifeKern2d {
    const IS_GS: bool = false;
    const IS_BOX: bool = true;
    const MIN_STRIDE: usize = 2;

    #[inline(always)]
    fn scalar(&self, nb: Nbhd<i32>) -> i32 {
        self.0.apply_neighborhood(nb.v)
    }

    #[inline(always)]
    fn pack<const N: usize>(&self, nb: Nbhd<Pack<i32, N>>) -> Pack<i32, N> {
        self.0.apply_neighborhood_pack(nb.v)
    }
}

/// 2D5P Gauss-Seidel adapter (the GS-2D benchmark).
#[derive(Clone, Copy, Debug)]
pub struct GsKern2d(pub Gs2dCoeffs);

impl Kernel2d<f64> for GsKern2d {
    const IS_GS: bool = true;
    const IS_BOX: bool = false;
    const MIN_STRIDE: usize = 2;

    #[inline(always)]
    fn scalar(&self, nb: Nbhd<f64>) -> f64 {
        self.0
            .apply(nb.new_n, nb.new_w, nb.v[1][1], nb.v[1][2], nb.v[2][1])
    }

    #[inline(always)]
    fn pack<const N: usize>(&self, nb: Nbhd<Pack<f64, N>>) -> Pack<f64, N> {
        self.0
            .apply_pack(nb.new_n, nb.new_w, nb.v[1][1], nb.v[1][2], nb.v[2][1])
    }
}

/// The 7-point star neighbourhood of a 3-D stencil plus the three
/// newest-value operands Gauss-Seidel needs. `P` is a scalar `T` or a
/// `Pack<T, VL>`.
#[derive(Clone, Copy, Debug)]
pub struct Nbhd3<P> {
    /// Old value at `(x-1, y, z)`.
    pub xm: P,
    /// Old value at `(x, y-1, z)`.
    pub ym: P,
    /// Old value at `(x, y, z-1)`.
    pub zm: P,
    /// Old centre value.
    pub m: P,
    /// Old value at `(x, y, z+1)`.
    pub zp: P,
    /// Old value at `(x, y+1, z)`.
    pub yp: P,
    /// Old value at `(x+1, y, z)`.
    pub xp: P,
    /// Newest value at `(x-1, y, z)` (Gauss-Seidel only).
    pub new_xm: P,
    /// Newest value at `(x, y-1, z)` (Gauss-Seidel only).
    pub new_ym: P,
    /// Newest value at `(x, y, z-1)` (Gauss-Seidel only).
    pub new_zm: P,
}

/// A radius-1, 3-D star stencil update usable by the temporal engine.
pub trait Kernel3d<T: Scalar>: Sync {
    /// True for Gauss-Seidel updates.
    const IS_GS: bool;
    /// Minimum legal temporal space stride along the outer dimension.
    const MIN_STRIDE: usize;

    /// Scalar update over a neighbourhood.
    fn scalar(&self, nb: Nbhd3<T>) -> T;

    /// Pack update, lane-wise bit-identical to [`Kernel3d::scalar`].
    fn pack<const N: usize>(&self, nb: Nbhd3<Pack<T, N>>) -> Pack<T, N>;
}

/// 3D7P Jacobi star adapter (the Heat-3D benchmark).
#[derive(Clone, Copy, Debug)]
pub struct JacobiKern3d(pub Heat3dCoeffs);

impl Kernel3d<f64> for JacobiKern3d {
    const IS_GS: bool = false;
    const MIN_STRIDE: usize = 2;

    #[inline(always)]
    fn scalar(&self, nb: Nbhd3<f64>) -> f64 {
        self.0.apply(nb.xm, nb.ym, nb.zm, nb.m, nb.zp, nb.yp, nb.xp)
    }

    #[inline(always)]
    fn pack<const N: usize>(&self, nb: Nbhd3<Pack<f64, N>>) -> Pack<f64, N> {
        self.0
            .apply_pack(nb.xm, nb.ym, nb.zm, nb.m, nb.zp, nb.yp, nb.xp)
    }
}

/// 3D7P Gauss-Seidel adapter (the GS-3D benchmark).
#[derive(Clone, Copy, Debug)]
pub struct GsKern3d(pub Gs3dCoeffs);

impl Kernel3d<f64> for GsKern3d {
    const IS_GS: bool = true;
    const MIN_STRIDE: usize = 2;

    #[inline(always)]
    fn scalar(&self, nb: Nbhd3<f64>) -> f64 {
        self.0
            .apply(nb.new_xm, nb.new_ym, nb.new_zm, nb.m, nb.zp, nb.yp, nb.xp)
    }

    #[inline(always)]
    fn pack<const N: usize>(&self, nb: Nbhd3<Pack<f64, N>>) -> Pack<f64, N> {
        self.0
            .apply_pack(nb.new_xm, nb.new_ym, nb.new_zm, nb.m, nb.zp, nb.yp, nb.xp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempora_simd::F64x4;
    use tempora_stencil::{Gs1dCoeffs, Heat1dCoeffs};

    #[test]
    fn adapters_forward_bitwise() {
        let jc = Heat1dCoeffs::classic(0.21);
        let jk = JacobiKern1d(jc);
        assert_eq!(jk.scalar(99.0, 1.0, 2.0, 3.0), jc.apply(1.0, 2.0, 3.0));

        let gc = Gs1dCoeffs::classic(0.31);
        let gk = GsKern1d(gc);
        assert_eq!(gk.scalar(1.5, 99.0, 2.0, 3.0), gc.apply(1.5, 2.0, 3.0));

        let a = F64x4::from_fn(|i| i as f64 + 0.5);
        let b = F64x4::from_fn(|i| 2.0 * i as f64 - 1.0);
        let c = F64x4::from_fn(|i| 0.25 * i as f64);
        assert_eq!(jk.pack(a, b, c), jc.apply_pack(a, b, c));
        assert_eq!(gk.pack(a, b, c), gc.apply_pack(a, b, c));
    }

    #[test]
    fn min_strides_agree_with_dependence_analysis() {
        assert_eq!(JacobiKern1d::MIN_STRIDE, Heat1dCoeffs::deps().min_stride());
        assert_eq!(GsKern1d::MIN_STRIDE, Gs1dCoeffs::deps().min_stride());
    }
}
