//! # tempora-core — temporal vectorization engines
//!
//! The primary contribution of the reproduced paper ("Temporal
//! Vectorization for Stencils", SC'21): engines that vectorize stencils in
//! the *iteration space*, packing `VL` consecutive time levels into each
//! SIMD register and paying a constant reorganization cost per produced
//! vector regardless of vector length, stencil order and dimensionality.
//!
//! | module | contents |
//! |---|---|
//! | [`engine`] | unified dispatch: portable vs `std::arch` AVX2, `TEMPORA_ENGINE` |
//! | [`t1d`] | 1-D Jacobi and Gauss-Seidel engines (Algorithm 3), phase API |
//! | [`t1d_avx2`] | hand-scheduled AVX2 steady states: Heat-1D, GS-1D |
//! | [`t1d_band`] | skewed (parallelogram) 1-D Gauss-Seidel bands (§3.4) |
//! | [`t2d`] | 2-D outer-loop engine: Heat-2D, 2D9P, Life (`i32×8`), GS-2D |
//! | [`t2d_avx2`] | hand-scheduled AVX2 steady states: Heat-2D, 2D9P, GS-2D |
//! | [`t2d_band`] / [`t3d_band`] | skewed 2-D/3-D Gauss-Seidel bands |
//! | [`t3d`] | 3-D outer-loop engine: Heat-3D, GS-3D |
//! | [`t3d_avx2`] | hand-scheduled AVX2 steady states: Heat-3D, GS-3D |
//! | [`lcs`] | the LCS dynamic program as a temporal 1-D stencil (`i32×8`) |
//! | [`lcs_avx2`] | hand-scheduled AVX2 integer steady state for LCS |
//! | [`kernels`] | operand-convention adapters between stencils and engines |
//!
//! The portable 2-D/3-D engines expose the same prologue / steady-state /
//! epilogue three-phase split as the 1-D engine, so every arch-specialized
//! steady state shares the exact boundary machinery of the portable one
//! and stays bit-identical to the scalar oracle.
//!
//! Convenience entry points for the 1-D benchmarks live at the crate
//! root ([`temporal1d_jacobi`] etc.); they route through [`engine`]
//! dispatch, honouring the `TEMPORA_ENGINE` environment variable.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod kernels;
pub mod lcs;
pub mod lcs_avx2;
pub mod t1d;
pub mod t1d_avx2;
pub mod t1d_band;
pub mod t2d;
pub mod t2d_avx2;
pub mod t2d_band;
pub mod t3d;
pub mod t3d_avx2;
pub mod t3d_band;

use tempora_grid::Grid1;
use tempora_stencil::{Gs1dCoeffs, Heat1dCoeffs};

/// Run `steps` time steps of the 1D3P Jacobi (Heat-1D) stencil with the
/// temporal scheme at vector length 4 and space stride `s` (the paper uses
/// `s = 7`), dispatched to the best engine for this CPU (respecting
/// `TEMPORA_ENGINE`). Bit-identical to `tempora_stencil::reference::heat1d`.
pub fn temporal1d_jacobi(g: &Grid1<f64>, c: Heat1dCoeffs, steps: usize, s: usize) -> Grid1<f64> {
    engine::run_heat1d_impl(
        engine::Select::from_env(),
        g,
        &kernels::JacobiKern1d(c),
        steps,
        s,
    )
    .0
}

/// Run `steps` time steps of the 1D3P Gauss-Seidel stencil with the
/// temporal scheme at vector length 4 and space stride `s`, dispatched to
/// the best engine for this CPU (respecting `TEMPORA_ENGINE`).
/// Bit-identical to `tempora_stencil::reference::gs1d`.
pub fn temporal1d_gs(g: &Grid1<f64>, c: Gs1dCoeffs, steps: usize, s: usize) -> Grid1<f64> {
    engine::run_gs1d_impl(
        engine::Select::from_env(),
        g,
        &kernels::GsKern1d(c),
        steps,
        s,
    )
    .0
}
