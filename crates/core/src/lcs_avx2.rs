//! Hand-scheduled AVX2 (`std::arch`) steady state for the LCS temporal
//! engine (paper §3.4) at the paper's integer width `vl = 8`.
//!
//! The portable engine in [`crate::lcs`] leaves instruction selection to
//! LLVM; this variant pins the steady state to the instruction mix the
//! paper's analysis assumes — `vpcmpeqd` for the character-equality
//! mask, `vpaddd`/`vpmaxsd` for the two update candidates, `vpblendvb`
//! for the equality blend, and one `vpermd` (lane-crossing rotate) plus
//! one `vpblendd` (in-lane) per produced vector for the input production
//! — while the head/tail wavefront triangles, the degenerate fallback
//! and the segmented (rectangle-tiled) entry point are shared with the
//! portable engine through its phase split
//! ([`crate::lcs::tile_seg_prologue`] /
//! [`crate::lcs::tile_seg_epilogue`]). At the minimum stride `s = 1` the
//! `B`-character vector is produced by the same rotate-and-blend rule;
//! wider strides gather it with the strided `vloadset` helper. Results
//! stay bit-identical to the portable engine and therefore to the
//! scalar DP.
//!
//! Use [`crate::engine`] (or a `tempora_plan::Plan`) for transparent
//! runtime dispatch; the shape predicates [`seq_has_vector_tiles`] /
//! [`rect_has_vector_tiles`] are what the dispatch layers feed to
//! `Select::resolve`.

use crate::lcs::ScratchLcs;

/// The integer vector length of the AVX2 LCS steady state (8 × i32 lanes
/// in one `__m256i` — the paper's "theoretical maximal speedup of 8").
pub const VL: usize = 8;

/// True when the sequential (whole-row) LCS engine can run the AVX2
/// steady state: the CPU supports AVX2+FMA, at least one full `VL = 8`
/// temporal tile of `A`-positions exists, and the row segment hosts the
/// vector schedule (`lb ≥ VL·s + 1`). Degenerate shapes run the scalar
/// schedule in every engine, so dispatch must resolve them portable.
pub fn seq_has_vector_tiles(la: usize, lb: usize, s: usize) -> bool {
    tempora_simd::arch::avx2_available() && la >= VL && lb > VL * s
}

/// True when every rectangle tile of an `xblock × yblock` tiling can run
/// the AVX2 steady state: whole `VL`-level bands exist (`la ≥ VL` and
/// `xblock ≥ VL`) and **every** block column's segment — the ragged last
/// one included — hosts the vector schedule. A short final row band
/// (`x`-remainder `< VL`) runs scalar rows in every engine, like the
/// `steps mod height` tails of the grid tilings, and does not demote the
/// report; a column block too narrow for the steady state would, because
/// all of its tiles would silently run the scalar schedule.
pub fn rect_has_vector_tiles(la: usize, lb: usize, xblock: usize, yblock: usize, s: usize) -> bool {
    if !(tempora_simd::arch::avx2_available() && la >= VL && xblock >= VL) {
        return false;
    }
    let last = match lb % yblock {
        0 => yblock,
        r => r,
    };
    yblock.min(lb) > VL * s && last > VL * s
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use super::VL;
    use crate::lcs::ScratchLcs;
    use tempora_simd::arch::avx2;
    use tempora_simd::I32x8;

    /// AVX2 steady state of one LCS temporal tile: same loop structure as
    /// [`crate::lcs::tile_seg_steady`], with the diagonal, the previous
    /// output vector and (at `s = 1`) the `B`-character vector all
    /// carried in `__m256i` registers between iterations.
    ///
    /// # Safety
    /// Caller must ensure AVX2+FMA are available
    /// (`tempora_simd::arch::avx2_available()`).
    // Justification: same tile-contract signature as the portable `tile_seg`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn steady(
        row: &mut [i32],
        y0: usize,
        y_max: usize,
        a_tile: &[u8],
        b: &[u8],
        s: usize,
        sc: &mut ScratchLcs<VL>,
        o_prev: I32x8,
    ) {
        let rlen = s + 1;
        let ones = avx2::splat_i32(1);
        let a_vec = avx2::from_pack_i32(I32x8::from_fn(|i| a_tile[i] as i32));
        let mut o_prev = avx2::from_pack_i32(o_prev);
        let mut diag = avx2::from_pack_i32(sc.ring[(y0 + rlen - 1) % rlen]);
        let mut iu = y0 % rlen;
        let mut iw = (y0 + s) % rlen;
        // SAFETY: the vocabulary calls below are gated only on AVX2,
        // discharged by this fn's own `#[target_feature(enable = "avx2")]`
        // caller contract. The two `gather_u8_i32` uses additionally
        // require their eight lane indices in bounds for `b`: the caller
        // (`tile_seg_avx2` after `tile_seg_fallback_if_degenerate`)
        // guarantees the non-degenerate segment shape `y_max + VL·s ≤
        // b.len()` with `y0 ≥ 1`, so the highest gathered index
        // `y - 1 + (VL-1)·s ≤ y_max - 1 + (VL-1)·s < b.len()` and the
        // lowest `y - 1 ≥ 0`. Row access (`row[y]`, `row[y + VL·s]`) is
        // checked slice indexing.
        unsafe {
            if s == 1 {
                // One-rotate-one-blend input production for the characters
                // too: lane 0 takes the next byte, every other lane shifts up.
                let mut b_vec = avx2::gather_u8_i32(b, y0 - 1 + (VL - 1), -1);
                for y in y0..=y_max {
                    let up = avx2::from_pack_i32(sc.ring[iu]);
                    let eq = avx2::cmpeq_i32(a_vec, b_vec);
                    let o =
                        avx2::blendv_i32(avx2::max_i32(up, o_prev), avx2::add_i32(diag, ones), eq);
                    row[y] = avx2::extract_top_i32(o);
                    let bottom = row[y + VL];
                    sc.ring[iw] = avx2::to_pack_i32(avx2::shift_up_insert_i32(o, bottom));
                    o_prev = o;
                    diag = up;
                    b_vec = avx2::shift_up_insert_i32(b_vec, b[y + VL - 1] as i32);
                    iu += 1;
                    if iu == rlen {
                        iu = 0;
                    }
                    iw += 1;
                    if iw == rlen {
                        iw = 0;
                    }
                }
            } else {
                for y in y0..=y_max {
                    let up = avx2::from_pack_i32(sc.ring[iu]);
                    // Strided vloadset of the B characters: lane i reads
                    // b[y - 1 + (VL-1-i)·s].
                    let b_vec = avx2::gather_u8_i32(b, y - 1 + (VL - 1) * s, -(s as isize));
                    let eq = avx2::cmpeq_i32(a_vec, b_vec);
                    let o =
                        avx2::blendv_i32(avx2::max_i32(up, o_prev), avx2::add_i32(diag, ones), eq);
                    row[y] = avx2::extract_top_i32(o);
                    let bottom = row[y + VL * s];
                    sc.ring[iw] = avx2::to_pack_i32(avx2::shift_up_insert_i32(o, bottom));
                    o_prev = o;
                    diag = up;
                    iu += 1;
                    if iu == rlen {
                        iu = 0;
                    }
                    iw += 1;
                    if iw == rlen {
                        iw = 0;
                    }
                }
            }
        }
    }
}

/// One segmented LCS temporal tile with the AVX2 steady state (shared
/// head/tail triangles and degenerate fallback with the portable
/// engine); the drop-in `std::arch` counterpart of
/// [`crate::lcs::tile_seg`]. Panics if AVX2+FMA are unavailable. The
/// tiled layer (`tempora_tiling::lcs_rect`) reaches this through its
/// resolved engine.
#[cfg(target_arch = "x86_64")]
// Justification: same tile-contract signature as the portable `tile_seg`.
#[allow(clippy::too_many_arguments)]
pub fn tile_seg_avx2(
    row: &mut [i32],
    y0: usize,
    y1: usize,
    a_tile: &[u8],
    b: &[u8],
    s: usize,
    left_col: &[i32],
    right_col: &mut [i32],
    sc: &mut ScratchLcs<VL>,
) {
    assert!(
        tempora_simd::arch::avx2_available(),
        "AVX2+FMA not available on this CPU"
    );
    if crate::lcs::tile_seg_fallback_if_degenerate::<VL>(
        row, y0, y1, a_tile, b, s, left_col, right_col,
    ) {
        return;
    }
    let (y_max, o_prev) =
        crate::lcs::tile_seg_prologue::<VL>(row, y0, y1, a_tile, b, s, left_col, sc);
    // SAFETY: availability asserted above.
    unsafe { imp::steady(row, y0, y_max, a_tile, b, s, sc, o_prev) };
    crate::lcs::tile_seg_epilogue::<VL>(row, y1, a_tile, b, s, right_col, sc, y_max);
}

/// Advance the full DP row by `VL = 8` sequence-`A` positions with the
/// AVX2 steady state (whole-row temporal tile); the `std::arch`
/// counterpart of [`crate::lcs::tile`].
#[cfg(target_arch = "x86_64")]
pub fn tile_avx2(row: &mut [i32], a_tile: &[u8], b: &[u8], s: usize, sc: &mut ScratchLcs<VL>) {
    let lb = b.len();
    let zeros = [0i32; VL + 1];
    let mut sink = [0i32; VL + 1];
    tile_seg_avx2(row, 1, lb, a_tile, b, s, &zeros, &mut sink, sc);
}

/// Compute the final DP row with the AVX2 steady state; bit-identical to
/// [`crate::lcs::final_row`] and the scalar reference. Panics if
/// AVX2+FMA are unavailable (use [`crate::engine`] for dispatch).
#[cfg(target_arch = "x86_64")]
pub fn final_row_avx2(a: &[u8], b: &[u8], s: usize) -> Vec<i32> {
    let mut row = vec![0i32; b.len() + 1];
    if b.is_empty() {
        return row;
    }
    let mut sc = ScratchLcs::<VL>::new(s);
    let tiles = a.len() / VL;
    for t in 0..tiles {
        tile_avx2(&mut row, &a[t * VL..(t + 1) * VL], b, s, &mut sc);
    }
    for &ca in &a[tiles * VL..] {
        crate::lcs::scalar_row_step(&mut row, ca, b);
    }
    row
}

/// LCS length via the AVX2 temporal scheme; bit-identical to
/// [`crate::lcs::length`]. Panics if AVX2+FMA are unavailable.
#[cfg(target_arch = "x86_64")]
pub fn length_avx2(a: &[u8], b: &[u8], s: usize) -> i32 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // Panic-justification: `b` is non-empty (checked above), so the final
    // row has `b.len()` entries and `last()` is always Some.
    *final_row_avx2(a, b, s).last().unwrap()
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use tempora_grid::random_sequence;
    use tempora_simd::arch::avx2_available;
    use tempora_stencil::reference;

    #[test]
    fn final_row_avx2_matches_portable_and_reference() {
        if !avx2_available() {
            return;
        }
        for &(la, lb) in &[
            (8usize, 40usize),
            (16, 100),
            (24, 33),
            (40, 17),
            (7, 50),
            (64, 257),
        ] {
            for s in 1..=3 {
                let a = random_sequence(la, 4, la as u64);
                let b = random_sequence(lb, 4, lb as u64 + 1);
                let ours = final_row_avx2(&a, &b, s);
                assert_eq!(
                    ours,
                    crate::lcs::final_row::<8>(&a, &b, s),
                    "la={la} lb={lb} s={s} (vs portable)"
                );
                assert_eq!(
                    ours,
                    reference::lcs_final_row(&a, &b),
                    "la={la} lb={lb} s={s} (vs reference)"
                );
            }
        }
    }

    #[test]
    fn binary_alphabet_and_tiny_b() {
        if !avx2_available() {
            return;
        }
        for seed in 0..4 {
            let a = random_sequence(48, 2, seed);
            let b = random_sequence(96, 2, seed + 100);
            assert_eq!(
                length_avx2(&a, &b, 1),
                *reference::lcs_final_row(&a, &b).last().unwrap()
            );
        }
        // b too short for any vector segment: shared scalar fallback.
        let a = random_sequence(16, 4, 9);
        let b = random_sequence(5, 4, 10);
        assert_eq!(final_row_avx2(&a, &b, 1), reference::lcs_final_row(&a, &b));
        assert_eq!(length_avx2(b"", b"ABC", 1), 0);
        assert_eq!(length_avx2(b"ABC", b"", 1), 0);
    }

    #[test]
    fn segmented_tiles_stitch_exactly() {
        if !avx2_available() {
            return;
        }
        // Same stitching property as the portable engine: process the
        // table in column blocks, threading edges through tile_seg_avx2.
        let a = random_sequence(32, 3, 5);
        let b = random_sequence(200, 3, 6);
        let (la, lb) = (a.len(), b.len());
        let gold_table = reference::lcs_table(&a, &b);
        let w = lb + 1;
        for s in [1usize, 2] {
            for block in [24usize, 64, 96] {
                let mut row = vec![0i32; lb + 1];
                let mut sc = ScratchLcs::<8>::new(s);
                for t in 0..la / 8 {
                    let x0 = t * 8;
                    let mut left = [0i32; 9];
                    let mut right = [0i32; 9];
                    let mut y0 = 1usize;
                    while y0 <= lb {
                        let y1 = (y0 + block - 1).min(lb);
                        tile_seg_avx2(
                            &mut row,
                            y0,
                            y1,
                            &a[x0..x0 + 8],
                            &b,
                            s,
                            &left,
                            &mut right,
                            &mut sc,
                        );
                        for k in 0..=8 {
                            assert_eq!(
                                right[k],
                                gold_table[(x0 + k) * w + y1],
                                "s={s} block={block} x0={x0} y1={y1} k={k}"
                            );
                        }
                        left = right;
                        y0 = y1 + 1;
                    }
                }
                let gold_row = &gold_table[(la / 8 * 8) * w..(la / 8 * 8) * w + w];
                assert_eq!(&row[..], gold_row);
            }
        }
    }

    #[test]
    fn shape_predicates() {
        let cpu = avx2_available();
        assert_eq!(seq_has_vector_tiles(8, 9, 1), cpu);
        assert!(!seq_has_vector_tiles(7, 100, 1)); // no full A tile
        assert!(!seq_has_vector_tiles(100, 8, 1)); // segment too short
        assert!(!seq_has_vector_tiles(100, 16, 2)); // 16 < 8·2 + 1
        assert_eq!(rect_has_vector_tiles(90, 140, 24, 40, 1), cpu);
        assert!(!rect_has_vector_tiles(90, 140, 4, 40, 1)); // xblock < VL
        assert!(!rect_has_vector_tiles(6, 140, 24, 40, 1)); // la < VL
        assert!(!rect_has_vector_tiles(90, 140, 24, 8, 1)); // yblock segment
        assert_eq!(rect_has_vector_tiles(90, 132, 24, 40, 1), cpu); // ragged 12 ≥ 9
        assert!(!rect_has_vector_tiles(90, 125, 24, 40, 1)); // last segment 5 < 9
    }
}
